//! Fixed-width unsigned big integers.
//!
//! The Diffie–Hellman key agreement in `fl-crypto` needs modular
//! exponentiation over primes larger than 128 bits. The offline dependency
//! set carries no bigint crate, so this module implements a small,
//! well-tested fixed-width integer: [`Uint<LIMBS>`] with 64-bit limbs in
//! little-endian order, plus the modular kernels ([`Uint::mod_mul`],
//! [`Uint::mod_pow`]) that DH requires.
//!
//! Design notes:
//!
//! * Widths are const-generic; [`U256`] (the simulation-grade DH group) and
//!   [`U2048`] (RFC 3526 MODP-2048 for a faithful slow path) are the two
//!   instantiations the workspace uses.
//! * Multiplication is schoolbook into a double-width accumulator;
//!   reduction is binary shift-subtract long division. Both are O(w²) in
//!   the word count — entirely adequate for a 256-bit group and usable for
//!   occasional 2048-bit operations.
//! * Hot modular exponentiation goes through the resident
//!   [`MontgomeryCtx`] engine: allocation-free CIOS multiplication over
//!   stack arrays plus fixed-window (w = 4) exponentiation, bit-identical
//!   to the retained [`Uint::mod_pow_naive`] oracle. Build the context
//!   once per modulus; `Uint::mod_pow` remains as the one-shot
//!   convenience that pays setup per call.
//! * Arithmetic is *not* constant time. This is a research simulation of
//!   the paper's protocol, not a hardened TLS stack; the crate-level docs
//!   of `fl-crypto` repeat this warning.

// Limb-level arithmetic is written with explicit indices throughout: the
// canonical big-integer algorithms (CIOS, shift-subtract division) are
// specified over index windows, and iterator adaptors obscure the carry
// chains that reviews need to check.
#![allow(clippy::needless_range_loop)]

use std::cmp::Ordering;
use std::fmt;

/// A fixed-width unsigned integer with `LIMBS` 64-bit little-endian limbs.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Uint<const LIMBS: usize> {
    limbs: [u64; LIMBS],
}

/// 256-bit unsigned integer (4 limbs).
pub type U256 = Uint<4>;
/// 2048-bit unsigned integer (32 limbs).
pub type U2048 = Uint<32>;

impl<const LIMBS: usize> Default for Uint<LIMBS> {
    fn default() -> Self {
        Self::ZERO
    }
}

impl<const LIMBS: usize> Uint<LIMBS> {
    /// The additive identity.
    pub const ZERO: Self = Self { limbs: [0; LIMBS] };

    /// The multiplicative identity.
    pub const ONE: Self = {
        let mut limbs = [0u64; LIMBS];
        limbs[0] = 1;
        Self { limbs }
    };

    /// The largest representable value (all bits set).
    pub const MAX: Self = Self {
        limbs: [u64::MAX; LIMBS],
    };

    /// Total width in bits.
    pub const BITS: u32 = 64 * LIMBS as u32;

    /// Builds a value from little-endian limbs.
    pub const fn from_limbs(limbs: [u64; LIMBS]) -> Self {
        Self { limbs }
    }

    /// Returns the little-endian limbs.
    pub const fn limbs(&self) -> &[u64; LIMBS] {
        &self.limbs
    }

    /// Builds a value from a `u64`.
    pub const fn from_u64(v: u64) -> Self {
        let mut limbs = [0u64; LIMBS];
        limbs[0] = v;
        Self { limbs }
    }

    /// Builds a value from a `u128`.
    pub fn from_u128(v: u128) -> Self {
        assert!(LIMBS >= 2, "u128 needs at least two limbs");
        let mut limbs = [0u64; LIMBS];
        limbs[0] = v as u64;
        limbs[1] = (v >> 64) as u64;
        Self { limbs }
    }

    /// Interprets `bytes` as a big-endian integer.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is longer than the width of the integer.
    pub fn from_be_bytes(bytes: &[u8]) -> Self {
        assert!(
            bytes.len() <= LIMBS * 8,
            "{} bytes do not fit in {} limbs",
            bytes.len(),
            LIMBS
        );
        let mut limbs = [0u64; LIMBS];
        for (i, &b) in bytes.iter().rev().enumerate() {
            limbs[i / 8] |= (b as u64) << (8 * (i % 8));
        }
        Self { limbs }
    }

    /// Serializes to big-endian bytes (full width).
    pub fn to_be_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(LIMBS * 8);
        for limb in self.limbs.iter().rev() {
            out.extend_from_slice(&limb.to_be_bytes());
        }
        out
    }

    /// Parses a hexadecimal string (no `0x` prefix required, case
    /// insensitive, whitespace ignored).
    pub fn from_hex(s: &str) -> Result<Self, UintError> {
        let cleaned: String = s
            .trim()
            .trim_start_matches("0x")
            .chars()
            .filter(|c| !c.is_whitespace())
            .collect();
        if cleaned.is_empty() {
            return Err(UintError::Empty);
        }
        if cleaned.len() > LIMBS * 16 {
            return Err(UintError::Overflow);
        }
        let mut out = Self::ZERO;
        for c in cleaned.chars() {
            let d = c.to_digit(16).ok_or(UintError::InvalidDigit(c))? as u64;
            let (shifted, ov) = out.overflowing_shl(4);
            if ov {
                return Err(UintError::Overflow);
            }
            out = shifted;
            out.limbs[0] |= d;
        }
        Ok(out)
    }

    /// Lowercase hexadecimal rendering without leading zeros.
    pub fn to_hex(&self) -> String {
        if self.is_zero() {
            return "0".to_owned();
        }
        let mut s = String::new();
        let mut seen = false;
        for limb in self.limbs.iter().rev() {
            if seen {
                s.push_str(&format!("{limb:016x}"));
            } else if *limb != 0 {
                s.push_str(&format!("{limb:x}"));
                seen = true;
            }
        }
        s
    }

    /// True if the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.iter().all(|&l| l == 0)
    }

    /// True if the lowest bit is zero.
    pub fn is_even(&self) -> bool {
        self.limbs[0] & 1 == 0
    }

    /// Index of the highest set bit, or `None` for zero.
    pub fn highest_bit(&self) -> Option<u32> {
        for (i, &limb) in self.limbs.iter().enumerate().rev() {
            if limb != 0 {
                return Some(i as u32 * 64 + 63 - limb.leading_zeros());
            }
        }
        None
    }

    /// Value of bit `i` (little-endian bit order).
    pub fn bit(&self, i: u32) -> bool {
        if i >= Self::BITS {
            return false;
        }
        (self.limbs[(i / 64) as usize] >> (i % 64)) & 1 == 1
    }

    /// Wrapping addition with carry-out flag.
    pub fn overflowing_add(&self, rhs: &Self) -> (Self, bool) {
        let mut out = [0u64; LIMBS];
        let mut carry = false;
        for i in 0..LIMBS {
            let (s1, c1) = self.limbs[i].overflowing_add(rhs.limbs[i]);
            let (s2, c2) = s1.overflowing_add(carry as u64);
            out[i] = s2;
            carry = c1 | c2;
        }
        (Self { limbs: out }, carry)
    }

    /// Wrapping subtraction with borrow-out flag.
    pub fn overflowing_sub(&self, rhs: &Self) -> (Self, bool) {
        let mut out = [0u64; LIMBS];
        let mut borrow = false;
        for i in 0..LIMBS {
            let (d1, b1) = self.limbs[i].overflowing_sub(rhs.limbs[i]);
            let (d2, b2) = d1.overflowing_sub(borrow as u64);
            out[i] = d2;
            borrow = b1 | b2;
        }
        (Self { limbs: out }, borrow)
    }

    /// Checked addition.
    pub fn checked_add(&self, rhs: &Self) -> Option<Self> {
        let (v, ov) = self.overflowing_add(rhs);
        (!ov).then_some(v)
    }

    /// Checked subtraction.
    pub fn checked_sub(&self, rhs: &Self) -> Option<Self> {
        let (v, ov) = self.overflowing_sub(rhs);
        (!ov).then_some(v)
    }

    /// Wrapping addition.
    pub fn wrapping_add(&self, rhs: &Self) -> Self {
        self.overflowing_add(rhs).0
    }

    /// Wrapping subtraction.
    pub fn wrapping_sub(&self, rhs: &Self) -> Self {
        self.overflowing_sub(rhs).0
    }

    /// Left shift with overflow flag (true if any set bit fell off).
    pub fn overflowing_shl(&self, n: u32) -> (Self, bool) {
        if n == 0 {
            return (*self, false);
        }
        if n >= Self::BITS {
            return (Self::ZERO, !self.is_zero());
        }
        let limb_shift = (n / 64) as usize;
        let bit_shift = n % 64;
        let mut out = [0u64; LIMBS];
        let mut overflow = false;
        for i in (0..LIMBS).rev() {
            let src = i as isize - limb_shift as isize;
            let mut v = 0u64;
            if src >= 0 {
                v = self.limbs[src as usize] << bit_shift;
                if bit_shift > 0 && src >= 1 {
                    v |= self.limbs[src as usize - 1] >> (64 - bit_shift);
                }
            }
            out[i] = v;
        }
        // Detect lost high bits.
        for i in (LIMBS - limb_shift.min(LIMBS))..LIMBS {
            if self.limbs[i] != 0 && (i + limb_shift >= LIMBS) {
                overflow = true;
            }
        }
        if bit_shift > 0 && limb_shift < LIMBS {
            let top = self.limbs[LIMBS - 1 - limb_shift];
            if top >> (64 - bit_shift) != 0 {
                overflow = true;
            }
        }
        (Self { limbs: out }, overflow)
    }

    /// Logical right shift.
    pub fn shr(&self, n: u32) -> Self {
        if n == 0 {
            return *self;
        }
        if n >= Self::BITS {
            return Self::ZERO;
        }
        let limb_shift = (n / 64) as usize;
        let bit_shift = n % 64;
        let mut out = [0u64; LIMBS];
        for i in 0..LIMBS {
            let src = i + limb_shift;
            if src < LIMBS {
                out[i] = self.limbs[src] >> bit_shift;
                if bit_shift > 0 && src + 1 < LIMBS {
                    out[i] |= self.limbs[src + 1] << (64 - bit_shift);
                }
            }
        }
        Self { limbs: out }
    }

    /// Schoolbook multiplication into a double-width little-endian limb
    /// vector of length `2 * LIMBS`.
    fn widening_mul(&self, rhs: &Self) -> Vec<u64> {
        let mut acc = vec![0u64; 2 * LIMBS];
        for i in 0..LIMBS {
            if self.limbs[i] == 0 {
                continue;
            }
            let mut carry = 0u128;
            for j in 0..LIMBS {
                let idx = i + j;
                let prod = self.limbs[i] as u128 * rhs.limbs[j] as u128 + acc[idx] as u128 + carry;
                acc[idx] = prod as u64;
                carry = prod >> 64;
            }
            let mut idx = i + LIMBS;
            while carry > 0 {
                let sum = acc[idx] as u128 + carry;
                acc[idx] = sum as u64;
                carry = sum >> 64;
                idx += 1;
            }
        }
        acc
    }

    /// Checked multiplication (None on overflow).
    pub fn checked_mul(&self, rhs: &Self) -> Option<Self> {
        let wide = self.widening_mul(rhs);
        if wide[LIMBS..].iter().any(|&l| l != 0) {
            return None;
        }
        let mut limbs = [0u64; LIMBS];
        limbs.copy_from_slice(&wide[..LIMBS]);
        Some(Self { limbs })
    }

    /// `self mod modulus` via binary long division on the limb slice.
    ///
    /// # Panics
    ///
    /// Panics if `modulus` is zero.
    pub fn reduce(&self, modulus: &Self) -> Self {
        assert!(!modulus.is_zero(), "division by zero modulus");
        reduce_slice(&self.limbs, modulus)
    }

    /// Modular addition: `(self + rhs) mod modulus`.
    ///
    /// Inputs must already be reduced (`< modulus`).
    pub fn mod_add(&self, rhs: &Self, modulus: &Self) -> Self {
        debug_assert!(self < modulus && rhs < modulus);
        let (sum, carry) = self.overflowing_add(rhs);
        if carry || &sum >= modulus {
            sum.wrapping_sub(modulus)
        } else {
            sum
        }
    }

    /// Modular subtraction: `(self - rhs) mod modulus`.
    ///
    /// Inputs must already be reduced (`< modulus`).
    pub fn mod_sub(&self, rhs: &Self, modulus: &Self) -> Self {
        debug_assert!(self < modulus && rhs < modulus);
        let (diff, borrow) = self.overflowing_sub(rhs);
        if borrow {
            diff.wrapping_add(modulus)
        } else {
            diff
        }
    }

    /// Modular multiplication: `(self * rhs) mod modulus`.
    pub fn mod_mul(&self, rhs: &Self, modulus: &Self) -> Self {
        assert!(!modulus.is_zero(), "division by zero modulus");
        let wide = self.widening_mul(rhs);
        reduce_slice(&wide, modulus)
    }

    /// Modular exponentiation: `self^exp mod modulus`.
    ///
    /// Odd moduli (every prime the crate ships) take the Montgomery (CIOS)
    /// fast path with fixed-window exponentiation; even moduli fall back
    /// to [`Uint::mod_pow_naive`]. Callers that exponentiate repeatedly
    /// over the same odd modulus should build a [`MontgomeryCtx`] once and
    /// use [`MontgomeryCtx::mod_pow`] directly — this convenience method
    /// pays the full context setup (limb inversion + R² derivation) on
    /// every call.
    pub fn mod_pow(&self, exp: &Self, modulus: &Self) -> Self {
        assert!(!modulus.is_zero(), "division by zero modulus");
        if modulus == &Self::ONE {
            return Self::ZERO;
        }
        if let Some(ctx) = MontgomeryCtx::new(modulus) {
            return ctx.mod_pow(self, exp);
        }
        self.mod_pow_naive(exp, modulus)
    }

    /// Modular exponentiation by plain left-to-right square and multiply
    /// over binary-reduction [`Uint::mod_mul`] — no Montgomery form, no
    /// windowing, no precomputation.
    ///
    /// This is the seed-era slow path, kept verbatim as the oracle the
    /// property tests and the `crypto_primitives` seed-vs-opt benches pin
    /// the Montgomery engine against. Every optimized exponentiation in
    /// the workspace must return bit-identical results to this ladder.
    ///
    /// # Panics
    ///
    /// Panics if `modulus` is zero.
    pub fn mod_pow_naive(&self, exp: &Self, modulus: &Self) -> Self {
        assert!(!modulus.is_zero(), "division by zero modulus");
        if modulus == &Self::ONE {
            return Self::ZERO;
        }
        let base = self.reduce(modulus);
        let mut result = Self::ONE;
        let Some(top) = exp.highest_bit() else {
            return result; // exp == 0
        };
        for i in (0..=top).rev() {
            result = result.mod_mul(&result, modulus);
            if exp.bit(i) {
                result = result.mod_mul(&base, modulus);
            }
        }
        result
    }

    /// The 4-bit window of the exponent starting at bit `4 * w`
    /// (little-endian window order). Window boundaries never straddle a
    /// limb because 64 is a multiple of 4.
    fn window4(&self, w: u32) -> usize {
        let bit = 4 * w;
        if bit >= Self::BITS {
            return 0;
        }
        ((self.limbs[(bit / 64) as usize] >> (bit % 64)) & 0xf) as usize
    }

    /// Modular inverse via Fermat's little theorem (`modulus` must be
    /// prime and `self` nonzero mod it).
    pub fn mod_inv_prime(&self, modulus: &Self) -> Option<Self> {
        let reduced = self.reduce(modulus);
        if reduced.is_zero() {
            return None;
        }
        let exp = modulus.wrapping_sub(&Self::from_u64(2));
        Some(reduced.mod_pow(&exp, modulus))
    }
}

/// Reduces an arbitrary-length little-endian limb slice modulo `modulus`.
fn reduce_slice<const LIMBS: usize>(value: &[u64], modulus: &Uint<LIMBS>) -> Uint<LIMBS> {
    // Find the highest set bit of the value.
    let mut top_bit: Option<usize> = None;
    for (i, &limb) in value.iter().enumerate().rev() {
        if limb != 0 {
            top_bit = Some(i * 64 + 63 - limb.leading_zeros() as usize);
            break;
        }
    }
    let Some(top_bit) = top_bit else {
        return Uint::ZERO;
    };

    let mod_bits = modulus
        .highest_bit()
        .expect("modulus checked nonzero by callers") as usize;

    // Remainder accumulator, built bit by bit from the most significant
    // bit downwards: r = r*2 + bit; if r >= m { r -= m }.
    let mut rem = Uint::<LIMBS>::ZERO;
    for i in (0..=top_bit).rev() {
        // rem <<= 1 (rem < m <= 2^BITS - 1; after shift it may reach 2m,
        // but because m's top bit is mod_bits, rem < m means rem's top bit
        // <= mod_bits, so the shift can only overflow if mod_bits is the
        // very top bit — handle with the carry from overflowing_shl).
        let (shifted, carry) = rem.overflowing_shl(1);
        rem = shifted;
        let bit = (value[i / 64] >> (i % 64)) & 1 == 1;
        if bit {
            rem.limbs[0] |= 1;
        }
        if carry || &rem >= modulus {
            rem = rem.wrapping_sub(modulus);
        }
        debug_assert!(&rem < modulus || mod_bits == 0);
    }
    rem
}

/// A group element held in Montgomery form (`a · R mod m` for the context
/// that produced it).
///
/// Elements are only meaningful relative to the [`MontgomeryCtx`] that
/// created them: all arithmetic goes through the context's methods
/// ([`MontgomeryCtx::mul`], [`MontgomeryCtx::pow`]), and
/// [`MontgomeryCtx::retrieve`] converts back to a plain integer. Keeping
/// long-lived values (a DH generator, advertised public keys) in this form
/// skips the to-Montgomery conversion on every exponentiation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MontyElem<const LIMBS: usize> {
    hat: Uint<LIMBS>,
}

impl<const LIMBS: usize> MontyElem<LIMBS> {
    /// The raw Montgomery-form representation (`a · R mod m`).
    pub const fn raw(&self) -> &Uint<LIMBS> {
        &self.hat
    }
}

/// Resident Montgomery multiplication engine for an odd modulus.
///
/// Implements the CIOS (coarsely integrated operand scanning) variant of
/// Montgomery reduction over stack arrays — no heap allocation anywhere on
/// the multiplication or exponentiation path — plus fixed-window (w = 4)
/// exponentiation over a 16-entry table of Montgomery-form base powers.
///
/// # Residency contract
///
/// Context construction is the expensive part: a Newton limb inversion
/// plus the `R² mod m` derivation (2·BITS modular doublings — 512
/// `mod_add`s at 4 limbs, 4096 at 32). Build the context **once per
/// modulus** and reuse it for every multiplication and exponentiation;
/// `fl-crypto`'s `DhGroupW` does exactly this, holding the context (and
/// the group generator in Montgomery form) for the lifetime of the group.
///
/// # Determinism contract
///
/// The fixed-window ladder consumes exponent windows MSB-first and is a
/// pure function of `(base, exp, modulus)`: its results are bit-identical
/// to the naive square-and-multiply oracle [`Uint::mod_pow_naive`] for
/// every input (pinned by property tests at 4 and 32 limbs). Windowing is
/// a speed choice, never a numerical one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MontgomeryCtx<const LIMBS: usize> {
    modulus: Uint<LIMBS>,
    /// `-modulus^{-1} mod 2^64`.
    n0_inv: u64,
    /// `R^2 mod modulus` where `R = 2^(64·LIMBS)`.
    r2: Uint<LIMBS>,
    /// `R mod modulus` — the multiplicative identity in Montgomery form.
    one: Uint<LIMBS>,
}

impl<const LIMBS: usize> MontgomeryCtx<LIMBS> {
    /// Builds a context. Returns `None` for even or zero moduli, for which
    /// Montgomery reduction is undefined.
    pub fn new(modulus: &Uint<LIMBS>) -> Option<Self> {
        if modulus.is_zero() || modulus.is_even() {
            return None;
        }
        // Newton iteration: x_{k+1} = x_k (2 - m0 x_k) doubles the number
        // of correct low bits each step; 6 steps cover 64 bits.
        let m0 = modulus.limbs[0];
        let mut inv = m0; // correct to 3 bits for odd m0
        for _ in 0..6 {
            inv = inv.wrapping_mul(2u64.wrapping_sub(m0.wrapping_mul(inv)));
        }
        debug_assert_eq!(m0.wrapping_mul(inv), 1);
        let n0_inv = inv.wrapping_neg();

        // R^2 mod m by doubling 1 exactly 2·BITS times.
        let one = Uint::<LIMBS>::ONE.reduce(modulus);
        let mut r2 = one;
        for _ in 0..(2 * Uint::<LIMBS>::BITS) {
            r2 = r2.mod_add(&r2, modulus);
        }
        let mut ctx = Self {
            modulus: *modulus,
            n0_inv,
            r2,
            one,
        };
        // 1 in Montgomery form: R mod m = montmul(1, R²).
        ctx.one = ctx.mont_mul(&Uint::ONE, &ctx.r2);
        Some(ctx)
    }

    /// The modulus this context reduces by.
    pub const fn modulus(&self) -> &Uint<LIMBS> {
        &self.modulus
    }

    /// Montgomery product: `a · b · R^{-1} mod m` (CIOS).
    ///
    /// Entirely on the stack: the `LIMBS + 2`-limb CIOS accumulator is a
    /// `[u64; LIMBS]` array plus two scalar carry limbs (the top limb
    /// `t[LIMBS]` and the one-bit overflow `t[LIMBS + 1]`).
    fn mont_mul(&self, a: &Uint<LIMBS>, b: &Uint<LIMBS>) -> Uint<LIMBS> {
        let m = &self.modulus.limbs;
        let mut t = [0u64; LIMBS];
        let mut t_hi = 0u64; // CIOS t[LIMBS]
        for i in 0..LIMBS {
            // t += a * b[i]
            let bi = b.limbs[i] as u128;
            let mut carry: u128 = 0;
            for j in 0..LIMBS {
                let sum = t[j] as u128 + a.limbs[j] as u128 * bi + carry;
                t[j] = sum as u64;
                carry = sum >> 64;
            }
            let sum = t_hi as u128 + carry;
            t_hi = sum as u64;
            // CIOS t[LIMBS + 1]: always 0 or 1, dead again by iteration end.
            let t_ex = (sum >> 64) as u64;

            // reduce: choose q so the low limb of t + q·m vanishes
            let q = t[0].wrapping_mul(self.n0_inv) as u128;
            let mut carry: u128 = (t[0] as u128 + q * m[0] as u128) >> 64;
            for j in 1..LIMBS {
                let sum = t[j] as u128 + q * m[j] as u128 + carry;
                t[j - 1] = sum as u64;
                carry = sum >> 64;
            }
            let sum = t_hi as u128 + carry;
            t[LIMBS - 1] = sum as u64;
            t_hi = t_ex.wrapping_add((sum >> 64) as u64);
        }
        let mut result = Uint { limbs: t };
        if t_hi != 0 || result >= self.modulus {
            result = result.wrapping_sub(&self.modulus);
        }
        result
    }

    /// Converts a plain integer into Montgomery form (reducing first if
    /// necessary).
    pub fn to_elem(&self, value: &Uint<LIMBS>) -> MontyElem<LIMBS> {
        let reduced = if value < &self.modulus {
            *value
        } else {
            value.reduce(&self.modulus)
        };
        MontyElem {
            hat: self.mont_mul(&reduced, &self.r2),
        }
    }

    /// Converts a Montgomery-form element back to a plain integer.
    pub fn retrieve(&self, elem: &MontyElem<LIMBS>) -> Uint<LIMBS> {
        self.mont_mul(&elem.hat, &Uint::ONE)
    }

    /// The multiplicative identity in Montgomery form.
    pub const fn one_elem(&self) -> MontyElem<LIMBS> {
        MontyElem { hat: self.one }
    }

    /// Montgomery-form product of two elements.
    pub fn mul(&self, a: &MontyElem<LIMBS>, b: &MontyElem<LIMBS>) -> MontyElem<LIMBS> {
        MontyElem {
            hat: self.mont_mul(&a.hat, &b.hat),
        }
    }

    /// Fixed-window (w = 4) exponentiation of a Montgomery-form base.
    ///
    /// Precomputes the 16 Montgomery-form powers `base^0 … base^15`, then
    /// consumes the exponent in 4-bit windows MSB-first: four squarings
    /// per window (skipped for the leading window, where the accumulator
    /// is still 1) and one table multiplication per nonzero window. The
    /// result is bit-identical to bit-at-a-time square-and-multiply.
    pub fn pow(&self, base: &MontyElem<LIMBS>, exp: &Uint<LIMBS>) -> MontyElem<LIMBS> {
        let Some(top) = exp.highest_bit() else {
            return self.one_elem(); // exp == 0
        };
        // table[k] = base^k in Montgomery form.
        let mut table = [self.one; 16];
        table[1] = base.hat;
        for k in 2..16 {
            table[k] = self.mont_mul(&table[k - 1], &base.hat);
        }
        let top_window = top / 4;
        let mut acc = self.one;
        for w in (0..=top_window).rev() {
            if w != top_window {
                for _ in 0..4 {
                    acc = self.mont_mul(&acc, &acc);
                }
            }
            let idx = exp.window4(w);
            if idx != 0 {
                acc = self.mont_mul(&acc, &table[idx]);
            }
        }
        MontyElem { hat: acc }
    }

    /// `base^exp mod modulus` over plain integers: convert in, fixed-window
    /// exponentiate, convert out.
    pub fn mod_pow(&self, base: &Uint<LIMBS>, exp: &Uint<LIMBS>) -> Uint<LIMBS> {
        let base_hat = self.to_elem(base);
        self.retrieve(&self.pow(&base_hat, exp))
    }
}

impl<const LIMBS: usize> PartialOrd for Uint<LIMBS> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<const LIMBS: usize> Ord for Uint<LIMBS> {
    fn cmp(&self, other: &Self) -> Ordering {
        for i in (0..LIMBS).rev() {
            match self.limbs[i].cmp(&other.limbs[i]) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }
}

impl<const LIMBS: usize> fmt::Debug for Uint<LIMBS> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Uint<{LIMBS}>(0x{})", self.to_hex())
    }
}

impl<const LIMBS: usize> fmt::Display for Uint<LIMBS> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{}", self.to_hex())
    }
}

impl<const LIMBS: usize> From<u64> for Uint<LIMBS> {
    fn from(v: u64) -> Self {
        Self::from_u64(v)
    }
}

/// Errors from parsing or constructing a [`Uint`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UintError {
    /// Input string had no digits.
    Empty,
    /// A character was not a hexadecimal digit.
    InvalidDigit(char),
    /// The value does not fit in the target width.
    Overflow,
}

impl fmt::Display for UintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UintError::Empty => write!(f, "empty integer literal"),
            UintError::InvalidDigit(c) => write!(f, "invalid hex digit {c:?}"),
            UintError::Overflow => write!(f, "value does not fit in target width"),
        }
    }
}

impl std::error::Error for UintError {}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn u256(v: u128) -> U256 {
        U256::from_u128(v)
    }

    #[test]
    fn zero_and_one_identities() {
        assert!(U256::ZERO.is_zero());
        assert!(!U256::ONE.is_zero());
        assert_eq!(U256::ZERO.wrapping_add(&U256::ONE), U256::ONE);
        assert_eq!(U256::ONE.wrapping_sub(&U256::ONE), U256::ZERO);
    }

    #[test]
    fn add_sub_carry_chain() {
        let max = U256::MAX;
        let (sum, carry) = max.overflowing_add(&U256::ONE);
        assert!(carry);
        assert!(sum.is_zero());
        let (diff, borrow) = U256::ZERO.overflowing_sub(&U256::ONE);
        assert!(borrow);
        assert_eq!(diff, U256::MAX);
    }

    #[test]
    fn mul_small_values() {
        let a = u256(0xdead_beef);
        let b = u256(0x1_0000_0001);
        let prod = a.checked_mul(&b).unwrap();
        assert_eq!(prod, u256(0xdead_beef * 0x1_0000_0001u128));
    }

    #[test]
    fn mul_overflow_detected() {
        assert!(U256::MAX.checked_mul(&u256(2)).is_none());
        assert_eq!(U256::MAX.checked_mul(&U256::ONE), Some(U256::MAX));
    }

    #[test]
    fn hex_round_trip() {
        let v = U256::from_hex("ffffffff00000000ffffffff00000000f").unwrap();
        assert_eq!(U256::from_hex(&v.to_hex()).unwrap(), v);
        assert_eq!(U256::from_hex("0").unwrap(), U256::ZERO);
        assert!(U256::from_hex("").is_err());
        assert!(U256::from_hex("xyz").is_err());
    }

    #[test]
    fn hex_overflow_rejected() {
        let too_long = "f".repeat(65);
        assert!(U256::from_hex(&too_long).is_err());
    }

    #[test]
    fn be_bytes_round_trip() {
        let v = u256(0x0123_4567_89ab_cdef_fedc_ba98_7654_3210);
        let bytes = v.to_be_bytes();
        assert_eq!(bytes.len(), 32);
        assert_eq!(U256::from_be_bytes(&bytes), v);
    }

    #[test]
    fn shifts() {
        let v = u256(1);
        let (shifted, ov) = v.overflowing_shl(255);
        assert!(!ov);
        assert_eq!(shifted.highest_bit(), Some(255));
        let (_, ov) = shifted.overflowing_shl(1);
        assert!(ov);
        assert_eq!(shifted.shr(255), U256::ONE);
        assert_eq!(v.shr(1), U256::ZERO);
    }

    #[test]
    fn reduce_matches_u128() {
        let a = u256(123_456_789_123_456_789);
        let m = u256(1_000_000_007);
        assert_eq!(
            a.reduce(&m),
            u256(123_456_789_123_456_789u128 % 1_000_000_007)
        );
    }

    #[test]
    fn mod_pow_small_prime() {
        // 3^100 mod 1000000007 = 226732710 (checked independently).
        let base = u256(3);
        let exp = u256(100);
        let m = u256(1_000_000_007);
        let expect = {
            let mut r: u128 = 1;
            for _ in 0..100 {
                r = r * 3 % 1_000_000_007;
            }
            u256(r)
        };
        assert_eq!(base.mod_pow(&exp, &m), expect);
    }

    #[test]
    fn mod_pow_edge_cases() {
        let m = u256(97);
        assert_eq!(u256(5).mod_pow(&U256::ZERO, &m), U256::ONE);
        assert_eq!(u256(5).mod_pow(&U256::ONE, &m), u256(5));
        assert_eq!(u256(5).mod_pow(&u256(10), &U256::ONE), U256::ZERO);
    }

    #[test]
    fn fermat_inverse() {
        let p = u256(1_000_000_007);
        let a = u256(123_456);
        let inv = a.mod_inv_prime(&p).unwrap();
        assert_eq!(a.mod_mul(&inv, &p), U256::ONE);
        assert!(U256::ZERO.mod_inv_prime(&p).is_none());
    }

    #[test]
    fn display_formats() {
        assert_eq!(u256(255).to_hex(), "ff");
        assert_eq!(format!("{}", u256(255)), "0xff");
        assert_eq!(U256::ZERO.to_hex(), "0");
    }

    #[test]
    fn ord_is_lexicographic_on_value() {
        assert!(u256(1) < u256(2));
        assert!(U256::MAX > u256(u128::MAX));
        assert_eq!(u256(7).cmp(&u256(7)), Ordering::Equal);
    }

    #[test]
    fn u2048_basic_modexp() {
        // Tiny sanity check in the wide type: 2^10 mod 1000 = 24.
        let base = U2048::from_u64(2);
        let exp = U2048::from_u64(10);
        let m = U2048::from_u64(1000);
        assert_eq!(base.mod_pow(&exp, &m), U2048::from_u64(24));
    }

    #[test]
    fn montgomery_rejects_even_modulus() {
        assert!(MontgomeryCtx::<4>::new(&u256(10)).is_none());
        assert!(MontgomeryCtx::<4>::new(&U256::ZERO).is_none());
        assert!(MontgomeryCtx::<4>::new(&u256(9)).is_some());
    }

    #[test]
    fn montgomery_matches_naive_modpow() {
        // Compare the CIOS path against square-and-multiply with binary
        // reduction across a spread of odd moduli.
        for (base, exp, m) in [
            (3u128, 1000u128, 1_000_000_007u128),
            (2, 5, 7),
            (123_456_789, 987_654_321, 0xffff_ffff_ffff_fff1),
            (5, 0, 97),
            (0, 5, 97),
        ] {
            let ctx = MontgomeryCtx::new(&u256(m)).unwrap();
            let fast = ctx.mod_pow(&u256(base), &u256(exp));
            let naive = u256(base).mod_pow_naive(&u256(exp), &u256(m));
            assert_eq!(fast, naive, "base={base} exp={exp} m={m}");
        }
    }

    #[test]
    fn montgomery_edge_cases_match_oracle() {
        let m = u256(1_000_000_007);
        let ctx = MontgomeryCtx::new(&m).unwrap();
        // exp == 0 => 1 for any base.
        assert_eq!(ctx.mod_pow(&u256(12345), &U256::ZERO,), U256::ONE);
        // base >= modulus reduces first.
        let big_base = U256::MAX;
        assert_eq!(
            ctx.mod_pow(&big_base, &u256(77)),
            big_base.mod_pow_naive(&u256(77), &m)
        );
        // modulus == 1: everything collapses to zero.
        let ctx1 = MontgomeryCtx::new(&U256::ONE).unwrap();
        assert_eq!(ctx1.mod_pow(&u256(5), &u256(10)), U256::ZERO);
        assert_eq!(u256(5).mod_pow_naive(&u256(10), &U256::ONE), U256::ZERO);
        // Maximum exponent: every window of the ladder is exercised.
        assert_eq!(
            ctx.mod_pow(&u256(3), &U256::MAX),
            u256(3).mod_pow_naive(&U256::MAX, &m)
        );
    }

    #[test]
    fn monty_elem_round_trip_and_mul() {
        let m = u256(1_000_000_007);
        let ctx = MontgomeryCtx::new(&m).unwrap();
        let a = u256(123_456_789);
        let b = u256(987_654_321);
        let (ea, eb) = (ctx.to_elem(&a), ctx.to_elem(&b));
        assert_eq!(ctx.retrieve(&ea), a);
        assert_eq!(ctx.retrieve(&ctx.mul(&ea, &eb)), a.mod_mul(&b, &m));
        assert_eq!(ctx.retrieve(&ctx.one_elem()), U256::ONE);
        // pow over a resident element equals the plain-integer entry point.
        assert_eq!(
            ctx.retrieve(&ctx.pow(&ea, &u256(1000))),
            ctx.mod_pow(&a, &u256(1000))
        );
    }

    #[test]
    fn wide_montgomery_matches_oracle() {
        // 32-limb spot check against the naive ladder: a dense odd
        // modulus built from repeating limbs.
        let mut m_limbs = [0u64; 32];
        for (i, l) in m_limbs.iter_mut().enumerate() {
            *l = 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(i as u64 + 1);
        }
        m_limbs[0] |= 1; // odd
        let m = U2048::from_limbs(m_limbs);
        let base = U2048::from_u64(0xdead_beef);
        let exp = U2048::from_u128(0x1234_5678_9abc_def0_1122_3344_5566_7788);
        let ctx = MontgomeryCtx::new(&m).unwrap();
        assert_eq!(ctx.mod_pow(&base, &exp), base.mod_pow_naive(&exp, &m));
    }

    proptest! {
        #[test]
        fn prop_montgomery_matches_naive(
            base in any::<u64>(), exp in 0u64..10_000, m in any::<u64>()
        ) {
            let m = (m | 1).max(3); // odd, >= 3
            let ctx = MontgomeryCtx::new(&u256(m as u128)).unwrap();
            let fast = ctx.mod_pow(&u256(base as u128), &u256(exp as u128));
            // u128 reference implementation
            let mut r: u128 = 1;
            let mut b = base as u128 % m as u128;
            let mut e = exp;
            while e > 0 {
                if e & 1 == 1 {
                    r = r * b % m as u128;
                }
                b = b * b % m as u128;
                e >>= 1;
            }
            prop_assert_eq!(fast, u256(r));
        }

        #[test]
        fn prop_window_modpow_matches_naive_oracle_4_limbs(
            base in proptest::collection::vec(any::<u64>(), 4),
            exp in proptest::collection::vec(any::<u64>(), 4),
            m in proptest::collection::vec(any::<u64>(), 4),
        ) {
            // Full-width random (base, exp, odd modulus) at 4 limbs: the
            // fixed-window Montgomery ladder must be bit-identical to the
            // naive square-and-multiply oracle.
            let mut m_limbs = [0u64; 4];
            m_limbs.copy_from_slice(&m);
            m_limbs[0] |= 1; // odd
            let m = U256::from_limbs(m_limbs);
            let mut b_limbs = [0u64; 4];
            b_limbs.copy_from_slice(&base);
            let base = U256::from_limbs(b_limbs);
            let mut e_limbs = [0u64; 4];
            e_limbs.copy_from_slice(&exp);
            let exp = U256::from_limbs(e_limbs);
            let ctx = MontgomeryCtx::new(&m).unwrap();
            prop_assert_eq!(ctx.mod_pow(&base, &exp), base.mod_pow_naive(&exp, &m));
        }

        #[test]
        fn prop_window_modpow_matches_naive_oracle_32_limbs(
            base in proptest::collection::vec(any::<u64>(), 32),
            m in proptest::collection::vec(any::<u64>(), 32),
            exp in any::<u64>(),
        ) {
            // 32-limb width with a short exponent (the naive oracle costs
            // one 2048-bit binary reduction per exponent bit, so the
            // property stays testable in debug builds).
            let mut m_limbs = [0u64; 32];
            m_limbs.copy_from_slice(&m);
            m_limbs[0] |= 1; // odd
            let m = U2048::from_limbs(m_limbs);
            let mut b_limbs = [0u64; 32];
            b_limbs.copy_from_slice(&base);
            let base = U2048::from_limbs(b_limbs);
            let exp = U2048::from_u64(exp);
            let ctx = MontgomeryCtx::new(&m).unwrap();
            prop_assert_eq!(ctx.mod_pow(&base, &exp), base.mod_pow_naive(&exp, &m));
        }

        #[test]
        fn prop_add_sub_round_trip(a in any::<u128>(), b in any::<u128>()) {
            let (ua, ub) = (u256(a), u256(b));
            let sum = ua.wrapping_add(&ub);
            prop_assert_eq!(sum.wrapping_sub(&ub), ua);
        }

        #[test]
        fn prop_mul_matches_u128(a in any::<u64>(), b in any::<u64>()) {
            let prod = u256(a as u128).checked_mul(&u256(b as u128)).unwrap();
            prop_assert_eq!(prod, u256(a as u128 * b as u128));
        }

        #[test]
        fn prop_reduce_matches_u128(a in any::<u128>(), m in 1u128..=u64::MAX as u128) {
            prop_assert_eq!(u256(a).reduce(&u256(m)), u256(a % m));
        }

        #[test]
        fn prop_mod_add_sub_inverse(
            a in any::<u64>(), b in any::<u64>(), m in 2u64..=u64::MAX
        ) {
            let m256 = u256(m as u128);
            let ua = u256(a as u128).reduce(&m256);
            let ub = u256(b as u128).reduce(&m256);
            let s = ua.mod_add(&ub, &m256);
            prop_assert_eq!(s.mod_sub(&ub, &m256), ua);
        }

        #[test]
        fn prop_mod_pow_mul_law(
            base in 1u64..1000, e1 in 0u64..50, e2 in 0u64..50
        ) {
            // base^(e1+e2) == base^e1 * base^e2 (mod p)
            let p = u256(1_000_000_007);
            let b = u256(base as u128);
            let lhs = b.mod_pow(&u256((e1 + e2) as u128), &p);
            let rhs = b
                .mod_pow(&u256(e1 as u128), &p)
                .mod_mul(&b.mod_pow(&u256(e2 as u128), &p), &p);
            prop_assert_eq!(lhs, rhs);
        }

        #[test]
        fn prop_shl_shr_round_trip(v in any::<u64>(), n in 0u32..190) {
            let val = u256(v as u128);
            let (shifted, ov) = val.overflowing_shl(n);
            prop_assert!(!ov);
            prop_assert_eq!(shifted.shr(n), val);
        }

        #[test]
        fn prop_be_bytes_round_trip(a in any::<u128>(), b in any::<u128>()) {
            let v = U256::from_u128(a).wrapping_add(
                &U256::from_u128(b).overflowing_shl(128).0,
            );
            prop_assert_eq!(U256::from_be_bytes(&v.to_be_bytes()), v);
        }
    }
}
