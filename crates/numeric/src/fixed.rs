//! Fixed-point encoding of model weights into the wrapping `u64` ring.
//!
//! Secure aggregation (paper Sect. IV-A1) cancels pairwise masks by *exact*
//! addition: user A adds `m_ab` and user B subtracts the same `m_ab`. With
//! IEEE floats this cancellation is approximate and, worse, the masks must
//! be enormous to hide the weights, which destroys float precision
//! entirely. The standard fix — used by every practical secure-aggregation
//! deployment — is to quantize weights into a finite ring and let the masks
//! be uniform ring elements.
//!
//! [`FixedCodec`] maps `f64` weights to `u64` ring elements as two's
//! complement fixed-point numbers with a configurable number of fractional
//! bits. All ring arithmetic is wrapping, so `encode(w) + mask - mask`
//! recovers `encode(w)` bit-for-bit regardless of the mask value.
//!
//! # Aggregation head-room
//!
//! Summing `n` encoded values only decodes correctly while the true sum of
//! the underlying reals stays inside the representable range
//! `±2^(63 - frac_bits)`. With the default 24 fractional bits that range is
//! ±2^39 ≈ ±5.5·10^11 — vastly more than any weight-vector sum in the
//! paper's experiments (9 owners, logistic-regression weights in ±10).

use std::fmt;

/// Default number of fractional bits: enough precision for gradient-scale
/// values (~6·10⁻⁸ resolution) with huge integer head-room.
pub const DEFAULT_FRAC_BITS: u32 = 24;

/// Encoder/decoder between `f64` values and the wrapping `u64` ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FixedCodec {
    frac_bits: u32,
}

impl Default for FixedCodec {
    fn default() -> Self {
        Self::new(DEFAULT_FRAC_BITS)
    }
}

impl FixedCodec {
    /// Creates a codec with `frac_bits` fractional bits.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= frac_bits <= 52` (beyond 52 the `f64` mantissa
    /// can no longer provide new fractional information).
    pub fn new(frac_bits: u32) -> Self {
        assert!(
            (1..=52).contains(&frac_bits),
            "frac_bits must be in 1..=52, got {frac_bits}"
        );
        Self { frac_bits }
    }

    /// Number of fractional bits.
    pub fn frac_bits(&self) -> u32 {
        self.frac_bits
    }

    /// Smallest representable positive step.
    pub fn resolution(&self) -> f64 {
        2f64.powi(-(self.frac_bits as i32))
    }

    /// Largest magnitude that encodes without saturating.
    pub fn max_magnitude(&self) -> f64 {
        2f64.powi(63 - self.frac_bits as i32)
    }

    /// Encodes a single value, saturating at the representable range.
    ///
    /// NaN encodes as zero (a NaN weight is a training bug, but the codec
    /// must stay total for the protocol to remain deterministic).
    pub fn encode(&self, v: f64) -> u64 {
        if v.is_nan() {
            return 0;
        }
        let scaled = v * (1u64 << self.frac_bits) as f64;
        let clamped = scaled.clamp(i64::MIN as f64, i64::MAX as f64);
        (clamped.round() as i64) as u64
    }

    /// Decodes a single ring element back to `f64`.
    pub fn decode(&self, r: u64) -> f64 {
        (r as i64) as f64 / (1u64 << self.frac_bits) as f64
    }

    /// Encodes a slice of weights.
    pub fn encode_vec(&self, vs: &[f64]) -> Vec<u64> {
        vs.iter().map(|&v| self.encode(v)).collect()
    }

    /// Decodes a slice of ring elements.
    pub fn decode_vec(&self, rs: &[u64]) -> Vec<f64> {
        rs.iter().map(|&r| self.decode(r)).collect()
    }

    /// Decodes the ring sum of `n` contributions as their *average*.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn decode_avg(&self, r: u64, n: usize) -> f64 {
        assert!(n > 0, "cannot average zero contributions");
        self.decode(r) / n as f64
    }

    /// Element-wise wrapping sum of ring vectors.
    ///
    /// # Panics
    ///
    /// Panics if vectors have mismatched lengths.
    pub fn ring_sum(vectors: &[Vec<u64>]) -> Vec<u64> {
        let Some(first) = vectors.first() else {
            return Vec::new();
        };
        let len = first.len();
        let mut acc = vec![0u64; len];
        for v in vectors {
            assert_eq!(v.len(), len, "ring vectors must share a length");
            for (a, &x) in acc.iter_mut().zip(v) {
                *a = a.wrapping_add(x);
            }
        }
        acc
    }

    /// Element-wise wrapping add in place.
    pub fn ring_add_assign(acc: &mut [u64], rhs: &[u64]) {
        assert_eq!(acc.len(), rhs.len(), "ring vectors must share a length");
        for (a, &x) in acc.iter_mut().zip(rhs) {
            *a = a.wrapping_add(x);
        }
    }

    /// Element-wise wrapping subtract in place.
    pub fn ring_sub_assign(acc: &mut [u64], rhs: &[u64]) {
        assert_eq!(acc.len(), rhs.len(), "ring vectors must share a length");
        for (a, &x) in acc.iter_mut().zip(rhs) {
            *a = a.wrapping_sub(x);
        }
    }
}

impl fmt::Display for FixedCodec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "FixedCodec(Q{}.{})", 64 - self.frac_bits, self.frac_bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn encode_decode_identity_on_grid() {
        let c = FixedCodec::default();
        for v in [-2.5, -1.0, 0.0, 0.5, 1.0, 3.25, 1000.0] {
            assert_eq!(c.decode(c.encode(v)), v, "grid value {v} must be exact");
        }
    }

    #[test]
    fn rounding_error_bounded_by_half_step() {
        let c = FixedCodec::default();
        let step = c.resolution();
        for v in [0.1, -0.7, 2.7181, -123.456] {
            let err = (c.decode(c.encode(v)) - v).abs();
            assert!(
                err <= step / 2.0 + f64::EPSILON,
                "err {err} > {}",
                step / 2.0
            );
        }
    }

    #[test]
    fn nan_encodes_to_zero() {
        let c = FixedCodec::default();
        assert_eq!(c.encode(f64::NAN), 0);
    }

    #[test]
    fn saturation_at_extremes() {
        let c = FixedCodec::new(24);
        let huge = 1e300;
        let enc = c.encode(huge);
        assert_eq!(enc as i64, i64::MAX);
        let enc_neg = c.encode(-huge);
        assert_eq!(enc_neg as i64, i64::MIN);
    }

    #[test]
    #[should_panic(expected = "frac_bits")]
    fn invalid_frac_bits_rejected() {
        let _ = FixedCodec::new(0);
    }

    #[test]
    fn mask_cancellation_is_exact() {
        let c = FixedCodec::default();
        let w = c.encode(0.12345);
        let mask = 0xdead_beef_cafe_babe_u64;
        let masked = w.wrapping_add(mask);
        assert_eq!(masked.wrapping_sub(mask), w);
    }

    #[test]
    fn ring_sum_of_three_masked_parties_cancels() {
        // Miniature of the paper's A/B/C example.
        let c = FixedCodec::default();
        let (wa, wb, wc) = (c.encode(1.5), c.encode(-0.25), c.encode(2.0));
        let (mab, mbc, mac) = (0x1111, 0x2222, 0x3333u64);
        let a = wa.wrapping_add(mab).wrapping_sub(mac);
        let b = wb.wrapping_add(mbc).wrapping_sub(mab);
        let cc = wc.wrapping_add(mac).wrapping_sub(mbc);
        let sum = a.wrapping_add(b).wrapping_add(cc);
        assert_eq!(c.decode(sum), 1.5 - 0.25 + 2.0);
    }

    #[test]
    fn ring_sum_empty_and_mismatched() {
        assert!(FixedCodec::ring_sum(&[]).is_empty());
        let ok = FixedCodec::ring_sum(&[vec![1, 2], vec![3, 4]]);
        assert_eq!(ok, vec![4, 6]);
    }

    #[test]
    #[should_panic(expected = "share a length")]
    fn ring_sum_length_mismatch_panics() {
        let _ = FixedCodec::ring_sum(&[vec![1], vec![1, 2]]);
    }

    #[test]
    fn decode_avg_divides() {
        let c = FixedCodec::default();
        let sum = c.encode(6.0);
        assert_eq!(c.decode_avg(sum, 3), 2.0);
    }

    #[test]
    #[should_panic(expected = "zero contributions")]
    fn decode_avg_zero_panics() {
        FixedCodec::default().decode_avg(0, 0);
    }

    #[test]
    fn display_shows_q_format() {
        assert_eq!(FixedCodec::new(24).to_string(), "FixedCodec(Q40.24)");
    }

    proptest! {
        #[test]
        fn prop_round_trip_error_bounded(v in -1e6f64..1e6) {
            let c = FixedCodec::default();
            let err = (c.decode(c.encode(v)) - v).abs();
            prop_assert!(err <= c.resolution() / 2.0 + 1e-12);
        }

        #[test]
        fn prop_masking_cancels_for_any_mask(
            v in -1e6f64..1e6, mask in any::<u64>()
        ) {
            let c = FixedCodec::default();
            let w = c.encode(v);
            prop_assert_eq!(w.wrapping_add(mask).wrapping_sub(mask), w);
        }

        #[test]
        fn prop_sum_then_decode_matches_decode_then_sum(
            vals in proptest::collection::vec(-1e3f64..1e3, 1..20)
        ) {
            let c = FixedCodec::default();
            let encoded: Vec<Vec<u64>> =
                vals.iter().map(|&v| vec![c.encode(v)]).collect();
            let ring = FixedCodec::ring_sum(&encoded)[0];
            let direct: f64 = vals.iter().map(|&v| c.decode(c.encode(v))).sum();
            prop_assert!((c.decode(ring) - direct).abs() < 1e-9);
        }

        #[test]
        fn prop_add_sub_assign_inverse(
            a in proptest::collection::vec(any::<u64>(), 1..16),
            b in proptest::collection::vec(any::<u64>(), 1..16),
        ) {
            let n = a.len().min(b.len());
            let (a, b) = (&a[..n], &b[..n]);
            let mut acc = a.to_vec();
            FixedCodec::ring_add_assign(&mut acc, b);
            FixedCodec::ring_sub_assign(&mut acc, b);
            prop_assert_eq!(acc.as_slice(), a);
        }
    }
}
