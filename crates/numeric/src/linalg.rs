//! Dense row-major linear algebra.
//!
//! The logistic-regression trainer in `fl-ml` needs a small set of matrix
//! kernels: matrix–matrix product, transpose-product, row-wise softmax
//! support, AXPY updates and flattening to/from the weight vectors that
//! travel through secure aggregation. There is no BLAS in the offline
//! dependency set, and the paper's workload (5620×64 inputs, 64×10 weight
//! matrices) is tiny, so a cache-friendly but straightforward
//! implementation is the right tool.

use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense, row-major `f64` matrix.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

/// A convenience alias: a vector is an owned `f64` buffer.
pub type Vector = Vec<f64>;

impl Matrix {
    /// Creates a `rows × cols` zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} does not match {rows}x{cols}",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Creates a matrix from nested rows.
    ///
    /// # Panics
    ///
    /// Panics if rows are ragged.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows: expected {c}, got {}", row.len());
            data.extend_from_slice(row);
        }
        Self {
            rows: r,
            cols: c,
            data,
        }
    }

    /// The identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Flat row-major view of the data.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable flat row-major view.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix, returning the flat buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Borrows row `r` as a slice.
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row {r} out of bounds ({} rows)", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrows row `r`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        assert!(r < self.rows, "row {r} out of bounds ({} rows)", self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols,
            rhs.rows,
            "matmul shape mismatch: {:?} x {:?}",
            self.shape(),
            rhs.shape()
        );
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        // i-k-j loop order keeps the inner loop streaming over contiguous
        // rows of `rhs` and `out`.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let rhs_row = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
                let out_row = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                for (o, &b) in out_row.iter_mut().zip(rhs_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Product of the transpose of `self` with `rhs`: `selfᵀ * rhs`.
    ///
    /// Used for the gradient `Xᵀ·(P − Y)` without materializing `Xᵀ`.
    pub fn t_matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.rows,
            rhs.rows,
            "t_matmul shape mismatch: {:?}ᵀ x {:?}",
            self.shape(),
            rhs.shape()
        );
        let mut out = Matrix::zeros(self.cols, rhs.cols);
        for r in 0..self.rows {
            let left = &self.data[r * self.cols..(r + 1) * self.cols];
            let right = &rhs.data[r * rhs.cols..(r + 1) * rhs.cols];
            for (i, &a) in left.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let out_row = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                for (o, &b) in out_row.iter_mut().zip(right) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.data[j * self.rows + i] = self.data[i * self.cols + j];
            }
        }
        out
    }

    /// `self += alpha * rhs` (element-wise AXPY).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn axpy(&mut self, alpha: f64, rhs: &Matrix) {
        assert_eq!(self.shape(), rhs.shape(), "axpy shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&rhs.data) {
            *a += alpha * b;
        }
    }

    /// Scales every element by `alpha`.
    pub fn scale(&mut self, alpha: f64) {
        for a in &mut self.data {
            *a *= alpha;
        }
    }

    /// Element-wise sum of the matrix.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Maps every element through `f`.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Appends a constant `1.0` column (bias feature).
    pub fn with_bias_column(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols + 1);
        for r in 0..self.rows {
            out.data[r * (self.cols + 1)..r * (self.cols + 1) + self.cols]
                .copy_from_slice(self.row(r));
            out.data[r * (self.cols + 1) + self.cols] = 1.0;
        }
        out
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let max_rows = 6;
        for r in 0..self.rows.min(max_rows) {
            write!(f, "  [")?;
            for c in 0..self.cols.min(8) {
                write!(f, "{:9.4}", self[(r, c)])?;
            }
            if self.cols > 8 {
                write!(f, " …")?;
            }
            writeln!(f, " ]")?;
        }
        if self.rows > max_rows {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics on length mismatch.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// `y += alpha * x` over slices.
pub fn axpy_slice(y: &mut [f64], alpha: f64, x: &[f64]) {
    assert_eq!(y.len(), x.len(), "axpy length mismatch");
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Euclidean norm of a slice.
pub fn norm2(v: &[f64]) -> f64 {
    v.iter().map(|x| x * x).sum::<f64>().sqrt()
}

/// Element-wise mean of several equal-length vectors.
///
/// # Panics
///
/// Panics if `vectors` is empty or lengths mismatch.
pub fn mean_vectors(vectors: &[Vec<f64>]) -> Vec<f64> {
    assert!(!vectors.is_empty(), "mean of zero vectors");
    let len = vectors[0].len();
    let mut acc = vec![0.0; len];
    for v in vectors {
        assert_eq!(v.len(), len, "mean_vectors length mismatch");
        axpy_slice(&mut acc, 1.0, v);
    }
    let inv = 1.0 / vectors.len() as f64;
    for a in &mut acc {
        *a *= inv;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn construction_and_shape() {
        let m = Matrix::zeros(2, 3);
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m.as_slice().len(), 6);
        let m2 = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m2[(1, 0)], 3.0);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn bad_buffer_length_panics() {
        let _ = Matrix::from_vec(2, 2, vec![1.0]);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_panic() {
        let _ = Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    fn identity_matmul_is_identity_map() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let i = Matrix::identity(2);
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    fn matmul_known_values() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn t_matmul_equals_explicit_transpose() {
        let a = Matrix::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![0.5, -1.0, 2.0, 0.0, 1.0, 3.0]);
        assert_eq!(a.t_matmul(&b), a.transpose().matmul(&b));
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn axpy_and_scale() {
        let mut a = Matrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        let b = Matrix::from_vec(1, 3, vec![1.0, 1.0, 1.0]);
        a.axpy(2.0, &b);
        assert_eq!(a.as_slice(), &[3.0, 4.0, 5.0]);
        a.scale(0.5);
        assert_eq!(a.as_slice(), &[1.5, 2.0, 2.5]);
    }

    #[test]
    fn bias_column_appended() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = a.with_bias_column();
        assert_eq!(b.shape(), (2, 3));
        assert_eq!(b.row(0), &[1.0, 2.0, 1.0]);
        assert_eq!(b.row(1), &[3.0, 4.0, 1.0]);
    }

    #[test]
    fn norms_and_sum() {
        let a = Matrix::from_vec(1, 2, vec![3.0, 4.0]);
        assert_eq!(a.frobenius_norm(), 5.0);
        assert_eq!(a.sum(), 7.0);
        assert_eq!(norm2(&[3.0, 4.0]), 5.0);
    }

    #[test]
    fn dot_and_axpy_slice() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        let mut y = vec![1.0, 1.0];
        axpy_slice(&mut y, 3.0, &[1.0, 2.0]);
        assert_eq!(y, vec![4.0, 7.0]);
    }

    #[test]
    fn mean_vectors_averages() {
        let m = mean_vectors(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m, vec![2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "zero vectors")]
    fn mean_of_nothing_panics() {
        let _ = mean_vectors(&[]);
    }

    #[test]
    fn map_applies_function() {
        let a = Matrix::from_vec(1, 3, vec![1.0, -2.0, 3.0]);
        let b = a.map(f64::abs);
        assert_eq!(b.as_slice(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn debug_render_is_bounded() {
        let a = Matrix::zeros(100, 100);
        let s = format!("{a:?}");
        assert!(s.len() < 2000, "debug output must stay bounded");
    }

    fn arb_matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
        proptest::collection::vec(-10.0f64..10.0, rows * cols)
            .prop_map(move |data| Matrix::from_vec(rows, cols, data))
    }

    proptest! {
        #[test]
        fn prop_matmul_associative(
            a in arb_matrix(3, 4), b in arb_matrix(4, 2), c in arb_matrix(2, 5)
        ) {
            let lhs = a.matmul(&b).matmul(&c);
            let rhs = a.matmul(&b.matmul(&c));
            for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
                prop_assert!((x - y).abs() < 1e-9);
            }
        }

        #[test]
        fn prop_transpose_matmul_law(
            a in arb_matrix(3, 4), b in arb_matrix(4, 2)
        ) {
            // (AB)ᵀ = BᵀAᵀ
            let lhs = a.matmul(&b).transpose();
            let rhs = b.transpose().matmul(&a.transpose());
            for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
                prop_assert!((x - y).abs() < 1e-9);
            }
        }

        #[test]
        fn prop_dot_symmetric(
            v in proptest::collection::vec(-10.0f64..10.0, 1..32)
        ) {
            let w: Vec<f64> = v.iter().rev().cloned().collect();
            prop_assert!((dot(&v, &w) - dot(&w, &v)).abs() < 1e-12);
        }
    }
}
