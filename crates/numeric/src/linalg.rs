//! Dense row-major linear algebra.
//!
//! The logistic-regression trainer in `fl-ml` needs a small set of matrix
//! kernels: matrix–matrix product, transpose-product, row-wise softmax
//! support, AXPY updates and flattening to/from the weight vectors that
//! travel through secure aggregation. There is no BLAS in the offline
//! dependency set, so the products are implemented here as cache-blocked
//! GEMM kernels driven by the deterministic fork-join layer in
//! [`crate::par`].
//!
//! # Determinism contract
//!
//! Every coalition retraining is re-executed by miners on arbitrary
//! hardware, so [`Matrix::matmul`] and [`Matrix::t_matmul`] must be
//! **bit-identical for any thread count** — and they additionally pin
//! themselves to the naive reference loop:
//!
//! * Output element `(i, j)` accumulates its products `a[i][k]·b[k][j]`
//!   **strictly in ascending `k` order**: k-tiles are visited in ascending
//!   order, the register accumulator of each micro-tile is seeded from the
//!   current output value and written back after the tile, and no kernel
//!   ever combines partial sums in a tree or uses fused multiply-add. For
//!   **finite** operands the result is therefore bit-identical to the
//!   textbook `for i { for k { for j { out[i][j] += a[i][k] * b[k][j] } } }`
//!   loop (kept verbatim as the oracle in this module's property tests) —
//!   including that loop's skip of exact-zero lhs entries, which for
//!   finite rhs values only ever adds `±0.0` terms that cannot change a
//!   running sum's bits. With `Inf`/`NaN` operands the skip is
//!   observable (`0.0 * Inf = NaN` is computed here, skipped there);
//!   nothing in this workspace feeds non-finite values into the kernels.
//! * Work fans out over contiguous *row panels* of the output via
//!   [`crate::par::par_fill_rows`]: each output row is a pure function of
//!   its global row index, so panel boundaries move with the thread count
//!   but row contents never do.
//! * [`Matrix::t_matmul`] never materializes the transpose: each reduction
//!   tile of the left operand is packed into a transposed panel and fed
//!   through the same micro-kernel, with the reduction index (the left
//!   operand's row index) still folded in ascending order.
//!
//! The property tests in `shapley/tests/par_determinism.rs` pin the
//! thread-count half of the contract; the proptests at the bottom of this
//! file pin the naive-reference half.

use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense, row-major `f64` matrix.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

/// A convenience alias: a vector is an owned `f64` buffer.
pub type Vector = Vec<f64>;

impl Matrix {
    /// Creates a `rows × cols` zero matrix.
    ///
    /// # Panics
    ///
    /// Panics if `rows * cols` overflows `usize` (in release builds the
    /// raw multiplication would wrap silently and leave the element count
    /// inconsistent with the shape).
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; checked_len(rows, cols)],
        }
    }

    /// Creates a matrix from a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols` or `rows * cols` overflows.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            checked_len(rows, cols),
            "buffer length {} does not match {rows}x{cols}",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Creates a matrix from nested rows.
    ///
    /// # Panics
    ///
    /// Panics if rows are ragged.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows: expected {c}, got {}", row.len());
            data.extend_from_slice(row);
        }
        Self {
            rows: r,
            cols: c,
            data,
        }
    }

    /// The identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Flat row-major view of the data.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable flat row-major view.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix, returning the flat buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Borrows row `r` as a slice.
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row {r} out of bounds ({} rows)", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrows row `r`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        assert!(r < self.rows, "row {r} out of bounds ({} rows)", self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix product `self * rhs` through the blocked GEMM kernel (see
    /// the module docs for the determinism contract).
    ///
    /// An empty inner dimension is well-defined: the result is the
    /// `rows × rhs.cols` zero matrix (a sum over zero terms).
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        self.matmul_into(rhs, &mut out);
        out
    }

    /// Like [`Matrix::matmul`], writing into a caller-owned output matrix
    /// (overwritten, not accumulated) — the trainer's per-epoch logits
    /// and gradient buffers are reused through this.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch or if `out` is not
    /// `self.rows × rhs.cols`.
    pub fn matmul_into(&self, rhs: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols,
            rhs.rows,
            "matmul shape mismatch: {:?} x {:?}",
            self.shape(),
            rhs.shape()
        );
        assert_eq!(
            out.shape(),
            (self.rows, rhs.cols),
            "matmul output shape mismatch: got {:?}, need {:?}",
            out.shape(),
            (self.rows, rhs.cols)
        );
        gemm::gemm_into(
            self.rows,
            self.cols,
            rhs.cols,
            &self.data,
            &rhs.data,
            &mut out.data,
        );
    }

    /// Product of the transpose of `self` with `rhs`: `selfᵀ * rhs`.
    ///
    /// Used for the gradient `Xᵀ·(P − Y)` without materializing `Xᵀ`:
    /// reduction tiles of `self` are packed into transposed panels and
    /// driven through the same blocked kernel as [`Matrix::matmul`],
    /// folding the reduction index in ascending order (module docs).
    ///
    /// # Panics
    ///
    /// Panics on row-count mismatch.
    pub fn t_matmul(&self, rhs: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.cols, rhs.cols);
        self.t_matmul_into(rhs, &mut out);
        out
    }

    /// Like [`Matrix::t_matmul`], writing into a caller-owned output
    /// matrix (overwritten, not accumulated).
    ///
    /// # Panics
    ///
    /// Panics on row-count mismatch or if `out` is not
    /// `self.cols × rhs.cols`.
    pub fn t_matmul_into(&self, rhs: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.rows,
            rhs.rows,
            "t_matmul shape mismatch: {:?}ᵀ x {:?}",
            self.shape(),
            rhs.shape()
        );
        assert_eq!(
            out.shape(),
            (self.cols, rhs.cols),
            "t_matmul output shape mismatch: got {:?}, need {:?}",
            out.shape(),
            (self.cols, rhs.cols)
        );
        gemm::t_gemm_into(
            self.rows,
            self.cols,
            rhs.cols,
            &self.data,
            &rhs.data,
            &mut out.data,
        );
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.data[j * self.rows + i] = self.data[i * self.cols + j];
            }
        }
        out
    }

    /// `self += alpha * rhs` (element-wise AXPY).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn axpy(&mut self, alpha: f64, rhs: &Matrix) {
        assert_eq!(self.shape(), rhs.shape(), "axpy shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&rhs.data) {
            *a += alpha * b;
        }
    }

    /// Scales every element by `alpha`.
    pub fn scale(&mut self, alpha: f64) {
        for a in &mut self.data {
            *a *= alpha;
        }
    }

    /// Element-wise sum of the matrix.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Maps every element through `f`.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Appends a constant `1.0` column (bias feature).
    pub fn with_bias_column(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols + 1);
        for r in 0..self.rows {
            out.data[r * (self.cols + 1)..r * (self.cols + 1) + self.cols]
                .copy_from_slice(self.row(r));
            out.data[r * (self.cols + 1) + self.cols] = 1.0;
        }
        out
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let max_rows = 6;
        for r in 0..self.rows.min(max_rows) {
            write!(f, "  [")?;
            for c in 0..self.cols.min(8) {
                write!(f, "{:9.4}", self[(r, c)])?;
            }
            if self.cols > 8 {
                write!(f, " …")?;
            }
            writeln!(f, " ]")?;
        }
        if self.rows > max_rows {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

/// `rows * cols` with an overflow check, so a shape can never disagree
/// with its element count (release-mode wrapping would otherwise produce
/// a tiny buffer that passes the length assert and mis-indexes later).
fn checked_len(rows: usize, cols: usize) -> usize {
    rows.checked_mul(cols)
        .unwrap_or_else(|| panic!("matrix shape {rows}x{cols} overflows usize"))
}

/// Cache-blocked GEMM kernels on [`crate::par`].
///
/// Layout of the computation (see the module docs for the determinism
/// contract these loops implement):
///
/// * the output fans out over contiguous **row panels**
///   ([`crate::par::par_fill_rows`]), one worker per panel;
/// * inside a panel, the reduction dimension is walked in **k-tiles** of
///   [`KC`] in ascending order; every micro-tile seeds its register
///   accumulators from the current output values and writes them back
///   after the tile, so each output element folds its products strictly
///   in ascending reduction order;
/// * micro-tiles cover 2 output rows × [`NR`] columns: the rhs row
///   segment is loaded once and reused for both rows, and the
///   accumulators live in registers across the whole k-tile.
mod gemm {
    use crate::par;

    /// Reduction-tile length: a `KC × NR` rhs slab (16 KiB) stays
    /// L1-resident across a whole row panel.
    const KC: usize = 256;
    /// Micro-kernel width (output columns per register tile).
    const NR: usize = 8;
    /// Reduction tile for the transposed product — sized so the packed
    /// panel of a 64-ish-column operand (`cols × KT × 8` bytes ≈ 25 KiB)
    /// stays L1-resident while the kernel sweeps it once per rhs column
    /// tile.
    const KT: usize = 48;
    /// Minimum flops worth shipping to another thread: below this a
    /// panel stays on the calling thread (scoped-thread spawn costs tens
    /// of microseconds; determinism does not depend on the threshold).
    const PAR_MIN_FLOPS: usize = 1 << 18;

    /// Rows per thread for an output of `rows` rows costing
    /// `flops_per_row` each.
    fn min_rows_per_thread(flops_per_row: usize) -> usize {
        (PAR_MIN_FLOPS / flops_per_row.max(1)).max(1)
    }

    /// `out = a(m×k) · b(k×n)`; every output element is fully written
    /// (the first k-tile seeds the accumulators with zero), so stale
    /// buffer contents never leak through.
    pub(super) fn gemm_into(m: usize, k: usize, n: usize, a: &[f64], b: &[f64], out: &mut [f64]) {
        if m == 0 || k == 0 || n == 0 {
            // An empty reduction is a sum over zero terms.
            out.fill(0.0);
            return;
        }
        let min_rows = min_rows_per_thread(2 * k * n);
        par::par_fill_rows(out, n, min_rows, |row0, panel| {
            let rows = panel.len() / n;
            let a_panel = &a[row0 * k..(row0 + rows) * k];
            for kt in (0..k).step_by(KC) {
                let kc = KC.min(k - kt);
                block_kernel(a_panel, k, kt, rows, kc, b, n, kt, kt == 0, panel);
            }
        });
    }

    /// `out = aᵀ · b` where `a` is `m×ac` and `b` is `m×n`; `out` is
    /// `ac×n` and fully written (first reduction tile seeds zero).
    /// Reduction runs over the `m` rows in ascending order via packed
    /// transposed panels.
    pub(super) fn t_gemm_into(
        m: usize,
        ac: usize,
        n: usize,
        a: &[f64],
        b: &[f64],
        out: &mut [f64],
    ) {
        if m == 0 || ac == 0 || n == 0 {
            // An empty reduction is a sum over zero terms.
            out.fill(0.0);
            return;
        }
        let min_rows = min_rows_per_thread(2 * m * n);
        par::par_fill_rows(out, n, min_rows, |c0, panel| {
            let cs = panel.len() / n;
            // Packed transposed panel: row `c` holds a[rt..rt+rc][c0+c].
            let mut packed = vec![0.0f64; cs * KT.min(m)];
            for rt in (0..m).step_by(KT) {
                let rc = KT.min(m - rt);
                for rr in 0..rc {
                    let a_row = &a[(rt + rr) * ac + c0..(rt + rr) * ac + c0 + cs];
                    for (c, &v) in a_row.iter().enumerate() {
                        packed[c * rc + rr] = v;
                    }
                }
                block_kernel(&packed, rc, 0, cs, rc, b, n, rt, rt == 0, panel);
            }
        });
    }

    /// One k-tile over a whole row panel:
    /// `out[i][j] += Σ_{kk<kc} a[i*lda + a_col0 + kk] · b[(bk0+kk)*n + j]`
    /// for `i < mi`, accumulated per element in ascending `kk` on top of
    /// the current output value. On the `first` tile the accumulators
    /// are seeded with `0.0` instead of loading the output, which lets
    /// callers skip a zero-fill pass — bit-identical, since the seed
    /// value is exactly what the fill would have stored.
    #[allow(clippy::too_many_arguments)]
    fn block_kernel(
        a: &[f64],
        lda: usize,
        a_col0: usize,
        mi: usize,
        kc: usize,
        b: &[f64],
        n: usize,
        bk0: usize,
        first: bool,
        out: &mut [f64],
    ) {
        let b_tile = &b[bk0 * n..(bk0 + kc) * n];
        let mut i = 0;
        while i + 1 < mi {
            let a0 = &a[i * lda + a_col0..i * lda + a_col0 + kc];
            let a1 = &a[(i + 1) * lda + a_col0..(i + 1) * lda + a_col0 + kc];
            let (row0, rest) = out[i * n..].split_at_mut(n);
            let row1 = &mut rest[..n];
            let mut j = 0;
            while n - j >= NR {
                pair_tile::<NR>(a0, a1, b_tile, n, j, first, row0, row1);
                j += NR;
            }
            dispatch_pair_tail(n - j, a0, a1, b_tile, n, j, first, row0, row1);
            i += 2;
        }
        if i < mi {
            let a0 = &a[i * lda + a_col0..i * lda + a_col0 + kc];
            let row0 = &mut out[i * n..(i + 1) * n];
            let mut j = 0;
            while n - j >= NR {
                single_tile::<NR>(a0, b_tile, n, j, first, row0);
                j += NR;
            }
            dispatch_single_tail(n - j, a0, b_tile, n, j, first, row0);
        }
    }

    /// Two output rows × `W` columns: rhs segments are loaded once per
    /// reduction step and reused for both rows; accumulators are seeded
    /// from the output (or `0.0` on the first tile) and written back, so
    /// the per-element fold stays in ascending reduction order.
    #[allow(clippy::too_many_arguments)]
    #[inline(always)]
    fn pair_tile<const W: usize>(
        a0: &[f64],
        a1: &[f64],
        b_tile: &[f64],
        n: usize,
        j: usize,
        first: bool,
        row0: &mut [f64],
        row1: &mut [f64],
    ) {
        let mut acc0 = [0.0f64; W];
        let mut acc1 = [0.0f64; W];
        if !first {
            acc0.copy_from_slice(&row0[j..j + W]);
            acc1.copy_from_slice(&row1[j..j + W]);
        }
        for (seg_row, (&x0, &x1)) in b_tile.chunks_exact(n).zip(a0.iter().zip(a1)) {
            let seg = &seg_row[j..j + W];
            for t in 0..W {
                acc0[t] += x0 * seg[t];
                acc1[t] += x1 * seg[t];
            }
        }
        row0[j..j + W].copy_from_slice(&acc0);
        row1[j..j + W].copy_from_slice(&acc1);
    }

    /// One output row × `W` columns (row-count tail).
    #[inline(always)]
    fn single_tile<const W: usize>(
        a0: &[f64],
        b_tile: &[f64],
        n: usize,
        j: usize,
        first: bool,
        row0: &mut [f64],
    ) {
        let mut acc = [0.0f64; W];
        if !first {
            acc.copy_from_slice(&row0[j..j + W]);
        }
        for (seg_row, &x0) in b_tile.chunks_exact(n).zip(a0) {
            let seg = &seg_row[j..j + W];
            for t in 0..W {
                acc[t] += x0 * seg[t];
            }
        }
        row0[j..j + W].copy_from_slice(&acc);
    }

    /// Column-tail dispatch (`rem < NR`) to monomorphized tile widths.
    #[allow(clippy::too_many_arguments)]
    fn dispatch_pair_tail(
        rem: usize,
        a0: &[f64],
        a1: &[f64],
        b_tile: &[f64],
        n: usize,
        j: usize,
        first: bool,
        row0: &mut [f64],
        row1: &mut [f64],
    ) {
        match rem {
            0 => {}
            1 => pair_tile::<1>(a0, a1, b_tile, n, j, first, row0, row1),
            2 => pair_tile::<2>(a0, a1, b_tile, n, j, first, row0, row1),
            3 => pair_tile::<3>(a0, a1, b_tile, n, j, first, row0, row1),
            4 => pair_tile::<4>(a0, a1, b_tile, n, j, first, row0, row1),
            5 => pair_tile::<5>(a0, a1, b_tile, n, j, first, row0, row1),
            6 => pair_tile::<6>(a0, a1, b_tile, n, j, first, row0, row1),
            7 => pair_tile::<7>(a0, a1, b_tile, n, j, first, row0, row1),
            _ => unreachable!("tail width {rem} >= NR"),
        }
    }

    /// Column-tail dispatch for the single-row kernel.
    fn dispatch_single_tail(
        rem: usize,
        a0: &[f64],
        b_tile: &[f64],
        n: usize,
        j: usize,
        first: bool,
        row0: &mut [f64],
    ) {
        match rem {
            0 => {}
            1 => single_tile::<1>(a0, b_tile, n, j, first, row0),
            2 => single_tile::<2>(a0, b_tile, n, j, first, row0),
            3 => single_tile::<3>(a0, b_tile, n, j, first, row0),
            4 => single_tile::<4>(a0, b_tile, n, j, first, row0),
            5 => single_tile::<5>(a0, b_tile, n, j, first, row0),
            6 => single_tile::<6>(a0, b_tile, n, j, first, row0),
            7 => single_tile::<7>(a0, b_tile, n, j, first, row0),
            _ => unreachable!("tail width {rem} >= NR"),
        }
    }
}

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics on length mismatch.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// `y += alpha * x` over slices.
pub fn axpy_slice(y: &mut [f64], alpha: f64, x: &[f64]) {
    assert_eq!(y.len(), x.len(), "axpy length mismatch");
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Euclidean norm of a slice.
pub fn norm2(v: &[f64]) -> f64 {
    v.iter().map(|x| x * x).sum::<f64>().sqrt()
}

/// Element-wise mean of several equal-length vectors.
///
/// # Panics
///
/// Panics if `vectors` is empty or lengths mismatch.
pub fn mean_vectors(vectors: &[Vec<f64>]) -> Vec<f64> {
    assert!(!vectors.is_empty(), "mean of zero vectors");
    let len = vectors[0].len();
    let mut acc = vec![0.0; len];
    for v in vectors {
        assert_eq!(v.len(), len, "mean_vectors length mismatch");
        axpy_slice(&mut acc, 1.0, v);
    }
    let inv = 1.0 / vectors.len() as f64;
    for a in &mut acc {
        *a *= inv;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn construction_and_shape() {
        let m = Matrix::zeros(2, 3);
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m.as_slice().len(), 6);
        let m2 = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m2[(1, 0)], 3.0);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn bad_buffer_length_panics() {
        let _ = Matrix::from_vec(2, 2, vec![1.0]);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_panic() {
        let _ = Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    fn identity_matmul_is_identity_map() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let i = Matrix::identity(2);
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    fn matmul_known_values() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn t_matmul_equals_explicit_transpose() {
        let a = Matrix::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![0.5, -1.0, 2.0, 0.0, 1.0, 3.0]);
        assert_eq!(a.t_matmul(&b), a.transpose().matmul(&b));
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn axpy_and_scale() {
        let mut a = Matrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        let b = Matrix::from_vec(1, 3, vec![1.0, 1.0, 1.0]);
        a.axpy(2.0, &b);
        assert_eq!(a.as_slice(), &[3.0, 4.0, 5.0]);
        a.scale(0.5);
        assert_eq!(a.as_slice(), &[1.5, 2.0, 2.5]);
    }

    #[test]
    fn bias_column_appended() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = a.with_bias_column();
        assert_eq!(b.shape(), (2, 3));
        assert_eq!(b.row(0), &[1.0, 2.0, 1.0]);
        assert_eq!(b.row(1), &[3.0, 4.0, 1.0]);
    }

    #[test]
    fn norms_and_sum() {
        let a = Matrix::from_vec(1, 2, vec![3.0, 4.0]);
        assert_eq!(a.frobenius_norm(), 5.0);
        assert_eq!(a.sum(), 7.0);
        assert_eq!(norm2(&[3.0, 4.0]), 5.0);
    }

    #[test]
    fn dot_and_axpy_slice() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        let mut y = vec![1.0, 1.0];
        axpy_slice(&mut y, 3.0, &[1.0, 2.0]);
        assert_eq!(y, vec![4.0, 7.0]);
    }

    #[test]
    fn mean_vectors_averages() {
        let m = mean_vectors(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m, vec![2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "zero vectors")]
    fn mean_of_nothing_panics() {
        let _ = mean_vectors(&[]);
    }

    #[test]
    fn map_applies_function() {
        let a = Matrix::from_vec(1, 3, vec![1.0, -2.0, 3.0]);
        let b = a.map(f64::abs);
        assert_eq!(b.as_slice(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn debug_render_is_bounded() {
        let a = Matrix::zeros(100, 100);
        let s = format!("{a:?}");
        assert!(s.len() < 2000, "debug output must stay bounded");
    }

    // ------------------------------------------------------------------
    // Blocked-GEMM oracle: the naive i-k-j loops the seed implementation
    // used, kept verbatim as the reference the blocked kernels must match
    // bit-for-bit (module docs, "Determinism contract").

    fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
        assert_eq!(a.cols, b.rows, "oracle shape mismatch");
        let mut out = Matrix::zeros(a.rows, b.cols);
        for i in 0..a.rows {
            for k in 0..a.cols {
                let v = a.data[i * a.cols + k];
                if v == 0.0 {
                    continue;
                }
                let rhs_row = &b.data[k * b.cols..(k + 1) * b.cols];
                let out_row = &mut out.data[i * b.cols..(i + 1) * b.cols];
                for (o, &w) in out_row.iter_mut().zip(rhs_row) {
                    *o += v * w;
                }
            }
        }
        out
    }

    fn naive_t_matmul(a: &Matrix, b: &Matrix) -> Matrix {
        assert_eq!(a.rows, b.rows, "oracle shape mismatch");
        let mut out = Matrix::zeros(a.cols, b.cols);
        for r in 0..a.rows {
            let left = &a.data[r * a.cols..(r + 1) * a.cols];
            let right = &b.data[r * b.cols..(r + 1) * b.cols];
            for (i, &v) in left.iter().enumerate() {
                if v == 0.0 {
                    continue;
                }
                let out_row = &mut out.data[i * b.cols..(i + 1) * b.cols];
                for (o, &w) in out_row.iter_mut().zip(right) {
                    *o += v * w;
                }
            }
        }
        out
    }

    fn dense_matrix(rows: usize, cols: usize, salt: u64) -> Matrix {
        let data: Vec<f64> = (0..rows * cols)
            .map(|i| ((i as u64).wrapping_mul(0x9e37_79b9).wrapping_add(salt) as f64 * 1e-9).sin())
            .collect();
        Matrix::from_vec(rows, cols, data)
    }

    #[test]
    fn blocked_matmul_bit_identical_at_tile_boundaries() {
        // Shapes straddling the k-tile (KC = 256), the 2-row micro-tile
        // and the NR = 8 column tile, including every tail width.
        for (m, k, n) in [
            (1, 1, 1),
            (2, 255, 8),
            (3, 256, 9),
            (5, 257, 10),
            (4, 300, 7),
            (2, 513, 16),
            (7, 64, 13),
        ] {
            let a = dense_matrix(m, k, 11);
            let b = dense_matrix(k, n, 23);
            assert_eq!(
                a.matmul(&b),
                naive_matmul(&a, &b),
                "matmul {m}x{k}x{n} must be bit-identical to the naive loop"
            );
            let at = dense_matrix(k, m, 31);
            assert_eq!(
                at.t_matmul(&b),
                naive_t_matmul(&at, &b),
                "t_matmul {k}x{m}ᵀx{n} must be bit-identical to the naive loop"
            );
        }
    }

    #[test]
    fn empty_dimension_products_are_well_defined() {
        // A zero inner dimension is a sum over zero terms: zeros of the
        // outer shape, not a panic or a garbage read.
        let a = Matrix::zeros(3, 0);
        let b = Matrix::zeros(0, 4);
        assert_eq!(a.matmul(&b), Matrix::zeros(3, 4));
        assert_eq!(a.t_matmul(&Matrix::zeros(3, 2)), Matrix::zeros(0, 2));
        // Zero outer dimensions give empty results of the right shape.
        let e = Matrix::zeros(0, 5);
        assert_eq!(e.matmul(&Matrix::zeros(5, 2)).shape(), (0, 2));
        assert_eq!(e.t_matmul(&Matrix::zeros(0, 3)).shape(), (5, 3));
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_inner_dim_mismatch_panics() {
        let _ = Matrix::zeros(2, 3).matmul(&Matrix::zeros(4, 2));
    }

    #[test]
    #[should_panic(expected = "t_matmul shape mismatch")]
    fn t_matmul_row_mismatch_panics() {
        let _ = Matrix::zeros(2, 3).t_matmul(&Matrix::zeros(3, 3));
    }

    #[test]
    #[should_panic(expected = "matmul output shape mismatch")]
    fn matmul_into_wrong_output_shape_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(3, 4);
        let mut out = Matrix::zeros(2, 3);
        a.matmul_into(&b, &mut out);
    }

    #[test]
    #[should_panic(expected = "t_matmul output shape mismatch")]
    fn t_matmul_into_wrong_output_shape_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 4);
        let mut out = Matrix::zeros(4, 3);
        a.t_matmul_into(&b, &mut out);
    }

    #[test]
    fn matmul_into_overwrites_stale_contents() {
        let a = Matrix::from_vec(1, 2, vec![1.0, 2.0]);
        let b = Matrix::from_vec(2, 1, vec![3.0, 4.0]);
        let mut out = Matrix::from_vec(1, 1, vec![999.0]);
        a.matmul_into(&b, &mut out);
        assert_eq!(out.as_slice(), &[11.0]);
        let mut tout = Matrix::from_vec(2, 1, vec![7.0, 7.0]);
        a.t_matmul_into(&Matrix::from_vec(1, 1, vec![2.0]), &mut tout);
        assert_eq!(tout.as_slice(), &[2.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "overflows usize")]
    fn shape_overflow_is_an_explicit_panic() {
        // Release-mode wrapping would otherwise size the buffer at
        // `usize::MAX * 2 mod 2^64` — a tiny allocation whose shape lies.
        let _ = Matrix::zeros(usize::MAX, 2);
    }

    #[test]
    #[should_panic(expected = "overflows usize")]
    fn from_vec_shape_overflow_panics() {
        let _ = Matrix::from_vec(usize::MAX, 2, vec![0.0; 2]);
    }

    fn arb_matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
        proptest::collection::vec(-10.0f64..10.0, rows * cols)
            .prop_map(move |data| Matrix::from_vec(rows, cols, data))
    }

    proptest! {
        #[test]
        fn prop_matmul_associative(
            a in arb_matrix(3, 4), b in arb_matrix(4, 2), c in arb_matrix(2, 5)
        ) {
            let lhs = a.matmul(&b).matmul(&c);
            let rhs = a.matmul(&b.matmul(&c));
            for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
                prop_assert!((x - y).abs() < 1e-9);
            }
        }

        #[test]
        fn prop_transpose_matmul_law(
            a in arb_matrix(3, 4), b in arb_matrix(4, 2)
        ) {
            // (AB)ᵀ = BᵀAᵀ
            let lhs = a.matmul(&b).transpose();
            let rhs = b.transpose().matmul(&a.transpose());
            for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
                prop_assert!((x - y).abs() < 1e-9);
            }
        }

        #[test]
        fn prop_blocked_matmul_equals_naive_reference(
            m in 1usize..=9,
            k in 1usize..=300,
            n in 1usize..=17,
            seed in any::<u64>(),
        ) {
            // The oracle is the seed's naive loop kept verbatim above;
            // equality is exact (bit-identical), not approximate. `k`
            // ranges past KC = 256 so the tile fold is exercised.
            let a = dense_matrix(m, k, seed);
            let b = dense_matrix(k, n, seed ^ 0xabcd);
            prop_assert_eq!(a.matmul(&b), naive_matmul(&a, &b));
        }

        #[test]
        fn prop_blocked_t_matmul_equals_naive_reference(
            rows in 1usize..=300,
            ac in 1usize..=9,
            n in 1usize..=17,
            seed in any::<u64>(),
        ) {
            // `rows` (the reduction dimension) ranges past KT = 48 so
            // the packed-panel fold is exercised across several tiles.
            let a = dense_matrix(rows, ac, seed);
            let b = dense_matrix(rows, n, seed ^ 0x1234);
            prop_assert_eq!(a.t_matmul(&b), naive_t_matmul(&a, &b));
        }

        #[test]
        fn prop_dot_symmetric(
            v in proptest::collection::vec(-10.0f64..10.0, 1..32)
        ) {
            let w: Vec<f64> = v.iter().rev().cloned().collect();
            prop_assert!((dot(&v, &w) - dot(&w, &v)).abs() < 1e-12);
        }
    }
}
