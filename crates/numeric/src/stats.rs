//! Statistical helpers for the evaluation pipeline.
//!
//! The paper's Fig. 2 compares GroupSV against ground-truth Shapley values
//! with *cosine similarity*; the experiment reports additionally need basic
//! summaries (mean, standard deviation, min/max) and rank correlation to
//! judge whether the contribution ordering is preserved.

/// Cosine similarity between two equal-length vectors:
/// `cos θ = (u·v) / (|u||v|)`.
///
/// Returns `None` when either vector has zero norm (the angle is
/// undefined); callers decide how to report that case. The paper's σ=0
/// setting produces near-zero SV vectors, so this edge matters in
/// practice.
///
/// # Panics
///
/// Panics on length mismatch.
pub fn cosine_similarity(u: &[f64], v: &[f64]) -> Option<f64> {
    assert_eq!(u.len(), v.len(), "cosine_similarity length mismatch");
    let dot: f64 = u.iter().zip(v).map(|(a, b)| a * b).sum();
    let nu: f64 = u.iter().map(|a| a * a).sum::<f64>().sqrt();
    let nv: f64 = v.iter().map(|a| a * a).sum::<f64>().sqrt();
    if nu == 0.0 || nv == 0.0 {
        return None;
    }
    Some((dot / (nu * nv)).clamp(-1.0, 1.0))
}

/// Arithmetic mean. Returns 0.0 for an empty slice.
pub fn mean(v: &[f64]) -> f64 {
    if v.is_empty() {
        return 0.0;
    }
    v.iter().sum::<f64>() / v.len() as f64
}

/// Population standard deviation. Returns 0.0 for fewer than two samples.
pub fn std_dev(v: &[f64]) -> f64 {
    if v.len() < 2 {
        return 0.0;
    }
    let m = mean(v);
    (v.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / v.len() as f64).sqrt()
}

/// Index of the maximum element (first on ties). `None` when empty or all
/// elements are NaN.
pub fn argmax(v: &[f64]) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (i, &x) in v.iter().enumerate() {
        if x.is_nan() {
            continue;
        }
        match best {
            Some((_, b)) if x <= b => {}
            _ => best = Some((i, x)),
        }
    }
    best.map(|(i, _)| i)
}

/// Ranks of the elements in descending order: `ranks[i]` is the rank
/// (0 = largest) of element `i`. Ties broken by index for determinism.
pub fn descending_ranks(v: &[f64]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..v.len()).collect();
    idx.sort_by(|&a, &b| {
        v[b].partial_cmp(&v[a])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    let mut ranks = vec![0usize; v.len()];
    for (rank, &i) in idx.iter().enumerate() {
        ranks[i] = rank;
    }
    ranks
}

/// Spearman rank correlation between two equal-length vectors.
///
/// Returns `None` for fewer than two elements. Used by the adversary
/// extension experiment to check that GroupSV preserves the *ordering* of
/// contributions even when magnitudes shift.
///
/// # Panics
///
/// Panics on length mismatch.
pub fn spearman_rank_correlation(u: &[f64], v: &[f64]) -> Option<f64> {
    assert_eq!(u.len(), v.len(), "spearman length mismatch");
    let n = u.len();
    if n < 2 {
        return None;
    }
    let ru = descending_ranks(u);
    let rv = descending_ranks(v);
    let d2: f64 = ru
        .iter()
        .zip(&rv)
        .map(|(&a, &b)| {
            let d = a as f64 - b as f64;
            d * d
        })
        .sum();
    let n = n as f64;
    Some(1.0 - 6.0 * d2 / (n * (n * n - 1.0)))
}

/// Summary statistics of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Sample size.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Minimum value.
    pub min: f64,
    /// Maximum value.
    pub max: f64,
}

impl Summary {
    /// Computes summary statistics. Returns `None` for an empty slice.
    pub fn of(v: &[f64]) -> Option<Self> {
        if v.is_empty() {
            return None;
        }
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for &x in v {
            min = min.min(x);
            max = max.max(x);
        }
        Some(Self {
            count: v.len(),
            mean: mean(v),
            std_dev: std_dev(v),
            min,
            max,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn cosine_identical_vectors_is_one() {
        let v = [1.0, 2.0, 3.0];
        assert!((cosine_similarity(&v, &v).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cosine_opposite_vectors_is_minus_one() {
        let u = [1.0, -2.0];
        let v = [-1.0, 2.0];
        assert!((cosine_similarity(&u, &v).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn cosine_orthogonal_is_zero() {
        let u = [1.0, 0.0];
        let v = [0.0, 5.0];
        assert_eq!(cosine_similarity(&u, &v), Some(0.0));
    }

    #[test]
    fn cosine_zero_vector_is_none() {
        assert_eq!(cosine_similarity(&[0.0, 0.0], &[1.0, 2.0]), None);
        assert_eq!(cosine_similarity(&[1.0, 2.0], &[0.0, 0.0]), None);
    }

    #[test]
    fn mean_and_std() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(std_dev(&[5.0]), 0.0);
        assert!((std_dev(&[2.0, 4.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn argmax_handles_edge_cases() {
        assert_eq!(argmax(&[]), None);
        assert_eq!(argmax(&[f64::NAN]), None);
        assert_eq!(argmax(&[1.0, 3.0, 2.0]), Some(1));
        assert_eq!(argmax(&[3.0, 3.0]), Some(0), "ties resolve to first");
        assert_eq!(argmax(&[f64::NAN, 1.0]), Some(1));
    }

    #[test]
    fn ranks_descending() {
        assert_eq!(descending_ranks(&[0.1, 0.9, 0.5]), vec![2, 0, 1]);
        assert_eq!(descending_ranks(&[]), Vec::<usize>::new());
    }

    #[test]
    fn spearman_perfect_and_inverted() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [10.0, 20.0, 30.0, 40.0];
        assert!((spearman_rank_correlation(&a, &b).unwrap() - 1.0).abs() < 1e-12);
        let c = [40.0, 30.0, 20.0, 10.0];
        assert!((spearman_rank_correlation(&a, &c).unwrap() + 1.0).abs() < 1e-12);
        assert_eq!(spearman_rank_correlation(&[1.0], &[1.0]), None);
    }

    #[test]
    fn summary_basic() {
        let s = Summary::of(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(s.count, 3);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert!(Summary::of(&[]).is_none());
    }

    proptest! {
        #[test]
        fn prop_cosine_bounded(
            u in proptest::collection::vec(-100.0f64..100.0, 2..16),
        ) {
            let v: Vec<f64> = u.iter().map(|x| x * 2.0 + 1.0).collect();
            if let Some(c) = cosine_similarity(&u, &v) {
                prop_assert!((-1.0..=1.0).contains(&c));
            }
        }

        #[test]
        fn prop_cosine_scale_invariant(
            u in proptest::collection::vec(1.0f64..100.0, 2..16),
            k in 0.1f64..50.0,
        ) {
            let v: Vec<f64> = u.iter().map(|x| x * k).collect();
            let c = cosine_similarity(&u, &v).unwrap();
            prop_assert!((c - 1.0).abs() < 1e-9);
        }

        #[test]
        fn prop_ranks_are_permutation(
            v in proptest::collection::vec(-100.0f64..100.0, 1..32)
        ) {
            let mut r = descending_ranks(&v);
            r.sort_unstable();
            prop_assert_eq!(r, (0..v.len()).collect::<Vec<_>>());
        }
    }
}
