//! Dependency-free deterministic fork-join parallelism.
//!
//! Every hot path in this workspace — powerset utility evaluation in the
//! Shapley engines, pairwise key agreement and mask expansion in secure
//! aggregation, per-owner local training — is embarrassingly parallel
//! *per index*. This module provides the one primitive they share:
//! partition an index range into contiguous chunks, run each chunk on a
//! scoped `std::thread`, and write results into pre-assigned slots.
//!
//! # Determinism contract
//!
//! The blockchain's verification-by-re-execution protocol requires every
//! miner to compute **bit-identical** results regardless of its core
//! count. All helpers here guarantee that as long as the supplied closure
//! is a *pure function of the global index* (and of `&`/`&mut` state that
//! only it touches):
//!
//! * slot `i` of the output is always `f(i, …)` — chunk boundaries move
//!   with the thread count, but never which slot a result lands in;
//! * no helper ever reduces across threads — callers combine results in
//!   index order, so floating-point rounding cannot depend on the
//!   schedule;
//! * with one thread (or below the size threshold) the closure runs on
//!   the calling thread in plain index order, and the parallel schedule
//!   produces exactly the same slot values.
//!
//! The property tests in `shapley/tests/par_determinism.rs` pin this
//! contract across thread counts 1, 2, and `available_parallelism`.
//!
//! # Knobs
//!
//! * [`set_max_threads`] / [`max_threads`] — global cap, `0` = one thread
//!   per available core. The `FL_PAR_THREADS` environment variable, read
//!   once at first use, seeds the cap (useful for benchmarking the
//!   sequential fallback without recompiling).
//! * Every helper takes `min_per_thread`, the smallest number of items
//!   worth shipping to another thread; below `2 * min_per_thread` items
//!   the call stays sequential. Callers pick it per workload: `1` for
//!   model training or modular exponentiation, tens for utility
//!   evaluations, thousands for ring-element arithmetic.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Global thread cap: 0 = automatic (one per core).
static MAX_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Caps the number of worker threads every `par_*` helper may use.
///
/// `0` restores the automatic setting (`available_parallelism`). `1`
/// forces the sequential path, which the determinism property tests use
/// to compare schedules.
pub fn set_max_threads(n: usize) {
    MAX_THREADS.store(n, Ordering::Relaxed);
}

/// The current thread cap (resolved: always `>= 1`).
pub fn max_threads() -> usize {
    let configured = MAX_THREADS.load(Ordering::Relaxed);
    if configured > 0 {
        return configured;
    }
    // Resolved once: `available_parallelism` is a syscall, and the par
    // helpers sit on hot paths that may run thousands of times per
    // round. Affinity changes after startup are deliberately ignored.
    static AUTO: OnceLock<usize> = OnceLock::new();
    *AUTO.get_or_init(|| {
        let env = std::env::var("FL_PAR_THREADS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0);
        if env > 0 {
            env
        } else {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        }
    })
}

/// Number of worker threads for `n` items at the given granularity.
fn plan_threads(n: usize, min_per_thread: usize) -> usize {
    let min = min_per_thread.max(1);
    (n / min).clamp(1, max_threads())
}

/// Splits `slice` into `threads` contiguous chunks whose lengths differ by
/// at most one, returning `(start_index, chunk)` pairs.
fn balanced_chunks<T>(slice: &mut [T], threads: usize) -> Vec<(usize, &mut [T])> {
    let n = slice.len();
    let base = n / threads;
    let extra = n % threads;
    let mut out = Vec::with_capacity(threads);
    let mut rest = slice;
    let mut start = 0;
    for t in 0..threads {
        let len = base + usize::from(t < extra);
        let (head, tail) = rest.split_at_mut(len);
        out.push((start, head));
        start += len;
        rest = tail;
    }
    out
}

/// Fills every slot of `out` with a value computed from its global index:
/// `f(start, chunk)` must set `chunk[k]` to a pure function of
/// `start + k`.
///
/// The workhorse primitive: all other helpers are built on it. Runs on
/// the calling thread when `out.len() < 2 * min_per_thread` or the thread
/// cap is 1.
pub fn par_fill_with<T, F>(out: &mut [T], min_per_thread: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let threads = plan_threads(out.len(), min_per_thread);
    if threads <= 1 {
        f(0, out);
        return;
    }
    let mut chunks = balanced_chunks(out, threads);
    let (first_start, first_chunk) = chunks.remove(0);
    let f = &f;
    std::thread::scope(|scope| {
        // Spawn workers for all but the first chunk; the calling thread
        // works instead of idling at the join.
        for (start, chunk) in chunks {
            scope.spawn(move || f(start, chunk));
        }
        f(first_start, first_chunk);
    });
}

/// Like [`par_fill_with`], but chunk boundaries always land on multiples
/// of `width`: `out` is treated as a sequence of `out.len() / width`
/// rows, and `f(first_row, rows)` receives a slice of whole rows whose
/// first row has global index `first_row`.
///
/// This is the fan-out primitive of the blocked-GEMM kernels in
/// [`crate::linalg`]: each worker owns a contiguous row panel of the
/// output matrix, and every row is a pure function of its global row
/// index, so the determinism contract of this module carries over
/// unchanged — chunk boundaries move with the thread count, row
/// contents never do.
///
/// # Panics
///
/// Panics if `width == 0` or `out.len()` is not a multiple of `width`.
pub fn par_fill_rows<T, F>(out: &mut [T], width: usize, min_rows_per_thread: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(width > 0, "row width must be positive");
    assert_eq!(
        out.len() % width,
        0,
        "buffer length {} is not a multiple of the row width {width}",
        out.len()
    );
    let rows = out.len() / width;
    let threads = plan_threads(rows, min_rows_per_thread);
    if threads <= 1 {
        f(0, out);
        return;
    }
    // Balanced row counts, then scaled to element ranges so every chunk
    // boundary is a row boundary.
    let base = rows / threads;
    let extra = rows % threads;
    let mut chunks = Vec::with_capacity(threads);
    let mut rest = out;
    let mut row_start = 0;
    for t in 0..threads {
        let len = base + usize::from(t < extra);
        let (head, tail) = rest.split_at_mut(len * width);
        chunks.push((row_start, head));
        row_start += len;
        rest = tail;
    }
    let (first_start, first_chunk) = chunks.remove(0);
    let f = &f;
    std::thread::scope(|scope| {
        // Spawn workers for all but the first chunk; the calling thread
        // works instead of idling at the join.
        for (start, chunk) in chunks {
            scope.spawn(move || f(start, chunk));
        }
        f(first_start, first_chunk);
    });
}

/// Runs two independent pipeline stages, overlapping them on two
/// threads when the cap allows, and returns `(a(), b())`.
///
/// This is the stage-overlap primitive of the streaming round pipeline:
/// stage `a` is round `r`'s on-chain tail (evaluation + commit), stage
/// `b` is round `r + 1`'s off-chain work (training, masking, assembly).
/// The determinism contract of this module extends to it unchanged —
/// each stage must be a pure function of its *inputs*, and the two
/// stages must touch disjoint state (the caller hands each closure its
/// own `&mut` world). Under those conditions the overlapped schedule
/// produces exactly the values of the sequential `let ra = a(); let rb
/// = b();` order for any thread count:
///
/// * results land in fixed positions — `a`'s in `.0`, `b`'s in `.1` —
///   never in completion order;
/// * nothing is reduced across the stages; the caller combines the two
///   results itself, after both have finished;
/// * with the thread cap at 1 the stages run sequentially (`a` first)
///   on the calling thread, and the overlapped schedule is required to
///   be bit-identical to that order.
///
/// Stage `b` runs on the spawned thread and `a` on the caller, so a
/// panic in either propagates to the caller once both stages have
/// stopped (scoped threads join before unwinding continues).
pub fn par_overlap<RA, RB, A, B>(a: A, b: B) -> (RA, RB)
where
    RA: Send,
    RB: Send,
    A: FnOnce() -> RA,
    B: FnOnce() -> RB + Send,
{
    if max_threads() <= 1 {
        let ra = a();
        let rb = b();
        return (ra, rb);
    }
    std::thread::scope(|scope| {
        let handle = scope.spawn(b);
        let ra = a();
        let rb = handle.join().expect("par overlap stage panicked");
        (ra, rb)
    })
}

/// `(0..n).map(f).collect()`, computed on up to [`max_threads`] threads.
///
/// `f` must be a pure function of the index for the determinism contract
/// to hold.
pub fn par_map_indices<R, F>(n: usize, min_per_thread: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let threads = plan_threads(n, min_per_thread);
    if threads <= 1 {
        return (0..n).map(f).collect();
    }
    let base = n / threads;
    let extra = n % threads;
    let mut bounds = Vec::with_capacity(threads);
    let mut start = 0;
    for t in 0..threads {
        let len = base + usize::from(t < extra);
        bounds.push(start..start + len);
        start += len;
    }
    let f = &f;
    let mut parts: Vec<Vec<R>> = std::thread::scope(|scope| {
        // Spawn workers for all but the first range; the calling thread
        // computes the first range instead of idling at the join.
        let handles: Vec<_> = bounds[1..]
            .iter()
            .cloned()
            .map(|range| scope.spawn(move || range.map(f).collect::<Vec<R>>()))
            .collect();
        let first: Vec<R> = bounds[0].clone().map(f).collect();
        let mut parts = Vec::with_capacity(threads);
        parts.push(first);
        parts.extend(
            handles
                .into_iter()
                .map(|h| h.join().expect("par worker panicked")),
        );
        parts
    });
    let mut out = Vec::with_capacity(n);
    for part in &mut parts {
        out.append(part);
    }
    out
}

/// `items.iter().enumerate().map(|(i, x)| f(i, x)).collect()` in parallel.
pub fn par_map<T, R, F>(items: &[T], min_per_thread: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_map_indices(items.len(), min_per_thread, |i| f(i, &items[i]))
}

/// Like [`par_map`] over mutable items: each element is visited exactly
/// once with exclusive access, results collected in index order.
pub fn par_map_mut<T, R, F>(items: &mut [T], min_per_thread: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, &mut T) -> R + Sync,
{
    let n = items.len();
    let threads = plan_threads(n, min_per_thread);
    if threads <= 1 {
        return items
            .iter_mut()
            .enumerate()
            .map(|(i, item)| f(i, item))
            .collect();
    }
    let mut chunks = balanced_chunks(items, threads);
    let (first_start, first_chunk) = chunks.remove(0);
    let f = &f;
    let mut results: Vec<Vec<R>> = std::thread::scope(|scope| {
        // Spawn workers for all but the first chunk; the calling thread
        // works its own chunk instead of idling at the join.
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|(start, chunk)| {
                scope.spawn(move || {
                    chunk
                        .iter_mut()
                        .enumerate()
                        .map(|(k, item)| f(start + k, item))
                        .collect::<Vec<R>>()
                })
            })
            .collect();
        let first: Vec<R> = first_chunk
            .iter_mut()
            .enumerate()
            .map(|(k, item)| f(first_start + k, item))
            .collect();
        let mut results = Vec::with_capacity(threads);
        results.push(first);
        results.extend(
            handles
                .into_iter()
                .map(|h| h.join().expect("par worker panicked")),
        );
        results
    });
    let mut out = Vec::with_capacity(n);
    for part in &mut results {
        out.append(part);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fill_matches_sequential_for_any_thread_cap() {
        let n = 1000;
        let mut expected = vec![0u64; n];
        for (i, v) in expected.iter_mut().enumerate() {
            *v = (i as u64).wrapping_mul(0x9e37_79b9);
        }
        for cap in [1usize, 2, 3, 8] {
            set_max_threads(cap);
            let mut out = vec![0u64; n];
            par_fill_with(&mut out, 1, |start, chunk| {
                for (k, slot) in chunk.iter_mut().enumerate() {
                    *slot = ((start + k) as u64).wrapping_mul(0x9e37_79b9);
                }
            });
            assert_eq!(out, expected, "cap={cap}");
        }
        set_max_threads(0);
    }

    #[test]
    fn map_indices_preserves_order() {
        set_max_threads(4);
        let out = par_map_indices(100, 1, |i| i * i);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
        set_max_threads(0);
    }

    #[test]
    fn map_mut_visits_every_item_once() {
        set_max_threads(3);
        let mut items: Vec<u32> = (0..50).collect();
        let doubled = par_map_mut(&mut items, 1, |i, item| {
            *item += 1;
            (i as u32, *item * 2)
        });
        assert_eq!(items, (1..=50).collect::<Vec<u32>>());
        for (i, (idx, d)) in doubled.iter().enumerate() {
            assert_eq!(*idx as usize, i);
            assert_eq!(*d, (i as u32 + 1) * 2);
        }
        set_max_threads(0);
    }

    #[test]
    fn fill_rows_matches_sequential_for_any_thread_cap() {
        let (rows, width) = (37, 5);
        let fill = |start: usize, chunk: &mut [u64]| {
            for (k, slot) in chunk.iter_mut().enumerate() {
                let row = start + k / 5;
                let col = k % 5;
                *slot = (row as u64) * 100 + col as u64;
            }
        };
        let mut expected = vec![0u64; rows * width];
        fill(0, &mut expected);
        for cap in [1usize, 2, 3, 8] {
            set_max_threads(cap);
            let mut out = vec![0u64; rows * width];
            par_fill_rows(&mut out, width, 1, |start, chunk| fill(start, chunk));
            assert_eq!(out, expected, "cap={cap}");
        }
        set_max_threads(0);
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn fill_rows_rejects_ragged_buffer() {
        let mut out = vec![0u8; 7];
        par_fill_rows(&mut out, 3, 1, |_, _| {});
    }

    #[test]
    #[should_panic(expected = "width must be positive")]
    fn fill_rows_rejects_zero_width() {
        let mut out = vec![0u8; 4];
        par_fill_rows(&mut out, 0, 1, |_, _| {});
    }

    #[test]
    fn below_threshold_stays_sequential() {
        // 3 items at min 16 per thread: must not spawn (observable only
        // through correctness here, but exercises the fallback branch).
        let out = par_map(&[1, 2, 3], 16, |_, x| x * 10);
        assert_eq!(out, vec![10, 20, 30]);
    }

    #[test]
    fn empty_inputs() {
        let out: Vec<u8> = par_map_indices(0, 1, |_| unreachable!());
        assert!(out.is_empty());
        let mut empty: [u8; 0] = [];
        par_fill_with(&mut empty, 1, |_, _| {});
    }

    #[test]
    fn max_threads_resolves_positive() {
        assert!(max_threads() >= 1);
    }

    #[test]
    fn overlap_matches_sequential_for_any_thread_cap() {
        // Two stages over disjoint state: the overlapped schedule must
        // produce exactly the sequential results, in fixed positions.
        let expected_a: u64 = (0..1000u64).map(|i| i.wrapping_mul(0x9e37_79b9)).sum();
        let expected_b: Vec<u64> = (0..64u64).map(|i| i * i).collect();
        for cap in [1usize, 2, 8] {
            set_max_threads(cap);
            let (a, b) = par_overlap(
                || {
                    (0..1000u64)
                        .map(|i| i.wrapping_mul(0x9e37_79b9))
                        .sum::<u64>()
                },
                || (0..64u64).map(|i| i * i).collect::<Vec<u64>>(),
            );
            assert_eq!(a, expected_a, "cap={cap}");
            assert_eq!(b, expected_b, "cap={cap}");
        }
        set_max_threads(0);
    }

    #[test]
    fn overlap_stage_a_completion_is_visible_to_the_caller_combine() {
        // Whichever schedule runs, both stages have fully completed by
        // the time par_overlap returns: the caller's combine step reads
        // a's side effects through b's result only after the join.
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;
        let a_done = Arc::new(AtomicBool::new(false));
        let fa = a_done.clone();
        for cap in [1usize, 2] {
            set_max_threads(cap);
            fa.store(false, Ordering::SeqCst);
            let fa2 = fa.clone();
            let ((), sum) = par_overlap(
                move || fa2.store(true, Ordering::SeqCst),
                || (0..100u32).sum::<u32>(),
            );
            assert!(a_done.load(Ordering::SeqCst), "cap={cap}");
            assert_eq!(sum, 4950, "cap={cap}");
        }
        set_max_threads(0);
    }

    #[test]
    fn overlap_moves_owned_state_into_each_stage() {
        // FnOnce closures: each stage owns its world — the pattern the
        // round pipeline relies on (commit owns the chain side, prepare
        // owns the owners).
        let chain: Vec<u64> = (0..10).collect();
        let owners: Vec<u64> = (10..20).collect();
        let (a, b) = par_overlap(
            move || chain.iter().sum::<u64>(),
            move || owners.iter().map(|x| x * 2).collect::<Vec<u64>>(),
        );
        assert_eq!(a, 45);
        assert_eq!(b, (10..20u64).map(|x| x * 2).collect::<Vec<u64>>());
    }
}
