//! Numeric foundations for the transparent-fl workspace.
//!
//! This crate provides the three numeric substrates the paper's system is
//! built on:
//!
//! * [`uint`] — fixed-width unsigned big integers with modular arithmetic,
//!   used by the Diffie–Hellman key agreement in `fl-crypto`.
//! * [`fixed`] — a fixed-point codec mapping `f64` model weights into the
//!   wrapping `u64` ring. Secure aggregation masks live in this ring, so
//!   mask cancellation is *exact* (bit-for-bit), which a floating-point
//!   encoding cannot guarantee.
//! * [`linalg`] — dense row-major matrices and vector kernels backing the
//!   logistic-regression trainer in `fl-ml`.
//! * [`stats`] — the statistical helpers the evaluation needs (cosine
//!   similarity for Fig. 2, summaries for the reports).
//! * [`par`] — deterministic fork-join parallelism over index ranges; the
//!   execution layer behind the SV and secure-aggregation hot paths.
//!
//! Everything here is deterministic and dependency-free by design: the
//! blockchain's verification-by-re-execution protocol (paper Sect. III)
//! only works if every miner computes identical results.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fixed;
pub mod linalg;
pub mod par;
pub mod stats;
pub mod uint;

pub use fixed::FixedCodec;
pub use linalg::{Matrix, Vector};
pub use uint::{U2048, U256};
