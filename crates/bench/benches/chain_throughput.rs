//! Chain-level benchmarks: block commitment with re-execution
//! verification (the paper's consensus cost) at different cohort sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::collections::BTreeMap;
use std::hint::black_box;

use fl_chain::consensus::engine::{ConsensusEngine, EngineConfig};
use fl_chain::consensus::leader::LeaderSchedule;
use fl_chain::contract::{ExecutionOutcome, SmartContract, TxContext};
use fl_chain::gas::Gas;
use fl_chain::hash::Hash32;
use fl_chain::merkle::MerkleTree;
use fl_chain::tx::Transaction;

/// A storage-bound contract standing in for the FL contract's submission
/// path: it accumulates vectors, like masked updates, and digests state.
#[derive(Debug, Clone, Default)]
struct VectorStore {
    sum: Vec<u64>,
    count: u64,
}

impl SmartContract for VectorStore {
    type Call = Vec<u64>;
    type Error = String;

    fn execute(&mut self, _ctx: &TxContext, call: &Vec<u64>) -> Result<ExecutionOutcome, String> {
        if self.sum.is_empty() {
            self.sum = vec![0u64; call.len()];
        }
        for (a, &x) in self.sum.iter_mut().zip(call) {
            *a = a.wrapping_add(x);
        }
        self.count += 1;
        Ok(ExecutionOutcome {
            events: vec![],
            gas_used: Gas(call.len() as u64),
        })
    }

    fn state_digest(&self) -> Hash32 {
        Hash32::of("vector-store", &(self.sum.clone(), self.count))
    }
}

fn submissions(n: usize, dim: usize) -> Vec<Transaction<Vec<u64>>> {
    (0..n)
        .map(|i| Transaction::new(i as u32, 0, vec![i as u64; dim]))
        .collect()
}

fn bench_commit(c: &mut Criterion) {
    let mut group = c.benchmark_group("commit_block");
    group.sample_size(20);
    for miners in [3usize, 9, 21] {
        group.bench_with_input(BenchmarkId::new("miners", miners), &miners, |b, &miners| {
            b.iter(|| {
                let schedule = LeaderSchedule::round_robin((0..miners as u32).collect());
                let mut engine = ConsensusEngine::new(
                    VectorStore::default(),
                    schedule,
                    &BTreeMap::new(),
                    EngineConfig::default(),
                )
                .expect("non-empty miner set");
                engine
                    .commit_transactions(black_box(submissions(miners, 650)))
                    .expect("honest commit")
            })
        });
    }
    group.finish();
}

fn bench_merkle(c: &mut Criterion) {
    let mut group = c.benchmark_group("merkle_root");
    for leaves in [10usize, 100, 1000] {
        let digests: Vec<Hash32> = (0..leaves)
            .map(|i| Hash32::of_bytes(&(i as u64).to_le_bytes()))
            .collect();
        group.bench_with_input(
            BenchmarkId::from_parameter(leaves),
            &digests,
            |b, digests| b.iter(|| MerkleTree::build(black_box(digests)).root()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_commit, bench_merkle);
criterion_main!(benches);
