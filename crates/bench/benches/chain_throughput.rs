//! Chain-level benchmarks: block commitment with re-execution
//! verification (the paper's consensus cost) at different cohort sizes,
//! and mempool admission (per-tx vs batched).
//!
//! Committed medians live in `BENCH_chain_throughput.json`; regenerate
//! with `CRITERION_JSON=out.jsonl cargo bench --bench chain_throughput`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::collections::BTreeMap;
use std::hint::black_box;

use fl_chain::consensus::engine::{ConsensusEngine, EngineConfig};
use fl_chain::consensus::leader::LeaderSchedule;
use fl_chain::contract::{ExecutionOutcome, SmartContract, TxContext};
use fl_chain::gas::Gas;
use fl_chain::hash::Hash32;
use fl_chain::mempool::Mempool;
use fl_chain::merkle::MerkleTree;
use fl_chain::tx::{Transaction, TxBundle};

/// A storage-bound contract standing in for the FL contract's submission
/// path: it accumulates vectors, like masked updates, and digests state.
#[derive(Debug, Clone, Default)]
struct VectorStore {
    sum: Vec<u64>,
    count: u64,
}

impl SmartContract for VectorStore {
    type Call = Vec<u64>;
    type Error = String;

    fn execute(&mut self, _ctx: &TxContext, call: &Vec<u64>) -> Result<ExecutionOutcome, String> {
        if self.sum.is_empty() {
            self.sum = vec![0u64; call.len()];
        }
        for (a, &x) in self.sum.iter_mut().zip(call) {
            *a = a.wrapping_add(x);
        }
        self.count += 1;
        Ok(ExecutionOutcome {
            events: vec![],
            gas_used: Gas(call.len() as u64),
        })
    }

    fn state_digest(&self) -> Hash32 {
        Hash32::of("vector-store", &(self.sum.clone(), self.count))
    }
}

fn submissions(n: usize, dim: usize) -> Vec<Transaction<Vec<u64>>> {
    (0..n)
        .map(|i| Transaction::new(i as u32, 0, vec![i as u64; dim]))
        .collect()
}

fn bench_commit(c: &mut Criterion) {
    let mut group = c.benchmark_group("commit_block");
    group.sample_size(20);
    for miners in [3usize, 9, 21] {
        group.bench_with_input(BenchmarkId::new("miners", miners), &miners, |b, &miners| {
            b.iter(|| {
                let schedule = LeaderSchedule::round_robin((0..miners as u32).collect());
                let mut engine = ConsensusEngine::new(
                    VectorStore::default(),
                    schedule,
                    &BTreeMap::new(),
                    EngineConfig::default(),
                )
                .expect("non-empty miner set");
                engine
                    .commit_transactions(black_box(submissions(miners, 650)))
                    .expect("honest commit")
            })
        });
    }
    group.finish();
}

/// `count` transactions from `senders` senders in sender-contiguous
/// runs (the shape a round block has: each owner's txs arrive together),
/// contiguous nonces, pool-admissible in submission order. The payload
/// is a bare `u64` so the measurement isolates admission bookkeeping,
/// not payload cloning.
fn admission_batch(count: usize, senders: usize) -> Vec<Transaction<u64>> {
    let per_sender = count / senders;
    (0..count)
        .map(|i| Transaction::new((i / per_sender) as u32, (i % per_sender) as u64, i as u64))
        .collect()
}

fn bench_admission(c: &mut Criterion) {
    let mut group = c.benchmark_group("mempool_admission");
    group.sample_size(20);
    let (count, senders) = (1024usize, 8usize);
    // Seed path: one capacity check + nonce-map lookup/insert per call.
    group.bench_function(BenchmarkId::new("per_tx", count), |b| {
        let batch = admission_batch(count, senders);
        b.iter(|| {
            let mut pool: Mempool<u64> = Mempool::new(count);
            for tx in black_box(batch.clone()) {
                pool.submit(tx).expect("admissible");
            }
            pool.len()
        })
    });
    // Batched path: capacity computed once, nonce expectations cached
    // across each same-sender run.
    group.bench_function(BenchmarkId::new("batched", count), |b| {
        let batch = admission_batch(count, senders);
        b.iter(|| {
            let mut pool: Mempool<u64> = Mempool::new(count);
            let admission = pool.submit_batch(black_box(batch.clone()));
            assert!(admission.all_admitted());
            pool.len()
        })
    });
    group.finish();
}

/// Sealing pays the Merkle transaction root once per block; the engine
/// then commits the bundle without rebuilding the tree per miner
/// replica (compare against `merkle_root` × miner count).
fn bench_bundle_seal(c: &mut Criterion) {
    let mut group = c.benchmark_group("bundle_seal");
    group.sample_size(20);
    for count in [64usize, 1024] {
        let batch = admission_batch(count, 8);
        group.bench_with_input(BenchmarkId::from_parameter(count), &batch, |b, batch| {
            b.iter(|| TxBundle::seal(black_box(batch.clone())).expect("contiguous"))
        });
    }
    group.finish();
}

fn bench_merkle(c: &mut Criterion) {
    let mut group = c.benchmark_group("merkle_root");
    for leaves in [10usize, 100, 1000] {
        let digests: Vec<Hash32> = (0..leaves)
            .map(|i| Hash32::of_bytes(&(i as u64).to_le_bytes()))
            .collect();
        group.bench_with_input(
            BenchmarkId::from_parameter(leaves),
            &digests,
            |b, digests| b.iter(|| MerkleTree::build(black_box(digests)).root()),
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_commit,
    bench_admission,
    bench_bundle_seal,
    bench_merkle
);
criterion_main!(benches);
