//! Cohort-scaling benchmarks: flat vs sharded round wall-clock as the
//! owner count grows, per-cohort commit streaming on the chain side, and
//! cold-disk certification of a sharded chain.
//!
//! The flat round's secure-aggregation cost is quadratic in the group
//! size (pairwise DH masks), so with a fixed group count it grows ~n².
//! Sharding fixes the cohort size instead, making per-cohort cost
//! constant and total cost ~n — the `cohort_round` group measures both
//! curves so the committed JSON can show the sharded runs landing far
//! under the flat extrapolation.
//!
//! Before anything is timed, [`gate`] runs the acceptance configuration
//! once: 1024 owners in 32 cohorts of 32, streamed end-to-end through
//! mempool, consensus, and audit, persisted to disk, and re-certified
//! bit-identically from the cold bytes by `fedchain::audit::fast_sync`.
//!
//! Committed medians live in `BENCH_cohort_scaling.json`; regenerate
//! with `CRITERION_JSON=out.jsonl cargo bench --bench cohort_scaling`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::collections::BTreeMap;
use std::hint::black_box;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

use fedchain::audit::fast_sync;
use fedchain::config::{FlConfig, SvMethod};
use fedchain::contract_fl::FlParams;
use fedchain::protocol::FlProtocol;
use fl_chain::consensus::engine::{ConsensusEngine, EngineConfig};
use fl_chain::consensus::leader::LeaderSchedule;
use fl_chain::contract::{ExecutionOutcome, SmartContract, TxContext};
use fl_chain::durability::DurabilityConfig;
use fl_chain::gas::Gas;
use fl_chain::hash::Hash32;
use fl_chain::log::LogConfig;
use fl_chain::mempool::Mempool;
use fl_chain::tx::Transaction;
use fl_ml::dataset::{Dataset, SyntheticDigits};

/// Unique scratch directory, removed on drop.
struct TestDir(PathBuf);

impl TestDir {
    fn new(tag: &str) -> Self {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        let path =
            std::env::temp_dir().join(format!("fl-bench-cohort-{tag}-{}-{n}", std::process::id()));
        std::fs::create_dir_all(&path).expect("create bench dir");
        Self(path)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TestDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// A no-dropout round at bench scale: a narrow model (16 features, 4
/// classes) keeps masked-vector width constant across owner counts, the
/// dataset grows with `n` so every owner holds data, a 4-miner committee
/// bounds re-execution cost, and stratified sampling keeps both SV
/// levels polynomial. The empty dropout schedule skips the O(n²) escrow.
fn bench_config(owners: usize, cohorts: usize) -> FlConfig {
    let mut config = FlConfig::quick_demo();
    config.num_owners = owners;
    config.num_groups = 4;
    config.num_cohorts = cohorts;
    config.miner_committee = 4;
    config.sv_method = SvMethod::Stratified {
        samples_per_stratum: 2,
    };
    config.data = SyntheticDigits {
        instances: (2 * owners).max(600),
        features: 16,
        classes: 4,
        ..SyntheticDigits::default()
    };
    config.train.epochs = 4;
    config
}

/// The acceptance run, persisted: its scratch directory stays alive for
/// the fast-sync benchmark.
struct Gate {
    dir: TestDir,
    params: FlParams,
    test_set: Dataset,
    live_tip: Hash32,
    blocks: u64,
}

/// Runs the ROADMAP acceptance configuration once — 1024 owners, 32
/// cohorts of 32 — end-to-end through mempool/consensus/audit with a
/// write-ahead log attached, then certifies the cold bytes: `fast_sync`
/// must replay one setup block plus 32 per-cohort blocks to the exact
/// live tip digest. Panics the bench process on any violation.
fn gate() -> &'static Gate {
    static GATE: OnceLock<Gate> = OnceLock::new();
    GATE.get_or_init(|| {
        let dir = TestDir::new("gate");
        let mut protocol = FlProtocol::new(bench_config(1024, 32)).expect("valid config");
        protocol
            .persist_to(
                dir.path(),
                DurabilityConfig {
                    log: LogConfig {
                        segment_bytes: 4 * 1024 * 1024,
                    },
                    snapshot_every: u64::MAX,
                },
            )
            .expect("fresh dir attaches");
        let report = protocol.run().expect("honest 1024-owner run");
        assert_eq!(report.blocks, 33, "setup + one block per cohort");
        assert_eq!(report.per_owner_sv.len(), 1024);
        assert_eq!(report.round_records[0].cohorts.len(), 32);
        let live_tip = protocol.engine().store_of(0).expect("miner 0").tip_digest();
        let params = protocol.contract().params().clone();
        let test_set = protocol.test_set().clone();
        drop(protocol); // the certification below runs from cold bytes

        let sync = fast_sync(dir.path(), params.clone(), test_set.clone())
            .expect("cold sharded chain certifies");
        assert_eq!(sync.blocks, 33);
        assert!(sync.audit.clean, "per-cohort evidence must replay exactly");
        assert_eq!(
            sync.tip_digest, live_tip,
            "the on-disk sharded chain is bit-identical to the live chain"
        );
        Gate {
            dir,
            params,
            test_set,
            live_tip,
            blocks: report.blocks,
        }
    })
}

/// Full on-chain rounds, flat vs sharded. Flat sweeps the owner count
/// with the group count fixed (cost ~n² from pairwise masks); sharded
/// holds the cohort size at 32 up to 1024 owners (cost ~n), then rides
/// the 64-cohort method cap to 10⁴ owners (cohorts of ~156).
fn bench_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("cohort_round");
    group.sample_size(10);
    for &n in &[100usize, 200, 400] {
        group.bench_with_input(BenchmarkId::new("flat", n), &n, |b, &n| {
            b.iter(|| {
                let mut protocol =
                    FlProtocol::new(bench_config(black_box(n), 1)).expect("valid config");
                let report = protocol.run().expect("honest run");
                assert_eq!(report.blocks, 2);
                report.per_owner_sv.len()
            })
        });
    }
    for &(n, k) in &[(128usize, 4usize), (512, 16), (1024, 32), (10_000, 64)] {
        group.bench_with_input(BenchmarkId::new("sharded", n), &(n, k), |b, &(n, k)| {
            b.iter(|| {
                let mut protocol =
                    FlProtocol::new(bench_config(black_box(n), k)).expect("valid config");
                let report = protocol.run().expect("honest run");
                assert_eq!(report.blocks, 1 + k as u64);
                report.per_owner_sv.len()
            })
        });
    }
    group.finish();
}

/// Cold-disk certification of the acceptance chain: `fast_sync` re-scans
/// the log, re-executes all 33 blocks, and proves every per-cohort state
/// root — the auditor-side cost of a 1024-owner sharded round.
fn bench_fast_sync(c: &mut Criterion) {
    let mut group = c.benchmark_group("sharded_fast_sync");
    group.sample_size(10);
    group.bench_function(BenchmarkId::new("owners", 1024), |b| {
        let g = gate();
        b.iter(|| {
            let report = fast_sync(g.dir.path(), g.params.clone(), g.test_set.clone())
                .expect("cold chain certifies");
            assert_eq!(report.blocks, g.blocks);
            assert_eq!(report.tip_digest, g.live_tip);
            report.blocks
        })
    });
    group.finish();
}

/// A storage-bound contract isolating the chain-side cost of streaming
/// one round as `k` per-cohort bundles (admission → `drain_bundles` →
/// `commit_bundles`) from the FL work above.
#[derive(Debug, Clone, Default)]
struct VectorStore {
    sum: Vec<u64>,
    count: u64,
}

impl SmartContract for VectorStore {
    type Call = Vec<u64>;
    type Error = String;

    fn execute(&mut self, _ctx: &TxContext, call: &Vec<u64>) -> Result<ExecutionOutcome, String> {
        if self.sum.is_empty() {
            self.sum = vec![0u64; call.len()];
        }
        for (a, &x) in self.sum.iter_mut().zip(call) {
            *a = a.wrapping_add(x);
        }
        self.count += 1;
        Ok(ExecutionOutcome {
            events: vec![],
            gas_used: Gas(call.len() as u64),
        })
    }

    fn state_digest(&self) -> Hash32 {
        Hash32::of("vector-store", &(self.sum.clone(), self.count))
    }
}

fn bench_commit_stream(c: &mut Criterion) {
    let mut group = c.benchmark_group("cohort_commit_stream");
    group.sample_size(10);
    let owners = 1024usize;
    let miners = 4usize;
    for &bundles in &[1usize, 8, 32] {
        let per_bundle = owners / bundles;
        let sizes = vec![per_bundle; bundles];
        group.bench_with_input(BenchmarkId::new("bundles", bundles), &sizes, |b, sizes| {
            b.iter(|| {
                let schedule = LeaderSchedule::round_robin((0..miners as u32).collect());
                let mut engine = ConsensusEngine::new(
                    VectorStore::default(),
                    schedule,
                    &BTreeMap::new(),
                    EngineConfig::default(),
                )
                .expect("non-empty miner set");
                let mut pool: Mempool<Vec<u64>> = Mempool::new(owners);
                let txs: Vec<Transaction<Vec<u64>>> = (0..owners)
                    .map(|i| Transaction::new(i as u32, 0, vec![i as u64; 68]))
                    .collect();
                assert!(pool.submit_batch(black_box(txs)).all_admitted());
                let drained = pool.drain_bundles(sizes);
                let reports = engine
                    .commit_bundles(&drained)
                    .expect("honest multi-bundle commit");
                assert_eq!(reports.len(), sizes.len());
                reports.len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_round, bench_fast_sync, bench_commit_stream);
criterion_main!(benches);
