//! Round-pipeline benchmarks: 20-round chains driven strictly
//! sequentially (`FlProtocol::run_sequential`) vs through the two-stage
//! pipeline (`FlProtocol::run`), flat and cohort-sharded.
//!
//! The pipeline overlaps round `r+1`'s off-chain half (local training,
//! masking, tx assembly) with round `r`'s on-chain tail (block commit,
//! SV evaluation), so the wall-clock win is bounded by
//! `min(off_chain, on_chain)` per round — the report's
//! [`fedchain::protocol::StageTimings`] shows the two sides. On a
//! single-core host the overlap primitive degrades to sequential
//! execution and both modes measure alike; the bit-equality contract is
//! asserted either way.
//!
//! Before anything is timed, [`gate`] runs both modes on both shapes
//! and asserts the chains are **bit-identical**: same per-owner
//! contributions, same accuracy trace, same block count, same tip
//! digest. Panics the bench process on any divergence.
//!
//! Committed medians live in `BENCH_round_pipeline.json`; regenerate
//! with `CRITERION_JSON=out.jsonl cargo bench --bench round_pipeline`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::sync::OnceLock;

use fedchain::config::{FlConfig, SvMethod};
use fedchain::protocol::FlProtocol;
use fl_ml::dataset::SyntheticDigits;

const ROUNDS: u64 = 20;

/// A 20-round no-dropout chain: 16 owners, a narrow model (16 features,
/// 4 classes), stratified sampling at both SV levels, and a 4-miner
/// committee. `cohorts = 1` is the flat shape (groups of 8, one block
/// per round); `cohorts = 4` streams one block per cohort (groups of 2).
fn bench_config(cohorts: usize) -> FlConfig {
    let mut config = FlConfig::quick_demo();
    config.num_owners = 16;
    config.num_groups = 2;
    config.num_cohorts = cohorts;
    config.rounds = ROUNDS;
    config.miner_committee = 4;
    config.sv_method = SvMethod::Stratified {
        samples_per_stratum: 2,
    };
    config.data = SyntheticDigits {
        instances: 600,
        features: 16,
        classes: 4,
        ..SyntheticDigits::default()
    };
    config.train.epochs = 6;
    config
}

/// Blocks a run of `config` must commit: the setup block plus, per
/// round, one block per cohort.
fn expected_blocks(cohorts: usize) -> u64 {
    1 + ROUNDS * cohorts as u64
}

/// Runs both shapes in both modes once and asserts the pipelined chain
/// is bit-identical to the sequential chain before any sampling.
fn gate() {
    static GATE: OnceLock<()> = OnceLock::new();
    GATE.get_or_init(|| {
        for cohorts in [1usize, 4] {
            let mut seq = FlProtocol::new(bench_config(cohorts)).expect("valid config");
            let seq_report = seq.run_sequential().expect("honest sequential run");
            let mut pipe = FlProtocol::new(bench_config(cohorts)).expect("valid config");
            let pipe_report = pipe.run().expect("honest pipelined run");
            assert_eq!(seq_report.blocks, expected_blocks(cohorts));
            assert_eq!(seq_report.blocks, pipe_report.blocks);
            assert_eq!(
                seq_report.per_owner_sv, pipe_report.per_owner_sv,
                "k={cohorts}: pipelined contributions must equal sequential"
            );
            assert_eq!(
                seq_report.accuracy_history, pipe_report.accuracy_history,
                "k={cohorts}: pipelined accuracy trace must equal sequential"
            );
            assert_eq!(
                seq.engine().store_of(0).expect("miner 0").tip_digest(),
                pipe.engine().store_of(0).expect("miner 0").tip_digest(),
                "k={cohorts}: pipelined chain must be bit-identical to sequential"
            );
            // The stage clock is live in both modes.
            assert!(pipe_report.stages.train_mask > 0.0);
            assert!(pipe_report.stages.evaluate > 0.0);
        }
    });
}

/// 20-round chains, sequential vs pipelined, flat (`k=1`) and sharded
/// (`k=4`).
fn bench_pipeline(c: &mut Criterion) {
    gate();
    let mut group = c.benchmark_group("round_pipeline");
    group.sample_size(10);
    for &cohorts in &[1usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("sequential", cohorts),
            &cohorts,
            |b, &cohorts| {
                b.iter(|| {
                    let mut protocol =
                        FlProtocol::new(bench_config(black_box(cohorts))).expect("valid config");
                    let report = protocol.run_sequential().expect("honest run");
                    assert_eq!(report.blocks, expected_blocks(cohorts));
                    report.per_owner_sv.len()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("pipelined", cohorts),
            &cohorts,
            |b, &cohorts| {
                b.iter(|| {
                    let mut protocol =
                        FlProtocol::new(bench_config(black_box(cohorts))).expect("valid config");
                    let report = protocol.run().expect("honest run");
                    assert_eq!(report.blocks, expected_blocks(cohorts));
                    report.per_owner_sv.len()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
