//! ML-substrate benchmarks: the local-training and utility-evaluation
//! costs that dominate both columns of Table I.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use fl_ml::dataset::SyntheticDigits;
use fl_ml::logreg::{train_model, LogisticModel, TrainConfig};
use fl_ml::metrics::model_accuracy;

fn config() -> TrainConfig {
    TrainConfig {
        learning_rate: 0.5,
        epochs: 10,
        l2: 1e-4,
    }
}

fn bench_local_training(c: &mut Criterion) {
    let mut group = c.benchmark_group("local_training");
    group.sample_size(10);
    for instances in [500usize, 2000] {
        let ds = SyntheticDigits {
            instances,
            ..SyntheticDigits::default()
        }
        .generate(1);
        group.bench_with_input(BenchmarkId::from_parameter(instances), &ds, |b, ds| {
            b.iter(|| train_model(black_box(ds), &config()))
        });
    }
    group.finish();
}

fn bench_utility_evaluation(c: &mut Criterion) {
    // One u(W) call: accuracy of a flat model on the test set. GroupSV
    // performs 2^m of these per round.
    let ds = SyntheticDigits {
        instances: 1124, // the paper's 20% test split of 5620
        ..SyntheticDigits::default()
    }
    .generate(2);
    let model = train_model(&ds, &config());
    let flat = model.to_flat();
    c.bench_function("utility_accuracy_eval", |b| {
        b.iter(|| {
            let m = LogisticModel::from_flat(black_box(&flat), 64, 10);
            model_accuracy(&m, &ds)
        })
    });
}

criterion_group!(benches, bench_local_training, bench_utility_evaluation);
criterion_main!(benches);
