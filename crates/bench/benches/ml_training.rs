//! ML-substrate benchmarks: the training-engine costs that dominate both
//! columns of Table I.
//!
//! Two seed-vs-opt pairs measure the PR 5 training engine:
//!
//! * `logreg_train` — one local training over a dim×classes grid: the
//!   seed entries run the pre-blocked-GEMM pipeline (naive i-k-j loops,
//!   per-call conditioning, per-row softmax temporaries — kept verbatim
//!   below), the opt entries run the library's batched kernels.
//! * `coalition_retrain` — the native-SV ground-truth workload end to
//!   end: every coalition of a 4-owner world is pooled, retrained and
//!   scored on the test set. Seed pools with `Dataset::concat` and pays
//!   conditioning per coalition; opt uses the zero-copy `DatasetView` +
//!   prepared-design path of `RetrainUtility`.
//!
//! Both pipelines are asserted bit-identical before measuring, so the
//! speedup is pure engineering, not numerical drift.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use fedchain::config::FlConfig;
use fedchain::ground_truth::RetrainUtility;
use fedchain::world::World;
use fl_ml::dataset::{Dataset, SyntheticDigits};
use fl_ml::logreg::{train_model, Design, LogisticModel, TrainConfig};
use fl_ml::metrics::model_accuracy_design;
use numeric::stats::argmax;
use numeric::Matrix;
use shapley::coalition::Coalition;
use shapley::utility::CoalitionUtility;

fn config() -> TrainConfig {
    TrainConfig {
        learning_rate: 0.5,
        epochs: 10,
        l2: 1e-4,
    }
}

// ---------------------------------------------------------------------
// Seed implementation, kept verbatim as the regression baseline: the
// pre-PR5 naive matmul / t_matmul loops and the unfused trainer pipeline
// (per-call conditioning, one-hot label matrix, per-row softmax
// temporaries, a fresh allocation per kernel call).

fn seed_matmul(a: &Matrix, b: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(a.rows(), b.cols());
    for i in 0..a.rows() {
        for k in 0..a.cols() {
            let v = a[(i, k)];
            if v == 0.0 {
                continue;
            }
            let rhs_row = b.row(k);
            let out_row = out.row_mut(i);
            for (o, &w) in out_row.iter_mut().zip(rhs_row) {
                *o += v * w;
            }
        }
    }
    out
}

fn seed_t_matmul(a: &Matrix, b: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(a.cols(), b.cols());
    for r in 0..a.rows() {
        for i in 0..a.cols() {
            let v = a[(r, i)];
            if v == 0.0 {
                continue;
            }
            let right = b.row(r);
            let out_row = out.row_mut(i);
            for (o, &w) in out_row.iter_mut().zip(right) {
                *o += v * w;
            }
        }
    }
    out
}

fn seed_scaled_with_bias(features: &Matrix) -> Matrix {
    features.map(|v| v / 16.0).with_bias_column()
}

fn seed_softmax_rows(logits: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(logits.rows(), logits.cols());
    for r in 0..logits.rows() {
        let row = logits.row(r);
        let max = row.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let exp: Vec<f64> = row.iter().map(|&v| (v - max).exp()).collect();
        let sum: f64 = exp.iter().sum();
        let out_row = out.row_mut(r);
        for (o, e) in out_row.iter_mut().zip(&exp) {
            *o = e / sum;
        }
    }
    out
}

/// The seed trainer: full-batch GD with the naive kernels, returning the
/// flat weight vector.
fn seed_train(data: &Dataset, config: &TrainConfig) -> Vec<f64> {
    let classes = data.num_classes;
    let x = seed_scaled_with_bias(&data.features);
    let n = data.len() as f64;
    let mut weights = Matrix::zeros(data.num_features() + 1, classes);
    let mut y = Matrix::zeros(data.len(), classes);
    for (i, &label) in data.labels.iter().enumerate() {
        y[(i, label)] = 1.0;
    }
    for _ in 0..config.epochs {
        let logits = seed_matmul(&x, &weights);
        let mut residual = seed_softmax_rows(&logits);
        residual.axpy(-1.0, &y); // P − Y
        let mut grad = seed_t_matmul(&x, &residual);
        grad.scale(1.0 / n);
        if config.l2 > 0.0 {
            grad.axpy(config.l2, &weights);
        }
        weights.axpy(-config.learning_rate, &grad);
    }
    weights.into_vec()
}

/// Seed accuracy: per-call test-set conditioning plus the naive matmul.
fn seed_accuracy(flat: &[f64], data: &Dataset) -> f64 {
    let weights = Matrix::from_vec(data.num_features() + 1, data.num_classes, flat.to_vec());
    let x = seed_scaled_with_bias(&data.features);
    let proba = seed_softmax_rows(&seed_matmul(&x, &weights));
    let correct = data
        .labels
        .iter()
        .enumerate()
        .filter(|&(r, &l)| argmax(proba.row(r)).expect("non-empty row") == l)
        .count();
    correct as f64 / data.len() as f64
}

/// Seed coalition-retrain sweep: pool each coalition with
/// `Dataset::concat`, retrain with the naive kernels, score with per-call
/// conditioning.
fn seed_retrain_sweep(shards: &[Dataset], test: &Dataset, train: &TrainConfig) -> Vec<f64> {
    Coalition::powerset(shards.len())
        .map(|coalition| {
            if coalition.is_empty() {
                let zero = vec![0.0; (test.num_features() + 1) * test.num_classes];
                return seed_accuracy(&zero, test);
            }
            let parts: Vec<&Dataset> = coalition.members().map(|i| &shards[i]).collect();
            let pooled = Dataset::concat(&parts);
            let flat = seed_train(&pooled, train);
            seed_accuracy(&flat, test)
        })
        .collect()
}

/// Opt coalition-retrain sweep: the library path (zero-copy views,
/// blocked GEMM, prepared test design).
fn opt_retrain_sweep(utility: &RetrainUtility<'_>, n: usize) -> Vec<f64> {
    Coalition::powerset(n)
        .map(|coalition| utility.evaluate(coalition))
        .collect()
}

/// One local training over a (features × classes) grid — model dims 650,
/// 1290 and 1300 — seed pipeline vs the library's batched kernels.
fn bench_logreg_train(c: &mut Criterion) {
    let mut group = c.benchmark_group("logreg_train");
    group.sample_size(10);
    for (features, classes) in [(64usize, 10usize), (128, 10), (64, 20)] {
        let ds = SyntheticDigits {
            instances: 2000,
            features,
            classes,
            ..SyntheticDigits::default()
        }
        .generate(1);
        let dim = (features + 1) * classes;
        // The two pipelines must produce bit-identical weights; the
        // speedup below is engineering, not numerical drift.
        assert_eq!(
            seed_train(&ds, &config()),
            train_model(&ds, &config()).to_flat(),
            "seed and opt trainers diverged at dim {dim}"
        );
        group.bench_with_input(BenchmarkId::new("seed", dim), &ds, |b, ds| {
            b.iter(|| seed_train(black_box(ds), &config()))
        });
        group.bench_with_input(BenchmarkId::new("opt", dim), &ds, |b, ds| {
            b.iter(|| train_model(black_box(ds), &config()).to_flat())
        });
    }
    group.finish();
}

/// The native-SV ground-truth workload: all 2^4 coalitions of a 4-owner
/// world retrained and scored at the Table I model dimensionality
/// (dim = 650).
fn bench_coalition_retrain(c: &mut Criterion) {
    let mut fl = FlConfig::quick_demo();
    fl.num_owners = 4;
    fl.sigma = 1.0;
    fl.train = TrainConfig {
        learning_rate: 0.5,
        epochs: 8,
        l2: 1e-4,
    };
    let world = World::generate(&fl).expect("valid config");
    let utility = RetrainUtility::new(&world.shards, &world.test, fl.train);
    assert_eq!(
        seed_retrain_sweep(&world.shards, &world.test, &fl.train),
        opt_retrain_sweep(&utility, fl.num_owners),
        "seed and opt coalition sweeps diverged"
    );

    let mut group = c.benchmark_group("coalition_retrain");
    group.sample_size(10);
    group.bench_function("seed/n4", |b| {
        b.iter(|| seed_retrain_sweep(black_box(&world.shards), &world.test, &fl.train))
    });
    group.bench_function("opt/n4", |b| {
        b.iter(|| {
            let utility = RetrainUtility::new(black_box(&world.shards), &world.test, fl.train);
            opt_retrain_sweep(&utility, fl.num_owners)
        })
    });
    group.finish();
}

/// One `u(W)` call: accuracy of a flat model on the test set. GroupSV
/// performs 2^m of these per round; the prepared-design path conditions
/// the test matrix once instead of per call.
fn bench_utility_evaluation(c: &mut Criterion) {
    let ds = SyntheticDigits {
        instances: 1124, // the paper's 20% test split of 5620
        ..SyntheticDigits::default()
    }
    .generate(2);
    let model = train_model(&ds, &config());
    let flat = model.to_flat();
    let mut group = c.benchmark_group("utility_accuracy_eval");
    group.bench_function("seed", |b| b.iter(|| seed_accuracy(black_box(&flat), &ds)));
    let design = Design::new(&ds);
    group.bench_function("opt", |b| {
        b.iter(|| {
            let m = LogisticModel::from_flat(black_box(&flat), 64, 10);
            model_accuracy_design(&m, &design)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_logreg_train,
    bench_coalition_retrain,
    bench_utility_evaluation
);
criterion_main!(benches);
