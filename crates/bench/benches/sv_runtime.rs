//! Criterion bench behind Table I: GroupSV (per m) vs NativeSV.
//!
//! Uses a reduced dataset so a full Criterion sampling run stays in
//! minutes; the `experiments table1` binary measures the paper-scale
//! wall-clock once instead of statistically.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use fedchain::config::FlConfig;
use fedchain::contract_fl::AccuracyUtility;
use fedchain::ground_truth::RetrainUtility;
use fedchain::world::World;
use fl_ml::dataset::SyntheticDigits;
use fl_ml::TrainConfig;
use numeric::linalg::mean_vectors;
use shapley::coalition::{binomial, Coalition};
use shapley::estimator::{Exact, MonteCarlo, Stratified, SvEstimator};
use shapley::exact_shapley;
use shapley::group::{group_shapley, shapley_over_group_models, GroupModelGame, GroupSvConfig};
use shapley::monte_carlo::McConfig;
use shapley::stratified::StratifiedConfig;
use shapley::utility::{model_utility_fn, CachedUtility, ModelUtility};

fn bench_config() -> FlConfig {
    let mut config = FlConfig::paper_setting();
    config.sigma = 1.0;
    config.data = SyntheticDigits {
        instances: 600,
        ..SyntheticDigits::default()
    };
    config.train = TrainConfig {
        learning_rate: 0.5,
        epochs: 5,
        l2: 1e-4,
    };
    config
}

fn bench_group_sv(c: &mut Criterion) {
    let config = bench_config();
    let world = World::generate(&config).expect("valid config");
    let updates = world.local_updates(&config);
    let utility = AccuracyUtility::new(&world.test, config.data.features, config.data.classes);

    let mut group = c.benchmark_group("group_sv");
    group.sample_size(10);
    for m in [2usize, 3, 5, 7, 9] {
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, &m| {
            b.iter(|| {
                group_shapley(
                    black_box(&updates),
                    &utility,
                    &GroupSvConfig {
                        num_groups: m,
                        seed: config.permutation_seed,
                        round: 0,
                    },
                )
            })
        });
    }
    group.finish();
}

fn bench_native_sv(c: &mut Criterion) {
    // Native SV retrains 2^n models; keep n small for a samplable bench.
    let mut config = bench_config();
    config.num_owners = 6;
    let world = World::generate(&config).expect("valid config");

    let mut group = c.benchmark_group("native_sv");
    group.sample_size(10);
    group.bench_function("retrain_n6", |b| {
        b.iter(|| {
            let utility = RetrainUtility::new(&world.shards, &world.test, config.train);
            let cached = CachedUtility::new(&utility);
            exact_shapley(black_box(&cached))
        })
    });
    group.finish();
}

/// The seed implementation of `shapley_over_group_models`, kept verbatim
/// as the regression baseline: per-coalition member clones +
/// `mean_vectors`, sequential powerset walk. The `group_sv_models/seed/m`
/// vs `group_sv_models/opt/m` pairs in `BENCH_sv_runtime.json` are this
/// function against the library's incremental-sum parallel rewrite.
fn seed_shapley_over_group_models(
    group_models: &[Vec<f64>],
    utility: &impl ModelUtility,
) -> (Vec<f64>, usize) {
    let m = group_models.len();
    let mut utility_cache = vec![0.0f64; 1usize << m];
    let mut evaluations = 0usize;
    for coalition in Coalition::powerset(m) {
        let value = if coalition.is_empty() {
            utility.of_empty()
        } else {
            let members: Vec<Vec<f64>> = coalition
                .members()
                .map(|j| group_models[j].clone())
                .collect();
            let w_s = mean_vectors(&members);
            utility.of_model(&w_s)
        };
        utility_cache[coalition.0 as usize] = value;
        evaluations += 1;
    }
    let weights: Vec<f64> = (0..m)
        .map(|s| 1.0 / (m as f64 * binomial(m - 1, s)))
        .collect();
    let mut per_group = vec![0.0f64; m];
    for (j, vj) in per_group.iter_mut().enumerate() {
        let others = Coalition::grand(m).without(j);
        let mut acc = 0.0;
        for s in others.subsets() {
            let marginal = utility_cache[s.with(j).0 as usize] - utility_cache[s.0 as usize];
            acc += weights[s.len()] * marginal;
        }
        *vj = acc;
    }
    (per_group, evaluations)
}

/// GroupSV's on-chain core at paper model dimensionality (650 weights)
/// with a cheap deterministic utility, so the measured cost is the
/// coalition-model construction + enumeration machinery itself — the
/// part this workspace optimizes — not an arbitrary inference workload.
fn bench_group_sv_models(c: &mut Criterion) {
    let dim = 650usize;
    let utility = model_utility_fn(
        |w: &[f64]| {
            let s: f64 = w.iter().map(|x| x * x).sum();
            s.sqrt()
        },
        0.0,
    );

    let mut group = c.benchmark_group("group_sv_models");
    group.sample_size(10);
    for m in [4usize, 8, 12, 16] {
        let models: Vec<Vec<f64>> = (0..m)
            .map(|j| {
                (0..dim)
                    .map(|d| ((j * dim + d) as f64 * 0.37).sin())
                    .collect()
            })
            .collect();
        group.bench_with_input(BenchmarkId::new("seed", m), &models, |b, models| {
            b.iter(|| seed_shapley_over_group_models(black_box(models), &utility))
        });
        group.bench_with_input(BenchmarkId::new("opt", m), &models, |b, models| {
            b.iter(|| shapley_over_group_models(black_box(models), &utility))
        });
    }
    group.finish();
}

/// The estimator layer over the contract's group-model game at paper
/// model dimensionality, across group counts the exact path cannot
/// reach: `exact` runs only at m = 16 (the `2^m` wall), while the
/// sampling estimators cover m = 16/32/48 — the workload behind the
/// 64-group on-chain cap. m > 25 also exercises the game's direct
/// member-summation backing (the subset-sum tables are exact-cap only).
fn bench_sv_estimator(c: &mut Criterion) {
    let dim = 650usize;
    let utility = model_utility_fn(
        |w: &[f64]| {
            let s: f64 = w.iter().map(|x| x * x).sum();
            s.sqrt()
        },
        0.0,
    );

    let mut group = c.benchmark_group("sv_estimator");
    group.sample_size(10);
    for m in [16usize, 32, 48] {
        let models: Vec<Vec<f64>> = (0..m)
            .map(|j| {
                (0..dim)
                    .map(|d| ((j * dim + d) as f64 * 0.37).sin())
                    .collect()
            })
            .collect();
        let game = GroupModelGame::new(&models, &utility);
        if m <= 16 {
            group.bench_with_input(BenchmarkId::new("exact", m), &m, |b, _| {
                b.iter(|| Exact.estimate(black_box(&game)))
            });
        }
        group.bench_with_input(BenchmarkId::new("stratified", m), &m, |b, _| {
            b.iter(|| {
                Stratified {
                    config: StratifiedConfig {
                        samples_per_stratum: 4,
                        seed: 42,
                    },
                }
                .estimate(black_box(&game))
            })
        });
        group.bench_with_input(BenchmarkId::new("monte_carlo", m), &m, |b, &m| {
            b.iter(|| {
                MonteCarlo {
                    config: McConfig {
                        permutations: 2 * m,
                        seed: 42,
                        truncation_tolerance: None,
                    },
                }
                .estimate(black_box(&game))
            })
        });
    }
    group.finish();
}

/// Dropout recovery (the round state machine's Recovering→Evaluated
/// work): reconstruct the dropped DH keys from their Shamir escrow
/// shares (verified against the advertised public keys) and strip the
/// residual pairwise masks from the survivors' partial aggregate —
/// measured at paper-adjacent and 10× model dimensionality, for a single
/// dropout and the ⌈n/3⌉ acceptance case.
fn bench_secure_agg_recovery(c: &mut Criterion) {
    use fl_crypto::dh::{DhGroup, DhKeyPair};
    use fl_crypto::dropout::{escrow_private_key, recover_dropout_set, DroppedParty};
    use fl_crypto::secure_agg::{KeyDirectory, PartyState};
    use fl_crypto::shamir::{Shamir, Share};
    use fl_crypto::ChaChaPrg;
    use numeric::FixedCodec;

    let n = 9usize;
    let threshold = n / 2 + 1;
    let round = 0u64;
    let dh = DhGroup::simulation_256();
    let shamir = Shamir::default();
    let codec = FixedCodec::default();

    let keypairs: Vec<DhKeyPair> = (0..n)
        .map(|i| dh.keypair_from_seed(&[i as u8 + 1; 32]))
        .collect();
    let mut directory = KeyDirectory::new();
    for (i, kp) in keypairs.iter().enumerate() {
        directory
            .advertise(i as u32, kp.public)
            .expect("unique ids");
    }
    let escrowed: Vec<Vec<Share>> = keypairs
        .iter()
        .enumerate()
        .map(|(i, kp)| {
            let mut prg = ChaChaPrg::from_seed(&[i as u8 + 40; 32]);
            escrow_private_key(&shamir, kp, threshold, n, &mut prg).expect("valid escrow")
        })
        .collect();

    let mut group = c.benchmark_group("secure_agg_recovery");
    group.sample_size(10);
    for dim in [1_000usize, 10_000] {
        let weights: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                (0..dim)
                    .map(|d| ((i * dim + d) as f64 * 0.37).sin())
                    .collect()
            })
            .collect();
        let submissions: Vec<Vec<u64>> = (0..n)
            .map(|i| {
                let party = PartyState::derive(&dh, i as u32, &keypairs[i], &directory)
                    .expect("cohort derives");
                party.masked_update(&codec, round, &weights[i])
            })
            .collect();
        for drops in [1usize, n.div_ceil(3)] {
            // The last `drops` owners vanish; survivors' masked
            // submissions form the partial sum to correct.
            let dropped_ids: Vec<usize> = (n - drops..n).collect();
            let survivor_ids: Vec<usize> = (0..n - drops).collect();
            let mut partial = vec![0u64; dim];
            for &s in &survivor_ids {
                FixedCodec::ring_add_assign(&mut partial, &submissions[s]);
            }
            let survivors: Vec<(u32, numeric::U256)> = survivor_ids
                .iter()
                .map(|&s| (s as u32, keypairs[s].public))
                .collect();
            let dropped: Vec<DroppedParty> = dropped_ids
                .iter()
                .map(|&d| DroppedParty {
                    id: d as u32,
                    advertised_public: keypairs[d].public,
                    shares: survivor_ids
                        .iter()
                        .take(threshold)
                        .map(|&s| escrowed[d][s].clone())
                        .collect(),
                })
                .collect();
            group.bench_with_input(
                BenchmarkId::new(format!("reconstruct_strip/dim{dim}"), drops),
                &partial,
                |b, partial| {
                    b.iter(|| {
                        let mut sum = partial.clone();
                        recover_dropout_set(
                            &shamir,
                            &dh,
                            &mut sum,
                            black_box(&dropped),
                            &survivors,
                            threshold,
                            round,
                        )
                        .expect("recovery succeeds");
                        sum
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_group_sv,
    bench_native_sv,
    bench_group_sv_models,
    bench_sv_estimator,
    bench_secure_agg_recovery
);
criterion_main!(benches);
