//! Criterion bench behind Table I: GroupSV (per m) vs NativeSV.
//!
//! Uses a reduced dataset so a full Criterion sampling run stays in
//! minutes; the `experiments table1` binary measures the paper-scale
//! wall-clock once instead of statistically.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use fedchain::config::FlConfig;
use fedchain::contract_fl::AccuracyUtility;
use fedchain::ground_truth::RetrainUtility;
use fedchain::world::World;
use fl_ml::dataset::SyntheticDigits;
use fl_ml::TrainConfig;
use shapley::exact_shapley;
use shapley::group::{group_shapley, GroupSvConfig};
use shapley::utility::CachedUtility;

fn bench_config() -> FlConfig {
    let mut config = FlConfig::paper_setting();
    config.sigma = 1.0;
    config.data = SyntheticDigits {
        instances: 600,
        ..SyntheticDigits::default()
    };
    config.train = TrainConfig {
        learning_rate: 0.5,
        epochs: 5,
        l2: 1e-4,
    };
    config
}

fn bench_group_sv(c: &mut Criterion) {
    let config = bench_config();
    let world = World::generate(&config).expect("valid config");
    let updates = world.local_updates(&config);
    let utility =
        AccuracyUtility::new(&world.test, config.data.features, config.data.classes);

    let mut group = c.benchmark_group("group_sv");
    group.sample_size(10);
    for m in [2usize, 3, 5, 7, 9] {
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, &m| {
            b.iter(|| {
                group_shapley(
                    black_box(&updates),
                    &utility,
                    &GroupSvConfig {
                        num_groups: m,
                        seed: config.permutation_seed,
                        round: 0,
                    },
                )
            })
        });
    }
    group.finish();
}

fn bench_native_sv(c: &mut Criterion) {
    // Native SV retrains 2^n models; keep n small for a samplable bench.
    let mut config = bench_config();
    config.num_owners = 6;
    let world = World::generate(&config).expect("valid config");

    let mut group = c.benchmark_group("native_sv");
    group.sample_size(10);
    group.bench_function("retrain_n6", |b| {
        b.iter(|| {
            let utility =
                RetrainUtility::new(&world.shards, &world.test, config.train);
            let cached = CachedUtility::new(&utility);
            exact_shapley(black_box(&cached))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_group_sv, bench_native_sv);
criterion_main!(benches);
