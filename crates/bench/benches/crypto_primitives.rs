//! Microbenchmarks for the cryptographic substrate — the per-round cost
//! drivers of the secure-aggregation layer.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use fl_crypto::dh::DhGroup;
use fl_crypto::masking::PairwiseMasker;
use fl_crypto::sha256::sha256;
use fl_crypto::ChaChaPrg;

fn bench_sha256(c: &mut Criterion) {
    let mut group = c.benchmark_group("sha256");
    for size in [64usize, 1024, 65536] {
        let data = vec![0xabu8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &data, |b, data| {
            b.iter(|| sha256(black_box(data)))
        });
    }
    group.finish();
}

fn bench_chacha_keystream(c: &mut Criterion) {
    let mut group = c.benchmark_group("chacha20");
    for words in [650usize, 65_000] {
        group.throughput(Throughput::Bytes(words as u64 * 8));
        group.bench_with_input(BenchmarkId::from_parameter(words), &words, |b, &words| {
            b.iter(|| {
                let mut prg = ChaChaPrg::from_seed(&[7u8; 32]);
                prg.gen_u64_vec(black_box(words))
            })
        });
    }
    group.finish();
}

fn bench_dh_exchange(c: &mut Criterion) {
    let group256 = DhGroup::simulation_256();
    let alice = group256.keypair_from_seed(&[1u8; 32]);
    let bob = group256.keypair_from_seed(&[2u8; 32]);
    c.bench_function("dh_shared_key_256", |b| {
        b.iter(|| group256.shared_key(black_box(&alice.private), black_box(&bob.public)))
    });
}

fn bench_mask_round(c: &mut Criterion) {
    // Masking one model update (dim = 650, the digits model) against 8
    // peers — one owner's per-round masking work in the paper's setting.
    let masker = PairwiseMasker::new([9u8; 32]);
    c.bench_function("mask_650dim_8peers", |b| {
        b.iter(|| {
            let mut update = vec![0u64; 650];
            for peer in 1..=8u32 {
                masker.apply(0, peer, black_box(3), &mut update);
            }
            update
        })
    });
}

/// The seed mask-expansion path, kept verbatim as the regression
/// baseline: HKDF seed derivation followed by `dim` per-`u64` PRG draws
/// (what `ChaChaPrg::gen_u64_vec` did before the whole-block fill). The
/// `mask_expand/seed/dim` vs `mask_expand/opt/dim` pairs in
/// `BENCH_sv_runtime.json` are this function against
/// `PairwiseMasker::mask_for_round`.
fn seed_mask_expansion(pair_key: &[u8; 32], round: u64, dim: usize) -> Vec<u64> {
    let mut info = [0u8; 16];
    info[..8].copy_from_slice(b"round/v1");
    info[8..].copy_from_slice(&round.to_be_bytes());
    let okm = fl_crypto::hkdf::derive(b"transparent-fl/mask-seed", pair_key, &info, 32);
    let mut seed = [0u8; 32];
    seed.copy_from_slice(&okm);
    let mut prg = ChaChaPrg::from_seed(&seed);
    (0..dim).map(|_| prg.next_u64()).collect()
}

fn bench_mask_expansion(c: &mut Criterion) {
    let pair_key = [9u8; 32];
    let masker = PairwiseMasker::new(pair_key);
    let mut group = c.benchmark_group("mask_expand");
    for dim in [1_000usize, 10_000] {
        group.throughput(Throughput::Bytes(dim as u64 * 8));
        group.bench_with_input(BenchmarkId::new("seed", dim), &dim, |b, &dim| {
            b.iter(|| seed_mask_expansion(black_box(&pair_key), 3, dim))
        });
        group.bench_with_input(BenchmarkId::new("opt", dim), &dim, |b, &dim| {
            b.iter(|| masker.mask_for_round(black_box(3), dim))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_sha256,
    bench_chacha_keystream,
    bench_dh_exchange,
    bench_mask_round,
    bench_mask_expansion
);
criterion_main!(benches);
