//! Microbenchmarks for the cryptographic substrate — the per-round cost
//! drivers of the secure-aggregation layer.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use fl_crypto::dh::{DhGroup, DhGroup2048, DhGroupW, DhKeyPairW};
use fl_crypto::masking::PairwiseMasker;
use fl_crypto::sha256::sha256;
use fl_crypto::ChaChaPrg;
use numeric::uint::Uint;

fn bench_sha256(c: &mut Criterion) {
    let mut group = c.benchmark_group("sha256");
    for size in [64usize, 1024, 65536] {
        let data = vec![0xabu8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &data, |b, data| {
            b.iter(|| sha256(black_box(data)))
        });
    }
    group.finish();
}

fn bench_chacha_keystream(c: &mut Criterion) {
    let mut group = c.benchmark_group("chacha20");
    for words in [650usize, 65_000] {
        group.throughput(Throughput::Bytes(words as u64 * 8));
        group.bench_with_input(BenchmarkId::from_parameter(words), &words, |b, &words| {
            b.iter(|| {
                let mut prg = ChaChaPrg::from_seed(&[7u8; 32]);
                prg.gen_u64_vec(black_box(words))
            })
        });
    }
    group.finish();
}

fn bench_dh_exchange(c: &mut Criterion) {
    let group256 = DhGroup::simulation_256();
    let alice = group256.keypair_from_seed(&[1u8; 32]);
    let bob = group256.keypair_from_seed(&[2u8; 32]);
    c.bench_function("dh_shared_key_256", |b| {
        b.iter(|| {
            group256
                .shared_key(black_box(&alice.private), black_box(&bob.public))
                .unwrap()
        })
    });
}

/// The seed DH agreement path, kept verbatim as the regression baseline:
/// the retained naive square-and-multiply ladder
/// ([`Uint::mod_pow_naive`] — one binary-reduction `mod_mul` per exponent
/// bit, no Montgomery residency, no windowing) followed by the same HKDF
/// expansion the library applies. The `dh_agreement/seed/<bits>` vs
/// `dh_agreement/opt/<bits>` pairs in `BENCH_crypto_primitives.json` are
/// this function against `DhGroupW::shared_key`.
fn seed_shared_key<const LIMBS: usize>(
    p: &Uint<LIMBS>,
    my_private: &Uint<LIMBS>,
    other_public: &Uint<LIMBS>,
) -> [u8; 32] {
    let element = other_public.mod_pow_naive(my_private, p);
    let okm = fl_crypto::hkdf::derive(
        b"transparent-fl/dh-pair-key",
        &element.to_be_bytes(),
        b"",
        32,
    );
    okm.try_into().expect("HKDF returned 32 bytes")
}

/// The seed keypair-generation path: per-attempt byte sampling (the PRG
/// stream is shared with the optimized path, so the sampled private key
/// is identical) and the naive ladder for the public derivation.
fn seed_generate_keypair<const LIMBS: usize>(
    group: &DhGroupW<LIMBS>,
    prg: &mut ChaChaPrg,
) -> DhKeyPairW<LIMBS> {
    let upper = group
        .p
        .checked_sub(&Uint::from_u64(3))
        .expect("p is a large prime");
    let private = loop {
        let mut bytes = vec![0u8; LIMBS * 8];
        prg.fill_bytes(&mut bytes);
        let candidate = Uint::<LIMBS>::from_be_bytes(&bytes);
        if candidate < upper {
            break candidate.wrapping_add(&Uint::from_u64(2));
        }
    };
    let public = group.g.mod_pow_naive(&private, &group.p);
    DhKeyPairW { private, public }
}

fn bench_dh_agreement(c: &mut Criterion) {
    let mut group = c.benchmark_group("dh_agreement");
    // Naive 2048-bit exponentiations cost ~10^2 ms each; the shim's
    // calibrated samples keep the group affordable at a smaller count.
    group.sample_size(10);

    let g256 = DhGroup::simulation_256();
    let a256 = g256.keypair_from_seed(&[1u8; 32]);
    let b256 = g256.keypair_from_seed(&[2u8; 32]);
    assert_eq!(
        seed_shared_key(&g256.p, &a256.private, &b256.public),
        g256.shared_key(&a256.private, &b256.public).unwrap(),
        "opt path must be bit-identical to the seed oracle before sampling"
    );
    group.bench_function(BenchmarkId::new("seed", 256), |b| {
        b.iter(|| seed_shared_key(&g256.p, black_box(&a256.private), black_box(&b256.public)))
    });
    group.bench_function(BenchmarkId::new("opt", 256), |b| {
        b.iter(|| {
            g256.shared_key(black_box(&a256.private), black_box(&b256.public))
                .unwrap()
        })
    });

    let g2048 = DhGroup2048::modp_2048();
    let a2048 = g2048.keypair_from_seed(&[3u8; 32]);
    let b2048 = g2048.keypair_from_seed(&[4u8; 32]);
    assert_eq!(
        seed_shared_key(&g2048.p, &a2048.private, &b2048.public),
        g2048.shared_key(&a2048.private, &b2048.public).unwrap(),
        "opt path must be bit-identical to the seed oracle before sampling"
    );
    group.bench_function(BenchmarkId::new("seed", 2048), |b| {
        b.iter(|| {
            seed_shared_key(
                &g2048.p,
                black_box(&a2048.private),
                black_box(&b2048.public),
            )
        })
    });
    group.bench_function(BenchmarkId::new("opt", 2048), |b| {
        b.iter(|| {
            g2048
                .shared_key(black_box(&a2048.private), black_box(&b2048.public))
                .unwrap()
        })
    });
    group.finish();
}

fn bench_dh_keygen(c: &mut Criterion) {
    let mut group = c.benchmark_group("dh_keygen");
    group.sample_size(10);
    let g256 = DhGroup::simulation_256();
    assert_eq!(
        seed_generate_keypair(&g256, &mut ChaChaPrg::from_seed(&[9u8; 32])),
        g256.keypair_from_seed(&[9u8; 32]),
        "keygen must sample the identical keypair before sampling"
    );
    group.bench_function(BenchmarkId::new("seed", 256), |b| {
        b.iter(|| {
            let mut prg = ChaChaPrg::from_seed(&[9u8; 32]);
            seed_generate_keypair(black_box(&g256), &mut prg)
        })
    });
    group.bench_function(BenchmarkId::new("opt", 256), |b| {
        b.iter(|| g256.keypair_from_seed(black_box(&[9u8; 32])))
    });
    group.finish();
}

fn bench_dh_batch_setup(c: &mut Criterion) {
    // One owner's full per-round agreement fan-out: n pair keys against n
    // peer public keys — the n² setup cost driver at cohort scale.
    let mut group = c.benchmark_group("dh_batch_setup");
    group.sample_size(10);
    let g256 = DhGroup::simulation_256();
    let me = g256.keypair_from_seed(&[42u8; 32]);
    for n in [8usize, 32, 128] {
        let peers: Vec<numeric::U256> = (0..n)
            .map(|i| {
                let mut seed = [0u8; 32];
                seed[0] = i as u8;
                seed[1] = 1;
                g256.keypair_from_seed(&seed).public
            })
            .collect();
        let seed_keys: Vec<[u8; 32]> = peers
            .iter()
            .map(|pk| seed_shared_key(&g256.p, &me.private, pk))
            .collect();
        assert_eq!(
            seed_keys,
            g256.shared_keys_batch(&me.private, &peers).unwrap(),
            "batched agreements must be bit-identical to the seed oracle"
        );
        group.bench_function(BenchmarkId::new("seed", n), |b| {
            b.iter(|| {
                peers
                    .iter()
                    .map(|pk| seed_shared_key(&g256.p, black_box(&me.private), pk))
                    .collect::<Vec<_>>()
            })
        });
        group.bench_function(BenchmarkId::new("opt", n), |b| {
            b.iter(|| {
                g256.shared_keys_batch(black_box(&me.private), black_box(&peers))
                    .unwrap()
            })
        });
    }
    group.finish();
}

fn bench_mask_round(c: &mut Criterion) {
    // Masking one model update (dim = 650, the digits model) against 8
    // peers — one owner's per-round masking work in the paper's setting.
    let masker = PairwiseMasker::new([9u8; 32]);
    c.bench_function("mask_650dim_8peers", |b| {
        b.iter(|| {
            let mut update = vec![0u64; 650];
            for peer in 1..=8u32 {
                masker.apply(0, peer, black_box(3), &mut update);
            }
            update
        })
    });
}

/// The seed mask-expansion path, kept verbatim as the regression
/// baseline: HKDF seed derivation followed by `dim` per-`u64` PRG draws
/// (what `ChaChaPrg::gen_u64_vec` did before the whole-block fill). The
/// `mask_expand/seed/dim` vs `mask_expand/opt/dim` pairs in
/// `BENCH_sv_runtime.json` are this function against
/// `PairwiseMasker::mask_for_round`.
fn seed_mask_expansion(pair_key: &[u8; 32], round: u64, dim: usize) -> Vec<u64> {
    let mut info = [0u8; 16];
    info[..8].copy_from_slice(b"round/v1");
    info[8..].copy_from_slice(&round.to_be_bytes());
    let okm = fl_crypto::hkdf::derive(b"transparent-fl/mask-seed", pair_key, &info, 32);
    let mut seed = [0u8; 32];
    seed.copy_from_slice(&okm);
    let mut prg = ChaChaPrg::from_seed(&seed);
    (0..dim).map(|_| prg.next_u64()).collect()
}

fn bench_mask_expansion(c: &mut Criterion) {
    let pair_key = [9u8; 32];
    let masker = PairwiseMasker::new(pair_key);
    let mut group = c.benchmark_group("mask_expand");
    for dim in [1_000usize, 10_000] {
        group.throughput(Throughput::Bytes(dim as u64 * 8));
        group.bench_with_input(BenchmarkId::new("seed", dim), &dim, |b, &dim| {
            b.iter(|| seed_mask_expansion(black_box(&pair_key), 3, dim))
        });
        group.bench_with_input(BenchmarkId::new("opt", dim), &dim, |b, &dim| {
            b.iter(|| masker.mask_for_round(black_box(3), dim))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_sha256,
    bench_chacha_keystream,
    bench_dh_exchange,
    bench_dh_agreement,
    bench_dh_keygen,
    bench_dh_batch_setup,
    bench_mask_round,
    bench_mask_expansion
);
criterion_main!(benches);
