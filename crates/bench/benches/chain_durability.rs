//! Durability benchmarks: write-ahead-log append/flush cost, cold-start
//! replay throughput (blocks/s) vs chain length, and torn-tail recovery
//! (scan + truncate + replay of the surviving prefix).
//!
//! Committed medians live in `BENCH_chain_durability.json`; regenerate
//! with `CRITERION_JSON=out.jsonl cargo bench --bench chain_durability`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use fl_chain::block::Block;
use fl_chain::durability::{DurabilityConfig, DurableStore};
use fl_chain::hash::Hash32;
use fl_chain::log::{crc32, LogConfig, SegmentedLog};
use fl_chain::store::ChainStore;
use fl_chain::tx::Transaction;

/// Unique scratch directory, removed on drop.
struct TestDir(PathBuf);

impl TestDir {
    fn new(tag: &str) -> Self {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!(
            "fl-bench-durability-{tag}-{}-{n}",
            std::process::id()
        ));
        std::fs::create_dir_all(&path).expect("create bench dir");
        Self(path)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TestDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// One-transaction blocks with a fixed payload width, so the on-disk
/// record size — and therefore segment fill — is constant per block.
fn next_block(store: &ChainStore<Vec<u64>>, salt: u64) -> Block<Vec<u64>> {
    Block::assemble(
        store.height(),
        store.tip_digest(),
        Hash32::of_bytes(&salt.to_le_bytes()),
        0,
        store.height(),
        vec![Transaction::new(0, store.height(), vec![salt; 64])],
    )
}

fn config() -> DurabilityConfig {
    DurabilityConfig {
        log: LogConfig {
            segment_bytes: 64 * 1024,
        },
        snapshot_every: u64::MAX,
    }
}

/// Persist an `n`-block chain into `dir` and leave it cold on disk.
fn build_chain(dir: &Path, n: u64) {
    let (mut durable, _) = DurableStore::<Vec<u64>>::open(dir, config()).expect("fresh dir");
    for i in 0..n {
        let block = next_block(durable.store(), i);
        durable.append(block).expect("honest append");
    }
}

fn bench_log_append(c: &mut Criterion) {
    let mut group = c.benchmark_group("log_append");
    group.sample_size(20);
    // 100 records of 1 KiB per iteration: frame, CRC, buffer, then one
    // flush (write + sync) at the end — the per-block durability point.
    let payload = vec![0xa5u8; 1024];
    group.bench_function(BenchmarkId::new("flush_per_100", "1KiB"), |b| {
        b.iter(|| {
            let dir = TestDir::new("append");
            let (mut log, _) = SegmentedLog::open(dir.path(), config().log).expect("fresh dir");
            for _ in 0..100 {
                log.append(black_box(&payload)).expect("append");
            }
            log.flush().expect("flush");
            log.segment_id()
        })
    });
    group.finish();
}

fn bench_replay(c: &mut Criterion) {
    let mut group = c.benchmark_group("chain_replay");
    group.sample_size(20);
    for blocks in [16u64, 64, 256] {
        let dir = TestDir::new("replay");
        build_chain(dir.path(), blocks);
        group.bench_with_input(BenchmarkId::new("blocks", blocks), &dir, |b, dir| {
            b.iter(|| {
                // Cold open: scan segments, CRC every record, decode every
                // block, re-validate the whole chain through ChainStore.
                let (durable, report) =
                    DurableStore::<Vec<u64>>::open(black_box(dir.path()), config())
                        .expect("clean chain");
                assert_eq!(report.blocks, blocks);
                durable.store().height()
            })
        });
    }
    group.finish();
}

fn bench_torn_tail_recovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("torn_tail_recovery");
    group.sample_size(20);
    let blocks = 64u64;
    let dir = TestDir::new("torn");
    build_chain(dir.path(), blocks);
    let mut segments: Vec<PathBuf> = std::fs::read_dir(dir.path())
        .expect("read dir")
        .map(|e| e.expect("entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "seg"))
        .collect();
    segments.sort();
    let last_segment = segments.last().expect("segments exist").clone();
    let intact = std::fs::read(&last_segment).expect("read tail segment");
    group.bench_with_input(BenchmarkId::new("blocks", blocks), &dir, |b, dir| {
        b.iter(|| {
            // Re-tear each iteration: recovery physically truncates the
            // tail, so the torn state must be re-created to measure the
            // detect-truncate-replay path rather than a clean open.
            std::fs::write(&last_segment, &intact[..intact.len() - 9]).expect("tear tail");
            let (durable, report) =
                DurableStore::<Vec<u64>>::open(dir.path(), config()).expect("prefix recovers");
            assert!(report.truncated.is_some());
            assert_eq!(report.blocks, blocks - 1);
            durable.store().height()
        })
    });
    group.finish();
}

fn bench_crc(c: &mut Criterion) {
    let mut group = c.benchmark_group("crc32");
    for kib in [1usize, 64] {
        let payload = vec![0x5au8; kib * 1024];
        group.bench_with_input(BenchmarkId::new("KiB", kib), &payload, |b, payload| {
            b.iter(|| crc32(black_box(payload)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_log_append,
    bench_replay,
    bench_torn_tail_recovery,
    bench_crc
);
criterion_main!(benches);
