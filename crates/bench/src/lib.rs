//! Experiment harness for the paper's evaluation section.
//!
//! Every table and figure has a regeneration target (see DESIGN.md §4):
//!
//! | Paper artefact | Module | CLI |
//! |---|---|---|
//! | Fig. 1 — ground-truth SV vs σ | [`experiments::fig1`] | `experiments fig1` |
//! | Fig. 2 — GroupSV/native cosine similarity | [`experiments::fig2`] | `experiments fig2` |
//! | Table I — GroupSV vs NativeSV runtime | [`experiments::table1`] | `experiments table1` |
//! | Ext A — chain throughput (future work §VI-1) | [`experiments::ext_throughput`] | `experiments ext-throughput` |
//! | Ext B — adversarial participants (§VI-2) | [`experiments::ext_adversary`] | `experiments ext-adversary` |
//! | Ext C — privacy/resolution trade-off (§IV-B) | [`experiments::ext_privacy`] | `experiments ext-privacy` |
//!
//! Two scales are supported: `fast` (reduced instances/epochs, seconds to
//! minutes, same qualitative shape) and `paper` (the paper's 5620×64
//! dataset and n = 9 owners). Absolute runtimes differ from the paper's
//! Python/NumPy numbers by construction; the comparisons of interest are
//! *within-table shapes* (who wins, by what factor, where the curves
//! cross), which the harness asserts in its smoke tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod report;

pub use experiments::Scale;
