//! CLI regenerating every table and figure of the paper.
//!
//! ```text
//! experiments <fig1|fig2|table1|ext-throughput|ext-adversary|ext-privacy|all> [fast|paper]
//! ```
//!
//! Results print as aligned tables and are archived as JSON under
//! `target/experiments/`.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use fl_bench::experiments::{
    ext_adversary, ext_privacy, ext_rounds, ext_throughput, fig1, fig2, table1, Scale,
};
use fl_bench::report::Table;

fn artefact_dir() -> PathBuf {
    PathBuf::from("target/experiments")
}

fn emit(table: &Table, name: &str) {
    println!("{}", table.render());
    if let Err(e) = table.write_json(&artefact_dir(), name) {
        eprintln!("warning: could not archive {name}.json: {e}");
    }
}

fn run_one(which: &str, scale: Scale) -> Result<(), String> {
    let started = Instant::now();
    match which {
        "fig1" => {
            let rows = fig1::run(scale);
            emit(&fig1::render(&rows), "fig1");
        }
        "fig2" => {
            let points = fig2::run(scale);
            emit(&fig2::render(&points), "fig2");
        }
        "table1" => {
            let result = table1::run(scale);
            emit(&table1::render(&result), "table1");
        }
        "ext-throughput" => {
            let rows = ext_throughput::run(scale);
            emit(&ext_throughput::render(&rows), "ext_throughput");
        }
        "ext-adversary" => {
            let rows = ext_adversary::run(scale);
            emit(&ext_adversary::render(&rows), "ext_adversary");
        }
        "ext-privacy" => {
            let rows = ext_privacy::run(scale);
            emit(&ext_privacy::render(&rows), "ext_privacy");
        }
        "ext-rounds" => {
            let rows = ext_rounds::run(scale);
            emit(&ext_rounds::render(&rows), "ext_rounds");
        }
        other => return Err(format!("unknown experiment {other:?}")),
    }
    eprintln!(
        "[{which} completed in {:.1}s]\n",
        started.elapsed().as_secs_f64()
    );
    Ok(())
}

const ALL: [&str; 7] = [
    "fig1",
    "fig2",
    "table1",
    "ext-throughput",
    "ext-adversary",
    "ext-privacy",
    "ext-rounds",
];

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let which = args.first().map(String::as_str).unwrap_or("all");
    let scale = match args.get(1).map(String::as_str) {
        None => Scale::Fast,
        Some(s) => match Scale::parse(s) {
            Some(scale) => scale,
            None => {
                eprintln!("unknown scale {s:?}; use `fast` or `paper`");
                return ExitCode::FAILURE;
            }
        },
    };

    eprintln!("scale: {scale:?} (use `experiments <name> paper` for the full-size runs)\n");
    let result = if which == "all" {
        ALL.iter().try_for_each(|name| run_one(name, scale))
    } else {
        run_one(which, scale)
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("usage: experiments <{}|all> [fast|paper]", ALL.join("|"));
            ExitCode::FAILURE
        }
    }
}
