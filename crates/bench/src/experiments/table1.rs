//! Table I — wall-clock comparison of GroupSV vs NativeSV.
//!
//! Paper numbers (Python/NumPy, i7-6700K): GroupSV 2,3,4,7,11,20,39,77 s
//! for m = 2..9; NativeSV 316 s. The absolute values are not expected to
//! transfer to Rust; the *shape* is: GroupSV time grows with m (2^m
//! coalition evaluations) and NativeSV at n = 9 is an order of magnitude
//! above GroupSV at the same resolution (m = 9) because it trains 2^n
//! coalition models instead of training n and averaging.
//!
//! Since the estimator refactor the native and sampling baselines run
//! through the [`shapley::estimator::SvEstimator`] trait and report
//! their cost from the uniform [`shapley::estimator::SvEstimate`]
//! envelope, so the "models trained" column is measured, not hard-coded.

use std::time::Instant;

use fedchain::config::SvMethod;
use fedchain::contract_fl::AccuracyUtility;
use fedchain::ground_truth::RetrainUtility;
use fedchain::protocol::{FlProtocol, StageTimings};
use fedchain::world::World;
use shapley::estimator::{Exact, Stratified, SvEstimator};
use shapley::group::{group_shapley, GroupSvConfig};
use shapley::stratified::StratifiedConfig;
use shapley::utility::CachedUtility;

use crate::report::{secs, Table};

use super::Scale;

/// Cost of one on-chain round at a given dropout count — the ROADMAP's
/// recovery-cost column, fed from the round record's [`shapley::estimator::SvEstimate`]
/// diagnostics.
#[derive(Debug, Clone)]
pub struct RecoveryCost {
    /// Owners dropped in the round.
    pub dropped: usize,
    /// Wall-clock of the full on-chain round (setup block + round
    /// block(s), consensus included; a churned round commits the extra
    /// recovery block).
    pub secs: f64,
    /// Utility evaluations the round's estimator reported.
    pub utility_evaluations: usize,
    /// Blocks committed (2 for a full round, 3 with recovery).
    pub blocks: u64,
    /// Per-stage wall-clock breakdown from the run report.
    pub stages: StageTimings,
}

/// One owners-scaling measurement: wall-clock of a full on-chain round
/// at `num_owners` owners sharded into `num_cohorts` cohorts (1 = the
/// flat baseline round).
#[derive(Debug, Clone)]
pub struct OwnersScaling {
    /// Owner count n.
    pub num_owners: usize,
    /// Cohort count k of the round (1 = flat).
    pub num_cohorts: usize,
    /// Wall-clock of the full on-chain round, consensus included.
    pub secs: f64,
    /// Utility evaluations across both SV levels, from the round record.
    pub utility_evaluations: usize,
    /// Blocks committed (2 flat; 1 + k sharded).
    pub blocks: u64,
    /// Per-stage wall-clock breakdown from the run report.
    pub stages: StageTimings,
}

/// Timing results.
#[derive(Debug, Clone)]
pub struct Table1Result {
    /// `(m, seconds)` for GroupSV at each group count (includes the n
    /// local trainings, matching the paper's accounting).
    pub group_sv: Vec<(usize, f64)>,
    /// NativeSV seconds (2^n retrained coalition models).
    pub native_sv: f64,
    /// Utility evaluations the native estimator reported (`2^n`).
    pub native_evaluations: usize,
    /// Stratified-sampling seconds over the same retrain game (the
    /// related-work scalability baseline at per-user resolution).
    pub stratified_sv: f64,
    /// Utility evaluations the stratified estimator reported.
    pub stratified_evaluations: usize,
    /// Recovery cost at 0, 1, and ⌈n/3⌉ dropped owners.
    pub recovery: Vec<RecoveryCost>,
    /// Owners-scaling column: one on-chain round at n, 4n, and 16n
    /// owners, the larger settings cohort-sharded.
    pub scaling: Vec<OwnersScaling>,
    /// Owner count n.
    pub num_owners: usize,
}

/// Runs the timing comparison at σ = 1.0 (a representative noisy
/// setting; timing is insensitive to σ).
pub fn run(scale: Scale) -> Table1Result {
    let mut config = scale.config();
    config.sigma = 1.0;
    let world = World::generate(&config).expect("valid config");
    let n = config.num_owners;

    // GroupSV at m = 2..n. Each measurement includes the n local
    // trainings — in the protocol they happen every round before SV.
    let utility = AccuracyUtility::new(&world.test, config.data.features, config.data.classes);
    let mut group_sv = Vec::new();
    for m in 2..=n {
        let start = Instant::now();
        let updates = world.local_updates(&config);
        let _ = group_shapley(
            &updates,
            &utility,
            &GroupSvConfig {
                num_groups: m,
                seed: config.permutation_seed,
                round: 0,
            },
        );
        group_sv.push((m, start.elapsed().as_secs_f64()));
    }

    // NativeSV: 2^n coalition retrainings, through the estimator layer.
    let start = Instant::now();
    let retrain = RetrainUtility::new(&world.shards, &world.test, config.train);
    let cached = CachedUtility::new(&retrain);
    let native = Exact.estimate(&cached);
    let native_sv = start.elapsed().as_secs_f64();

    // Stratified sampling over the same game: per-user resolution like
    // NativeSV, polynomial evaluation budget. The cache dedups repeated
    // coalitions, so "models trained" ≤ the estimator's evaluation
    // count.
    let start = Instant::now();
    let cached = CachedUtility::new(&retrain);
    let stratified = Stratified {
        config: StratifiedConfig {
            samples_per_stratum: 2,
            seed: config.permutation_seed,
        },
    }
    .estimate(&cached);
    let stratified_sv = start.elapsed().as_secs_f64();

    // Recovery cost: one full on-chain round (through the mempool and
    // consensus) at 0, 1, and ⌈n/3⌉ dropped owners. Evaluation counts
    // come from the round record's SvEstimate diagnostics, so the column
    // is measured, not modeled.
    let mut recovery = Vec::new();
    for d in [0usize, 1, n.div_ceil(3)] {
        let mut round_config = scale.config();
        round_config.sigma = 1.0;
        round_config.rounds = 1;
        if d > 0 {
            // Drop the highest-positioned owners; owner 0 stays alive to
            // trigger evaluation.
            round_config.dropout_schedule = vec![(0, (n - d..n).collect())];
        }
        let mut protocol = FlProtocol::new(round_config).expect("valid config");
        let start = Instant::now();
        let report = protocol.run().expect("honest run");
        recovery.push(RecoveryCost {
            dropped: d,
            secs: start.elapsed().as_secs_f64(),
            utility_evaluations: report.round_records[0].utility_evaluations,
            blocks: report.blocks,
            stages: report.stages,
        });
    }

    // Owners scaling: the same on-chain round at n, 4n, and 16n owners,
    // the larger two sharded into 4 and 16 cohorts so the cohort size —
    // and with it the pairwise-mask and per-cohort SV cost — stays put.
    // Stratified sampling keeps the second-level cohort game polynomial;
    // a 4-miner committee keeps consensus fan-out fixed across rows.
    let mut scaling = Vec::new();
    for (owners, cohorts) in [(n, 1), (4 * n, 4), (16 * n, 16)] {
        let mut round_config = scale.config();
        round_config.sigma = 1.0;
        round_config.rounds = 1;
        round_config.num_owners = owners;
        round_config.num_cohorts = cohorts;
        round_config.miner_committee = 4.min(owners);
        round_config.sv_method = SvMethod::Stratified {
            samples_per_stratum: 2,
        };
        let mut protocol = FlProtocol::new(round_config).expect("valid config");
        let start = Instant::now();
        let report = protocol.run().expect("honest run");
        scaling.push(OwnersScaling {
            num_owners: owners,
            num_cohorts: cohorts,
            secs: start.elapsed().as_secs_f64(),
            utility_evaluations: report.round_records[0].utility_evaluations,
            blocks: report.blocks,
            stages: report.stages,
        });
    }

    Table1Result {
        group_sv,
        native_sv,
        native_evaluations: native.utility_evaluations,
        stratified_sv,
        stratified_evaluations: stratified.utility_evaluations,
        recovery,
        scaling,
        num_owners: n,
    }
}

/// Renders in the paper's layout, plus the recovery-cost columns
/// (`round d=k`: one full on-chain round with `k` dropped owners).
pub fn render(result: &Table1Result) -> Table {
    let mut headers: Vec<String> = vec!["method".into()];
    headers.extend(result.group_sv.iter().map(|(m, _)| format!("m={m}")));
    headers.push(format!("native (n={})", result.num_owners));
    headers.push(format!("stratified (n={})", result.num_owners));
    headers.extend(
        result
            .recovery
            .iter()
            .map(|r| format!("round d={}", r.dropped)),
    );
    headers.extend(
        result
            .scaling
            .iter()
            .map(|s| format!("shard n={} k={}", s.num_owners, s.num_cohorts)),
    );
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = Table::new(
        "Table I — time comparison: GroupSV (m=2..n) vs NativeSV vs StratifiedSV; \
         round d=k = full on-chain round with k dropouts (recovery cost); \
         shard n=N k=K = full on-chain round at N owners in K cohorts (owners scaling)",
        &header_refs,
    );
    let mut cells = vec!["time".to_owned()];
    cells.extend(result.group_sv.iter().map(|(_, t)| secs(*t)));
    cells.push(secs(result.native_sv));
    cells.push(secs(result.stratified_sv));
    cells.extend(result.recovery.iter().map(|r| secs(r.secs)));
    cells.extend(result.scaling.iter().map(|s| secs(s.secs)));
    table.push_row(cells);

    let mut speedup = vec!["native/group".to_owned()];
    speedup.extend(
        result
            .group_sv
            .iter()
            .map(|(_, t)| format!("{:.1}x", result.native_sv / t)),
    );
    speedup.push("1.0x".to_owned());
    speedup.push(format!("{:.1}x", result.native_sv / result.stratified_sv));
    speedup.extend(result.recovery.iter().map(|r| format!("{} blk", r.blocks)));
    speedup.extend(result.scaling.iter().map(|s| format!("{} blk", s.blocks)));
    table.push_row(speedup);

    let mut evals = vec!["utility evals".to_owned()];
    evals.extend(
        result
            .group_sv
            .iter()
            .map(|(m, _)| format!("{}", 1usize << m)),
    );
    evals.push(format!("{}", result.native_evaluations));
    evals.push(format!("{}", result.stratified_evaluations));
    evals.extend(
        result
            .recovery
            .iter()
            .map(|r| format!("{}", r.utility_evaluations)),
    );
    evals.extend(
        result
            .scaling
            .iter()
            .map(|s| format!("{}", s.utility_evaluations)),
    );
    table.push_row(evals);

    // Pipeline-stage breakdown (train+mask / assemble / commit /
    // evaluate) for the columns that drive a full on-chain round; the
    // standalone-estimator columns have no stages.
    let stage_cell = |s: &StageTimings| {
        format!(
            "t{} a{} c{} e{}",
            secs(s.train_mask),
            secs(s.assemble),
            secs(s.commit),
            secs(s.evaluate)
        )
    };
    let mut stages = vec!["stages t/a/c/e".to_owned()];
    stages.extend(result.group_sv.iter().map(|_| "-".to_owned()));
    stages.push("-".to_owned());
    stages.push("-".to_owned());
    stages.extend(result.recovery.iter().map(|r| stage_cell(&r.stages)));
    stages.extend(result.scaling.iter().map(|s| stage_cell(&s.stages)));
    table.push_row(stages);
    table
}
