//! Ext A — transaction-throughput bottleneck analysis (future work §VI-1).
//!
//! "We will pinpoint the potential bottlenecks (such as transaction
//! throughput) of implementing secure federated learning with the
//! blockchain." The experiment runs the real protocol for one round at
//! several cohort sizes, collects gas and on-chain byte volume, and
//! replays the round's communication pattern through the discrete-event
//! network to estimate makespan and tx/s on a WAN (cross-silo) topology.

use fedchain::protocol::FlProtocol;
use fl_chain::net::{LatencyModel, SimNetwork};
use fl_ml::dataset::SyntheticDigits;

use crate::report::{f2, Table};

use super::Scale;

/// One cohort-size measurement.
#[derive(Debug, Clone)]
pub struct ThroughputRow {
    /// Number of owners (= miners).
    pub num_owners: usize,
    /// Flat model dimension (bytes on the wire = 8·dim per update).
    pub model_dim: usize,
    /// Transactions in the round block (n updates + 1 evaluate).
    pub txs: u64,
    /// Gas consumed by the round block.
    pub gas: u64,
    /// Simulated WAN makespan of the round (seconds).
    pub makespan_secs: f64,
    /// Effective throughput (committed tx / makespan).
    pub tx_per_sec: f64,
    /// Total bytes moved on the network.
    pub bytes: u64,
}

/// Runs the sweep over cohort sizes.
pub fn run(scale: Scale) -> Vec<ThroughputRow> {
    let owner_counts: Vec<usize> = match scale {
        Scale::Fast => vec![3, 5, 7, 9],
        Scale::Paper => vec![3, 5, 7, 9, 12, 15],
    };
    owner_counts
        .into_iter()
        .map(|n| measure_cohort(scale, n))
        .collect()
}

fn measure_cohort(scale: Scale, n: usize) -> ThroughputRow {
    // Small data: throughput depends on model dim and cohort size, not on
    // training quality, so keep the ML part cheap.
    let mut config = scale.config();
    config.num_owners = n;
    config.num_groups = (n / 3).max(1);
    config.rounds = 1;
    config.data = SyntheticDigits {
        instances: (n * 40).max(200),
        ..config.data
    };
    config.train.epochs = 3;
    let mut protocol = FlProtocol::new(config.clone()).expect("valid config");
    let report = protocol.run().expect("honest run commits");
    // The round block is the second commit (after the key block).
    let round_commit = &report.commits[1];
    let model_dim = (config.data.features + 1) * config.data.classes;
    let update_bytes = model_dim * 8;

    // Replay the communication pattern on a WAN:
    //  1. every owner gossips its round transactions to the leader's
    //     mempool as one bundle (batched admission: the masked update,
    //     plus the evaluation trigger for owner 0). Like the leader's
    //     own update, the trigger stays local when its sender leads;
    //  2. the leader broadcasts the block (n updates) to all miners;
    //  3. every miner returns a vote (small);
    //  4. the leader broadcasts the commit certificate (small).
    let mut net = SimNetwork::new(LatencyModel::wan(), 42).with_bandwidth(10_000_000);
    let nodes: Vec<u32> = (0..n as u32).collect();
    let leader = round_commit.leader;
    for &node in &nodes {
        if node != leader {
            if node == 0 {
                net.send_batch(node, leader, &[update_bytes, 64], "tx-bundle");
            } else {
                net.send_batch(node, leader, &[update_bytes], "tx-bundle");
            }
        }
    }
    let block_bytes = update_bytes * n + 256;
    net.broadcast(leader, &nodes, block_bytes, "block-proposal");
    for &node in &nodes {
        if node != leader {
            net.send(node, leader, 64, "vote");
        }
    }
    net.broadcast(leader, &nodes, 128, "commit-cert");
    net.drain();
    let stats = net.stats();
    let makespan_secs = stats.makespan_micros as f64 / 1e6;
    let txs = (n + 1) as u64;

    ThroughputRow {
        num_owners: n,
        model_dim,
        txs,
        gas: round_commit.gas_used.0,
        makespan_secs,
        tx_per_sec: txs as f64 / makespan_secs.max(1e-9),
        bytes: stats.bytes,
    }
}

/// Renders the sweep.
pub fn render(rows: &[ThroughputRow]) -> Table {
    let mut table = Table::new(
        "Ext A — throughput vs cohort size (1 round, WAN 40ms ± 10ms, 10 MB/s links)",
        &[
            "owners",
            "model dim",
            "txs",
            "gas",
            "bytes",
            "makespan",
            "tx/s",
        ],
    );
    for row in rows {
        table.push_row(vec![
            row.num_owners.to_string(),
            row.model_dim.to_string(),
            row.txs.to_string(),
            row.gas.to_string(),
            row.bytes.to_string(),
            format!("{:.3}s", row.makespan_secs),
            f2(row.tx_per_sec),
        ]);
    }
    table
}
