//! Ext B — adversarial participants vs GroupSV (future work §VI-2).
//!
//! "We will study the effects of adversarial participants on the Shapley
//! value calculation since the proposed group-based SV method may be
//! influenced by the number of groups and the participants' adversarial
//! behavior." The experiment plants one adversary (owner 0, who would
//! otherwise have the *cleanest* data and the highest SV) and measures,
//! per attack and per m: the adversary's SV, the honest owners' mean SV,
//! and whether the adversary still ranks first.

use fedchain::adversary::AdversaryKind;
use fedchain::config::FlConfig;
use fedchain::protocol::FlProtocol;
use fl_ml::dataset::SyntheticDigits;
use numeric::stats::descending_ranks;

use crate::report::{f4, Table};

use super::Scale;

/// One (attack, m) measurement.
#[derive(Debug, Clone)]
pub struct AdversaryRow {
    /// Attack label.
    pub attack: String,
    /// Number of groups m.
    pub num_groups: usize,
    /// Adversary's (owner 0's) cumulative SV.
    pub adversary_sv: f64,
    /// Mean SV of the honest owners.
    pub honest_mean_sv: f64,
    /// Adversary's rank (0 = highest SV).
    pub adversary_rank: usize,
    /// Total owners (for rank display).
    pub num_owners: usize,
    /// Global model accuracy with the adversary present.
    pub accuracy: f64,
}

fn experiment_config(scale: Scale, m: usize) -> FlConfig {
    let mut config = scale.config();
    config.sigma = 1.0; // diverse quality: owner 0 is the best honest-case owner
    config.num_groups = m;
    match scale {
        Scale::Fast => {
            config.data = SyntheticDigits {
                instances: 1200,
                ..config.data
            };
            config.train.epochs = 10;
        }
        Scale::Paper => {}
    }
    config
}

/// Runs one attack at one m, plus the clean baseline (attack = "none").
pub fn measure(scale: Scale, attack: Option<AdversaryKind>, label: &str, m: usize) -> AdversaryRow {
    let config = experiment_config(scale, m);
    let mut protocol = FlProtocol::new(config).expect("valid config");
    if let Some(kind) = attack {
        protocol.set_adversary(0, kind);
    }
    let report = protocol.run().expect("honest consensus commits");
    let sv = &report.per_owner_sv;
    let ranks = descending_ranks(sv);
    let honest: Vec<f64> = sv[1..].to_vec();
    AdversaryRow {
        attack: label.to_owned(),
        num_groups: m,
        adversary_sv: sv[0],
        honest_mean_sv: honest.iter().sum::<f64>() / honest.len() as f64,
        adversary_rank: ranks[0],
        num_owners: sv.len(),
        accuracy: *report
            .accuracy_history
            .last()
            .expect("at least one round ran"),
    }
}

/// Runs the full grid: attacks × m ∈ {3, n}.
pub fn run(scale: Scale) -> Vec<AdversaryRow> {
    let n = scale.config().num_owners;
    let attacks: Vec<(Option<AdversaryKind>, &str)> = vec![
        (None, "none"),
        (Some(AdversaryKind::FreeRider), "free-rider"),
        (
            Some(AdversaryKind::LabelFlip { fraction: 0.8 }),
            "label-flip 80%",
        ),
        (
            Some(AdversaryKind::ScaledUpdate { factor: -1.0 }),
            "sign-flip",
        ),
        (
            Some(AdversaryKind::NoisyUpdate { sigma: 1.0 }),
            "noisy update",
        ),
    ];
    let mut rows = Vec::new();
    for m in [3usize, n] {
        for (kind, label) in &attacks {
            rows.push(measure(scale, *kind, label, m));
        }
    }
    rows
}

/// Renders the grid.
pub fn render(rows: &[AdversaryRow]) -> Table {
    let mut table = Table::new(
        "Ext B — adversarial owner 0 (best data when honest) vs GroupSV",
        &[
            "attack",
            "m",
            "adversary SV",
            "honest mean SV",
            "adv. rank",
            "accuracy",
        ],
    );
    for row in rows {
        table.push_row(vec![
            row.attack.clone(),
            row.num_groups.to_string(),
            f4(row.adversary_sv),
            f4(row.honest_mean_sv),
            format!("{}/{}", row.adversary_rank + 1, row.num_owners),
            f4(row.accuracy),
        ]);
    }
    table
}
