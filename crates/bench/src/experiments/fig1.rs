//! Fig. 1 — ground-truth SV distribution over users w.r.t. σ.
//!
//! Paper: "we build 2^n models based on the data coalitions … then
//! establish the ground truth SV using the native SV method (Eq. 1)".
//! Expected shape: σ = 0 ⇒ all owners' SVs ≈ 0 and ≈ equal; σ > 0 ⇒ SV
//! decreases with the owner index (noisier data ⇒ lower contribution),
//! and larger σ spreads the values further apart.

use fedchain::ground_truth::RetrainUtility;
use fedchain::world::World;
use shapley::exact_shapley;
use shapley::utility::CachedUtility;

use crate::report::{f4, Table};

use super::Scale;

/// One σ's ground-truth result.
#[derive(Debug, Clone)]
pub struct Fig1Row {
    /// Noise scale σ.
    pub sigma: f64,
    /// Ground-truth SV per owner (owner 0 has the cleanest data).
    pub sv: Vec<f64>,
    /// Coalition models trained (`2^n`).
    pub models_trained: usize,
}

/// Computes the ground-truth SV for one σ.
pub fn ground_truth_for_sigma(scale: Scale, sigma: f64) -> Fig1Row {
    let mut config = scale.config();
    config.sigma = sigma;
    let world = World::generate(&config).expect("scale configs are valid");
    let utility = RetrainUtility::new(&world.shards, &world.test, config.train);
    let cached = CachedUtility::new(&utility);
    let sv = exact_shapley(&cached);
    Fig1Row {
        sigma,
        sv,
        models_trained: cached.unique_evaluations(),
    }
}

/// Runs the full figure: one row per σ.
pub fn run(scale: Scale) -> Vec<Fig1Row> {
    scale
        .sigmas()
        .into_iter()
        .map(|sigma| ground_truth_for_sigma(scale, sigma))
        .collect()
}

/// Renders the figure as a table (owners as columns).
pub fn render(rows: &[Fig1Row]) -> Table {
    let n = rows.first().map_or(0, |r| r.sv.len());
    let mut headers: Vec<String> = vec!["sigma".into()];
    headers.extend((0..n).map(|i| format!("user{i}")));
    headers.push("models".into());
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = Table::new(
        "Fig. 1 — ground-truth SV distribution over users (native SV, retrained coalitions)",
        &header_refs,
    );
    for row in rows {
        let mut cells = vec![format!("{:.1}", row.sigma)];
        cells.extend(row.sv.iter().map(|&v| f4(v)));
        cells.push(row.models_trained.to_string());
        table.push_row(cells);
    }
    table
}
