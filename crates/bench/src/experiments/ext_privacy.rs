//! Ext C — the privacy/resolution trade-off of the `m` knob (§IV-B).
//!
//! For each m the table reports both sides of the dial: the anonymity an
//! owner keeps (group sizes; leak distance from the revealed group
//! average) and the evaluation resolution gained (distinct contribution
//! levels; cosine similarity to the per-user FL-aggregation SV).

use fedchain::contract_fl::AccuracyUtility;
use fedchain::ground_truth::AggregateUtility;
use fedchain::privacy::analyze_round;
use fedchain::world::World;
use numeric::stats::{cosine_similarity, mean};
use shapley::exact_shapley;
use shapley::group::{group_shapley, GroupSvConfig};

use crate::report::{f4, Table};

use super::Scale;

/// One m's measurement.
#[derive(Debug, Clone)]
pub struct PrivacyRow {
    /// Number of groups m.
    pub num_groups: usize,
    /// Smallest anonymity set.
    pub min_anonymity: usize,
    /// Mean L2 distance between an owner's update and its revealed group
    /// average (0 = fully leaked).
    pub mean_leak_distance: f64,
    /// Distinct contribution levels assignable.
    pub resolution_levels: usize,
    /// Cosine similarity to the per-user (m = n) aggregation SV.
    pub cosine_vs_full_resolution: Option<f64>,
}

/// Runs the sweep m = 1..=n at σ = 1.0.
pub fn run(scale: Scale) -> Vec<PrivacyRow> {
    let mut config = scale.config();
    config.sigma = 1.0;
    let world = World::generate(&config).expect("valid config");
    let updates = world.local_updates(&config);
    let n = config.num_owners;

    // Full-resolution reference: per-user SV over FL-aggregated coalition
    // models (n trainings, not 2^n — this is the resolution ceiling
    // GroupSV approaches as m → n).
    let reference = {
        let utility = AggregateUtility::new(
            &updates,
            &world.test,
            config.data.features,
            config.data.classes,
        );
        exact_shapley(&utility)
    };

    let utility = AccuracyUtility::new(&world.test, config.data.features, config.data.classes);
    (1..=n)
        .map(|m| {
            let privacy = analyze_round(&updates, m, config.permutation_seed, 0);
            let sv = group_shapley(
                &updates,
                &utility,
                &GroupSvConfig {
                    num_groups: m,
                    seed: config.permutation_seed,
                    round: 0,
                },
            );
            PrivacyRow {
                num_groups: m,
                min_anonymity: privacy.min_anonymity,
                mean_leak_distance: mean(&privacy.per_owner_leak_distance),
                resolution_levels: privacy.resolution_levels,
                cosine_vs_full_resolution: cosine_similarity(&sv.per_user, &reference),
            }
        })
        .collect()
}

/// Renders the sweep.
pub fn render(rows: &[PrivacyRow]) -> Table {
    let mut table = Table::new(
        "Ext C — privacy vs resolution as m sweeps 1..n (σ = 1.0)",
        &[
            "m",
            "min anonymity",
            "mean leak dist",
            "resolution levels",
            "cos vs m=n SV",
        ],
    );
    for row in rows {
        table.push_row(vec![
            row.num_groups.to_string(),
            row.min_anonymity.to_string(),
            f4(row.mean_leak_distance),
            row.resolution_levels.to_string(),
            row.cosine_vs_full_resolution.map_or("undef".to_owned(), f4),
        ]);
    }
    table
}
