//! Ext D — cumulative GroupSV resolution across rounds.
//!
//! Algorithm 1 draws a *fresh* permutation every round
//! (`π ← permutation(e, r, I)`), so an owner shares a group with
//! different peers each round. Within one round its SV is blurred
//! uniformly over its group; across rounds the blur averages out. This
//! ablation quantifies that effect: how fast does the *cumulative*
//! GroupSV (`v_i = Σ_r v_i^r`, the paper's final contribution) converge
//! towards full per-user resolution as rounds accumulate, at fixed small
//! `m`?
//!
//! It answers a practical question the paper leaves open: can a
//! deployment keep the privacy of small `m` and still obtain
//! individually-resolved contributions by running longer?

use fedchain::contract_fl::AccuracyUtility;
use fedchain::world::World;
use numeric::stats::cosine_similarity;
use shapley::group::{group_shapley, GroupSvConfig};

use crate::report::{f4, Table};

use super::Scale;

/// One (m, R) measurement.
#[derive(Debug, Clone)]
pub struct RoundsRow {
    /// Group count m (fixed, small).
    pub num_groups: usize,
    /// Rounds accumulated.
    pub rounds: u64,
    /// Cosine similarity of the cumulative GroupSV against the
    /// cumulative per-user (m = n) SV over the same updates.
    pub cosine_vs_per_user: Option<f64>,
}

/// Runs the ablation at σ = 2.0 for m ∈ {2, 3} and R up to 8.
pub fn run(scale: Scale) -> Vec<RoundsRow> {
    let mut config = scale.config();
    config.sigma = 2.0;
    let world = World::generate(&config).expect("valid config");
    let n = config.num_owners;
    let utility = AccuracyUtility::new(&world.test, config.data.features, config.data.classes);

    let max_rounds = 8u64;
    let mut rows = Vec::new();
    for m in [2usize, 3] {
        let mut cumulative_group = vec![0.0f64; n];
        let mut cumulative_user = vec![0.0f64; n];
        let mut global = vec![0.0f64; (config.data.features + 1) * config.data.classes];
        for round in 0..max_rounds {
            let updates = world.local_updates_from(&config, &global);

            let grouped = group_shapley(
                &updates,
                &utility,
                &GroupSvConfig {
                    num_groups: m,
                    seed: config.permutation_seed,
                    round,
                },
            );
            let per_user = group_shapley(
                &updates,
                &utility,
                &GroupSvConfig {
                    num_groups: n,
                    seed: config.permutation_seed,
                    round,
                },
            );
            for i in 0..n {
                cumulative_group[i] += grouped.per_user[i];
                cumulative_user[i] += per_user.per_user[i];
            }
            // Owners download the new global model (built at the blurred
            // resolution actually deployed, i.e. the m-group one).
            global = grouped.global_model.clone();

            if round + 1 == 1 || (round + 1).is_power_of_two() {
                rows.push(RoundsRow {
                    num_groups: m,
                    rounds: round + 1,
                    cosine_vs_per_user: cosine_similarity(&cumulative_group, &cumulative_user),
                });
            }
        }
    }
    rows
}

/// Renders the ablation.
pub fn render(rows: &[RoundsRow]) -> Table {
    let mut table = Table::new(
        "Ext D — cumulative GroupSV vs per-user SV as rounds accumulate (σ = 2.0)",
        &["m", "rounds", "cosine vs per-user SV"],
    );
    for row in rows {
        table.push_row(vec![
            row.num_groups.to_string(),
            row.rounds.to_string(),
            row.cosine_vs_per_user.map_or("undef".to_owned(), f4),
        ]);
    }
    table
}
