//! Fig. 2 — approximation accuracy of GroupSV vs the native ground truth.
//!
//! Cosine similarity between the GroupSV per-user vector and the
//! ground-truth SV, as the number of groups `m` sweeps `2..=n`, one curve
//! per σ. Expected shape (paper Sect. V-B2): the σ = 0 curve *decreases*
//! with `m` (uniform ground truth is matched best by coarse uniform
//! groups); σ > 0 curves *increase* with `m` (finer groups approach the
//! native method) and larger σ lifts the whole curve.

use fedchain::contract_fl::AccuracyUtility;
use fedchain::world::World;
use numeric::stats::cosine_similarity;
use shapley::group::{group_shapley, GroupSvConfig};

use crate::report::{f4, Table};

use super::fig1::ground_truth_for_sigma;
use super::Scale;

/// One (σ, m) cell of the figure.
#[derive(Debug, Clone)]
pub struct Fig2Point {
    /// Noise scale σ.
    pub sigma: f64,
    /// Number of groups m.
    pub num_groups: usize,
    /// Cosine similarity against the ground truth (`None` when a zero
    /// vector makes the angle undefined, which the σ=0 setting can
    /// produce).
    pub cosine: Option<f64>,
    /// Mean-centred cosine (Pearson correlation). SV vectors are positive
    /// and near-uniform, which compresses raw cosine towards 1; centring
    /// exposes whether the per-owner *structure* is matched.
    pub centered_cosine: Option<f64>,
}

/// Cosine similarity after subtracting each vector's mean.
fn centered_cosine(a: &[f64], b: &[f64]) -> Option<f64> {
    let ma = a.iter().sum::<f64>() / a.len() as f64;
    let mb = b.iter().sum::<f64>() / b.len() as f64;
    let ca: Vec<f64> = a.iter().map(|x| x - ma).collect();
    let cb: Vec<f64> = b.iter().map(|x| x - mb).collect();
    cosine_similarity(&ca, &cb)
}

/// Runs the sweep. Returns `(points, ground_truths)` so callers can reuse
/// the expensive ground-truth computation.
pub fn run(scale: Scale) -> Vec<Fig2Point> {
    let mut points = Vec::new();
    for sigma in scale.sigmas() {
        let truth = ground_truth_for_sigma(scale, sigma);

        let mut config = scale.config();
        config.sigma = sigma;
        let world = World::generate(&config).expect("valid config");
        let updates = world.local_updates(&config);
        let utility = AccuracyUtility::new(&world.test, config.data.features, config.data.classes);

        for m in 2..=config.num_owners {
            let result = group_shapley(
                &updates,
                &utility,
                &GroupSvConfig {
                    num_groups: m,
                    seed: config.permutation_seed,
                    round: 0,
                },
            );
            points.push(Fig2Point {
                sigma,
                num_groups: m,
                cosine: cosine_similarity(&result.per_user, &truth.sv),
                centered_cosine: centered_cosine(&result.per_user, &truth.sv),
            });
        }
    }
    points
}

/// Renders the sweep (rows = σ, columns = m).
pub fn render(points: &[Fig2Point]) -> Table {
    let mut ms: Vec<usize> = points.iter().map(|p| p.num_groups).collect();
    ms.sort_unstable();
    ms.dedup();
    let mut sigmas: Vec<f64> = points.iter().map(|p| p.sigma).collect();
    sigmas.sort_by(|a, b| a.partial_cmp(b).expect("finite sigmas"));
    sigmas.dedup();

    let mut headers: Vec<String> = vec!["sigma \\ m".into()];
    headers.extend(ms.iter().map(|m| format!("m={m}")));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = Table::new(
        "Fig. 2 — cosine similarity: GroupSV vs native ground truth",
        &header_refs,
    );
    for &sigma in &sigmas {
        let mut cells = vec![format!("{sigma:.1}")];
        for &m in &ms {
            let cell = points
                .iter()
                .find(|p| p.sigma == sigma && p.num_groups == m)
                .map_or("-".to_owned(), |p| {
                    let raw = p.cosine.map_or("undef".to_owned(), f4);
                    let centered = p.centered_cosine.map_or("undef".to_owned(), f4);
                    format!("{raw} ({centered})")
                });
            cells.push(cell);
        }
        table.push_row(cells);
    }
    table
}
