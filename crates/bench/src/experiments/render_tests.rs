//! Renderer tests: every experiment's table builder handles normal and
//! edge-case rows without touching the expensive `run()` paths.

use super::ext_adversary::AdversaryRow;
use super::ext_privacy::PrivacyRow;
use super::ext_rounds::RoundsRow;
use super::ext_throughput::ThroughputRow;
use super::fig1::Fig1Row;
use super::fig2::Fig2Point;
use super::table1::Table1Result;
use super::{ext_adversary, ext_privacy, ext_rounds, ext_throughput, fig1, fig2, table1};
use fedchain::protocol::StageTimings;

#[test]
fn fig1_render_shapes() {
    let rows = vec![
        Fig1Row {
            sigma: 0.0,
            sv: vec![0.1, 0.2, 0.3],
            models_trained: 8,
        },
        Fig1Row {
            sigma: 2.0,
            sv: vec![-0.1, 0.0, 0.4],
            models_trained: 8,
        },
    ];
    let table = fig1::render(&rows);
    let text = table.render();
    assert!(text.contains("user0") && text.contains("user2"));
    assert!(text.contains("0.1000"));
    assert!(text.contains("-0.1000"));
    assert_eq!(table.rows.len(), 2);
}

#[test]
fn fig1_render_empty() {
    let table = fig1::render(&[]);
    assert_eq!(table.rows.len(), 0);
}

#[test]
fn fig2_render_grid() {
    let points = vec![
        Fig2Point {
            sigma: 0.0,
            num_groups: 2,
            cosine: Some(0.9),
            centered_cosine: Some(0.5),
        },
        Fig2Point {
            sigma: 0.0,
            num_groups: 3,
            cosine: None,
            centered_cosine: None,
        },
        Fig2Point {
            sigma: 1.0,
            num_groups: 2,
            cosine: Some(1.0),
            centered_cosine: Some(1.0),
        },
    ];
    let table = fig2::render(&points);
    let text = table.render();
    assert!(text.contains("m=2") && text.contains("m=3"));
    assert!(text.contains("undef"), "None renders as undef");
    assert!(text.contains("0.9000 (0.5000)"));
    // Missing (σ=1, m=3) renders as "-".
    assert!(text.contains('-'));
}

#[test]
fn table1_render_includes_speedups() {
    let result = Table1Result {
        group_sv: vec![(2, 0.1), (3, 0.2)],
        native_sv: 2.0,
        native_evaluations: 512,
        stratified_sv: 0.5,
        stratified_evaluations: 324,
        recovery: vec![
            table1::RecoveryCost {
                dropped: 0,
                secs: 1.5,
                utility_evaluations: 8,
                blocks: 2,
                stages: StageTimings::default(),
            },
            table1::RecoveryCost {
                dropped: 3,
                secs: 1.9,
                utility_evaluations: 8,
                blocks: 3,
                stages: StageTimings {
                    train_mask: 0.25,
                    assemble: 0.05,
                    commit: 0.0,
                    evaluate: 1.5,
                },
            },
        ],
        scaling: vec![
            table1::OwnersScaling {
                num_owners: 9,
                num_cohorts: 1,
                secs: 1.5,
                utility_evaluations: 8,
                blocks: 2,
                stages: StageTimings::default(),
            },
            table1::OwnersScaling {
                num_owners: 144,
                num_cohorts: 16,
                secs: 6.0,
                utility_evaluations: 500,
                blocks: 17,
                stages: StageTimings {
                    train_mask: 2.0,
                    assemble: 0.5,
                    commit: 1.0,
                    evaluate: 2.5,
                },
            },
        ],
        num_owners: 9,
    };
    let table = table1::render(&result);
    let text = table.render();
    assert!(text.contains("20.0x"), "2.0/0.1 speedup");
    assert!(text.contains("10.0x"), "2.0/0.2 speedup");
    assert!(text.contains("native (n=9)"));
    assert!(text.contains("stratified (n=9)"));
    assert!(text.contains("4.0x"), "2.0/0.5 stratified speedup");
    assert!(text.contains("512") && text.contains("324"), "eval counts");
    // Recovery-cost columns: per-dropout wall-clock + block counts.
    assert!(text.contains("round d=0") && text.contains("round d=3"));
    assert!(text.contains("2 blk") && text.contains("3 blk"));
    // Owners-scaling columns: sharded round wall-clock + block counts.
    assert!(text.contains("shard n=9 k=1") && text.contains("shard n=144 k=16"));
    assert!(text.contains("17 blk") && text.contains("500"));
    // Stage breakdown row: train/assemble/commit/evaluate per on-chain
    // column; estimator-only columns show "-".
    assert!(text.contains("stages t/a/c/e"));
    assert!(text.contains("t2.00s a500.0ms c1.00s e2.50s"));
}

#[test]
fn table1_render_without_recovery_measurements() {
    let result = Table1Result {
        group_sv: vec![(2, 0.1)],
        native_sv: 1.0,
        native_evaluations: 512,
        stratified_sv: 0.5,
        stratified_evaluations: 324,
        recovery: vec![],
        scaling: vec![],
        num_owners: 9,
    };
    let text = table1::render(&result).render();
    assert!(
        !text.contains("round d=0"),
        "no recovery columns when unmeasured"
    );
    assert!(
        !text.contains("shard n=9"),
        "no scaling columns when unmeasured"
    );
}

#[test]
fn throughput_render() {
    let rows = vec![ThroughputRow {
        num_owners: 9,
        model_dim: 650,
        txs: 10,
        gas: 1234,
        makespan_secs: 0.5,
        tx_per_sec: 20.0,
        bytes: 99,
    }];
    let text = ext_throughput::render(&rows).render();
    assert!(text.contains("1234"));
    assert!(text.contains("0.500s"));
}

#[test]
fn adversary_render_shows_rank_out_of_n() {
    let rows = vec![AdversaryRow {
        attack: "free-rider".into(),
        num_groups: 3,
        adversary_sv: -0.5,
        honest_mean_sv: 0.1,
        adversary_rank: 8,
        num_owners: 9,
        accuracy: 0.9,
    }];
    let text = ext_adversary::render(&rows).render();
    assert!(text.contains("9/9"), "rank renders 1-based out of n");
    assert!(text.contains("free-rider"));
}

#[test]
fn privacy_render() {
    let rows = vec![PrivacyRow {
        num_groups: 3,
        min_anonymity: 3,
        mean_leak_distance: 0.25,
        resolution_levels: 3,
        cosine_vs_full_resolution: None,
    }];
    let text = ext_privacy::render(&rows).render();
    assert!(text.contains("undef"));
    assert!(text.contains("0.2500"));
}

#[test]
fn rounds_render() {
    let rows = vec![
        RoundsRow {
            num_groups: 2,
            rounds: 1,
            cosine_vs_per_user: Some(0.99),
        },
        RoundsRow {
            num_groups: 2,
            rounds: 8,
            cosine_vs_per_user: Some(1.0),
        },
    ];
    let text = ext_rounds::render(&rows).render();
    assert!(text.contains("0.9900"));
    assert!(text.contains("1.0000"));
}
