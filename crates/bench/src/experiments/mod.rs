//! One module per paper artefact.

pub mod ext_adversary;
pub mod ext_privacy;
pub mod ext_rounds;
pub mod ext_throughput;
pub mod fig1;
pub mod fig2;
#[cfg(test)]
mod render_tests;
pub mod table1;

use fedchain::config::FlConfig;
use fl_ml::dataset::SyntheticDigits;
use fl_ml::TrainConfig;

/// Experiment scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Reduced instances/epochs: the same qualitative shape in seconds.
    Fast,
    /// The paper's setting: 5620 instances, 64 features, 9 owners.
    Paper,
}

impl Scale {
    /// Parses a CLI token.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "fast" => Some(Self::Fast),
            "paper" => Some(Self::Paper),
            _ => None,
        }
    }

    /// The base configuration for this scale (σ applied by the caller).
    pub fn config(&self) -> FlConfig {
        let mut config = FlConfig::paper_setting();
        match self {
            Scale::Paper => {
                config.train = TrainConfig {
                    learning_rate: 0.5,
                    epochs: 30,
                    l2: 1e-4,
                };
            }
            Scale::Fast => {
                config.data = SyntheticDigits {
                    instances: 4000,
                    ..SyntheticDigits::default()
                };
                config.train = TrainConfig {
                    learning_rate: 0.5,
                    epochs: 20,
                    l2: 1e-4,
                };
            }
        }
        config
    }

    /// The σ values swept by the figures (the paper plots σ ∈ {0, …, 2}).
    pub fn sigmas(&self) -> Vec<f64> {
        vec![0.0, 1.0, 2.0, 4.0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parses() {
        assert_eq!(Scale::parse("fast"), Some(Scale::Fast));
        assert_eq!(Scale::parse("paper"), Some(Scale::Paper));
        assert_eq!(Scale::parse("other"), None);
    }

    #[test]
    fn configs_are_valid() {
        Scale::Fast.config().validate().unwrap();
        Scale::Paper.config().validate().unwrap();
    }

    #[test]
    fn paper_scale_matches_paper_numbers() {
        let c = Scale::Paper.config();
        assert_eq!(c.num_owners, 9);
        assert_eq!(c.data.instances, 5620);
        assert_eq!(c.data.features, 64);
        assert_eq!(c.data.classes, 10);
    }
}
