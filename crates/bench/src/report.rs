//! Rendering experiment results as aligned ASCII tables and JSON.

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

/// A simple column-aligned table.
#[derive(Debug, Clone)]
pub struct Table {
    /// Table title (e.g. `"Fig. 1 — ground truth SV"`).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells (already formatted).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width {} != header width {}",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "## {}", self.title);
        let line = |cells: &[String], widths: &[usize]| -> String {
            let mut s = String::from("|");
            for (cell, w) in cells.iter().zip(widths) {
                let _ = write!(s, " {cell:>w$} |", w = w);
            }
            s
        };
        let _ = writeln!(out, "{}", line(&self.headers, &widths));
        let mut sep = String::from("|");
        for w in &widths {
            let _ = write!(sep, "{}|", "-".repeat(w + 2));
        }
        let _ = writeln!(out, "{sep}");
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// Serializes the table to pretty-printed JSON (hand-rolled: the
    /// offline dependency set has no serde).
    pub fn to_json(&self) -> String {
        fn quote(s: &str) -> String {
            let mut out = String::with_capacity(s.len() + 2);
            out.push('"');
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\r' => out.push_str("\\r"),
                    '\t' => out.push_str("\\t"),
                    c if (c as u32) < 0x20 => {
                        let _ = write!(out, "\\u{:04x}", c as u32);
                    }
                    c => out.push(c),
                }
            }
            out.push('"');
            out
        }
        fn string_array(items: &[String], indent: &str) -> String {
            let cells: Vec<String> = items.iter().map(|s| quote(s)).collect();
            format!("{indent}[{}]", cells.join(", "))
        }
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"title\": {},", quote(&self.title));
        let _ = writeln!(
            out,
            "  \"headers\": {},",
            string_array(&self.headers, "").trim_start()
        );
        out.push_str("  \"rows\": [\n");
        for (i, row) in self.rows.iter().enumerate() {
            let sep = if i + 1 < self.rows.len() { "," } else { "" };
            let _ = writeln!(out, "{}{sep}", string_array(row, "    "));
        }
        out.push_str("  ]\n}");
        out
    }

    /// Writes the table as JSON next to other experiment artefacts.
    pub fn write_json(&self, dir: &Path, name: &str) -> std::io::Result<()> {
        fs::create_dir_all(dir)?;
        let path = dir.join(format!("{name}.json"));
        fs::write(path, self.to_json())
    }
}

/// Formats a float with 4 decimals.
pub fn f4(v: f64) -> String {
    format!("{v:.4}")
}

/// Formats a float with 2 decimals.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats seconds with adaptive precision.
pub fn secs(s: f64) -> String {
    if s < 0.001 {
        format!("{:.1}µs", s * 1e6)
    } else if s < 1.0 {
        format!("{:.1}ms", s * 1e3)
    } else {
        format!("{s:.2}s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("demo", &["a", "long-header"]);
        t.push_row(vec!["1".into(), "2".into()]);
        t.push_row(vec!["333".into(), "4".into()]);
        let s = t.render();
        assert!(s.contains("## demo"));
        let lines: Vec<&str> = s.lines().collect();
        // All data lines have equal width.
        assert_eq!(lines[1].len(), lines[3].len());
        assert_eq!(lines[3].len(), lines[4].len());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.push_row(vec!["1".into()]);
    }

    #[test]
    fn float_formats() {
        assert_eq!(f4(0.12345), "0.1235");
        assert_eq!(f2(1.005), "1.00");
        assert_eq!(secs(0.5), "500.0ms");
        assert_eq!(secs(2.0), "2.00s");
        assert_eq!(secs(0.0000005), "0.5µs");
    }

    #[test]
    fn json_round_trips() {
        let mut t = Table::new("demo", &["x"]);
        t.push_row(vec!["1".into()]);
        let dir = std::env::temp_dir().join("transparent-fl-test");
        t.write_json(&dir, "demo").unwrap();
        let content = std::fs::read_to_string(dir.join("demo.json")).unwrap();
        assert!(content.contains("\"title\": \"demo\""));
    }
}
