//! Stratified Shapley sampling — the large-`m` estimator.
//!
//! Exact enumeration stops at [`MAX_PLAYERS`](crate::coalition::MAX_PLAYERS)
//! players; permutation Monte-Carlo scales further but spends its samples
//! unevenly across coalition sizes. This module implements the classic
//! stratified decomposition of Eq. 1 (Castro et al., *Polynomial
//! calculation of the Shapley value based on sampling*):
//!
//! ```text
//! v_i = (1/n) Σ_{s=0}^{n−1}  E[ u(S ∪ {i}) − u(S) ]   over uniform
//!                            s-subsets S ⊆ I\{i}
//! ```
//!
//! Every `(player i, coalition size s)` pair is one **stratum**, and each
//! stratum draws exactly `samples_per_stratum` independent subsets — so
//! every coalition size of every player is covered by construction, which
//! a fixed budget of whole permutations cannot guarantee.
//!
//! Re-executability: each sample draws from its **own splitmix64 stream**
//! derived from `(seed, stratum, sample index)` — never from a shared
//! evolving stream — so sample `k` of stratum `t` is identical whether it
//! runs first on one thread or last on sixty-four. Strata fan out on the
//! deterministic fork-join layer ([`numeric::par`]) with one output slot
//! per stratum, combined in stratum order; the estimate is therefore
//! bit-identical for every thread count, which is what lets miners
//! re-execute it as part of contract verification.

use numeric::par;

use crate::coalition::{Coalition, MAX_SAMPLED_PLAYERS};
use crate::estimator::{SvDiagnostics, SvEstimate};
use crate::rng::splitmix;
use crate::utility::CoalitionUtility;

/// Minimum strata per worker thread (each stratum performs
/// `2 · samples_per_stratum` utility evaluations).
const MIN_STRATA_PER_THREAD: usize = 2;

/// Stratified-sampling configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StratifiedConfig {
    /// Independent subset draws per `(player, size)` stratum.
    pub samples_per_stratum: usize,
    /// RNG seed; the per-sample streams are derived from
    /// `(seed, stratum, index)`.
    pub seed: u64,
}

impl Default for StratifiedConfig {
    fn default() -> Self {
        Self {
            samples_per_stratum: 32,
            seed: 0,
        }
    }
}

/// The independent stream state for sample `index` of `stratum` under
/// `seed`.
///
/// Each coordinate passes through its own finalizer round with a distinct
/// odd multiplier before mixing, decorrelating neighbouring strata and
/// neighbouring sample indices; the result depends only on the triple,
/// never on which thread runs the draw.
fn stream_state(seed: u64, stratum: u64, index: u64) -> u64 {
    splitmix(
        seed ^ splitmix(stratum.wrapping_mul(crate::rng::GOLDEN).wrapping_add(1))
            ^ splitmix(index.wrapping_mul(0xd1b5_4a32_d192_ed03).wrapping_add(2)),
    )
}

/// Estimates Shapley values by stratified subset sampling.
///
/// Unbiased for any sample count: each stratum mean estimates one term of
/// the size-decomposed Eq. 1, and the per-player value averages the `n`
/// stratum means. Cost is `2 · n² · samples_per_stratum` utility
/// evaluations — polynomial in `n`, so games far beyond the exact-
/// enumeration cap (up to [`MAX_SAMPLED_PLAYERS`] players) are feasible.
///
/// # Panics
///
/// Panics if the game is empty, has more than [`MAX_SAMPLED_PLAYERS`]
/// players, or `samples_per_stratum == 0`.
pub fn stratified_shapley(
    utility: &(impl CoalitionUtility + Sync),
    config: &StratifiedConfig,
) -> SvEstimate {
    let n = utility.num_players();
    assert!(n > 0, "empty game");
    assert!(
        n <= MAX_SAMPLED_PLAYERS,
        "coalition masks hold {MAX_SAMPLED_PLAYERS} players, got {n}"
    );
    let k = config.samples_per_stratum;
    assert!(k > 0, "need at least one sample per stratum");

    // Stratum t = (player i = t / n, size s = t % n). Each slot is the
    // *sum* of that stratum's k marginals — a pure function of t.
    //
    // The work is split into two passes so caching utilities can stream.
    // Pass 1 runs only the RNG: it enumerates each stratum's k sampled
    // base coalitions (cheap — no utility evaluation). The full coalition
    // list is then handed to `CoalitionUtility::prewarm`, which a
    // [`CachedUtility`](crate::utility::CachedUtility) services by
    // deduplicating and evaluating each *unique* coalition exactly once,
    // in parallel, as the list streams in — instead of every stratum
    // barriering on its own redundant evaluations. Pass 2 re-walks the
    // strata in the original order and reads the (now warm) utility, so
    // the combine below sees the exact same values in the exact same
    // order as the single-pass form: the estimate is bit-identical, warm
    // or cold, for every thread count.
    let strata = n * n;
    let stratum_bases = par::par_map_indices(strata, MIN_STRATA_PER_THREAD, |t| {
        let i = t / n;
        let s = t % n;
        // The other n−1 players, from which s-subsets are drawn.
        let others_template: Vec<usize> = (0..n).filter(|&p| p != i).collect();
        let mut others = others_template.clone();
        let mut bases = Vec::with_capacity(k);
        for sample in 0..k {
            let mut state = stream_state(config.seed, t as u64, sample as u64);
            let mut next = || crate::rng::stream_next(&mut state);
            // Partial Fisher–Yates: after s steps the prefix is a
            // uniform s-subset of the others. One buffer per stratum —
            // the shuffle only permutes, so resetting from the template
            // is enough and spares n²·k clone allocations.
            others.copy_from_slice(&others_template);
            for j in 0..s {
                let r = j + (next() % (others.len() - j) as u64) as usize;
                others.swap(j, r);
            }
            bases.push(Coalition::from_members(&others[..s]));
        }
        bases
    });

    let mut wanted = Vec::with_capacity(2 * strata * k);
    for (t, bases) in stratum_bases.iter().enumerate() {
        let i = t / n;
        for &base in bases {
            wanted.push(base);
            wanted.push(base.with(i));
        }
    }
    utility.prewarm(&wanted);

    let stratum_sums = par::par_map_indices(strata, MIN_STRATA_PER_THREAD, |t| {
        let i = t / n;
        let mut sum = 0.0f64;
        for &coalition in &stratum_bases[t] {
            let base = utility.evaluate(coalition);
            let with_i = utility.evaluate(coalition.with(i));
            sum += with_i - base;
        }
        sum
    });

    // Combine in stratum order: v_i = (1/n) Σ_s (stratum sum / k). The
    // floating-point reduction is independent of the parallel schedule.
    let scale = 1.0 / (n as f64 * k as f64);
    let mut values = vec![0.0f64; n];
    for (t, sum) in stratum_sums.iter().enumerate() {
        values[t / n] += sum * scale;
    }

    SvEstimate {
        values,
        utility_evaluations: 2 * strata * k,
        diagnostics: SvDiagnostics {
            samples: strata * k,
            strata,
            truncated_marginals: 0,
            cache_hits: 0,
            cache_misses: 0,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::native::exact_shapley;
    use crate::utility::games::{AdditiveGame, GloveGame};
    use crate::utility::utility_fn;

    #[test]
    fn additive_game_exact_in_every_sample() {
        // Marginals of an additive game are constant, so even one sample
        // per stratum recovers the exact values.
        let game = AdditiveGame {
            values: vec![1.0, -2.0, 3.0],
        };
        let estimate = stratified_shapley(
            &game,
            &StratifiedConfig {
                samples_per_stratum: 1,
                seed: 5,
            },
        );
        for (got, expect) in estimate.values.iter().zip(&game.values) {
            assert!((got - expect).abs() < 1e-12);
        }
        assert_eq!(estimate.utility_evaluations, 2 * 9);
        assert_eq!(estimate.diagnostics.strata, 9);
        assert_eq!(estimate.diagnostics.samples, 9);
    }

    #[test]
    fn converges_to_exact_on_glove_game() {
        let game = GloveGame { left: 2, n: 5 };
        let exact = exact_shapley(&game);
        let estimate = stratified_shapley(
            &game,
            &StratifiedConfig {
                samples_per_stratum: 2000,
                seed: 1,
            },
        );
        for (got, expect) in estimate.values.iter().zip(&exact) {
            assert!(
                (got - expect).abs() < 0.05,
                "stratified {got} too far from exact {expect}"
            );
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let game = GloveGame { left: 2, n: 4 };
        let cfg = StratifiedConfig {
            samples_per_stratum: 10,
            seed: 42,
        };
        assert_eq!(
            stratified_shapley(&game, &cfg),
            stratified_shapley(&game, &cfg)
        );
        let other = stratified_shapley(&game, &StratifiedConfig { seed: 43, ..cfg });
        assert_ne!(stratified_shapley(&game, &cfg).values, other.values);
    }

    #[test]
    fn runs_a_48_player_game() {
        // Impossible for the exact estimators (2^48 coalitions); the
        // stratified sampler handles it in n²·k samples.
        let n = 48usize;
        let game = utility_fn(n, move |c: Coalition| {
            c.members().map(|i| ((i * 13 + 5) as f64).sin()).sum()
        });
        let estimate = stratified_shapley(
            &game,
            &StratifiedConfig {
                samples_per_stratum: 2,
                seed: 9,
            },
        );
        assert_eq!(estimate.values.len(), n);
        assert_eq!(estimate.diagnostics.strata, n * n);
        // Additive game: even 2 samples per stratum are exact.
        for (i, v) in estimate.values.iter().enumerate() {
            let expect = ((i * 13 + 5) as f64).sin();
            assert!((v - expect).abs() < 1e-9, "player {i}: {v} vs {expect}");
        }
    }

    #[test]
    fn null_player_gets_zero_exactly() {
        // Player 2 never changes the utility, so every sampled marginal
        // is exactly zero regardless of sample count.
        let game = utility_fn(3, |c: Coalition| {
            (c.contains(0) as u8 + c.contains(1) as u8) as f64
        });
        let estimate = stratified_shapley(
            &game,
            &StratifiedConfig {
                samples_per_stratum: 3,
                seed: 0,
            },
        );
        assert_eq!(estimate.values[2], 0.0);
    }

    #[test]
    fn cached_estimate_is_bit_identical_and_all_hits_after_prewarm() {
        use crate::utility::CachedUtility;
        let game = GloveGame { left: 3, n: 6 };
        let cfg = StratifiedConfig {
            samples_per_stratum: 8,
            seed: 17,
        };
        let plain = stratified_shapley(&game, &cfg);
        let cached = CachedUtility::new(&game);
        let streamed = stratified_shapley(&cached, &cfg);
        // Streaming through the cache must not move a single bit.
        assert_eq!(plain, streamed);
        // The prewarm pass dedups: every pass-2 read is a hit, and the
        // miss count equals the number of distinct sampled coalitions.
        let stats = cached.stats();
        assert_eq!(stats.misses, cached.unique_evaluations());
        assert_eq!(stats.hits, 2 * 6 * 6 * 8);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn zero_samples_panics() {
        let game = AdditiveGame { values: vec![1.0] };
        let _ = stratified_shapley(
            &game,
            &StratifiedConfig {
                samples_per_stratum: 0,
                seed: 0,
            },
        );
    }

    #[test]
    #[should_panic(expected = "empty game")]
    fn empty_game_panics() {
        let game = AdditiveGame { values: vec![] };
        let _ = stratified_shapley(&game, &StratifiedConfig::default());
    }
}
