//! Utility-function abstractions.
//!
//! Two flavours exist because the paper's two SV methods consume
//! different objects:
//!
//! * [`CoalitionUtility`] — `u(S)` over *player sets*. The native method
//!   (Eq. 1) retrains a model per coalition, so the utility is a set
//!   function. Implementations are usually expensive; wrap them in
//!   [`CachedUtility`] so each coalition is evaluated once.
//! * [`ModelUtility`] — `u(W)` over *model weights*. GroupSV builds
//!   coalition models by averaging group aggregates and only then asks
//!   for their utility (test-set accuracy in the paper).

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::coalition::Coalition;

/// A cooperative-game utility `u(S)` over coalitions of players.
pub trait CoalitionUtility {
    /// Number of players `n = |I|`.
    fn num_players(&self) -> usize;

    /// Utility of a coalition (empty coalitions allowed).
    fn evaluate(&self, coalition: Coalition) -> f64;

    /// Hints that every coalition in `coalitions` is about to be
    /// evaluated, letting memoizing wrappers stream the evaluations
    /// into their cache ahead of the caller's combine pass.
    ///
    /// The default is a no-op, so plain utilities pay nothing.
    /// [`CachedUtility`] overrides it to fan the *unique* coalitions
    /// out one [`numeric::par`] slot each, inserting results as they
    /// complete — later `evaluate` calls are then pure cache hits.
    /// Because `evaluate` returns identical values with or without the
    /// hint, prewarming never changes an estimator's output, only its
    /// schedule.
    fn prewarm(&self, coalitions: &[Coalition]) {
        let _ = coalitions;
    }
}

/// Utility of a *model*, `u(W)`, plus the value assigned to the empty
/// coalition (no model at all — the paper's implicit `u(∅)`, e.g. the
/// accuracy of random guessing).
pub trait ModelUtility {
    /// Utility of the model with flat weights `w`.
    fn of_model(&self, weights: &[f64]) -> f64;

    /// Utility of the empty coalition.
    fn of_empty(&self) -> f64;
}

/// Blanket impl so closures `(Fn(&[f64]) -> f64, f64)` can be used as a
/// [`ModelUtility`] via [`model_utility_fn`].
pub struct ModelUtilityFn<F> {
    f: F,
    empty: f64,
}

/// Wraps a closure and an empty-coalition value into a [`ModelUtility`].
pub fn model_utility_fn<F: Fn(&[f64]) -> f64>(f: F, empty: f64) -> ModelUtilityFn<F> {
    ModelUtilityFn { f, empty }
}

impl<F: Fn(&[f64]) -> f64> ModelUtility for ModelUtilityFn<F> {
    fn of_model(&self, weights: &[f64]) -> f64 {
        (self.f)(weights)
    }

    fn of_empty(&self) -> f64 {
        self.empty
    }
}

/// A [`CoalitionUtility`] from a closure over coalition bitmasks.
pub struct UtilityFn<F> {
    n: usize,
    f: F,
}

/// Wraps `f(coalition) -> f64` as a [`CoalitionUtility`] over `n` players.
pub fn utility_fn<F: Fn(Coalition) -> f64>(n: usize, f: F) -> UtilityFn<F> {
    UtilityFn { n, f }
}

impl<F: Fn(Coalition) -> f64> CoalitionUtility for UtilityFn<F> {
    fn num_players(&self) -> usize {
        self.n
    }

    fn evaluate(&self, coalition: Coalition) -> f64 {
        (self.f)(coalition)
    }
}

/// Number of lock stripes in [`CachedUtility`]. A power of two so the
/// stripe index is the top bits of the mixed coalition mask.
const CACHE_STRIPES: usize = 16;
const _: () = assert!(CACHE_STRIPES.is_power_of_two());

/// Memoizing wrapper counting unique evaluations — both a performance
/// device (coalition retraining is expensive) and the measurement hook
/// for Table I's "number of models trained".
///
/// The cache is **lock-striped**: coalitions hash (splitmix64-style
/// finalizer over the mask) onto one of `CACHE_STRIPES` (16) independent
/// `Mutex<HashMap>` shards, so the parallel estimators — which evaluate
/// many different coalitions at once on `numeric::par` — no longer
/// serialize on a single mutex for every lookup and insert. Each lock is
/// held only for the map lookup/insert, never across an inner
/// evaluation, so concurrent misses of *different* coalitions still
/// evaluate in parallel (a concurrent miss of the same coalition may
/// evaluate twice; both results are identical, and the enumeration-style
/// callers visit each coalition exactly once anyway). Striping is purely
/// a storage layout: `evaluate` returns the inner utility's value
/// verbatim, so the determinism contract of the estimators is untouched.
pub struct CachedUtility<'a, U: ?Sized> {
    inner: &'a U,
    stripes: Vec<Mutex<HashMap<Coalition, f64>>>,
    /// Lookups answered from the cache.
    hits: AtomicUsize,
    /// Lookups that fell through to the inner utility.
    misses: AtomicUsize,
}

/// Hit/miss counters of a [`CachedUtility`], for auditing the streaming
/// evaluation path in benches and diagnostics.
///
/// Observability only: the counters are **not** schedule-invariant in
/// general (two threads missing the same coalition concurrently both
/// count a miss), so they must never feed a consensus-visible value.
/// Under the streaming prewarm path the unique coalitions are evaluated
/// exactly once each, so there the counts are deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Evaluations answered from the cache.
    pub hits: usize,
    /// Evaluations that ran the inner utility.
    pub misses: usize,
}

/// Stripe index for a coalition mask: a 64-bit finalizer (splitmix64's
/// mixing constant) spreads nearby masks across stripes.
fn stripe_of(coalition: Coalition) -> usize {
    let mixed = coalition.0.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    // Take the top bits so the index follows CACHE_STRIPES if retuned.
    (mixed >> (64 - CACHE_STRIPES.trailing_zeros())) as usize
}

impl<'a, U: CoalitionUtility + ?Sized> CachedUtility<'a, U> {
    /// Wraps a utility.
    pub fn new(inner: &'a U) -> Self {
        Self {
            inner,
            stripes: (0..CACHE_STRIPES)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
        }
    }

    /// Number of *unique* coalitions evaluated so far.
    pub fn unique_evaluations(&self) -> usize {
        self.stripes
            .iter()
            .map(|s| s.lock().expect("utility cache poisoned").len())
            .sum()
    }

    /// Hit/miss counters accumulated so far (observability only — see
    /// [`CacheStats`]).
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }
}

impl<U: CoalitionUtility + Sync + ?Sized> CoalitionUtility for CachedUtility<'_, U> {
    fn num_players(&self) -> usize {
        self.inner.num_players()
    }

    fn evaluate(&self, coalition: Coalition) -> f64 {
        let stripe = &self.stripes[stripe_of(coalition)];
        if let Some(&v) = stripe
            .lock()
            .expect("utility cache poisoned")
            .get(&coalition)
        {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return v;
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let v = self.inner.evaluate(coalition);
        stripe
            .lock()
            .expect("utility cache poisoned")
            .insert(coalition, v);
        v
    }

    /// Streams the unique coalitions into the cache, one
    /// [`numeric::par`] slot per coalition: each slot evaluates the
    /// inner utility and inserts its stripe as it completes — no
    /// per-batch barrier on the way in, so a caller combining from the
    /// cache afterwards sees pure hits. The deduplicated fan-out also
    /// makes the miss counter deterministic here: exactly one miss per
    /// distinct uncached coalition.
    fn prewarm(&self, coalitions: &[Coalition]) {
        let mut unique: Vec<Coalition> = coalitions.to_vec();
        unique.sort_unstable();
        unique.dedup();
        // One slot per coalition; inner evaluations are the expensive
        // unit (a model accuracy pass or a retrain), so granularity 1.
        numeric::par::par_map_indices(unique.len(), 1, |idx| {
            self.evaluate(unique[idx]);
        });
    }
}

/// A game restricted to a subset of its players — the survivor-side
/// counterpart of a dropout round.
///
/// Player `k` of the restricted game is player `players[k]` of the inner
/// game; coalitions of the restricted game therefore never include a
/// player outside the subset (a dropped owner contributes to no
/// coalition, so its Shapley value in the round is exactly zero by
/// construction). The restriction is a pure index mapping: `evaluate` is
/// a pure function of the restricted coalition mask whenever the inner
/// game's is, so every estimator built on [`numeric::par`] keeps its
/// bit-identical-across-thread-counts contract through the restriction.
pub struct RestrictedGame<'a, U: ?Sized> {
    inner: &'a U,
    players: Vec<usize>,
}

impl<'a, U: CoalitionUtility + ?Sized> RestrictedGame<'a, U> {
    /// Restricts `inner` to `players` (inner-game positions, strictly
    /// ascending).
    ///
    /// # Panics
    ///
    /// Panics if `players` is empty, not strictly ascending, or names a
    /// player outside the inner game.
    pub fn new(inner: &'a U, players: Vec<usize>) -> Self {
        assert!(!players.is_empty(), "restriction to zero players");
        assert!(
            players.windows(2).all(|w| w[0] < w[1]),
            "players must be strictly ascending"
        );
        assert!(
            *players.last().expect("non-empty") < inner.num_players(),
            "player index out of range"
        );
        Self { inner, players }
    }

    /// The inner-game positions this restriction keeps, ascending.
    pub fn players(&self) -> &[usize] {
        &self.players
    }
}

impl<U: CoalitionUtility + ?Sized> CoalitionUtility for RestrictedGame<'_, U> {
    fn num_players(&self) -> usize {
        self.players.len()
    }

    fn evaluate(&self, coalition: Coalition) -> f64 {
        let mut inner = Coalition::EMPTY;
        for (k, &p) in self.players.iter().enumerate() {
            if coalition.contains(k) {
                inner = inner.with(p);
            }
        }
        self.inner.evaluate(inner)
    }
}

#[cfg(test)]
pub(crate) mod games {
    //! Canonical cooperative games for tests.

    use super::*;
    use crate::coalition::Coalition;

    /// `u(S) = Σ_{i∈S} values[i]` — SV equals each player's value.
    pub struct AdditiveGame {
        /// Per-player values.
        pub values: Vec<f64>,
    }

    impl CoalitionUtility for AdditiveGame {
        fn num_players(&self) -> usize {
            self.values.len()
        }

        fn evaluate(&self, coalition: Coalition) -> f64 {
            coalition.members().map(|i| self.values[i]).sum()
        }
    }

    /// Glove game: players `0..left` hold left gloves, the rest right
    /// gloves; `u(S) = min(#left, #right)` pairs formed.
    pub struct GloveGame {
        /// Number of left-glove holders.
        pub left: usize,
        /// Total players.
        pub n: usize,
    }

    impl CoalitionUtility for GloveGame {
        fn num_players(&self) -> usize {
            self.n
        }

        fn evaluate(&self, coalition: Coalition) -> f64 {
            let lefts = coalition.members().filter(|&i| i < self.left).count();
            let rights = coalition.len() - lefts;
            lefts.min(rights) as f64
        }
    }

    /// Majority game: `u(S) = 1` iff `|S| > n/2`.
    pub struct MajorityGame {
        /// Total players.
        pub n: usize,
    }

    impl CoalitionUtility for MajorityGame {
        fn num_players(&self) -> usize {
            self.n
        }

        fn evaluate(&self, coalition: Coalition) -> f64 {
            f64::from(coalition.len() * 2 > self.n)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::games::AdditiveGame;
    use super::*;
    use crate::coalition::Coalition;

    #[test]
    fn utility_fn_adapts_closures() {
        let u = utility_fn(3, |c: Coalition| c.len() as f64);
        assert_eq!(u.num_players(), 3);
        assert_eq!(u.evaluate(Coalition::from_members(&[0, 2])), 2.0);
        assert_eq!(u.evaluate(Coalition::EMPTY), 0.0);
    }

    #[test]
    fn model_utility_fn_adapts() {
        let u = model_utility_fn(|w: &[f64]| w.iter().sum(), 0.1);
        assert_eq!(u.of_model(&[1.0, 2.0]), 3.0);
        assert_eq!(u.of_empty(), 0.1);
    }

    #[test]
    fn restricted_game_maps_indices() {
        let game = AdditiveGame {
            values: vec![1.0, 2.0, 4.0, 8.0],
        };
        let restricted = RestrictedGame::new(&game, vec![1, 3]);
        assert_eq!(restricted.num_players(), 2);
        assert_eq!(restricted.players(), &[1, 3]);
        // Restricted player 0 is inner player 1, restricted 1 is inner 3.
        assert_eq!(restricted.evaluate(Coalition::from_members(&[0])), 2.0);
        assert_eq!(restricted.evaluate(Coalition::from_members(&[1])), 8.0);
        assert_eq!(restricted.evaluate(Coalition::from_members(&[0, 1])), 10.0);
        assert_eq!(restricted.evaluate(Coalition::EMPTY), 0.0);
    }

    #[test]
    fn restricted_additive_game_has_subgame_shapley_values() {
        // Restricting an additive game is the subgame over the kept
        // players: exact SV of the restriction equals their values.
        let game = AdditiveGame {
            values: vec![3.0, -1.0, 5.0, 2.0, 7.0],
        };
        let restricted = RestrictedGame::new(&game, vec![0, 2, 4]);
        let sv = crate::native::exact_shapley(&restricted);
        for (got, want) in sv.iter().zip([3.0, 5.0, 7.0]) {
            assert!((got - want).abs() < 1e-12, "got {got}, want {want}");
        }
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn restricted_game_rejects_unsorted_players() {
        let game = AdditiveGame {
            values: vec![1.0, 2.0],
        };
        let _ = RestrictedGame::new(&game, vec![1, 0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn restricted_game_rejects_out_of_range_player() {
        let game = AdditiveGame {
            values: vec![1.0, 2.0],
        };
        let _ = RestrictedGame::new(&game, vec![0, 5]);
    }

    #[test]
    fn cache_counts_unique_evaluations() {
        let game = AdditiveGame {
            values: vec![1.0, 2.0],
        };
        let cached = CachedUtility::new(&game);
        let c = Coalition::from_members(&[0]);
        assert_eq!(cached.evaluate(c), 1.0);
        assert_eq!(cached.evaluate(c), 1.0);
        assert_eq!(cached.evaluate(Coalition::from_members(&[0, 1])), 3.0);
        assert_eq!(cached.unique_evaluations(), 2);
    }

    #[test]
    fn striped_cache_counts_across_all_stripes() {
        // A full 10-player powerset lands on many stripes; the unique
        // count must aggregate across all of them and the cached values
        // must stay correct per coalition.
        let game = AdditiveGame {
            values: (0..10).map(|i| i as f64).collect(),
        };
        let cached = CachedUtility::new(&game);
        for c in Coalition::powerset(10) {
            assert_eq!(cached.evaluate(c), game.evaluate(c));
        }
        assert_eq!(cached.unique_evaluations(), 1 << 10);
        // Re-evaluation hits the cache: count unchanged.
        for c in Coalition::powerset(10) {
            assert_eq!(cached.evaluate(c), game.evaluate(c));
        }
        assert_eq!(cached.unique_evaluations(), 1 << 10);
    }

    #[test]
    fn cache_stats_count_hits_and_misses() {
        let game = AdditiveGame {
            values: vec![1.0, 2.0, 4.0],
        };
        let cached = CachedUtility::new(&game);
        assert_eq!(cached.stats(), CacheStats::default());
        let c = Coalition::from_members(&[0, 2]);
        cached.evaluate(c);
        cached.evaluate(c);
        cached.evaluate(Coalition::from_members(&[1]));
        assert_eq!(cached.stats(), CacheStats { hits: 1, misses: 2 });
    }

    #[test]
    fn prewarm_streams_unique_coalitions_once_then_all_hits() {
        let game = AdditiveGame {
            values: (0..8).map(|i| i as f64).collect(),
        };
        let cached = CachedUtility::new(&game);
        // Duplicates in the hint must not evaluate twice.
        let mut hint: Vec<Coalition> = Coalition::powerset(8).collect();
        hint.extend(Coalition::powerset(8));
        cached.prewarm(&hint);
        assert_eq!(cached.unique_evaluations(), 1 << 8);
        assert_eq!(
            cached.stats(),
            CacheStats {
                hits: 0,
                misses: 1 << 8
            }
        );
        // Everything after the prewarm is a pure hit with the inner value.
        for c in Coalition::powerset(8) {
            assert_eq!(cached.evaluate(c), game.evaluate(c));
        }
        assert_eq!(
            cached.stats(),
            CacheStats {
                hits: 1 << 8,
                misses: 1 << 8
            }
        );
    }

    #[test]
    fn prewarm_is_a_noop_on_plain_utilities() {
        // The trait default must not disturb a bare game.
        let game = AdditiveGame {
            values: vec![1.0, 2.0],
        };
        game.prewarm(&[Coalition::from_members(&[0])]);
        assert_eq!(game.evaluate(Coalition::from_members(&[0])), 1.0);
    }
}
