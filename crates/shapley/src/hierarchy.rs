//! Two-level Shapley composition over cohorts — the group-model
//! reduction of the paper's Algorithm 1 applied **recursively**.
//!
//! One flat round caps out at [`MAX_SAMPLED_PLAYERS`] players for the
//! sampling estimators ([`MAX_PLAYERS`] for exact enumeration). The
//! hierarchy lifts that: owners are deterministically partitioned into
//! cohorts (a [`CohortPlan`]), each cohort plays the *within-cohort*
//! group game over its own members, and a *second-level* coalition game
//! over the cohort aggregate models prices each cohort as a whole. The
//! two levels compose into per-owner global contributions.
//!
//! # Module contract
//!
//! **Composition semantics** ([`compose`]): let `w_{c,i}` be owner `i`'s
//! within-cohort value in cohort `c` and `V_c` the cohort's second-level
//! value. The composed global value is
//!
//! ```text
//! φ_{c,i} = w_{c,i} · V_c / Σ_j w_{c,j}        (within-total ≠ 0)
//! φ_{c,i} = V_c / |c|                          (within-total = 0)
//! ```
//!
//! i.e. the cohort's second-level value is distributed across its
//! members *in proportion to their within-cohort values*; when the
//! within game carries no signal (all values cancel to exactly zero) the
//! cohort value is split uniformly so efficiency is preserved either
//! way: `Σ_i φ_{c,i} = V_c` for every non-empty cohort, hence
//! `Σ φ = Σ_c V_c` — the second-level game's efficiency total.
//!
//! **Single-cohort degeneration**: with exactly one cohort the hierarchy
//! *is* the flat game, so [`compose`] returns the within-cohort values
//! verbatim (bit-identical, no scaling applied) and
//! [`hierarchical_shapley`] delegates to [`group_shapley`] outright.
//! The flat path and the one-cohort hierarchical path therefore agree
//! bit-for-bit, which the property tests pin.
//!
//! **Dropped-cohort behavior**: a cohort whose members all dropped out
//! of a round has no aggregate model, so it must be excluded from the
//! second-level game — callers restrict the second-level game to the
//! surviving cohorts (`utility::RestrictedGame`) and pass `V_c = 0.0`
//! with zero within values for the dropped cohort; [`compose`] then
//! assigns every member of the dropped cohort exactly `0.0`. Dropping a
//! cohort never shifts another cohort's members between the uniform and
//! proportional branches.
//!
//! **Determinism**: the [`CohortPlan`] is a pure function of
//! `(seed, round, n, num_cohorts)` — the same splitmix64 Fisher–Yates
//! stream as the within-round grouping, domain-separated by
//! [`COHORT_STREAM`] — and the per-cohort fan-out runs on
//! [`numeric::par`]'s index-pure contract, so results are bit-identical
//! for every thread count and the plan is digest-bound wherever those
//! four inputs are (the on-chain round record binds all of them).

use numeric::linalg::mean_vectors;
use numeric::par;

use crate::coalition::{Coalition, CoalitionError, MAX_PLAYERS, MAX_SAMPLED_PLAYERS};
use crate::group::{group_shapley, grouping, permutation, shapley_over_group_models};
use crate::group::{GroupSvConfig, GroupSvResult};
use crate::utility::ModelUtility;

/// Domain-separation constant XOR-ed into the seed for the cohort
/// partition so the cohort plan and the within-cohort groupings draw
/// from distinct splitmix64 streams of the same public seed.
pub const COHORT_STREAM: u64 = 0xc0_7a_57_1e_5e_ed_5a_7b;

/// Per-cohort sub-seed for within-cohort grouping and sampling: distinct
/// cohorts of equal size must not share a permutation stream.
pub fn cohort_stream(seed: u64, cohort: u64) -> u64 {
    seed ^ (cohort + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

/// Typed rejection from the hierarchy layer.
///
/// Oversized configurations (too many cohorts for the second-level
/// coalition mask, more groups than a cohort holds) surface here instead
/// of panicking deep inside a constructor — the satellite fix for the
/// old hard `MAX_SAMPLED_PLAYERS` assumption leaking into callers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HierarchyError {
    /// `num_cohorts` outside `1..=num_owners`.
    BadCohortCount {
        /// Requested cohort count.
        cohorts: usize,
        /// Owner count being partitioned.
        owners: usize,
    },
    /// The second-level game cannot represent this many cohorts — a
    /// configuration error, surfaced through the validated
    /// [`Coalition`] constructors rather than a panic.
    Coalition(CoalitionError),
    /// More within-cohort groups requested than the smallest cohort has
    /// members.
    GroupCountExceedsCohortSize {
        /// Requested within-cohort group count.
        groups: usize,
        /// Size of the smallest cohort under the balanced partition.
        cohort_size: usize,
    },
    /// [`compose`] inputs disagree on the cohort count.
    LengthMismatch {
        /// Number of within-cohort value vectors.
        within: usize,
        /// Number of second-level cohort values.
        values: usize,
    },
}

impl std::fmt::Display for HierarchyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::BadCohortCount { cohorts, owners } => {
                write!(f, "num_cohorts must be in 1..={owners}, got {cohorts}")
            }
            Self::Coalition(e) => write!(f, "second-level game: {e}"),
            Self::GroupCountExceedsCohortSize {
                groups,
                cohort_size,
            } => write!(
                f,
                "{groups} groups per cohort exceed the smallest cohort ({cohort_size} members)"
            ),
            Self::LengthMismatch { within, values } => write!(
                f,
                "{within} within-cohort vectors vs {values} cohort values"
            ),
        }
    }
}

impl std::error::Error for HierarchyError {}

impl From<CoalitionError> for HierarchyError {
    fn from(e: CoalitionError) -> Self {
        Self::Coalition(e)
    }
}

/// The deterministic owner→cohort partition for one round.
///
/// Built from the same public `(seed, round)` pair as the within-round
/// grouping (domain-separated by [`COHORT_STREAM`]): a splitmix64
/// Fisher–Yates permutation chopped into `num_cohorts` balanced
/// consecutive chunks (the first `n mod k` cohorts take one extra
/// member). Every re-executing miner and auditor derives the identical
/// plan, and because all four inputs live in the on-chain parameters and
/// round number, a tampered partition diverges at the first state root.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CohortPlan {
    cohorts: Vec<Vec<usize>>,
    num_owners: usize,
}

impl CohortPlan {
    /// Derives the plan for `num_owners` owners split into
    /// `num_cohorts` cohorts.
    pub fn new(
        seed: u64,
        round: u64,
        num_owners: usize,
        num_cohorts: usize,
    ) -> Result<Self, HierarchyError> {
        if num_cohorts == 0 || num_cohorts > num_owners {
            return Err(HierarchyError::BadCohortCount {
                cohorts: num_cohorts,
                owners: num_owners,
            });
        }
        let pi = permutation(seed ^ COHORT_STREAM, round, num_owners);
        Ok(Self {
            cohorts: grouping(&pi, num_cohorts),
            num_owners,
        })
    }

    /// Cohort memberships: `cohorts()[c]` lists owner indices in cohort
    /// `c`.
    pub fn cohorts(&self) -> &[Vec<usize>] {
        &self.cohorts
    }

    /// Number of cohorts.
    pub fn num_cohorts(&self) -> usize {
        self.cohorts.len()
    }

    /// Number of owners partitioned.
    pub fn num_owners(&self) -> usize {
        self.num_owners
    }

    /// Size of the smallest cohort a balanced partition of `owners`
    /// into `cohorts` produces (`floor(owners / cohorts)`).
    pub fn min_cohort_size(owners: usize, cohorts: usize) -> usize {
        owners.checked_div(cohorts).unwrap_or(0)
    }
}

/// Composes within-cohort Shapley values with second-level cohort
/// values into per-owner global contributions.
///
/// `within[c]` holds cohort `c`'s within-cohort values (one per member,
/// in the cohort's member order); `cohort_values[c]` is the cohort's
/// second-level value. See the module docs for the exact semantics:
/// proportional scaling, uniform fallback at zero within-total, verbatim
/// pass-through for a single cohort, and zeros for dropped cohorts.
pub fn compose(
    within: &[Vec<f64>],
    cohort_values: &[f64],
) -> Result<Vec<Vec<f64>>, HierarchyError> {
    if within.len() != cohort_values.len() {
        return Err(HierarchyError::LengthMismatch {
            within: within.len(),
            values: cohort_values.len(),
        });
    }
    // One cohort: the hierarchy degenerates to the flat game; return the
    // within values bit-for-bit so the two paths cannot diverge.
    if within.len() == 1 {
        return Ok(within.to_vec());
    }
    let mut composed = Vec::with_capacity(within.len());
    for (vals, &cohort_value) in within.iter().zip(cohort_values) {
        let total: f64 = vals.iter().sum();
        if total != 0.0 {
            let scale = cohort_value / total;
            composed.push(vals.iter().map(|v| v * scale).collect());
        } else if vals.is_empty() {
            composed.push(Vec::new());
        } else {
            let share = cohort_value / vals.len() as f64;
            composed.push(vec![share; vals.len()]);
        }
    }
    Ok(composed)
}

/// Configuration for one hierarchical evaluation round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HierarchyConfig {
    /// Number of cohorts the owners are partitioned into.
    pub num_cohorts: usize,
    /// GroupSV group count *within each cohort* (must not exceed the
    /// smallest cohort's size).
    pub num_groups: usize,
    /// Public permutation seed agreed at setup.
    pub seed: u64,
    /// Round number; re-partitions cohorts and groups each round.
    pub round: u64,
}

/// Output of [`hierarchical_shapley`].
#[derive(Debug, Clone, PartialEq)]
pub struct HierarchyResult {
    /// Composed per-owner global values (indexed by owner).
    pub per_user: Vec<f64>,
    /// Second-level Shapley values, one per cohort.
    pub per_cohort: Vec<f64>,
    /// Cohort memberships (owner indices per cohort).
    pub cohorts: Vec<Vec<usize>>,
    /// Cohort aggregate models (each the cohort's flat-round global
    /// model).
    pub cohort_models: Vec<Vec<f64>>,
    /// The global model: average of the cohort aggregate models.
    pub global_model: Vec<f64>,
    /// Total utility evaluations across both levels.
    pub utility_evaluations: usize,
}

/// Runs the full two-level evaluation over raw local updates.
///
/// Partition owners with a [`CohortPlan`], run the flat
/// [`group_shapley`] *within each cohort* (fanned out one cohort per
/// slot on [`numeric::par`], each cohort on its own
/// [`cohort_stream`]-derived seed), play the exact second-level game
/// over the cohort aggregate models, and [`compose`] the two levels.
///
/// With `num_cohorts == 1` this delegates to [`group_shapley`] and is
/// bit-identical to the flat path.
pub fn hierarchical_shapley(
    local_weights: &[Vec<f64>],
    utility: &(impl ModelUtility + Sync),
    config: &HierarchyConfig,
) -> Result<HierarchyResult, HierarchyError> {
    let n = local_weights.len();
    let k = config.num_cohorts;
    if k == 0 || k > n {
        return Err(HierarchyError::BadCohortCount {
            cohorts: k,
            owners: n,
        });
    }
    if k == 1 {
        let flat = group_shapley(
            local_weights,
            utility,
            &GroupSvConfig {
                num_groups: config.num_groups,
                seed: config.seed,
                round: config.round,
            },
        );
        let per_cohort = vec![flat.per_group.iter().sum()];
        return Ok(HierarchyResult {
            per_user: flat.per_user,
            per_cohort,
            cohorts: vec![(0..n).collect()],
            cohort_models: vec![flat.global_model.clone()],
            global_model: flat.global_model,
            utility_evaluations: flat.utility_evaluations,
        });
    }
    // The second level enumerates 2^k coalitions over the cohort mask;
    // both caps surface as typed errors, not panics.
    Coalition::check_player_count(k, MAX_SAMPLED_PLAYERS)?;
    Coalition::check_player_count(k, MAX_PLAYERS)?;
    let min_cohort = CohortPlan::min_cohort_size(n, k);
    if config.num_groups == 0 || config.num_groups > min_cohort {
        return Err(HierarchyError::GroupCountExceedsCohortSize {
            groups: config.num_groups,
            cohort_size: min_cohort,
        });
    }

    let plan = CohortPlan::new(config.seed, config.round, n, k)?;

    // Within-cohort passes: one slot per cohort, each a pure function of
    // its cohort index (the fan-out the determinism suite pins).
    let within: Vec<GroupSvResult> = par::par_map(plan.cohorts(), 1, |c, members| {
        let cohort_weights: Vec<Vec<f64>> =
            members.iter().map(|&i| local_weights[i].clone()).collect();
        group_shapley(
            &cohort_weights,
            utility,
            &GroupSvConfig {
                num_groups: config.num_groups,
                seed: cohort_stream(config.seed, c as u64),
                round: config.round,
            },
        )
    });

    let cohort_models: Vec<Vec<f64>> = within.iter().map(|r| r.global_model.clone()).collect();
    let (per_cohort, second_level_evals) = shapley_over_group_models(&cohort_models, utility);

    let within_values: Vec<Vec<f64>> = within.iter().map(|r| r.per_user.clone()).collect();
    let composed = compose(&within_values, &per_cohort)?;

    let mut per_user = vec![0.0f64; n];
    for (cohort, values) in plan.cohorts().iter().zip(&composed) {
        for (&owner, &v) in cohort.iter().zip(values) {
            per_user[owner] = v;
        }
    }
    let utility_evaluations =
        within.iter().map(|r| r.utility_evaluations).sum::<usize>() + second_level_evals;

    Ok(HierarchyResult {
        per_user,
        per_cohort,
        cohorts: plan.cohorts().to_vec(),
        cohort_models: cohort_models.clone(),
        global_model: mean_vectors(&cohort_models),
        utility_evaluations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::utility::model_utility_fn;
    use proptest::prelude::*;

    fn sum_utility() -> impl ModelUtility + Sync {
        model_utility_fn(|w: &[f64]| w.iter().sum(), 0.0)
    }

    #[test]
    fn plan_is_a_deterministic_partition() {
        let plan = CohortPlan::new(42, 3, 10, 4).unwrap();
        assert_eq!(plan, CohortPlan::new(42, 3, 10, 4).unwrap());
        assert_eq!(plan.num_cohorts(), 4);
        assert_eq!(plan.num_owners(), 10);
        let mut seen = [false; 10];
        for cohort in plan.cohorts() {
            for &i in cohort {
                assert!(!seen[i], "owner {i} in two cohorts");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
        // Balanced: first n mod k cohorts take the extra member.
        let sizes: Vec<usize> = plan.cohorts().iter().map(Vec::len).collect();
        assert_eq!(sizes, vec![3, 3, 2, 2]);
        assert_ne!(
            plan,
            CohortPlan::new(42, 4, 10, 4).unwrap(),
            "round re-partitions"
        );
        assert_ne!(
            plan.cohorts(),
            grouping(&permutation(42, 3, 10), 4).as_slice(),
            "cohort stream is domain-separated from the grouping stream"
        );
    }

    #[test]
    fn plan_rejects_bad_cohort_counts() {
        assert_eq!(
            CohortPlan::new(1, 0, 5, 0),
            Err(HierarchyError::BadCohortCount {
                cohorts: 0,
                owners: 5
            })
        );
        assert_eq!(
            CohortPlan::new(1, 0, 5, 6),
            Err(HierarchyError::BadCohortCount {
                cohorts: 6,
                owners: 5
            })
        );
    }

    #[test]
    fn compose_matches_hand_computed_two_cohorts_three_owners() {
        // Cohort 0: within values (3, 1, 2), total 6, cohort value 12
        //   → scale 2 → (6, 2, 4).
        // Cohort 1: within values (1, 1, 0), total 2, cohort value 4
        //   → scale 2 → (2, 2, 0).
        // All values are exactly representable, so equality is exact.
        let within = vec![vec![3.0, 1.0, 2.0], vec![1.0, 1.0, 0.0]];
        let values = vec![12.0, 4.0];
        let composed = compose(&within, &values).unwrap();
        assert_eq!(composed, vec![vec![6.0, 2.0, 4.0], vec![2.0, 2.0, 0.0]]);
        // Efficiency: each cohort's members sum to its cohort value.
        for (vals, v) in composed.iter().zip(&values) {
            assert_eq!(vals.iter().sum::<f64>(), *v);
        }
    }

    #[test]
    fn compose_splits_uniformly_at_zero_within_total() {
        // Cohort 1's within game carries no signal (exact cancellation):
        // its value splits uniformly. A dropped cohort is the special
        // case value = 0 with zero within values → members get 0.
        let within = vec![vec![1.0, -1.0, 0.0], vec![0.0, 0.0]];
        let values = vec![6.0, 0.0];
        let composed = compose(&within, &values).unwrap();
        assert_eq!(composed, vec![vec![2.0, 2.0, 2.0], vec![0.0, 0.0]]);
    }

    #[test]
    fn compose_single_cohort_is_verbatim() {
        let within = vec![vec![0.1, 0.2, 0.30000000000000004]];
        let composed = compose(&within, &[99.0]).unwrap();
        assert_eq!(composed, within, "no scaling applied for one cohort");
    }

    #[test]
    fn compose_rejects_mismatched_lengths() {
        assert_eq!(
            compose(&[vec![1.0]], &[1.0, 2.0]),
            Err(HierarchyError::LengthMismatch {
                within: 1,
                values: 2
            })
        );
    }

    /// Independent exact SV over ≤3 players by explicit permutation
    /// enumeration — no crate machinery, so it can cross-check it.
    fn reference_sv(values: &dyn Fn(&[usize]) -> f64, n: usize) -> Vec<f64> {
        assert!(n <= 3);
        let perms: Vec<Vec<usize>> = match n {
            1 => vec![vec![0]],
            2 => vec![vec![0, 1], vec![1, 0]],
            3 => vec![
                vec![0, 1, 2],
                vec![0, 2, 1],
                vec![1, 0, 2],
                vec![1, 2, 0],
                vec![2, 0, 1],
                vec![2, 1, 0],
            ],
            _ => unreachable!(),
        };
        let mut sv = vec![0.0; n];
        for perm in &perms {
            let mut prefix: Vec<usize> = Vec::new();
            let mut prev = values(&prefix);
            for &p in perm {
                prefix.push(p);
                prefix.sort_unstable();
                let cur = values(&prefix);
                sv[p] += cur - prev;
                prev = cur;
            }
        }
        for v in &mut sv {
            *v /= perms.len() as f64;
        }
        sv
    }

    #[test]
    fn two_cohorts_of_three_match_independent_two_level_enumeration() {
        // 6 owners, scalar models, u(W) = W[0], 2 cohorts × 3 singleton
        // groups. Every level is small enough to recompute from scratch
        // with the independent permutation enumeration above.
        let weights: Vec<Vec<f64>> = [0.5, -1.0, 2.0, 3.5, 0.25, 1.0]
            .iter()
            .map(|&w| vec![w])
            .collect();
        let config = HierarchyConfig {
            num_cohorts: 2,
            num_groups: 3,
            seed: 77,
            round: 1,
        };
        let result = hierarchical_shapley(&weights, &sum_utility(), &config).unwrap();

        // Reference within-cohort values: game u(S) = mean of members'
        // scalars (singleton groups make group models the raw scalars;
        // within-cohort grouping permutes members, but the game over
        // singleton means is symmetric under that relabeling).
        let mut expect_within = Vec::new();
        let mut cohort_scalars = Vec::new();
        for cohort in &result.cohorts {
            let w: Vec<f64> = cohort.iter().map(|&i| weights[i][0]).collect();
            let w2 = w.clone();
            let game = move |s: &[usize]| {
                if s.is_empty() {
                    0.0
                } else {
                    s.iter().map(|&j| w2[j]).sum::<f64>() / s.len() as f64
                }
            };
            // Map the crate's within-cohort ordering back onto ours: the
            // crate groups by a permuted order, but exact SV over the
            // mean game depends only on the multiset, attributed per
            // player — so SV of member j is position-independent.
            expect_within.push(reference_sv(&game, cohort.len()));
            cohort_scalars.push(w.iter().sum::<f64>() / w.len() as f64);
        }

        // Reference second level: game over cohort means.
        let cs = cohort_scalars.clone();
        let second = move |s: &[usize]| {
            if s.is_empty() {
                0.0
            } else {
                s.iter().map(|&j| cs[j]).sum::<f64>() / s.len() as f64
            }
        };
        let expect_cohort = reference_sv(&second, 2);
        for (got, want) in result.per_cohort.iter().zip(&expect_cohort) {
            assert!((got - want).abs() < 1e-12, "{got} vs {want}");
        }

        // Reference composition, then compare per owner.
        let composed = compose(&expect_within, &expect_cohort).unwrap();
        for (cohort, vals) in result.cohorts.iter().zip(&composed) {
            for (&owner, &want) in cohort.iter().zip(vals) {
                assert!(
                    (result.per_user[owner] - want).abs() < 1e-12,
                    "owner {owner}: {} vs {want}",
                    result.per_user[owner]
                );
            }
        }
    }

    #[test]
    fn hierarchy_preserves_second_level_efficiency() {
        let weights: Vec<Vec<f64>> = (0..12)
            .map(|i| vec![(i as f64).sin(), (i as f64 * 0.7).cos()])
            .collect();
        let config = HierarchyConfig {
            num_cohorts: 3,
            num_groups: 2,
            seed: 5,
            round: 2,
        };
        let result = hierarchical_shapley(&weights, &sum_utility(), &config).unwrap();
        let total: f64 = result.per_user.iter().sum();
        let cohort_total: f64 = result.per_cohort.iter().sum();
        assert!((total - cohort_total).abs() < 1e-9);
        let u = sum_utility();
        let grand = u.of_model(&result.global_model) - u.of_empty();
        assert!(
            (cohort_total - grand).abs() < 1e-9,
            "second-level efficiency: {cohort_total} vs {grand}"
        );
    }

    #[test]
    fn oversized_hierarchies_are_typed_errors_not_panics() {
        let weights: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64]).collect();
        let mut config = HierarchyConfig {
            num_cohorts: 31,
            num_groups: 1,
            seed: 0,
            round: 0,
        };
        assert_eq!(
            hierarchical_shapley(&weights, &sum_utility(), &config).unwrap_err(),
            HierarchyError::BadCohortCount {
                cohorts: 31,
                owners: 30
            }
        );
        // 26 cohorts fit the mask but exceed the exact-enumeration cap:
        // the validated Coalition constructor turns this into an error.
        config.num_cohorts = 26;
        assert_eq!(
            hierarchical_shapley(&weights, &sum_utility(), &config).unwrap_err(),
            HierarchyError::Coalition(CoalitionError::TooManyPlayers {
                n: 26,
                max: MAX_PLAYERS
            })
        );
        config.num_cohorts = 4;
        config.num_groups = 8; // smallest cohort has 7 members
        assert_eq!(
            hierarchical_shapley(&weights, &sum_utility(), &config).unwrap_err(),
            HierarchyError::GroupCountExceedsCohortSize {
                groups: 8,
                cohort_size: 7
            }
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn prop_single_cohort_is_bit_identical_to_flat(
            n in 2usize..8,
            seed in any::<u64>(),
            round in 0u64..5,
        ) {
            let weights: Vec<Vec<f64>> = (0..n)
                .map(|i| vec![(i as f64 + 0.3).sin(), (i as f64).cos()])
                .collect();
            for m in 1..=n {
                let flat = group_shapley(
                    &weights,
                    &sum_utility(),
                    &GroupSvConfig { num_groups: m, seed, round },
                );
                let hier = hierarchical_shapley(
                    &weights,
                    &sum_utility(),
                    &HierarchyConfig { num_cohorts: 1, num_groups: m, seed, round },
                ).unwrap();
                for (a, b) in hier.per_user.iter().zip(&flat.per_user) {
                    prop_assert_eq!(a.to_bits(), b.to_bits(), "per-user values must be bit-identical");
                }
                for (a, b) in hier.global_model.iter().zip(&flat.global_model) {
                    prop_assert_eq!(a.to_bits(), b.to_bits(), "global model must be bit-identical");
                }
                prop_assert_eq!(hier.utility_evaluations, flat.utility_evaluations);
            }
        }
    }
}
