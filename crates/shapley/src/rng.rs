//! The one splitmix64 finalizer every sampling engine shares.
//!
//! The grouping permutation, the Monte-Carlo permutation streams, and
//! the stratified subset streams all derive their randomness from this
//! exact bit-mixing function; miners re-execute all three, so a single
//! definition keeps the engines' determinism contracts from silently
//! desynchronizing.

/// The splitmix64 golden-ratio increment (⌊2⁶⁴/φ⌋, odd).
pub(crate) const GOLDEN: u64 = 0x9e37_79b9_7f4a_7c15;

/// splitmix64 finalizer (Steele, Lea & Flood's `SplittableRandom` mix).
pub(crate) fn splitmix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One splitmix64 step: advance `state` by [`GOLDEN`] and finalize.
///
/// Every engine's `next()` closure is this function, so the stream
/// advance cannot drift between samplers.
pub(crate) fn stream_next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(GOLDEN);
    splitmix(*state)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finalizer_reference_values() {
        // Pin the mix: any change here would re-randomize every sampled
        // estimate and break replay of recorded chains.
        assert_eq!(splitmix(0), 0);
        assert_eq!(splitmix(1), 0x5692_161d_100b_05e5);
        // First output of the reference SplittableRandom sequence from
        // seed 0 (state advanced once by the golden-ratio increment).
        assert_eq!(splitmix(0x9e37_79b9_7f4a_7c15), 0xe220_a839_7b1d_cdaf);
    }
}
