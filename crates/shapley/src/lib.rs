//! Shapley-value contribution evaluation.
//!
//! Three engines over a common utility abstraction:
//!
//! * [`native`] — the exact Shapley value (the paper's Eq. 1), computed
//!   over all `2^n` coalitions. This is the ground truth of Fig. 1 and
//!   the slow baseline of Table I.
//! * [`group`] — **GroupSV, the paper's Algorithm 1**: partition users
//!   into `m` groups by a seeded permutation, evaluate group coalitions
//!   built by *averaging group models*, compute exact SV over the `m`
//!   groups, and split each group's value uniformly among its members.
//!   Compatible with secure aggregation because it only ever touches
//!   group-level aggregates.
//! * [`monte_carlo`] — permutation-sampling approximation (Ghorbani &
//!   Zou's TMC-Shapley), the standard scalability baseline from the
//!   related work.
//!
//! Plus [`axioms`], machine-checkable statements of the properties the
//! paper cites (efficiency/balance, symmetry, null player, additivity),
//! used by the property-based test-suite.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod axioms;
pub mod coalition;
pub mod group;
pub mod monte_carlo;
pub mod native;
pub mod utility;

pub use group::{group_shapley, GroupSvConfig, GroupSvResult};
pub use monte_carlo::{monte_carlo_shapley, McConfig};
pub use native::exact_shapley;
pub use utility::{CachedUtility, CoalitionUtility, ModelUtility};
