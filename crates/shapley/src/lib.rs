//! Shapley-value contribution evaluation.
//!
//! Four engines behind one pluggable interface ([`estimator`]):
//!
//! * [`native`] — the exact Shapley value (the paper's Eq. 1), computed
//!   over all `2^n` coalitions. This is the ground truth of Fig. 1 and
//!   the slow baseline of Table I.
//! * [`group`] — **GroupSV, the paper's Algorithm 1**: partition users
//!   into `m` groups by a seeded permutation, evaluate group coalitions
//!   built by *averaging group models*, compute exact SV over the `m`
//!   groups, and split each group's value uniformly among its members.
//!   Compatible with secure aggregation because it only ever touches
//!   group-level aggregates.
//! * [`monte_carlo`] — permutation-sampling approximation (Ghorbani &
//!   Zou's TMC-Shapley), the standard scalability baseline from the
//!   related work.
//! * [`stratified`] — stratified subset sampling over `(player, size)`
//!   strata: polynomial cost, deterministic per-(seed, stratum, index)
//!   streams, and the engine that lifts the 25-player exact cap to
//!   [`coalition::MAX_SAMPLED_PLAYERS`].
//!
//! The [`estimator`] module wraps all of them in the [`estimator::SvEstimator`]
//! trait returning a uniform [`estimator::SvEstimate`] (values +
//! evaluation counts + sampling diagnostics), so the on-chain contract
//! can treat the evaluation method as auditable round configuration.
//!
//! Plus [`axioms`], machine-checkable statements of the properties the
//! paper cites (efficiency/balance, symmetry, null player, additivity),
//! used by the property-based test-suite.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod axioms;
pub mod coalition;
pub mod estimator;
pub mod group;
pub mod hierarchy;
pub mod monte_carlo;
pub mod native;
mod rng;
pub mod stratified;
pub mod utility;

pub use coalition::CoalitionError;
pub use estimator::{SvDiagnostics, SvEstimate, SvEstimator};
pub use group::{group_shapley, GroupModelGame, GroupSvConfig, GroupSvResult};
pub use hierarchy::{
    compose, hierarchical_shapley, CohortPlan, HierarchyConfig, HierarchyError, HierarchyResult,
};
pub use monte_carlo::{monte_carlo_shapley, McConfig};
pub use native::exact_shapley;
pub use stratified::{stratified_shapley, StratifiedConfig};
pub use utility::{CachedUtility, CoalitionUtility, ModelUtility};
