//! Coalitions as bitmasks.
//!
//! With the paper's cross-silo scale (n = 9 owners, `2^9 = 512`
//! coalitions) a machine-word bitmask is the right representation: O(1)
//! member tests, cheap hashing for the utility cache, and natural
//! enumeration of the powerset by counting. The mask is a `u64`, so a
//! coalition can name up to [`MAX_SAMPLED_PLAYERS`] players — the bound
//! the sampling estimators work under. Exhaustive `2^n` enumeration is
//! separately capped at [`MAX_PLAYERS`] so accidental powerset blow-ups
//! cannot compile into multi-hour runs.

use std::fmt;

/// Maximum supported player count for **exact enumeration** (`2^n`
/// coalitions). Sampling estimators go beyond this, up to
/// [`MAX_SAMPLED_PLAYERS`].
pub const MAX_PLAYERS: usize = 25;

/// Maximum player count representable by the bitmask — the hard bound
/// for every estimator, including the sampling ones.
pub const MAX_SAMPLED_PLAYERS: usize = 64;

/// Typed rejection from the validated coalition constructors.
///
/// Every player-count check in the crate routes through
/// [`Coalition::check_player_count`] / [`Coalition::check_player_index`],
/// so callers building games over *derived* player sets (e.g. one player
/// per cohort in a hierarchical round) can surface an oversized
/// configuration as an error instead of a panic. The legacy panicking
/// constructors render these errors verbatim, so their messages — and the
/// `should_panic` pins on them — are unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoalitionError {
    /// More players than the relevant cap supports.
    TooManyPlayers {
        /// Requested player count.
        n: usize,
        /// The cap that was exceeded ([`MAX_PLAYERS`] for exact
        /// enumeration, [`MAX_SAMPLED_PLAYERS`] for the mask itself).
        max: usize,
    },
    /// A player index does not fit in the bitmask.
    PlayerIndexOutOfRange {
        /// The offending index.
        index: usize,
        /// The mask width it must stay below.
        max: usize,
    },
}

impl fmt::Display for CoalitionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::TooManyPlayers { n, max } => {
                write!(f, "at most {max} players, got {n}")
            }
            Self::PlayerIndexOutOfRange { index, max } => {
                write!(f, "player index {index} exceeds {max}")
            }
        }
    }
}

impl std::error::Error for CoalitionError {}

/// A set of players encoded as a bitmask (player `i` ⇔ bit `i`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Coalition(pub u64);

impl Coalition {
    /// The empty coalition.
    pub const EMPTY: Self = Self(0);

    /// Validates a player count against a cap — the single entry point
    /// every constructor (panicking or fallible) goes through.
    pub fn check_player_count(n: usize, max: usize) -> Result<(), CoalitionError> {
        if n > max {
            Err(CoalitionError::TooManyPlayers { n, max })
        } else {
            Ok(())
        }
    }

    /// Validates a single player index against the mask width.
    pub fn check_player_index(index: usize) -> Result<(), CoalitionError> {
        if index >= MAX_SAMPLED_PLAYERS {
            Err(CoalitionError::PlayerIndexOutOfRange {
                index,
                max: MAX_SAMPLED_PLAYERS,
            })
        } else {
            Ok(())
        }
    }

    /// The grand coalition of `n` players, or a typed error when `n`
    /// exceeds [`MAX_SAMPLED_PLAYERS`].
    pub fn try_grand(n: usize) -> Result<Self, CoalitionError> {
        Self::check_player_count(n, MAX_SAMPLED_PLAYERS)?;
        Ok(if n == 0 {
            Self::EMPTY
        } else {
            Self(u64::MAX >> (MAX_SAMPLED_PLAYERS - n))
        })
    }

    /// The grand coalition of `n` players.
    ///
    /// # Panics
    ///
    /// Panics if `n > MAX_SAMPLED_PLAYERS`.
    pub fn grand(n: usize) -> Self {
        Self::try_grand(n).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Coalition from a member list, or a typed error when any index
    /// does not fit in the mask.
    pub fn try_from_members(members: &[usize]) -> Result<Self, CoalitionError> {
        let mut mask = 0u64;
        for &m in members {
            Self::check_player_index(m)?;
            mask |= 1 << m;
        }
        Ok(Self(mask))
    }

    /// Coalition from a member list.
    ///
    /// # Panics
    ///
    /// Panics if any member index exceeds [`MAX_SAMPLED_PLAYERS`].
    pub fn from_members(members: &[usize]) -> Self {
        Self::try_from_members(members).unwrap_or_else(|e| panic!("{e}"))
    }

    /// True if player `i` is a member.
    pub fn contains(&self, i: usize) -> bool {
        i < MAX_SAMPLED_PLAYERS && (self.0 >> i) & 1 == 1
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.0.count_ones() as usize
    }

    /// True for the empty coalition.
    pub fn is_empty(&self) -> bool {
        self.0 == 0
    }

    /// Adds a player.
    #[must_use]
    pub fn with(&self, i: usize) -> Self {
        Self::check_player_index(i).unwrap_or_else(|e| panic!("{e}"));
        Self(self.0 | (1 << i))
    }

    /// Removes a player.
    #[must_use]
    pub fn without(&self, i: usize) -> Self {
        Self::check_player_index(i).unwrap_or_else(|e| panic!("{e}"));
        Self(self.0 & !(1 << i))
    }

    /// Iterates member indices in ascending order.
    pub fn members(&self) -> impl Iterator<Item = usize> + '_ {
        (0..MAX_SAMPLED_PLAYERS).filter(move |&i| (self.0 >> i) & 1 == 1)
    }

    /// Enumerates the full powerset of `n` players (`2^n` coalitions,
    /// including empty and grand).
    ///
    /// # Panics
    ///
    /// Panics if `n > MAX_PLAYERS` — exhaustive enumeration is capped
    /// even though the mask itself holds up to [`MAX_SAMPLED_PLAYERS`]
    /// players.
    pub fn powerset(n: usize) -> impl Iterator<Item = Coalition> {
        Self::check_player_count(n, MAX_PLAYERS).unwrap_or_else(|e| panic!("{e}"));
        (0u64..(1u64 << n)).map(Coalition)
    }

    /// Enumerates all subsets of `self` (including empty and `self`).
    ///
    /// Uses the standard descending-mask trick; subsets appear in
    /// descending numeric order, ending with the empty set.
    pub fn subsets(&self) -> SubsetIter {
        SubsetIter {
            universe: self.0,
            current: self.0,
            done: false,
        }
    }
}

/// Iterator over the subsets of a coalition.
pub struct SubsetIter {
    universe: u64,
    current: u64,
    done: bool,
}

impl Iterator for SubsetIter {
    type Item = Coalition;

    fn next(&mut self) -> Option<Coalition> {
        if self.done {
            return None;
        }
        let out = Coalition(self.current);
        if self.current == 0 {
            self.done = true;
        } else {
            self.current = (self.current - 1) & self.universe;
        }
        Some(out)
    }
}

impl fmt::Debug for Coalition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for m in self.members() {
            if !first {
                write!(f, ",")?;
            }
            write!(f, "{m}")?;
            first = false;
        }
        write!(f, "}}")
    }
}

/// Binomial coefficient `C(n, k)` in `f64` (exact for the small `n` used
/// in SV weights).
pub fn binomial(n: usize, k: usize) -> f64 {
    if k > n {
        return 0.0;
    }
    let k = k.min(n - k);
    let mut num = 1.0f64;
    for i in 0..k {
        num = num * (n - i) as f64 / (i + 1) as f64;
    }
    num.round()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_membership() {
        let c = Coalition::from_members(&[0, 3, 5]);
        assert!(c.contains(0) && c.contains(3) && c.contains(5));
        assert!(!c.contains(1));
        assert_eq!(c.len(), 3);
        assert_eq!(c.members().collect::<Vec<_>>(), vec![0, 3, 5]);
    }

    #[test]
    fn grand_and_empty() {
        assert_eq!(Coalition::grand(0), Coalition::EMPTY);
        assert_eq!(Coalition::grand(3).len(), 3);
        assert!(Coalition::EMPTY.is_empty());
        assert_eq!(Coalition::grand(MAX_PLAYERS).len(), MAX_PLAYERS);
    }

    #[test]
    fn wide_masks_up_to_64_players() {
        // The sampling estimators address players 25..64; the mask and
        // every set operation must be exact out to the last bit.
        let full = Coalition::grand(MAX_SAMPLED_PLAYERS);
        assert_eq!(full.len(), 64);
        assert!(full.contains(63));
        assert_eq!(full.without(63).len(), 63);
        let c = Coalition::from_members(&[0, 31, 32, 63]);
        assert_eq!(c.members().collect::<Vec<_>>(), vec![0, 31, 32, 63]);
        assert_eq!(c.with(48).len(), 5);
        assert_eq!(Coalition::grand(48).len(), 48);
    }

    #[test]
    fn with_without_round_trip() {
        let c = Coalition::from_members(&[1]);
        assert_eq!(c.with(2).without(2), c);
        assert_eq!(c.with(1), c, "idempotent add");
        assert_eq!(c.without(5), c, "removing absent player is no-op");
    }

    #[test]
    fn powerset_size() {
        assert_eq!(Coalition::powerset(0).count(), 1);
        assert_eq!(Coalition::powerset(4).count(), 16);
        assert_eq!(Coalition::powerset(9).count(), 512);
    }

    #[test]
    fn subsets_enumerate_exactly() {
        let c = Coalition::from_members(&[0, 2]);
        let subs: Vec<Coalition> = c.subsets().collect();
        assert_eq!(subs.len(), 4);
        assert!(subs.contains(&Coalition::EMPTY));
        assert!(subs.contains(&c));
        assert!(subs.contains(&Coalition::from_members(&[0])));
        assert!(subs.contains(&Coalition::from_members(&[2])));
    }

    #[test]
    fn subsets_of_empty_is_empty_only() {
        let subs: Vec<Coalition> = Coalition::EMPTY.subsets().collect();
        assert_eq!(subs, vec![Coalition::EMPTY]);
    }

    #[test]
    fn subsets_count_is_power_of_two_of_len() {
        let c = Coalition::from_members(&[1, 4, 7, 9]);
        assert_eq!(c.subsets().count(), 16);
    }

    #[test]
    #[should_panic(expected = "at most")]
    fn too_many_players_panics() {
        let _ = Coalition::grand(MAX_SAMPLED_PLAYERS + 1);
    }

    #[test]
    #[should_panic(expected = "at most")]
    fn powerset_beyond_exact_cap_panics() {
        let _ = Coalition::powerset(MAX_PLAYERS + 1);
    }

    #[test]
    fn try_constructors_return_typed_errors() {
        assert_eq!(
            Coalition::try_grand(MAX_SAMPLED_PLAYERS + 1),
            Err(CoalitionError::TooManyPlayers {
                n: MAX_SAMPLED_PLAYERS + 1,
                max: MAX_SAMPLED_PLAYERS,
            })
        );
        assert_eq!(
            Coalition::try_from_members(&[0, MAX_SAMPLED_PLAYERS]),
            Err(CoalitionError::PlayerIndexOutOfRange {
                index: MAX_SAMPLED_PLAYERS,
                max: MAX_SAMPLED_PLAYERS,
            })
        );
        assert_eq!(Coalition::try_grand(3), Ok(Coalition::grand(3)));
        assert_eq!(
            Coalition::try_from_members(&[1, 5]),
            Ok(Coalition::from_members(&[1, 5]))
        );
    }

    #[test]
    fn typed_errors_render_the_legacy_panic_messages() {
        // The panicking constructors format these errors verbatim, so the
        // historical `should_panic(expected = ...)` substrings must stay
        // stable across the validated-constructor refactor.
        let e = CoalitionError::TooManyPlayers { n: 65, max: 64 };
        assert_eq!(e.to_string(), "at most 64 players, got 65");
        let e = CoalitionError::PlayerIndexOutOfRange { index: 64, max: 64 };
        assert_eq!(e.to_string(), "player index 64 exceeds 64");
    }

    #[test]
    fn check_player_count_is_the_single_gate() {
        assert!(Coalition::check_player_count(MAX_PLAYERS, MAX_PLAYERS).is_ok());
        assert_eq!(
            Coalition::check_player_count(MAX_PLAYERS + 1, MAX_PLAYERS),
            Err(CoalitionError::TooManyPlayers {
                n: MAX_PLAYERS + 1,
                max: MAX_PLAYERS,
            })
        );
    }

    #[test]
    fn binomial_values() {
        assert_eq!(binomial(0, 0), 1.0);
        assert_eq!(binomial(5, 0), 1.0);
        assert_eq!(binomial(5, 5), 1.0);
        assert_eq!(binomial(5, 2), 10.0);
        assert_eq!(binomial(9, 4), 126.0);
        assert_eq!(binomial(3, 5), 0.0);
    }

    #[test]
    fn debug_format() {
        assert_eq!(format!("{:?}", Coalition::from_members(&[0, 2])), "{0,2}");
        assert_eq!(format!("{:?}", Coalition::EMPTY), "{}");
    }
}
