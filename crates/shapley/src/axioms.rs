//! Machine-checkable Shapley axioms.
//!
//! The paper cites (Sect. II-A) that the Shapley value satisfies
//! *balance* (efficiency), *symmetry*, *zero elements* (null player) and
//! *additivity*. These helpers turn each axiom into a checkable predicate
//! over a concrete game, used by the property-based tests and by the
//! `axiom_audit` example to demonstrate the evaluation is well-founded.

use crate::coalition::Coalition;
use crate::utility::CoalitionUtility;

/// Tolerance used by the checks.
pub const TOLERANCE: f64 = 1e-9;

/// Efficiency / balance: `Σ v_i = u(N) − u(∅)`.
pub fn check_efficiency(utility: &impl CoalitionUtility, values: &[f64]) -> bool {
    let n = utility.num_players();
    assert_eq!(values.len(), n, "one value per player");
    let total: f64 = values.iter().sum();
    let grand = utility.evaluate(Coalition::grand(n));
    let empty = utility.evaluate(Coalition::EMPTY);
    (total - (grand - empty)).abs() <= TOLERANCE
}

/// Symmetry: players `i` and `j` with identical marginal contributions to
/// every coalition must receive equal values. Checks the premise
/// exhaustively over the powerset excluding both players.
pub fn symmetric_players(utility: &impl CoalitionUtility, i: usize, j: usize) -> bool {
    let n = utility.num_players();
    assert!(i < n && j < n && i != j, "need two distinct players");
    let others = Coalition::grand(n).without(i).without(j);
    others
        .subsets()
        .all(|s| (utility.evaluate(s.with(i)) - utility.evaluate(s.with(j))).abs() <= TOLERANCE)
}

/// Checks the symmetry axiom for a computed value vector.
pub fn check_symmetry(utility: &impl CoalitionUtility, values: &[f64]) -> bool {
    let n = utility.num_players();
    for i in 0..n {
        for j in (i + 1)..n {
            if symmetric_players(utility, i, j) && (values[i] - values[j]).abs() > TOLERANCE {
                return false;
            }
        }
    }
    true
}

/// Null player ("zero element"): a player whose marginal contribution is
/// zero for every coalition.
pub fn is_null_player(utility: &impl CoalitionUtility, i: usize) -> bool {
    let n = utility.num_players();
    assert!(i < n, "player out of range");
    let others = Coalition::grand(n).without(i);
    others
        .subsets()
        .all(|s| (utility.evaluate(s.with(i)) - utility.evaluate(s)).abs() <= TOLERANCE)
}

/// Checks the null-player axiom for a computed value vector.
pub fn check_null_player(utility: &impl CoalitionUtility, values: &[f64]) -> bool {
    (0..utility.num_players()).all(|i| !is_null_player(utility, i) || values[i].abs() <= TOLERANCE)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::native::exact_shapley;
    use crate::utility::games::{AdditiveGame, GloveGame, MajorityGame};
    use crate::utility::utility_fn;

    #[test]
    fn exact_sv_passes_all_axioms_on_classic_games() {
        let glove = GloveGame { left: 2, n: 4 };
        let sv = exact_shapley(&glove);
        assert!(check_efficiency(&glove, &sv));
        assert!(check_symmetry(&glove, &sv));
        assert!(check_null_player(&glove, &sv));

        let majority = MajorityGame { n: 5 };
        let sv = exact_shapley(&majority);
        assert!(check_efficiency(&majority, &sv));
        assert!(check_symmetry(&majority, &sv));
    }

    #[test]
    fn null_player_detection() {
        let game = AdditiveGame {
            values: vec![1.0, 0.0, 2.0],
        };
        assert!(!is_null_player(&game, 0));
        assert!(is_null_player(&game, 1));
        assert!(!is_null_player(&game, 2));
    }

    #[test]
    fn symmetry_detection() {
        let game = AdditiveGame {
            values: vec![2.0, 2.0, 5.0],
        };
        assert!(symmetric_players(&game, 0, 1));
        assert!(!symmetric_players(&game, 0, 2));
    }

    #[test]
    fn violations_are_caught() {
        let game = AdditiveGame {
            values: vec![1.0, 1.0],
        };
        // A deliberately wrong allocation.
        assert!(!check_efficiency(&game, &[1.0, 0.0]));
        assert!(!check_symmetry(&game, &[2.0, 0.0]));
        let with_null = AdditiveGame {
            values: vec![1.0, 0.0],
        };
        assert!(!check_null_player(&with_null, &[0.5, 0.5]));
    }

    #[test]
    fn efficiency_respects_nonzero_empty_value() {
        // u(∅) = 10: SV must sum to u(N) − u(∅).
        let u = utility_fn(2, |c: Coalition| 10.0 + c.len() as f64);
        let sv = exact_shapley(&u);
        assert!(check_efficiency(&u, &sv));
        let total: f64 = sv.iter().sum();
        assert!((total - 2.0).abs() < 1e-12);
    }
}
