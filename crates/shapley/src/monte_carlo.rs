//! Monte-Carlo Shapley approximation (permutation sampling).
//!
//! The related-work baseline (Ghorbani & Zou's TMC-Shapley, Jia et al.):
//! sample random permutations of the players, walk each permutation
//! accumulating marginal contributions, and average. Unbiased for any
//! sample count; the optional truncation cuts a permutation short once
//! the running coalition's utility is within `tolerance` of the grand
//! coalition's (late marginals are ~0, so skipping them trades a tiny
//! bias for large savings when utility evaluation is expensive).
//!
//! Every permutation draws from its **own splitmix64 stream** derived
//! from `(seed, permutation index)`, so permutation `p` shuffles
//! identically whether it runs first on one thread or last on sixteen.
//! The sampled walks execute on the deterministic fork-join layer
//! ([`numeric::par`]) and their marginals are reduced in permutation
//! order, making the estimate bit-identical for every thread count.

use numeric::par;

use crate::coalition::Coalition;
use crate::rng::splitmix;
use crate::utility::CoalitionUtility;

/// Minimum permutation walks per worker thread.
const MIN_PERMS_PER_THREAD: usize = 8;

/// Monte-Carlo configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct McConfig {
    /// Number of permutations to sample.
    pub permutations: usize,
    /// RNG seed.
    pub seed: u64,
    /// Truncation tolerance (TMC): `None` disables truncation.
    pub truncation_tolerance: Option<f64>,
}

impl Default for McConfig {
    fn default() -> Self {
        Self {
            permutations: 200,
            seed: 0,
            truncation_tolerance: None,
        }
    }
}

/// Result with diagnostics.
#[derive(Debug, Clone, PartialEq)]
pub struct McResult {
    /// Estimated Shapley values.
    pub values: Vec<f64>,
    /// Utility evaluations performed (the cost driver).
    pub utility_evaluations: usize,
    /// Permutations sampled (echoes the configuration, so the result is
    /// self-describing when converted into an estimator-layer
    /// [`crate::estimator::SvEstimate`]).
    pub permutations: usize,
    /// Marginals skipped by truncation.
    pub truncated_marginals: usize,
}

/// One permutation's walk: marginal contributions plus diagnostics.
struct PermWalk {
    marginals: Vec<f64>,
    evaluations: usize,
    truncated: usize,
}

/// The independent stream state for permutation `index` under `seed`.
///
/// Two finalizer rounds decorrelate neighbouring indices; the result
/// depends only on `(seed, index)`, never on which thread runs the walk.
fn stream_state(seed: u64, index: u64) -> u64 {
    splitmix(seed ^ splitmix(index.wrapping_mul(crate::rng::GOLDEN).wrapping_add(1)))
}

/// Estimates Shapley values by permutation sampling.
///
/// # Panics
///
/// Panics if `permutations == 0` or the game is empty.
pub fn monte_carlo_shapley(
    utility: &(impl CoalitionUtility + Sync),
    config: &McConfig,
) -> McResult {
    let n = utility.num_players();
    assert!(n > 0, "empty game");
    assert!(config.permutations > 0, "need at least one permutation");

    let grand_value = utility.evaluate(Coalition::grand(n));
    let empty_value = utility.evaluate(Coalition::EMPTY);

    let walks = par::par_map_indices(config.permutations, MIN_PERMS_PER_THREAD, |p| {
        let mut state = stream_state(config.seed, p as u64);
        let mut next = move || crate::rng::stream_next(&mut state);
        // Fisher–Yates with the per-permutation splitmix64 stream.
        let mut order: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = (next() % (i as u64 + 1)) as usize;
            order.swap(i, j);
        }
        let mut walk = PermWalk {
            marginals: vec![0.0f64; n],
            evaluations: 0,
            truncated: 0,
        };
        let mut coalition = Coalition::EMPTY;
        let mut prev_value = empty_value;
        for &player in &order {
            if let Some(tol) = config.truncation_tolerance {
                if (grand_value - prev_value).abs() <= tol {
                    // Remaining marginals treated as zero.
                    walk.truncated += 1;
                    continue;
                }
            }
            coalition = coalition.with(player);
            let value = utility.evaluate(coalition);
            walk.evaluations += 1;
            walk.marginals[player] += value - prev_value;
            prev_value = value;
        }
        walk
    });

    // Reduce in permutation order: the floating-point sum is independent
    // of the parallel schedule.
    let mut acc = vec![0.0f64; n];
    let mut evaluations = 2usize;
    let mut truncated = 0usize;
    for walk in &walks {
        for (a, m) in acc.iter_mut().zip(&walk.marginals) {
            *a += m;
        }
        evaluations += walk.evaluations;
        truncated += walk.truncated;
    }

    let scale = 1.0 / config.permutations as f64;
    for v in &mut acc {
        *v *= scale;
    }
    McResult {
        values: acc,
        utility_evaluations: evaluations,
        permutations: config.permutations,
        truncated_marginals: truncated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::native::exact_shapley;
    use crate::utility::games::{AdditiveGame, GloveGame};
    use crate::utility::CachedUtility;

    #[test]
    fn additive_game_exact_in_every_sample() {
        // For additive games every permutation gives the exact marginal,
        // so even one permutation is exact.
        let game = AdditiveGame {
            values: vec![1.0, -2.0, 3.0],
        };
        let result = monte_carlo_shapley(
            &game,
            &McConfig {
                permutations: 1,
                seed: 3,
                truncation_tolerance: None,
            },
        );
        for (mc, exact) in result.values.iter().zip(&game.values) {
            assert!((mc - exact).abs() < 1e-12);
        }
    }

    #[test]
    fn converges_to_exact_on_glove_game() {
        let game = GloveGame { left: 2, n: 5 };
        let exact = exact_shapley(&game);
        let result = monte_carlo_shapley(
            &game,
            &McConfig {
                permutations: 4000,
                seed: 1,
                truncation_tolerance: None,
            },
        );
        for (mc, ex) in result.values.iter().zip(&exact) {
            assert!((mc - ex).abs() < 0.05, "MC {mc} too far from exact {ex}");
        }
    }

    #[test]
    fn efficiency_holds_per_sample_family() {
        // Permutation sampling preserves efficiency exactly (telescoping
        // sum per permutation) when no truncation is applied.
        let game = GloveGame { left: 3, n: 6 };
        let result = monte_carlo_shapley(
            &game,
            &McConfig {
                permutations: 50,
                seed: 9,
                truncation_tolerance: None,
            },
        );
        let total: f64 = result.values.iter().sum();
        let grand = game.evaluate(Coalition::grand(6));
        assert!((total - grand).abs() < 1e-9);
    }

    #[test]
    fn deterministic_per_seed() {
        let game = GloveGame { left: 2, n: 4 };
        let cfg = McConfig {
            permutations: 10,
            seed: 42,
            truncation_tolerance: None,
        };
        assert_eq!(
            monte_carlo_shapley(&game, &cfg),
            monte_carlo_shapley(&game, &cfg)
        );
        let other = monte_carlo_shapley(&game, &McConfig { seed: 43, ..cfg });
        assert_ne!(monte_carlo_shapley(&game, &cfg).values, other.values);
    }

    #[test]
    fn truncation_reduces_evaluations() {
        let game = AdditiveGame {
            values: vec![5.0, 0.0, 0.0, 0.0, 0.0],
        };
        let cached_full = CachedUtility::new(&game);
        let full = monte_carlo_shapley(
            &cached_full,
            &McConfig {
                permutations: 50,
                seed: 7,
                truncation_tolerance: None,
            },
        );
        let truncated = monte_carlo_shapley(
            &game,
            &McConfig {
                permutations: 50,
                seed: 7,
                truncation_tolerance: Some(0.01),
            },
        );
        assert!(truncated.truncated_marginals > 0);
        assert!(truncated.utility_evaluations < full.utility_evaluations);
        // Player 0 still gets ~all the value.
        assert!((truncated.values[0] - 5.0).abs() < 0.5);
    }

    #[test]
    #[should_panic(expected = "at least one permutation")]
    fn zero_permutations_panics() {
        let game = AdditiveGame { values: vec![1.0] };
        let _ = monte_carlo_shapley(
            &game,
            &McConfig {
                permutations: 0,
                ..Default::default()
            },
        );
    }
}
