//! GroupSV — the paper's Algorithm 1.
//!
//! The native method cannot run under secure aggregation because the
//! blockchain never sees individual updates, only sums. GroupSV restores
//! computability by changing the granularity:
//!
//! 1. Partition the `n` users into `m` groups with a seeded permutation
//!    (`π ← permutation(e, r, I)`, groups are consecutive chunks of π).
//! 2. Each group's model `W_j` is the *average of its members' updates* —
//!    obtainable from secure aggregation restricted to the group.
//! 3. Coalition models over groups are plain averages:
//!    `W_S = (1/|S|) Σ_{j∈S} W_j`.
//! 4. Exact SV over the `m` groups (Eq. 1 at group granularity), each
//!    group's value split uniformly among its members.
//!
//! The `m` knob trades resolution for privacy: `m = n` reproduces
//! per-user SV over local models (no grouping privacy), small `m` hides
//! individuals inside group averages ((n/m)-anonymity) at the cost of
//! uniform within-group attribution.

use std::cell::RefCell;

use numeric::linalg::mean_vectors;
use numeric::par;

use crate::coalition::{Coalition, MAX_PLAYERS, MAX_SAMPLED_PLAYERS};
use crate::native::exact_shapley_core;
use crate::utility::{CoalitionUtility, ModelUtility};

/// Minimum coalition-model evaluations per worker thread; below twice
/// this the powerset is evaluated on the calling thread. Small `m`
/// rounds (the paper's cross-silo demo uses `m = 2`) stay free of thread
/// overhead while the `2^m` enumeration parallelizes as soon as it is
/// the dominant cost.
const MIN_EVALS_PER_THREAD: usize = 16;

/// Configuration for one GroupSV evaluation round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupSvConfig {
    /// Number of groups `m` (the resolution/privacy knob).
    pub num_groups: usize,
    /// Public permutation seed `e` agreed at setup.
    pub seed: u64,
    /// Round number `r`; combined with `e` so each round re-partitions.
    pub round: u64,
}

/// Output of [`group_shapley`].
#[derive(Debug, Clone, PartialEq)]
pub struct GroupSvResult {
    /// Per-user Shapley values `v_i` (indexed by user).
    pub per_user: Vec<f64>,
    /// Per-group Shapley values `V_j` (indexed by group).
    pub per_group: Vec<f64>,
    /// Group memberships: `groups[j]` lists user indices in group `j`.
    pub groups: Vec<Vec<usize>>,
    /// The group models `W_j` (averages of member updates).
    pub group_models: Vec<Vec<f64>>,
    /// The global model `W_G`: average of all group models (line "users
    /// download the new global model" in the protocol).
    pub global_model: Vec<f64>,
    /// Number of utility evaluations performed (`2^m`, for Table I).
    pub utility_evaluations: usize,
}

/// The deterministic permutation `π ← permutation(e, r, I)`.
///
/// splitmix64-seeded Fisher–Yates over `0..n`; public and reproducible so
/// every re-executing miner derives the identical grouping.
pub fn permutation(seed: u64, round: u64, n: usize) -> Vec<usize> {
    // Mix e and r into one 64-bit state (splitmix64 stream).
    let mut state = seed ^ round.wrapping_mul(crate::rng::GOLDEN);
    let mut next = move || crate::rng::stream_next(&mut state);
    let mut idx: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        // Rejection-free modulo is fine here: the bias over u64 is
        // immaterial for grouping, and determinism is what matters.
        let j = (next() % (i as u64 + 1)) as usize;
        idx.swap(i, j);
    }
    idx
}

/// `grouping(π, m)`: chops the permutation into `m` consecutive chunks;
/// the first `n mod m` groups take one extra member.
pub fn grouping(pi: &[usize], m: usize) -> Vec<Vec<usize>> {
    assert!(m > 0, "need at least one group");
    assert!(m <= pi.len(), "more groups ({m}) than users ({})", pi.len());
    let n = pi.len();
    let base = n / m;
    let extra = n % m;
    let mut groups = Vec::with_capacity(m);
    let mut offset = 0;
    for j in 0..m {
        let size = base + usize::from(j < extra);
        groups.push(pi[offset..offset + size].to_vec());
        offset += size;
    }
    debug_assert_eq!(offset, n);
    groups
}

/// Precomputed partial coalition sums: every coalition's weight-sum is
/// one vector addition away.
///
/// The `2^m` coalition models are averages `W_S = (1/|S|) Σ_{j∈S} W_j`.
/// Building each sum naively costs `O(|S| · d)` — the dominant cost of
/// the enumeration once the utility is cheap. Splitting the bitmask into
/// its low `h` and high `m − h` halves and tabulating the subset-sums of
/// each half (classic subset-DP, each table entry one vector add on a
/// smaller entry) gets `Σ_S = lows[S_lo] + highs[S_hi]` in `O(d)` with
/// `O(2^{m/2} · d)` memory instead of `O(2^m · d)`.
///
/// Determinism: every table entry adds member models in ascending group
/// index, so the coalition model is a pure function of `mask` — chunk
/// boundaries of the parallel enumeration cannot influence a single bit
/// of any coalition model. Note the floating-point *grouping* differs
/// from a flat sequential fold: a coalition spanning both halves is
/// summed as `(low half) + (high half)`, so its model can differ from
/// the seed implementation's `mean_vectors` fold in the final ULP.
/// That changes nothing on-chain — every miner runs this same code —
/// but exact-equality replays of chains recorded *before* this rewrite
/// would have to use the old fold.
struct CoalitionSums {
    dim: usize,
    low_bits: u32,
    lows: Vec<Vec<f64>>,
    highs: Vec<Vec<f64>>,
}

impl CoalitionSums {
    fn new(group_models: &[Vec<f64>], dim: usize) -> Self {
        let m = group_models.len();
        let low_bits = (m / 2) as u32;
        let lows = Self::half_table(&group_models[..low_bits as usize], dim);
        let highs = Self::half_table(&group_models[low_bits as usize..], dim);
        Self {
            dim,
            low_bits,
            lows,
            highs,
        }
    }

    /// Subset-sum table over `models` (one half of the groups). Entry
    /// `x` holds `Σ_{bit j ∈ x} models[j]`, built by adding the highest
    /// member onto the already-computed remainder — so within a half,
    /// members accumulate in ascending index order.
    fn half_table(models: &[Vec<f64>], dim: usize) -> Vec<Vec<f64>> {
        let bits = models.len();
        let mut table = vec![vec![0.0f64; dim]; 1usize << bits];
        for x in 1usize..(1usize << bits) {
            let msb = usize::BITS - 1 - x.leading_zeros();
            let rest = x & !(1usize << msb);
            let (head, tail) = table.split_at_mut(x);
            let entry = &mut tail[0];
            entry.copy_from_slice(&head[rest]);
            for (e, w) in entry.iter_mut().zip(&models[msb as usize]) {
                *e += w;
            }
        }
        table
    }

    /// Writes the coalition *mean* `W_S` for a non-empty `mask` into
    /// `out` without allocating.
    fn mean_into(&self, mask: usize, out: &mut [f64]) {
        debug_assert_ne!(mask, 0);
        debug_assert_eq!(out.len(), self.dim);
        let low = mask & ((1usize << self.low_bits) - 1);
        let high = mask >> self.low_bits;
        let inv = 1.0 / mask.count_ones() as f64;
        let lo = &self.lows[low];
        let hi = &self.highs[high];
        for ((o, l), h) in out.iter_mut().zip(lo).zip(hi) {
            *o = (l + h) * inv;
        }
    }
}

/// The group-model coalition game: `u(S) = utility(mean_{j∈S} W_j)`.
///
/// This is the game the smart contract plays on-chain — it receives the
/// per-group secure aggregates (it can never see individual updates) and
/// asks for the utility of coalition averages. Exposing it as a
/// [`CoalitionUtility`] lets **any** estimator in
/// [`crate::estimator`] run over group models: exact enumeration
/// (Algorithm 1), Monte-Carlo, or stratified sampling for group counts
/// beyond the exact cap.
///
/// Representation: for `m ≤` [`MAX_PLAYERS`] groups the coalition means
/// come from the incremental subset-sum tables (`CoalitionSums`) —
/// `O(d)` per coalition, zero per-coalition clones. Beyond that the
/// tables' `O(2^{m/2} · d)` memory is prohibitive (and only sampling
/// estimators reach there anyway), so members are summed directly in
/// ascending group order. Both paths make `evaluate` a pure function of
/// the coalition bitmask, so every estimator built on [`numeric::par`]
/// stays bit-identical across thread counts.
pub struct GroupModelGame<'a, U> {
    utility: &'a U,
    backing: Backing<'a>,
    m: usize,
    dim: usize,
}

enum Backing<'a> {
    /// Subset-sum tables (small `m`): coalition sum in one vector add.
    Tabulated(CoalitionSums),
    /// Direct member summation (large `m`, sampling estimators only).
    Direct(&'a [Vec<f64>]),
}

thread_local! {
    /// Per-thread scratch for coalition means, so `evaluate` allocates
    /// only on a thread's first use. The value in each slot is a pure
    /// function of the coalition mask, so which thread owns the buffer
    /// cannot influence a single output bit.
    static MEAN_SCRATCH: RefCell<Vec<f64>> = const { RefCell::new(Vec::new()) };
}

impl<'a, U: ModelUtility> GroupModelGame<'a, U> {
    /// Builds the game over `group_models` (one flat model per group).
    ///
    /// # Panics
    ///
    /// Panics on empty/ragged input or more than
    /// [`MAX_SAMPLED_PLAYERS`] groups.
    pub fn new(group_models: &'a [Vec<f64>], utility: &'a U) -> Self {
        let m = group_models.len();
        assert!(m > 0, "no groups");
        assert!(
            m <= MAX_SAMPLED_PLAYERS,
            "coalition masks hold {MAX_SAMPLED_PLAYERS} groups, got {m}"
        );
        let dim = group_models[0].len();
        assert!(
            group_models.iter().all(|w| w.len() == dim),
            "all group models must share a dimension"
        );
        let backing = if m <= MAX_PLAYERS {
            Backing::Tabulated(CoalitionSums::new(group_models, dim))
        } else {
            Backing::Direct(group_models)
        };
        Self {
            utility,
            backing,
            m,
            dim,
        }
    }
}

impl<U: ModelUtility> CoalitionUtility for GroupModelGame<'_, U> {
    fn num_players(&self) -> usize {
        self.m
    }

    fn evaluate(&self, coalition: Coalition) -> f64 {
        if coalition.is_empty() {
            return self.utility.of_empty();
        }
        // Take the buffer out of the cell rather than holding a borrow
        // across `of_model`: a re-entrant evaluation on the same thread
        // (a utility that itself consults another game) then starts from
        // an empty buffer instead of panicking the RefCell.
        let mut w_s = MEAN_SCRATCH.with(RefCell::take);
        w_s.resize(self.dim, 0.0);
        match &self.backing {
            Backing::Tabulated(sums) => sums.mean_into(coalition.0 as usize, &mut w_s),
            Backing::Direct(models) => {
                w_s.fill(0.0);
                for j in coalition.members() {
                    for (acc, w) in w_s.iter_mut().zip(&models[j]) {
                        *acc += w;
                    }
                }
                let inv = 1.0 / coalition.len() as f64;
                for acc in w_s.iter_mut() {
                    *acc *= inv;
                }
            }
        }
        let value = self.utility.of_model(&w_s);
        MEAN_SCRATCH.with(|scratch| scratch.replace(w_s));
        value
    }
}

/// Lines 4–6 of Algorithm 1: exact Shapley values over *group models*.
///
/// The historical entry point the contract and benches call; since the
/// estimator refactor it is a thin wrapper — build the
/// [`GroupModelGame`] and run the shared exact-enumeration core
/// (the same engine behind [`crate::estimator::Exact`]). The `2^m`
/// utility evaluations run on the deterministic fork-join layer
/// ([`numeric::par`]); because each cache slot is a pure function of its
/// coalition bitmask, the result is bit-identical for every thread
/// count.
///
/// Returns `(per_group_sv, utility_evaluations)`.
///
/// # Panics
///
/// Panics on empty/ragged input or more than [`MAX_PLAYERS`] groups.
pub fn shapley_over_group_models(
    group_models: &[Vec<f64>],
    utility: &(impl ModelUtility + Sync),
) -> (Vec<f64>, usize) {
    let m = group_models.len();
    assert!(
        m <= MAX_PLAYERS,
        "GroupSV enumerates 2^m coalitions; m={m} exceeds {MAX_PLAYERS}"
    );
    let game = GroupModelGame::new(group_models, utility);
    let per_group = exact_shapley_core(&game, MIN_EVALS_PER_THREAD);
    (per_group, 1usize << m)
}

/// Runs Algorithm 1 over the users' local weight updates.
///
/// `local_weights[i]` is user `i`'s flat update for this round. In the
/// deployed protocol these arrive as *secure aggregates per group*; this
/// function accepts the raw updates and performs the same averaging, so
/// its outputs are bit-comparable with the on-chain contract (which the
/// integration tests assert).
///
/// # Panics
///
/// Panics if inputs are empty/mismatched or `num_groups` is out of range
/// (`1..=n`, and at most [`MAX_PLAYERS`] groups for the `2^m`
/// enumeration).
pub fn group_shapley(
    local_weights: &[Vec<f64>],
    utility: &(impl ModelUtility + Sync),
    config: &GroupSvConfig,
) -> GroupSvResult {
    let n = local_weights.len();
    assert!(n > 0, "no users");
    let m = config.num_groups;
    assert!(
        (1..=n).contains(&m),
        "num_groups must be in 1..={n}, got {m}"
    );
    assert!(
        m <= MAX_PLAYERS,
        "GroupSV enumerates 2^m coalitions; m={m} exceeds {MAX_PLAYERS}"
    );
    let dim = local_weights[0].len();
    assert!(
        local_weights.iter().all(|w| w.len() == dim),
        "all updates must share a dimension"
    );

    // Lines 1–2: permutation and grouping.
    let pi = permutation(config.seed, config.round, n);
    let groups = grouping(&pi, m);

    // Line 3: group models (secure aggregation computes exactly this).
    // Accumulate members directly in listed order — same summation order
    // as `mean_vectors`, without cloning each member's update first.
    let group_models: Vec<Vec<f64>> = par::par_map(&groups, 2, |_, g| {
        let mut acc = vec![0.0f64; dim];
        for &i in g {
            for (a, w) in acc.iter_mut().zip(&local_weights[i]) {
                *a += w;
            }
        }
        let inv = 1.0 / g.len() as f64;
        for a in &mut acc {
            *a *= inv;
        }
        acc
    });

    // Lines 4–6: coalition models and exact SV over groups.
    let (per_group, evaluations) = shapley_over_group_models(&group_models, utility);

    // Line 7: split group value uniformly among members.
    let mut per_user = vec![0.0f64; n];
    for (j, group) in groups.iter().enumerate() {
        let share = per_group[j] / group.len() as f64;
        for &i in group {
            per_user[i] = share;
        }
    }

    // Global model: average of the group models (what users download).
    let global_model = mean_vectors(&group_models);

    GroupSvResult {
        per_user,
        per_group,
        groups,
        group_models,
        global_model,
        utility_evaluations: evaluations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::native::exact_shapley;
    use crate::utility::{model_utility_fn, utility_fn};
    use proptest::prelude::*;

    fn sum_utility() -> impl ModelUtility {
        // u(W) = Σ w — linear in the model, so group SV is analytically
        // tractable.
        model_utility_fn(|w: &[f64]| w.iter().sum(), 0.0)
    }

    #[test]
    fn permutation_is_deterministic_permutation() {
        let p1 = permutation(42, 0, 9);
        let p2 = permutation(42, 0, 9);
        assert_eq!(p1, p2);
        let mut sorted = p1.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..9).collect::<Vec<_>>());
        assert_ne!(permutation(42, 1, 9), p1, "round changes the permutation");
        assert_ne!(permutation(43, 0, 9), p1, "seed changes the permutation");
    }

    #[test]
    fn grouping_chunks_balanced() {
        let pi: Vec<usize> = (0..9).collect();
        let g = grouping(&pi, 3);
        assert_eq!(g, vec![vec![0, 1, 2], vec![3, 4, 5], vec![6, 7, 8]]);
        let g2 = grouping(&pi, 4);
        let sizes: Vec<usize> = g2.iter().map(Vec::len).collect();
        assert_eq!(sizes, vec![3, 2, 2, 2]);
        let total: usize = g2.iter().map(Vec::len).sum();
        assert_eq!(total, 9);
    }

    #[test]
    #[should_panic(expected = "more groups")]
    fn too_many_groups_panics() {
        let pi: Vec<usize> = (0..3).collect();
        let _ = grouping(&pi, 4);
    }

    #[test]
    fn single_group_gives_everyone_equal_share() {
        let weights = vec![vec![1.0], vec![2.0], vec![3.0]];
        let result = group_shapley(
            &weights,
            &sum_utility(),
            &GroupSvConfig {
                num_groups: 1,
                seed: 7,
                round: 0,
            },
        );
        // One group: V_1 = u(W_G) − u(∅) = mean(1,2,3) = 2; each of the 3
        // users gets 2/3.
        assert_eq!(result.per_group.len(), 1);
        assert!((result.per_group[0] - 2.0).abs() < 1e-12);
        for v in &result.per_user {
            assert!((v - 2.0 / 3.0).abs() < 1e-12);
        }
        assert_eq!(result.utility_evaluations, 2);
    }

    #[test]
    fn m_equals_n_matches_per_user_native_sv() {
        // With one user per group, GroupSV must equal the native SV of
        // the game u(S) = utility(mean of members' models).
        let weights = vec![vec![1.0, 0.0], vec![0.0, 2.0], vec![3.0, 1.0]];
        let cfg = GroupSvConfig {
            num_groups: 3,
            seed: 5,
            round: 2,
        };
        let result = group_shapley(&weights, &sum_utility(), &cfg);

        // Build the equivalent coalition game over users directly. The
        // grouping permutes users; map group j -> its single member.
        let member_of_group: Vec<usize> = result.groups.iter().map(|g| g[0]).collect();
        let w2 = weights.clone();
        let game = utility_fn(3, move |c: Coalition| {
            if c.is_empty() {
                return 0.0;
            }
            let members: Vec<Vec<f64>> = c
                .members()
                .map(|j| w2[member_of_group[j]].clone())
                .collect();
            mean_vectors(&members).iter().sum()
        });
        let native = exact_shapley(&game);
        for (j, group) in result.groups.iter().enumerate() {
            let user = group[0];
            assert!(
                (result.per_user[user] - native[j]).abs() < 1e-12,
                "user {user}: group {native:?} vs {:?}",
                result.per_user
            );
        }
    }

    #[test]
    fn efficiency_over_groups() {
        // Σ V_j = u(W_G) − u(∅).
        let weights: Vec<Vec<f64>> = (0..6).map(|i| vec![i as f64, -(i as f64) * 0.5]).collect();
        for m in 1..=6 {
            let result = group_shapley(
                &weights,
                &sum_utility(),
                &GroupSvConfig {
                    num_groups: m,
                    seed: 1,
                    round: 1,
                },
            );
            let total: f64 = result.per_group.iter().sum();
            let u = sum_utility();
            let grand = u.of_model(&result.global_model) - u.of_empty();
            assert!(
                (total - grand).abs() < 1e-9,
                "m={m}: Σ V_j = {total} vs {grand}"
            );
        }
    }

    #[test]
    fn per_user_sums_match_per_group() {
        let weights: Vec<Vec<f64>> = (0..9).map(|i| vec![i as f64]).collect();
        let result = group_shapley(
            &weights,
            &sum_utility(),
            &GroupSvConfig {
                num_groups: 4,
                seed: 9,
                round: 3,
            },
        );
        let user_total: f64 = result.per_user.iter().sum();
        let group_total: f64 = result.per_group.iter().sum();
        assert!((user_total - group_total).abs() < 1e-9);
    }

    #[test]
    fn utility_evaluation_count_is_two_to_the_m() {
        let weights: Vec<Vec<f64>> = (0..9).map(|i| vec![i as f64]).collect();
        for m in [2usize, 3, 5, 9] {
            let result = group_shapley(
                &weights,
                &sum_utility(),
                &GroupSvConfig {
                    num_groups: m,
                    seed: 0,
                    round: 0,
                },
            );
            assert_eq!(result.utility_evaluations, 1 << m);
        }
    }

    #[test]
    fn global_model_is_mean_of_group_models() {
        let weights = vec![vec![2.0], vec![4.0], vec![6.0], vec![8.0]];
        let result = group_shapley(
            &weights,
            &sum_utility(),
            &GroupSvConfig {
                num_groups: 2,
                seed: 3,
                round: 0,
            },
        );
        // Both groups have 2 members, so global = overall mean = 5.
        assert!((result.global_model[0] - 5.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "num_groups")]
    fn zero_groups_panics() {
        let _ = group_shapley(
            &[vec![1.0]],
            &sum_utility(),
            &GroupSvConfig {
                num_groups: 0,
                seed: 0,
                round: 0,
            },
        );
    }

    #[test]
    #[should_panic(expected = "share a dimension")]
    fn ragged_updates_panic() {
        let _ = group_shapley(
            &[vec![1.0], vec![1.0, 2.0]],
            &sum_utility(),
            &GroupSvConfig {
                num_groups: 2,
                seed: 0,
                round: 0,
            },
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn prop_group_efficiency_any_m(
            n in 2usize..8,
            seed in any::<u64>(),
            round in 0u64..10,
        ) {
            let weights: Vec<Vec<f64>> = (0..n)
                .map(|i| vec![(i as f64).sin(), (i as f64).cos()])
                .collect();
            for m in 1..=n {
                let result = group_shapley(
                    &weights,
                    &sum_utility(),
                    &GroupSvConfig { num_groups: m, seed, round },
                );
                let total: f64 = result.per_group.iter().sum();
                let u = sum_utility();
                let grand = u.of_model(&result.global_model) - u.of_empty();
                prop_assert!((total - grand).abs() < 1e-9);
                // Every user appears in exactly one group.
                let mut seen = vec![false; n];
                for g in &result.groups {
                    for &i in g {
                        prop_assert!(!seen[i], "user {i} in two groups");
                        seen[i] = true;
                    }
                }
                prop_assert!(seen.iter().all(|&s| s));
            }
        }
    }
}
