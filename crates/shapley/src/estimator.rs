//! The pluggable estimator layer — one interface over every SV engine.
//!
//! The paper's deliverable is *on-chain, re-executable* contribution
//! evaluation, which means the evaluation **method** must itself be a
//! first-class, auditable choice rather than a function call baked into
//! the contract (cf. 2CP's swappable contribution policies and
//! reward-driven smart-contract designs). This module defines that
//! choice surface:
//!
//! * [`SvEstimator`] — the trait every engine implements:
//!   `estimate(&game) -> SvEstimate`.
//! * [`SvEstimate`] — values plus the cost/diagnostic envelope
//!   (utility-evaluation count, sampling diagnostics) that downstream
//!   consumers (rewards, audit records, Table I) read uniformly.
//! * Four estimators: [`Exact`] (Eq. 1 by full enumeration), [`GroupSv`]
//!   (Algorithm 1's group-then-exact reduction, generalized to any
//!   coalition game), [`MonteCarlo`] (permutation sampling), and
//!   [`Stratified`] (per-(player, size) stratified subset sampling — the
//!   estimator that lifts the 25-player exact cap to 64).
//!
//! Every estimator preserves the determinism contract of
//! [`numeric::par`]: output slots are pure functions of global indices,
//! reductions happen in index order, and sampling draws from streams
//! keyed by `(seed, stratum/permutation, index)` — so an estimate is
//! bit-identical for any thread count and any miner can re-execute it.

use crate::coalition::{Coalition, MAX_PLAYERS, MAX_SAMPLED_PLAYERS};
use crate::group::{grouping, permutation};
use crate::monte_carlo::{monte_carlo_shapley, McConfig, McResult};
use crate::native::exact_shapley;
use crate::stratified::{stratified_shapley, StratifiedConfig};
use crate::utility::CoalitionUtility;

/// Sampling diagnostics attached to every estimate.
///
/// Exhaustive estimators report all-zero diagnostics; the sampling
/// estimators record how the estimate was assembled so an auditor can
/// judge its variance without re-deriving the configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SvDiagnostics {
    /// Independent samples drawn (permutations for [`MonteCarlo`],
    /// subset draws for [`Stratified`]); 0 for exhaustive estimators.
    pub samples: usize,
    /// Strata covered (`(player, coalition size)` pairs); 0 when the
    /// estimator does not stratify.
    pub strata: usize,
    /// Marginals skipped by truncation (TMC Monte-Carlo only).
    pub truncated_marginals: usize,
    /// Utility evaluations answered from a
    /// [`CachedUtility`](crate::utility::CachedUtility) memo table; 0
    /// when the estimate ran against an uncached utility.
    /// Observability only — cache counters never feed consensus
    /// digests (see [`crate::utility::CacheStats`]).
    pub cache_hits: usize,
    /// Utility evaluations that missed the memo table and ran the
    /// underlying game; 0 when uncached.
    pub cache_misses: usize,
}

/// The uniform output of every estimator.
#[derive(Debug, Clone, PartialEq)]
pub struct SvEstimate {
    /// Estimated Shapley values, indexed by player.
    pub values: Vec<f64>,
    /// Utility evaluations performed — the cost driver (the paper's
    /// Table I counts exactly this).
    pub utility_evaluations: usize,
    /// How the estimate was sampled.
    pub diagnostics: SvDiagnostics,
}

impl From<McResult> for SvEstimate {
    fn from(r: McResult) -> Self {
        let samples = r.permutations;
        SvEstimate {
            values: r.values,
            utility_evaluations: r.utility_evaluations,
            diagnostics: SvDiagnostics {
                samples,
                strata: 0,
                truncated_marginals: r.truncated_marginals,
                cache_hits: 0,
                cache_misses: 0,
            },
        }
    }
}

/// A Shapley-value estimator over coalition games.
///
/// Implementations must be deterministic given their configuration and
/// schedule-invariant (bit-identical for every thread count) — the
/// consensus layer relies on both.
pub trait SvEstimator {
    /// Stable method name, recorded in audit trails and bench reports.
    fn name(&self) -> &'static str;

    /// Largest player count this estimator accepts
    /// ([`MAX_PLAYERS`] for exhaustive enumeration,
    /// [`MAX_SAMPLED_PLAYERS`] for sampling).
    fn max_players(&self) -> usize;

    /// Estimates every player's Shapley value.
    ///
    /// # Panics
    ///
    /// Panics if the game exceeds [`Self::max_players`] or the
    /// estimator's configuration is unusable (e.g. zero samples).
    fn estimate<U: CoalitionUtility + Sync>(&self, game: &U) -> SvEstimate;
}

/// Exact Shapley values (the paper's Eq. 1) by full `2^n` enumeration.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Exact;

impl SvEstimator for Exact {
    fn name(&self) -> &'static str {
        "exact"
    }

    fn max_players(&self) -> usize {
        MAX_PLAYERS
    }

    fn estimate<U: CoalitionUtility + Sync>(&self, game: &U) -> SvEstimate {
        let n = game.num_players();
        let values = exact_shapley(game);
        SvEstimate {
            values,
            utility_evaluations: if n == 0 { 0 } else { 1usize << n },
            diagnostics: SvDiagnostics::default(),
        }
    }
}

/// Algorithm 1's group-then-exact reduction, generalized to arbitrary
/// coalition games.
///
/// Players are partitioned into `num_groups` groups by the public seeded
/// permutation (`π ← permutation(seed, round, I)`); the **group game**
/// `U(T) = u(∪_{j∈T} group_j)` is solved exactly over the `m` groups and
/// each group's value is split uniformly among its members — the same
/// resolution-for-cost trade the paper makes at the model level
/// ([`crate::group::group_shapley`] is the model-averaging instance the
/// contract runs; this estimator is the coalition-game counterpart usable
/// with any utility). Cost drops from `2^n` to `2^m` evaluations, so
/// games up to [`MAX_SAMPLED_PLAYERS`] players are feasible as long as
/// `num_groups ≤` [`MAX_PLAYERS`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupSv {
    /// Number of groups `m` (the resolution knob).
    pub num_groups: usize,
    /// Public permutation seed.
    pub seed: u64,
    /// Round number, mixed into the permutation so each round
    /// re-partitions.
    pub round: u64,
}

/// The group-level game: coalition of groups → union of their members.
struct GroupedGame<'a, U> {
    inner: &'a U,
    group_masks: Vec<Coalition>,
}

impl<U: CoalitionUtility> CoalitionUtility for GroupedGame<'_, U> {
    fn num_players(&self) -> usize {
        self.group_masks.len()
    }

    fn evaluate(&self, coalition: Coalition) -> f64 {
        let mut union = Coalition::EMPTY;
        for (j, mask) in self.group_masks.iter().enumerate() {
            if coalition.contains(j) {
                union = Coalition(union.0 | mask.0);
            }
        }
        self.inner.evaluate(union)
    }
}

impl SvEstimator for GroupSv {
    fn name(&self) -> &'static str {
        "group_sv"
    }

    fn max_players(&self) -> usize {
        MAX_SAMPLED_PLAYERS
    }

    fn estimate<U: CoalitionUtility + Sync>(&self, game: &U) -> SvEstimate {
        let n = game.num_players();
        assert!(n > 0, "empty game");
        assert!(
            n <= MAX_SAMPLED_PLAYERS,
            "coalition masks hold {MAX_SAMPLED_PLAYERS} players, got {n}"
        );
        let m = self.num_groups;
        assert!(
            (1..=n).contains(&m),
            "num_groups must be in 1..={n}, got {m}"
        );
        assert!(
            m <= MAX_PLAYERS,
            "GroupSV enumerates 2^m coalitions; m={m} exceeds {MAX_PLAYERS}"
        );

        let pi = permutation(self.seed, self.round, n);
        let groups = grouping(&pi, m);
        let grouped = GroupedGame {
            inner: game,
            group_masks: groups.iter().map(|g| Coalition::from_members(g)).collect(),
        };
        let per_group = exact_shapley(&grouped);

        let mut values = vec![0.0f64; n];
        for (j, group) in groups.iter().enumerate() {
            let share = per_group[j] / group.len() as f64;
            for &i in group {
                values[i] = share;
            }
        }
        SvEstimate {
            values,
            utility_evaluations: 1usize << m,
            diagnostics: SvDiagnostics::default(),
        }
    }
}

/// Permutation-sampling Monte-Carlo estimation
/// ([`crate::monte_carlo::monte_carlo_shapley`]).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MonteCarlo {
    /// Sampling configuration (permutation count, seed, truncation).
    pub config: McConfig,
}

impl SvEstimator for MonteCarlo {
    fn name(&self) -> &'static str {
        "monte_carlo"
    }

    fn max_players(&self) -> usize {
        MAX_SAMPLED_PLAYERS
    }

    fn estimate<U: CoalitionUtility + Sync>(&self, game: &U) -> SvEstimate {
        monte_carlo_shapley(game, &self.config).into()
    }
}

/// Stratified subset sampling
/// ([`crate::stratified::stratified_shapley`]) — the estimator that
/// lifts the exact-enumeration player cap.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Stratified {
    /// Sampling configuration (samples per stratum, seed).
    pub config: StratifiedConfig,
}

impl SvEstimator for Stratified {
    fn name(&self) -> &'static str {
        "stratified"
    }

    fn max_players(&self) -> usize {
        MAX_SAMPLED_PLAYERS
    }

    fn estimate<U: CoalitionUtility + Sync>(&self, game: &U) -> SvEstimate {
        stratified_shapley(game, &self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::native::exact_shapley;
    use crate::utility::games::{AdditiveGame, GloveGame};
    use crate::utility::utility_fn;

    #[test]
    fn exact_estimator_matches_exact_shapley() {
        let game = GloveGame { left: 2, n: 5 };
        let estimate = Exact.estimate(&game);
        assert_eq!(estimate.values, exact_shapley(&game));
        assert_eq!(estimate.utility_evaluations, 32);
        assert_eq!(estimate.diagnostics, SvDiagnostics::default());
    }

    #[test]
    fn monte_carlo_estimator_carries_diagnostics() {
        let game = GloveGame { left: 2, n: 5 };
        let estimate = MonteCarlo {
            config: McConfig {
                permutations: 40,
                seed: 3,
                truncation_tolerance: None,
            },
        }
        .estimate(&game);
        assert_eq!(estimate.values.len(), 5);
        assert_eq!(estimate.diagnostics.samples, 40);
        assert!(estimate.utility_evaluations > 0);
    }

    #[test]
    fn group_sv_additive_game_is_exact() {
        // Additive games are group-decomposable: each player's share of
        // its group's value equals the group mean of the members' values.
        let values = vec![4.0, 8.0, 6.0, 2.0];
        let game = AdditiveGame {
            values: values.clone(),
        };
        let estimate = GroupSv {
            num_groups: 2,
            seed: 7,
            round: 0,
        }
        .estimate(&game);
        assert_eq!(estimate.utility_evaluations, 4);
        // Efficiency: shares sum to u(grand).
        let total: f64 = estimate.values.iter().sum();
        assert!((total - 20.0).abs() < 1e-12);
        // Each player gets its group's mean value.
        let pi = permutation(7, 0, 4);
        let groups = grouping(&pi, 2);
        for group in &groups {
            let mean: f64 = group.iter().map(|&i| values[i]).sum::<f64>() / group.len() as f64;
            for &i in group {
                assert!((estimate.values[i] - mean).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn group_sv_m_equals_n_is_exact_sv() {
        let game = GloveGame { left: 2, n: 5 };
        let estimate = GroupSv {
            num_groups: 5,
            seed: 11,
            round: 2,
        }
        .estimate(&game);
        let exact = exact_shapley(&game);
        for (got, expect) in estimate.values.iter().zip(&exact) {
            assert!((got - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn group_sv_handles_games_beyond_the_exact_cap() {
        // 40 players is far beyond MAX_PLAYERS, but m = 8 groups keep the
        // enumeration at 2^8.
        let n = 40usize;
        let game = utility_fn(n, |c: Coalition| c.len() as f64);
        let estimate = GroupSv {
            num_groups: 8,
            seed: 1,
            round: 0,
        }
        .estimate(&game);
        assert_eq!(estimate.utility_evaluations, 256);
        let total: f64 = estimate.values.iter().sum();
        assert!((total - n as f64).abs() < 1e-9);
    }

    #[test]
    fn names_and_caps() {
        assert_eq!(Exact.name(), "exact");
        assert_eq!(Exact.max_players(), MAX_PLAYERS);
        assert_eq!(Stratified::default().name(), "stratified");
        assert_eq!(Stratified::default().max_players(), MAX_SAMPLED_PLAYERS);
        assert_eq!(MonteCarlo::default().name(), "monte_carlo");
        let g = GroupSv {
            num_groups: 2,
            seed: 0,
            round: 0,
        };
        assert_eq!(g.name(), "group_sv");
        assert_eq!(g.max_players(), MAX_SAMPLED_PLAYERS);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn group_sv_rejects_too_many_groups() {
        let game = utility_fn(30, |c: Coalition| c.len() as f64);
        let _ = GroupSv {
            num_groups: 30,
            seed: 0,
            round: 0,
        }
        .estimate(&game);
    }
}
