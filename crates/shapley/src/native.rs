//! The native (exact) Shapley value — the paper's Eq. 1.
//!
//! ```text
//! v_i = (1/n) Σ_{S ⊆ I\{i}}  [u(S ∪ {i}) − u(S)] / C(n−1, |S|)
//! ```
//!
//! Evaluated by enumerating the full powerset once, caching utilities by
//! bitmask, then assembling every player's weighted marginal sum. Cost is
//! `2^n` utility evaluations plus `n · 2^(n−1)` table lookups — exactly
//! the `2^n` coalition-model trainings the paper's Table I counts for
//! NativeSV. Both passes run on the deterministic fork-join layer
//! ([`numeric::par`]): each cache slot and each player's marginal sum is
//! a pure function of its index, so the result is bit-identical for every
//! thread count.

use numeric::par;

use crate::coalition::{binomial, Coalition, MAX_PLAYERS};
use crate::utility::CoalitionUtility;

/// Minimum utility evaluations per worker thread (coalition utilities
/// range from closure arithmetic to full model retraining; 8 keeps even
/// the `n = 6` retraining bench parallel without shipping trivial games
/// to threads).
const MIN_EVALS_PER_THREAD: usize = 8;

/// The shared exact-enumeration core: powerset utility cache plus
/// weighted marginal assembly.
///
/// Both public exact entry points — [`exact_shapley`] and the estimator
/// layer's `Exact`/`GroupSv` (and [`crate::group`]'s Algorithm 1 lines
/// 4–6) — funnel through this function, so the determinism contract is
/// pinned once: each cache slot and each player's marginal sum is a pure
/// function of its index on [`numeric::par`], making the result
/// bit-identical for every thread count. `min_evals_per_thread` is the
/// caller's granularity knob (cheap closure games want coarser chunks
/// than full model retraining).
///
/// # Panics
///
/// Panics if the game has more than [`MAX_PLAYERS`] players (the `2^n`
/// enumeration would be intractable).
pub(crate) fn exact_shapley_core(
    utility: &(impl CoalitionUtility + Sync),
    min_evals_per_thread: usize,
) -> Vec<f64> {
    let n = utility.num_players();
    assert!(
        n <= MAX_PLAYERS,
        "exact SV enumerates 2^n coalitions; {n} players exceeds {MAX_PLAYERS}"
    );
    if n == 0 {
        return Vec::new();
    }

    // One pass over the powerset: cache[mask] = u(mask).
    let mut cache = vec![0.0f64; 1usize << n];
    par::par_fill_with(&mut cache, min_evals_per_thread, |start, chunk| {
        for (k, slot) in chunk.iter_mut().enumerate() {
            *slot = utility.evaluate(Coalition((start + k) as u64));
        }
    });

    // Precompute the per-size weights 1 / (n · C(n−1, s)).
    let weights: Vec<f64> = (0..n)
        .map(|s| 1.0 / (n as f64 * binomial(n - 1, s)))
        .collect();

    par::par_map_indices(n, 4, |i| {
        let others = Coalition::grand(n).without(i);
        let mut acc = 0.0;
        for s in others.subsets() {
            let with_i = s.with(i);
            let marginal = cache[with_i.0 as usize] - cache[s.0 as usize];
            acc += weights[s.len()] * marginal;
        }
        acc
    })
}

/// Computes the exact Shapley value of every player.
///
/// # Panics
///
/// Panics if the game has more than [`MAX_PLAYERS`] players (the `2^n`
/// enumeration would be intractable).
pub fn exact_shapley(utility: &(impl CoalitionUtility + Sync)) -> Vec<f64> {
    exact_shapley_core(utility, MIN_EVALS_PER_THREAD)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::utility::games::{AdditiveGame, GloveGame, MajorityGame};
    use crate::utility::{utility_fn, CachedUtility};
    use proptest::prelude::*;

    #[test]
    fn empty_game() {
        let u = utility_fn(0, |_| 0.0);
        assert!(exact_shapley(&u).is_empty());
    }

    #[test]
    fn single_player_gets_everything() {
        let u = utility_fn(1, |c: Coalition| if c.is_empty() { 0.0 } else { 5.0 });
        assert_eq!(exact_shapley(&u), vec![5.0]);
    }

    #[test]
    fn additive_game_sv_equals_values() {
        let game = AdditiveGame {
            values: vec![3.0, -1.0, 0.5, 2.0],
        };
        let sv = exact_shapley(&game);
        for (v, expect) in sv.iter().zip(&game.values) {
            assert!((v - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn glove_game_two_left_one_right() {
        // Classic result: with L={0,1}, R={2}, SV = (1/6, 1/6, 4/6).
        let game = GloveGame { left: 2, n: 3 };
        let sv = exact_shapley(&game);
        assert!((sv[0] - 1.0 / 6.0).abs() < 1e-12);
        assert!((sv[1] - 1.0 / 6.0).abs() < 1e-12);
        assert!((sv[2] - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn majority_game_symmetric() {
        let game = MajorityGame { n: 5 };
        let sv = exact_shapley(&game);
        for v in &sv {
            assert!((v - 0.2).abs() < 1e-12, "5 symmetric voters split 1.0");
        }
    }

    #[test]
    fn null_player_gets_zero() {
        // Player 2 contributes nothing.
        let u = utility_fn(3, |c: Coalition| {
            (c.contains(0) as u8 + c.contains(1) as u8) as f64
        });
        let sv = exact_shapley(&u);
        assert!((sv[2]).abs() < 1e-12);
        assert!((sv[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cache_sees_every_coalition_exactly_once() {
        let game = MajorityGame { n: 6 };
        let cached = CachedUtility::new(&game);
        let _ = exact_shapley(&cached);
        assert_eq!(cached.unique_evaluations(), 64);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn prop_efficiency(values in proptest::collection::vec(-10.0f64..10.0, 1..8)) {
            // Σ v_i = u(N) − u(∅) for any game; use a nonlinear one.
            let n = values.len();
            let vals = values.clone();
            let u = utility_fn(n, move |c: Coalition| {
                let s: f64 = c.members().map(|i| vals[i]).sum();
                s + 0.5 * (s.abs()).sqrt() * c.len() as f64
            });
            let sv = exact_shapley(&u);
            let total: f64 = sv.iter().sum();
            let grand = u.evaluate(Coalition::grand(n));
            let empty = u.evaluate(Coalition::EMPTY);
            prop_assert!((total - (grand - empty)).abs() < 1e-9);
        }

        #[test]
        fn prop_symmetry(v in -5.0f64..5.0, n in 2usize..7) {
            // All players identical ⇒ identical SVs.
            let u = utility_fn(n, move |c: Coalition| v * (c.len() as f64).powi(2));
            let sv = exact_shapley(&u);
            for w in sv.windows(2) {
                prop_assert!((w[0] - w[1]).abs() < 1e-9);
            }
        }

        #[test]
        fn prop_additivity(
            a in proptest::collection::vec(-5.0f64..5.0, 4),
            b in proptest::collection::vec(-5.0f64..5.0, 4),
        ) {
            // SV(u1 + u2) = SV(u1) + SV(u2).
            let (a2, b2) = (a.clone(), b.clone());
            let u1 = utility_fn(4, move |c: Coalition| {
                c.members().map(|i| a[i]).sum::<f64>().sin()
            });
            let u2 = utility_fn(4, move |c: Coalition| {
                c.members().map(|i| b[i]).sum::<f64>().cos()
            });
            let (a3, b3) = (a2.clone(), b2.clone());
            let sum_game = utility_fn(4, move |c: Coalition| {
                c.members().map(|i| a3[i]).sum::<f64>().sin()
                    + c.members().map(|i| b3[i]).sum::<f64>().cos()
            });
            let sv1 = exact_shapley(&u1);
            let sv2 = exact_shapley(&u2);
            let sv_sum = exact_shapley(&sum_game);
            for i in 0..4 {
                prop_assert!((sv_sum[i] - (sv1[i] + sv2[i])).abs() < 1e-9);
            }
            let _ = (a2, b2);
        }
    }
}
