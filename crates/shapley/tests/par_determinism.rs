//! The determinism contract of the parallel execution layer, pinned.
//!
//! Miners re-execute the contract on machines with arbitrary core
//! counts, so every parallel engine must produce **bit-identical**
//! `Vec<f64>` output for any thread count. These tests run each engine
//! with the fork-join layer capped at 1 thread (the sequential
//! fallback), 2 threads, and `available_parallelism`, and require exact
//! equality — not approximate closeness.
//!
//! The thread cap is a process-global knob, so the tests serialize on a
//! mutex and restore the automatic setting afterwards.

use std::sync::Mutex;

use numeric::par;
use proptest::prelude::*;
use shapley::coalition::Coalition;
use shapley::estimator::{Exact, GroupSv, Stratified, SvEstimator};
use shapley::group::{group_shapley, shapley_over_group_models, GroupSvConfig};
use shapley::monte_carlo::{monte_carlo_shapley, McConfig};
use shapley::native::exact_shapley;
use shapley::stratified::{stratified_shapley, StratifiedConfig};
use shapley::utility::{model_utility_fn, utility_fn};

static THREAD_CAP: Mutex<()> = Mutex::new(());

/// Runs `f` under thread caps 1, 2, and automatic, asserting the three
/// results are exactly equal.
fn assert_schedule_invariant<T: PartialEq + std::fmt::Debug>(f: impl Fn() -> T) {
    let _lock = THREAD_CAP.lock().expect("thread-cap mutex poisoned");
    par::set_max_threads(1);
    let sequential = f();
    par::set_max_threads(2);
    let two_threads = f();
    par::set_max_threads(0); // automatic: available_parallelism
    let automatic = f();
    assert_eq!(
        sequential, two_threads,
        "1 thread vs 2 threads must be bit-identical"
    );
    assert_eq!(
        sequential, automatic,
        "1 thread vs available_parallelism must be bit-identical"
    );
}

/// A deliberately nonlinear coalition game whose floating-point path
/// would expose any reduction-order change.
fn nonlinear_game(n: usize) -> impl shapley::utility::CoalitionUtility + Sync {
    utility_fn(n, move |c: Coalition| {
        let s: f64 = c.members().map(|i| ((i * 37 + 11) as f64).sin()).sum();
        s + 0.25 * s.abs().sqrt() * c.len() as f64
    })
}

fn synthetic_models(m: usize, dim: usize) -> Vec<Vec<f64>> {
    (0..m)
        .map(|j| {
            (0..dim)
                .map(|d| ((j * dim + d) as f64 * 0.7).sin())
                .collect()
        })
        .collect()
}

#[test]
fn exact_shapley_is_schedule_invariant() {
    for n in [1usize, 3, 7, 12] {
        let game = nonlinear_game(n);
        assert_schedule_invariant(|| exact_shapley(&game));
    }
}

#[test]
fn group_sv_over_models_is_schedule_invariant() {
    let utility = model_utility_fn(
        |w: &[f64]| {
            let s: f64 = w.iter().map(|x| x * x).sum();
            s.sqrt() - w.iter().sum::<f64>() * 0.1
        },
        0.05,
    );
    for m in [1usize, 2, 5, 10] {
        let models = synthetic_models(m, 64);
        assert_schedule_invariant(|| shapley_over_group_models(&models, &utility).0);
    }
}

#[test]
fn group_shapley_end_to_end_is_schedule_invariant() {
    let utility = model_utility_fn(|w: &[f64]| w.iter().map(|x| x.tanh()).sum(), 0.0);
    let weights = synthetic_models(9, 32);
    for m in [1usize, 4, 9] {
        let cfg = GroupSvConfig {
            num_groups: m,
            seed: 42,
            round: 3,
        };
        assert_schedule_invariant(|| {
            let result = group_shapley(&weights, &utility, &cfg);
            (result.per_user, result.per_group, result.global_model)
        });
    }
}

#[test]
fn monte_carlo_is_schedule_invariant() {
    let game = nonlinear_game(9);
    for permutations in [1usize, 7, 200] {
        let cfg = McConfig {
            permutations,
            seed: 1234,
            truncation_tolerance: None,
        };
        assert_schedule_invariant(|| monte_carlo_shapley(&game, &cfg));
    }
}

#[test]
fn monte_carlo_with_truncation_is_schedule_invariant() {
    // Truncation changes per-permutation control flow (and the
    // evaluation diagnostics), which must still be schedule-invariant.
    let game = nonlinear_game(8);
    let cfg = McConfig {
        permutations: 100,
        seed: 77,
        truncation_tolerance: Some(0.05),
    };
    assert_schedule_invariant(|| {
        let r = monte_carlo_shapley(&game, &cfg);
        (r.values, r.utility_evaluations, r.truncated_marginals)
    });
}

#[test]
fn stratified_is_schedule_invariant() {
    // The new sampler must uphold the same contract as every other
    // engine, including at the player counts only it can reach.
    for n in [1usize, 5, 12, 30] {
        let game = nonlinear_game(n);
        let cfg = StratifiedConfig {
            samples_per_stratum: 4,
            seed: 2024,
        };
        assert_schedule_invariant(|| stratified_shapley(&game, &cfg));
    }
}

#[test]
fn stratified_48_players_is_schedule_invariant() {
    // The acceptance case: a 48-player game — impossible for the exact
    // engines (2^48 coalitions) — runs and is bit-identical for thread
    // caps 1, 2, and available_parallelism.
    let game = nonlinear_game(48);
    let cfg = StratifiedConfig {
        samples_per_stratum: 2,
        seed: 7,
    };
    assert_schedule_invariant(|| {
        let estimate = stratified_shapley(&game, &cfg);
        assert_eq!(estimate.values.len(), 48);
        (
            estimate.values,
            estimate.utility_evaluations,
            estimate.diagnostics,
        )
    });
}

#[test]
fn estimator_layer_is_schedule_invariant() {
    // Dispatch through the trait objects the contract uses, not the free
    // functions, so the estimator layer itself is pinned.
    let game = nonlinear_game(10);
    assert_schedule_invariant(|| Exact.estimate(&game));
    assert_schedule_invariant(|| {
        Stratified {
            config: StratifiedConfig {
                samples_per_stratum: 3,
                seed: 11,
            },
        }
        .estimate(&game)
    });
    assert_schedule_invariant(|| {
        GroupSv {
            num_groups: 4,
            seed: 3,
            round: 1,
        }
        .estimate(&game)
    });
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]
    #[test]
    fn prop_stratified_converges_to_exact(
        n in 2usize..=10,
        seed in any::<u64>(),
    ) {
        // Estimator parity: at high sample counts the stratified
        // estimate approaches the exact values on games small enough to
        // enumerate. The game is nonlinear so agreement is not an
        // artifact of additivity.
        let game = nonlinear_game(n);
        let exact = Exact.estimate(&game);
        let sampled = Stratified {
            config: StratifiedConfig { samples_per_stratum: 600, seed },
        }
        .estimate(&game);
        for (i, (e, s)) in exact.values.iter().zip(&sampled.values).enumerate() {
            prop_assert!(
                (e - s).abs() < 0.15,
                "player {i}: exact {e} vs stratified {s}"
            );
        }
    }
}

#[test]
fn monte_carlo_streams_are_per_permutation() {
    // Prefix property of per-permutation streams: the first k
    // permutations of a longer run contribute exactly the estimate of a
    // k-permutation run (scaled), because each permutation's RNG is
    // derived from its index, not from a shared evolving stream.
    let game = nonlinear_game(6);
    let short = monte_carlo_shapley(
        &game,
        &McConfig {
            permutations: 50,
            seed: 5,
            truncation_tolerance: None,
        },
    );
    let long = monte_carlo_shapley(
        &game,
        &McConfig {
            permutations: 100,
            seed: 5,
            truncation_tolerance: None,
        },
    );
    // Both estimates converge on the same exact values, and neither run
    // may depend on the other's length; sanity-check agreement loosely.
    for (a, b) in short.values.iter().zip(&long.values) {
        assert!((a - b).abs() < 0.5, "short {a} vs long {b}");
    }
}
