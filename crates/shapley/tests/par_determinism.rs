//! The determinism contract of the parallel execution layer, pinned.
//!
//! Miners re-execute the contract on machines with arbitrary core
//! counts, so every parallel engine must produce **bit-identical**
//! `Vec<f64>` output for any thread count. These tests run each engine
//! with the fork-join layer capped at 1 thread (the sequential
//! fallback), 2 threads, and `available_parallelism`, and require exact
//! equality — not approximate closeness.
//!
//! The thread cap is a process-global knob, so the tests serialize on a
//! mutex and restore the automatic setting afterwards.

use std::sync::Mutex;

use numeric::par;
use proptest::prelude::*;
use shapley::coalition::Coalition;
use shapley::estimator::{Exact, GroupSv, Stratified, SvEstimator};
use shapley::group::{group_shapley, shapley_over_group_models, GroupSvConfig};
use shapley::monte_carlo::{monte_carlo_shapley, McConfig};
use shapley::native::exact_shapley;
use shapley::stratified::{stratified_shapley, StratifiedConfig};
use shapley::utility::{model_utility_fn, utility_fn, RestrictedGame};

static THREAD_CAP: Mutex<()> = Mutex::new(());

/// Runs `f` under thread caps 1, 2, and automatic, asserting the three
/// results are exactly equal.
fn assert_schedule_invariant<T: PartialEq + std::fmt::Debug>(f: impl Fn() -> T) {
    let _lock = THREAD_CAP.lock().expect("thread-cap mutex poisoned");
    par::set_max_threads(1);
    let sequential = f();
    par::set_max_threads(2);
    let two_threads = f();
    par::set_max_threads(0); // automatic: available_parallelism
    let automatic = f();
    assert_eq!(
        sequential, two_threads,
        "1 thread vs 2 threads must be bit-identical"
    );
    assert_eq!(
        sequential, automatic,
        "1 thread vs available_parallelism must be bit-identical"
    );
}

/// A deliberately nonlinear coalition game whose floating-point path
/// would expose any reduction-order change.
fn nonlinear_game(n: usize) -> impl shapley::utility::CoalitionUtility + Sync {
    utility_fn(n, move |c: Coalition| {
        let s: f64 = c.members().map(|i| ((i * 37 + 11) as f64).sin()).sum();
        s + 0.25 * s.abs().sqrt() * c.len() as f64
    })
}

fn synthetic_models(m: usize, dim: usize) -> Vec<Vec<f64>> {
    (0..m)
        .map(|j| {
            (0..dim)
                .map(|d| ((j * dim + d) as f64 * 0.7).sin())
                .collect()
        })
        .collect()
}

#[test]
fn exact_shapley_is_schedule_invariant() {
    for n in [1usize, 3, 7, 12] {
        let game = nonlinear_game(n);
        assert_schedule_invariant(|| exact_shapley(&game));
    }
}

#[test]
fn group_sv_over_models_is_schedule_invariant() {
    let utility = model_utility_fn(
        |w: &[f64]| {
            let s: f64 = w.iter().map(|x| x * x).sum();
            s.sqrt() - w.iter().sum::<f64>() * 0.1
        },
        0.05,
    );
    for m in [1usize, 2, 5, 10] {
        let models = synthetic_models(m, 64);
        assert_schedule_invariant(|| shapley_over_group_models(&models, &utility).0);
    }
}

#[test]
fn group_shapley_end_to_end_is_schedule_invariant() {
    let utility = model_utility_fn(|w: &[f64]| w.iter().map(|x| x.tanh()).sum(), 0.0);
    let weights = synthetic_models(9, 32);
    for m in [1usize, 4, 9] {
        let cfg = GroupSvConfig {
            num_groups: m,
            seed: 42,
            round: 3,
        };
        assert_schedule_invariant(|| {
            let result = group_shapley(&weights, &utility, &cfg);
            (result.per_user, result.per_group, result.global_model)
        });
    }
}

#[test]
fn monte_carlo_is_schedule_invariant() {
    let game = nonlinear_game(9);
    for permutations in [1usize, 7, 200] {
        let cfg = McConfig {
            permutations,
            seed: 1234,
            truncation_tolerance: None,
        };
        assert_schedule_invariant(|| monte_carlo_shapley(&game, &cfg));
    }
}

#[test]
fn monte_carlo_with_truncation_is_schedule_invariant() {
    // Truncation changes per-permutation control flow (and the
    // evaluation diagnostics), which must still be schedule-invariant.
    let game = nonlinear_game(8);
    let cfg = McConfig {
        permutations: 100,
        seed: 77,
        truncation_tolerance: Some(0.05),
    };
    assert_schedule_invariant(|| {
        let r = monte_carlo_shapley(&game, &cfg);
        (r.values, r.utility_evaluations, r.truncated_marginals)
    });
}

#[test]
fn stratified_is_schedule_invariant() {
    // The new sampler must uphold the same contract as every other
    // engine, including at the player counts only it can reach.
    for n in [1usize, 5, 12, 30] {
        let game = nonlinear_game(n);
        let cfg = StratifiedConfig {
            samples_per_stratum: 4,
            seed: 2024,
        };
        assert_schedule_invariant(|| stratified_shapley(&game, &cfg));
    }
}

#[test]
fn stratified_48_players_is_schedule_invariant() {
    // The acceptance case: a 48-player game — impossible for the exact
    // engines (2^48 coalitions) — runs and is bit-identical for thread
    // caps 1, 2, and available_parallelism.
    let game = nonlinear_game(48);
    let cfg = StratifiedConfig {
        samples_per_stratum: 2,
        seed: 7,
    };
    assert_schedule_invariant(|| {
        let estimate = stratified_shapley(&game, &cfg);
        assert_eq!(estimate.values.len(), 48);
        (
            estimate.values,
            estimate.utility_evaluations,
            estimate.diagnostics,
        )
    });
}

#[test]
fn estimator_layer_is_schedule_invariant() {
    // Dispatch through the trait objects the contract uses, not the free
    // functions, so the estimator layer itself is pinned.
    let game = nonlinear_game(10);
    assert_schedule_invariant(|| Exact.estimate(&game));
    assert_schedule_invariant(|| {
        Stratified {
            config: StratifiedConfig {
                samples_per_stratum: 3,
                seed: 11,
            },
        }
        .estimate(&game)
    });
    assert_schedule_invariant(|| {
        GroupSv {
            num_groups: 4,
            seed: 3,
            round: 1,
        }
        .estimate(&game)
    });
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]
    #[test]
    fn prop_stratified_converges_to_exact(
        n in 2usize..=10,
        seed in any::<u64>(),
    ) {
        // Estimator parity: at high sample counts the stratified
        // estimate approaches the exact values on games small enough to
        // enumerate. The game is nonlinear so agreement is not an
        // artifact of additivity.
        let game = nonlinear_game(n);
        let exact = Exact.estimate(&game);
        let sampled = Stratified {
            config: StratifiedConfig { samples_per_stratum: 600, seed },
        }
        .estimate(&game);
        for (i, (e, s)) in exact.values.iter().zip(&sampled.values).enumerate() {
            prop_assert!(
                (e - s).abs() < 0.15,
                "player {i}: exact {e} vs stratified {s}"
            );
        }
    }
}

#[test]
fn restricted_game_is_schedule_invariant() {
    // The survivor-restriction wrapper the contract evaluates dropout
    // rounds through must uphold the same contract as every engine.
    let game = nonlinear_game(12);
    let survivors = vec![0usize, 3, 4, 7, 9, 11];
    assert_schedule_invariant(|| {
        let restricted = RestrictedGame::new(&game, survivors.clone());
        Exact.estimate(&restricted)
    });
    assert_schedule_invariant(|| {
        let restricted = RestrictedGame::new(&game, survivors.clone());
        Stratified {
            config: StratifiedConfig {
                samples_per_stratum: 3,
                seed: 19,
            },
        }
        .estimate(&restricted)
    });
}

/// The survivor-only round evaluation, end to end through the FL
/// contract: real pairwise masks, on-chain key escrow, dropout
/// declaration, share-verified recovery, survivor-restricted estimation.
mod survivor_rounds {
    use fedchain::config::SvMethod;
    use fedchain::contract_fl::{
        sharded_round_groups, share_commitment, FlCall, FlContract, FlParams, RoundPhase,
    };
    use fl_chain::contract::{SmartContract, TxContext};
    use fl_chain::hash::Hash32;
    use fl_crypto::dh::{DhGroup, DhKeyPair};
    use fl_crypto::dropout::escrow_private_key;
    use fl_crypto::secure_agg::{key_epoch, KeyDirectory, PairSecretCache, PartyState};
    use fl_crypto::shamir::Shamir;
    use fl_crypto::ChaChaPrg;
    use fl_ml::dataset::SyntheticDigits;
    use numeric::FixedCodec;
    use shapley::group::{grouping, permutation};

    const FEATURES: usize = 64;
    const CLASSES: usize = 10;
    const DIM: usize = (FEATURES + 1) * CLASSES;

    fn ctx(sender: u32) -> TxContext {
        TxContext {
            block_height: 0,
            view: 0,
            sender,
            tx_index: 0,
        }
    }

    /// Runs one full dropout round through a fresh contract (`k > 1`
    /// takes the cohort-sharded hierarchical path) and returns
    /// `(per_owner_sv, global_model, state_digest)`.
    ///
    /// With `warm_cache` the pair keys come out of a pre-warmed
    /// [`PairSecretCache`] (every exponentiation skipped on the masking
    /// derivation) instead of the cold batched path — the returned tuple,
    /// state digest included, must be identical either way.
    pub(super) fn run_round(
        n: usize,
        m: usize,
        k: usize,
        dropped: &[usize],
        weights: &[Vec<f64>],
        warm_cache: bool,
    ) -> (Vec<f64>, Vec<f64>, Hash32) {
        let threshold = n / 2 + 1;
        let params = FlParams {
            owners: (0..n as u32).collect(),
            num_groups: m,
            sv_method: SvMethod::GroupExact,
            permutation_seed: 7,
            total_rounds: 1,
            model_dim: DIM,
            num_features: FEATURES,
            num_classes: CLASSES,
            frac_bits: 24,
            escrow_threshold: threshold,
            num_cohorts: k,
        };
        let test_set = SyntheticDigits::small().generate(99);
        let mut c = FlContract::genesis(params, test_set);
        let dh = DhGroup::simulation_256();
        let shamir = Shamir::default();
        let codec = FixedCodec::new(24);

        let keypairs: Vec<DhKeyPair> = (0..n)
            .map(|i| dh.keypair_from_seed(&[i as u8 + 1; 32]))
            .collect();
        for (i, kp) in keypairs.iter().enumerate() {
            c.execute(
                &ctx(i as u32),
                &FlCall::AdvertiseKey {
                    public_key: kp.public.to_be_bytes(),
                },
            )
            .unwrap();
        }
        let escrowed: Vec<Vec<fl_crypto::shamir::Share>> = keypairs
            .iter()
            .enumerate()
            .map(|(i, kp)| {
                let mut prg = ChaChaPrg::from_seed(&[i as u8 + 70; 32]);
                escrow_private_key(&shamir, kp, threshold, n, &mut prg).unwrap()
            })
            .collect();
        for (i, shares) in escrowed.iter().enumerate() {
            let commitments: Vec<Hash32> = shares
                .iter()
                .map(|s| share_commitment(i as u32, s))
                .collect();
            c.execute(&ctx(i as u32), &FlCall::EscrowKeyShares { commitments })
                .unwrap();
        }

        let groups: Vec<Vec<usize>> = if k > 1 {
            sharded_round_groups(7, 0, n, k, m)
                .1
                .into_iter()
                .flatten()
                .collect()
        } else {
            grouping(&permutation(7, 0, n), m)
        };
        let survivors: Vec<usize> = (0..n).filter(|i| !dropped.contains(i)).collect();
        let mut full_dir = KeyDirectory::new();
        for (j, kp) in keypairs.iter().enumerate() {
            full_dir.advertise(j as u32, kp.public).unwrap();
        }
        let epoch = key_epoch(&full_dir.entries());
        for &i in &survivors {
            let group = groups.iter().find(|g| g.contains(&i)).unwrap();
            let masked = if group.len() == 1 {
                codec.encode_vec(&weights[i])
            } else {
                let mut dir = KeyDirectory::new();
                for &j in group {
                    dir.advertise(j as u32, keypairs[j].public).unwrap();
                }
                let party = if warm_cache {
                    // Warm the cache against the full cohort, then derive
                    // the group-restricted state entirely from cache hits.
                    let mut cache = PairSecretCache::new();
                    PartyState::derive_cached(
                        &dh,
                        i as u32,
                        &keypairs[i],
                        &full_dir,
                        epoch,
                        &mut cache,
                    )
                    .unwrap();
                    PartyState::derive_cached(&dh, i as u32, &keypairs[i], &dir, epoch, &mut cache)
                        .unwrap()
                } else {
                    PartyState::derive(&dh, i as u32, &keypairs[i], &dir).unwrap()
                };
                party.masked_update(&codec, 0, &weights[i])
            };
            c.execute(
                &ctx(i as u32),
                &FlCall::SubmitMaskedUpdate { round: 0, masked },
            )
            .unwrap();
        }

        c.execute(
            &ctx(survivors[0] as u32),
            &FlCall::EvaluateRound { round: 0 },
        )
        .unwrap();
        if !dropped.is_empty() {
            assert!(matches!(c.phase(), RoundPhase::Recovering { .. }));
            for &d in dropped {
                for &provider in survivors.iter().take(threshold) {
                    let share = &escrowed[d][provider];
                    c.execute(
                        &ctx(provider as u32),
                        &FlCall::SubmitRecoveryShare {
                            round: 0,
                            dropped: d as u32,
                            share_x: share.x,
                            share_y: share.y.to_be_bytes(),
                        },
                    )
                    .unwrap();
                }
            }
            c.execute(
                &ctx(survivors[0] as u32),
                &FlCall::EvaluateRound { round: 0 },
            )
            .unwrap();
        }
        let record = &c.history()[0];
        assert_eq!(
            record.survivors, survivors,
            "record must carry the true survivor set"
        );
        (
            record.per_owner_sv.clone(),
            c.global_model().to_vec(),
            c.state_digest(),
        )
    }

    /// From-scratch unmasked survivor aggregate: per-group survivor ring
    /// sums (same order, same fixed-point ring), mean over surviving
    /// groups.
    pub(super) fn from_scratch_global(
        n: usize,
        m: usize,
        dropped: &[usize],
        weights: &[Vec<f64>],
    ) -> Vec<f64> {
        let codec = FixedCodec::new(24);
        let groups = grouping(&permutation(7, 0, n), m);
        let mut surviving_models: Vec<Vec<f64>> = Vec::new();
        for g in &groups {
            let alive: Vec<usize> = g.iter().copied().filter(|i| !dropped.contains(i)).collect();
            if alive.is_empty() {
                continue;
            }
            let mut acc = vec![0u64; DIM];
            for &i in &alive {
                FixedCodec::ring_add_assign(&mut acc, &codec.encode_vec(&weights[i]));
            }
            surviving_models.push(
                acc.iter()
                    .map(|&r| codec.decode_avg(r, alive.len()))
                    .collect(),
            );
        }
        numeric::linalg::mean_vectors(&surviving_models)
    }

    /// Two-level from-scratch aggregate: per-cohort mean of surviving
    /// group ring sums, then the mean over surviving cohorts.
    pub(super) fn from_scratch_global_sharded(
        n: usize,
        m: usize,
        k: usize,
        dropped: &[usize],
        weights: &[Vec<f64>],
    ) -> Vec<f64> {
        let codec = FixedCodec::new(24);
        let (_, cohort_groups) = sharded_round_groups(7, 0, n, k, m);
        let mut cohort_models: Vec<Vec<f64>> = Vec::new();
        for groups in &cohort_groups {
            let mut surviving_models: Vec<Vec<f64>> = Vec::new();
            for g in groups {
                let alive: Vec<usize> =
                    g.iter().copied().filter(|i| !dropped.contains(i)).collect();
                if alive.is_empty() {
                    continue;
                }
                let mut acc = vec![0u64; DIM];
                for &i in &alive {
                    FixedCodec::ring_add_assign(&mut acc, &codec.encode_vec(&weights[i]));
                }
                surviving_models.push(
                    acc.iter()
                        .map(|&r| codec.decode_avg(r, alive.len()))
                        .collect(),
                );
            }
            if !surviving_models.is_empty() {
                cohort_models.push(numeric::linalg::mean_vectors(&surviving_models));
            }
        }
        numeric::linalg::mean_vectors(&cohort_models)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]
    #[test]
    fn prop_survivor_only_evaluation_is_schedule_invariant(
        n in 3usize..=6,
        m_raw in 1usize..=3,
        drop_seed in any::<u64>(),
    ) {
        // Random owner set, random dropout set (capped so the survivors
        // can reach the majority escrow threshold), thread caps 1/2/auto:
        // the survivor-only round evaluation must be bit-identical across
        // thread counts AND equal a from-scratch unmasked aggregate of
        // the survivors.
        let m = m_raw.min(n);
        let threshold = n / 2 + 1;
        let max_drops = n - threshold;
        let drop_count = (drop_seed as usize) % (max_drops + 1);
        let mut dropped: Vec<usize> = Vec::new();
        let mut cursor = drop_seed;
        while dropped.len() < drop_count {
            cursor = cursor.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let candidate = (cursor >> 33) as usize % n;
            if !dropped.contains(&candidate) {
                dropped.push(candidate);
            }
        }
        dropped.sort_unstable();
        let weights: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                (0..650)
                    .map(|d| ((i * 650 + d) as f64 * 0.37).sin() * 0.1)
                    .collect()
            })
            .collect();

        assert_schedule_invariant(|| survivor_rounds::run_round(n, m, 1, &dropped, &weights, false));
        let (per_owner_sv, global_model, _) =
            survivor_rounds::run_round(n, m, 1, &dropped, &weights, false);
        for &d in &dropped {
            prop_assert_eq!(per_owner_sv[d], 0.0, "dropped owner {} must score 0", d);
        }
        let expect = survivor_rounds::from_scratch_global(n, m, &dropped, &weights);
        prop_assert_eq!(
            global_model, expect,
            "mask-stripped survivor aggregate must be bit-identical to the plaintext ring sum"
        );
    }

    #[test]
    fn prop_cohort_fan_out_is_schedule_invariant(
        n in 4usize..=8,
        k_raw in 2usize..=3,
        m_raw in 1usize..=2,
        drop_seed in any::<u64>(),
    ) {
        // Random cohort plans (the per-cohort pass runs one numeric::par
        // slot per cohort) × thread caps 1/2/auto: global per-owner
        // contributions AND the full contract state digest must be
        // bit-identical, and the global model must equal the two-level
        // from-scratch plaintext aggregate.
        let k = k_raw.min(n / 2);
        let m = m_raw.min(n / k);
        let threshold = n / 2 + 1;
        let max_drops = n - threshold;
        let drop_count = (drop_seed as usize) % (max_drops + 1);
        let mut dropped: Vec<usize> = Vec::new();
        let mut cursor = drop_seed ^ 0x5eed;
        while dropped.len() < drop_count {
            cursor = cursor.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let candidate = (cursor >> 33) as usize % n;
            if !dropped.contains(&candidate) {
                dropped.push(candidate);
            }
        }
        dropped.sort_unstable();
        let weights: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                (0..650)
                    .map(|d| ((i * 650 + d) as f64 * 0.41).cos() * 0.1)
                    .collect()
            })
            .collect();

        assert_schedule_invariant(|| survivor_rounds::run_round(n, m, k, &dropped, &weights, false));
        let (per_owner_sv, global_model, _) =
            survivor_rounds::run_round(n, m, k, &dropped, &weights, false);
        for &d in &dropped {
            prop_assert_eq!(per_owner_sv[d], 0.0, "dropped owner {} must score 0", d);
        }
        let expect = survivor_rounds::from_scratch_global_sharded(n, m, k, &dropped, &weights);
        prop_assert_eq!(
            global_model, expect,
            "sharded survivor aggregate must be bit-identical to the two-level plaintext mean"
        );
    }
}

#[test]
fn warm_pair_cache_round_digest_matches_cold() {
    // Batched DH agreements fan out one numeric::par slot per peer, and
    // the pair-secret cache replays stored secrets instead of
    // exponentiating. Neither may be visible in consensus: the full round
    // outcome — per-owner SV, global model, and the contract state digest
    // — must be bit-identical across thread caps 1/2/auto AND across
    // cache cold/warm, including through dropout recovery (whose residual
    // strip runs the batched pair API).
    let n = 6usize;
    let m = 2usize;
    let dropped = [1usize];
    let weights: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            (0..650)
                .map(|d| ((i * 650 + d) as f64 * 0.29).sin() * 0.1)
                .collect()
        })
        .collect();
    assert_schedule_invariant(|| survivor_rounds::run_round(n, m, 1, &dropped, &weights, false));
    assert_schedule_invariant(|| survivor_rounds::run_round(n, m, 1, &dropped, &weights, true));
    let cold = survivor_rounds::run_round(n, m, 1, &dropped, &weights, false);
    let warm = survivor_rounds::run_round(n, m, 1, &dropped, &weights, true);
    assert_eq!(cold, warm, "cache state must never reach the state digest");
}

#[test]
fn blocked_gemm_is_schedule_invariant() {
    // The training engine's GEMM kernels fan out over output row panels;
    // panel boundaries move with the thread count, bits must not. Shapes
    // straddle the k-tile (KC = 256) and the micro-tile tails.
    use numeric::Matrix;
    for (m, k, n) in [(5usize, 64usize, 10usize), (33, 300, 13), (2, 257, 8)] {
        let a = Matrix::from_vec(
            m,
            k,
            (0..m * k).map(|i| ((i as f64) * 0.37).sin()).collect(),
        );
        let b = Matrix::from_vec(
            k,
            n,
            (0..k * n).map(|i| ((i as f64) * 0.73).cos()).collect(),
        );
        assert_schedule_invariant(|| a.matmul(&b));
        let at = Matrix::from_vec(
            k,
            m,
            (0..k * m).map(|i| ((i as f64) * 0.11).sin()).collect(),
        );
        let bt = Matrix::from_vec(
            k,
            n,
            (0..k * n).map(|i| ((i as f64) * 0.23).cos()).collect(),
        );
        assert_schedule_invariant(|| at.t_matmul(&bt));
    }
}

#[test]
fn logreg_training_is_schedule_invariant() {
    // End-to-end through the batched trainer: conditioned design, logits
    // GEMM, fused softmax+residual, gradient GEMM — trained weights must
    // be bit-identical for thread caps 1/2/auto. This is the property
    // that makes coalition retraining (the native-SV ground truth)
    // re-executable by miners on arbitrary hardware.
    use fl_ml::dataset::SyntheticDigits;
    use fl_ml::logreg::{train_model, TrainConfig};
    let ds = SyntheticDigits::small().generate(21);
    let config = TrainConfig {
        learning_rate: 0.5,
        epochs: 8,
        l2: 1e-4,
    };
    assert_schedule_invariant(|| {
        let model = train_model(&ds, &config);
        (model.to_flat(), model.log_loss(&ds))
    });
}

#[test]
fn coalition_retrain_utility_is_schedule_invariant() {
    // The zero-copy coalition path: DatasetView over shards → fused
    // gather-scale-bias design → batched trainer → prepared-design
    // accuracy. One full powerset of a 3-owner world.
    use fedchain::config::FlConfig;
    use fedchain::ground_truth::RetrainUtility;
    use fedchain::world::World;
    use shapley::utility::CoalitionUtility;
    let mut config = FlConfig::quick_demo();
    config.num_owners = 3;
    config.train.epochs = 4;
    let world = World::generate(&config).expect("valid config");
    assert_schedule_invariant(|| {
        let utility = RetrainUtility::new(&world.shards, &world.test, config.train);
        Coalition::powerset(3)
            .map(|c| utility.evaluate(c))
            .collect::<Vec<f64>>()
    });
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]
    #[test]
    fn prop_pipelined_run_matches_sequential_chain(
        cohort_choice in 0usize..2,
        rounds in 2u64..=3,
        drop_seed in any::<u64>(),
    ) {
        // The round-pipeline contract, end to end through the protocol
        // driver: the pipelined run (round r+1's off-chain half
        // overlapping round r's on-chain tail) must produce the same
        // chain as the strictly sequential loop — same contributions,
        // same accuracy trace, same block count, same tip digest — for
        // thread caps 1/2/auto, across random dropout schedules and
        // cohort counts.
        use fedchain::config::FlConfig;
        use fedchain::protocol::FlProtocol;

        let cohorts = [1usize, 4][cohort_choice];
        let mut config = FlConfig::quick_demo();
        config.num_owners = 8;
        config.num_groups = 2;
        config.num_cohorts = cohorts;
        config.rounds = rounds;
        config.train.epochs = 2;
        // Random per-round dropout sets, capped so the survivors always
        // reach the escrow threshold and no cohort is fully dropped
        // (cohorts have 2 members at k = 4, so one drop per round is
        // always safe there).
        let max_per_round = if cohorts > 1 { 1 } else { 3 };
        let mut cursor = drop_seed;
        let mut next = || {
            cursor = cursor
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (cursor >> 33) as usize
        };
        let mut schedule = Vec::new();
        for r in 0..rounds {
            let count = next() % (max_per_round + 1);
            let mut dropped: Vec<usize> = Vec::new();
            while dropped.len() < count {
                let candidate = next() % 8;
                if !dropped.contains(&candidate) {
                    dropped.push(candidate);
                }
            }
            if !dropped.is_empty() {
                dropped.sort_unstable();
                schedule.push((r, dropped));
            }
        }
        config.dropout_schedule = schedule;
        config.validate().expect("schedule is constructed valid");

        let run = |pipelined: bool| {
            let mut p = FlProtocol::new(config.clone()).expect("valid config");
            let report = if pipelined { p.run() } else { p.run_sequential() }
                .expect("honest run");
            let tip = p.engine().store_of(0).expect("miner 0 always exists").tip_digest();
            (
                report.per_owner_sv,
                report.accuracy_history,
                report.blocks,
                tip,
            )
        };
        assert_schedule_invariant(|| {
            let sequential = run(false);
            let pipelined = run(true);
            assert_eq!(
                sequential, pipelined,
                "pipelined chain must be bit-identical to sequential"
            );
            sequential
        });
    }
}

#[test]
fn monte_carlo_streams_are_per_permutation() {
    // Prefix property of per-permutation streams: the first k
    // permutations of a longer run contribute exactly the estimate of a
    // k-permutation run (scaled), because each permutation's RNG is
    // derived from its index, not from a shared evolving stream.
    let game = nonlinear_game(6);
    let short = monte_carlo_shapley(
        &game,
        &McConfig {
            permutations: 50,
            seed: 5,
            truncation_tolerance: None,
        },
    );
    let long = monte_carlo_shapley(
        &game,
        &McConfig {
            permutations: 100,
            seed: 5,
            truncation_tolerance: None,
        },
    );
    // Both estimates converge on the same exact values, and neither run
    // may depend on the other's length; sanity-check agreement loosely.
    for (a, b) in short.values.iter().zip(&long.values) {
        assert!((a - b).abs() < 0.5, "short {a} vs long {b}");
    }
}
