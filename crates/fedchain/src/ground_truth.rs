//! Ground-truth and baseline Shapley utilities.
//!
//! Sect. V-B1: "First, we build 2^n models based on the data coalitions,
//! {M_S | S ⊆ P(I)}, then establish the ground truth SV using the native
//! SV method (Eq. 1). We emphasize that native SV cannot be computed with
//! privacy protection on the blockchain."
//!
//! Two coalition utilities are provided:
//!
//! * [`RetrainUtility`] — the paper's ground truth: *retrains* a model on
//!   the union of the coalition's shards (`2^n` trainings; the 316 s
//!   column of Table I).
//! * [`AggregateUtility`] — the FL-style baseline from Song et al. \[4\]:
//!   coalition models are *averaged* from the `n` trained local updates,
//!   so only `n` trainings happen (the mechanism that makes GroupSV an
//!   order of magnitude faster, Sect. IV-B last paragraph).

use fl_ml::dataset::{Dataset, DatasetView};
use fl_ml::logreg::{train_model_design, Design, LogisticModel, TrainConfig};
use fl_ml::metrics::model_accuracy_design;
use numeric::linalg::axpy_slice;
use shapley::coalition::Coalition;
use shapley::utility::CoalitionUtility;

/// Ground-truth utility: retrain on the coalition's pooled data.
///
/// Coalition datasets are **zero-copy**: each evaluation assembles a
/// [`DatasetView`] over the member shards (shard references in coalition
/// order, no row clones) and conditions it straight into the trainer's
/// design matrix in one gather pass. The test set is conditioned once at
/// construction and reused by all `2^n` accuracy evaluations. Both moves
/// are bit-transparent — the trained weights and accuracies are
/// identical to pooling with `Dataset::concat` and evaluating from
/// scratch.
pub struct RetrainUtility<'a> {
    shards: &'a [Dataset],
    test_design: Design,
    train: TrainConfig,
}

impl<'a> RetrainUtility<'a> {
    /// Builds the utility over owner `shards` and a held-out `test` set.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is empty.
    pub fn new(shards: &'a [Dataset], test: &'a Dataset, train: TrainConfig) -> Self {
        assert!(!shards.is_empty(), "need at least one shard");
        Self {
            shards,
            test_design: Design::new(test),
            train,
        }
    }

    fn zero_accuracy(&self) -> f64 {
        let zero = LogisticModel::zeros(
            self.test_design.num_features(),
            self.test_design.num_classes(),
        );
        model_accuracy_design(&zero, &self.test_design)
    }
}

impl CoalitionUtility for RetrainUtility<'_> {
    fn num_players(&self) -> usize {
        self.shards.len()
    }

    fn evaluate(&self, coalition: Coalition) -> f64 {
        if coalition.is_empty() {
            return self.zero_accuracy();
        }
        let parts: Vec<&Dataset> = coalition.members().map(|i| &self.shards[i]).collect();
        let view = DatasetView::of_parts(parts);
        let model = train_model_design(&Design::from_view(&view), &self.train);
        model_accuracy_design(&model, &self.test_design)
    }
}

/// FL-aggregation utility: coalition model = mean of members' local
/// updates (train `n` models once, then every coalition is an average).
///
/// Like [`RetrainUtility`], the test set is conditioned once, and the
/// coalition average accumulates member updates in index order without
/// cloning them (same float operations as `mean_vectors` over clones).
pub struct AggregateUtility<'a> {
    local_updates: &'a [Vec<f64>],
    test_design: Design,
    num_features: usize,
    num_classes: usize,
}

impl<'a> AggregateUtility<'a> {
    /// Builds the utility over pre-trained local updates.
    ///
    /// # Panics
    ///
    /// Panics if `local_updates` is empty or ragged.
    pub fn new(
        local_updates: &'a [Vec<f64>],
        test: &'a Dataset,
        num_features: usize,
        num_classes: usize,
    ) -> Self {
        assert!(!local_updates.is_empty(), "need at least one update");
        let dim = local_updates[0].len();
        assert!(
            local_updates.iter().all(|u| u.len() == dim),
            "ragged updates"
        );
        assert_eq!(dim, (num_features + 1) * num_classes, "dim mismatch");
        Self {
            local_updates,
            test_design: Design::new(test),
            num_features,
            num_classes,
        }
    }
}

impl CoalitionUtility for AggregateUtility<'_> {
    fn num_players(&self) -> usize {
        self.local_updates.len()
    }

    fn evaluate(&self, coalition: Coalition) -> f64 {
        if coalition.is_empty() {
            let zero = LogisticModel::zeros(self.num_features, self.num_classes);
            return model_accuracy_design(&zero, &self.test_design);
        }
        let dim = (self.num_features + 1) * self.num_classes;
        let mut avg = vec![0.0f64; dim];
        for i in coalition.members() {
            axpy_slice(&mut avg, 1.0, &self.local_updates[i]);
        }
        let inv = 1.0 / coalition.len() as f64;
        for a in &mut avg {
            *a *= inv;
        }
        let model = LogisticModel::from_flat(&avg, self.num_features, self.num_classes);
        model_accuracy_design(&model, &self.test_design)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FlConfig;
    use crate::world::World;
    use fl_ml::metrics::model_accuracy;
    use numeric::linalg::mean_vectors;
    use shapley::axioms::check_efficiency;
    use shapley::exact_shapley;
    use shapley::utility::CachedUtility;

    fn tiny_config() -> FlConfig {
        let mut c = FlConfig::quick_demo();
        c.num_owners = 3;
        c.train.epochs = 5;
        c
    }

    #[test]
    fn retrain_utility_monotone_ish_in_data() {
        // More data (grand coalition) should not be dramatically worse
        // than a singleton; and the grand coalition must beat the zero
        // model on separable data.
        let config = tiny_config();
        let world = World::generate(&config).unwrap();
        let u = RetrainUtility::new(&world.shards, &world.test, config.train);
        let empty = u.evaluate(Coalition::EMPTY);
        let grand = u.evaluate(Coalition::grand(3));
        assert!(
            grand > empty + 0.15,
            "training must help: {empty} -> {grand}"
        );
    }

    #[test]
    fn zero_copy_retrain_is_bit_identical_to_materialized_pipeline() {
        // The seed pipeline: pool the coalition with Dataset::concat,
        // train from scratch, evaluate accuracy on the raw test set. The
        // view + prepared-design path must reproduce it bit for bit.
        use fl_ml::logreg::train_model;
        let config = tiny_config();
        let world = World::generate(&config).unwrap();
        let u = RetrainUtility::new(&world.shards, &world.test, config.train);
        for coalition in Coalition::powerset(3) {
            let fast = u.evaluate(coalition);
            let slow = if coalition.is_empty() {
                let zero = LogisticModel::zeros(world.test.num_features(), world.test.num_classes);
                model_accuracy(&zero, &world.test)
            } else {
                let parts: Vec<&Dataset> = coalition.members().map(|i| &world.shards[i]).collect();
                let pooled = Dataset::concat(&parts);
                let model = train_model(&pooled, &config.train);
                model_accuracy(&model, &world.test)
            };
            assert_eq!(fast, slow, "coalition {coalition:?}");
        }
    }

    #[test]
    fn native_sv_on_retrain_utility_satisfies_efficiency() {
        let config = tiny_config();
        let world = World::generate(&config).unwrap();
        let base = RetrainUtility::new(&world.shards, &world.test, config.train);
        let cached = CachedUtility::new(&base);
        let sv = exact_shapley(&cached);
        assert!(check_efficiency(&cached, &sv));
        assert_eq!(cached.unique_evaluations(), 8, "2^3 coalitions");
    }

    #[test]
    fn aggregate_utility_counts_only_n_trainings() {
        let config = tiny_config();
        let world = World::generate(&config).unwrap();
        let updates = world.local_updates(&config); // n trainings happen here
        let u = AggregateUtility::new(
            &updates,
            &world.test,
            config.data.features,
            config.data.classes,
        );
        // All 2^n coalition evaluations are averages — no training.
        let cached = CachedUtility::new(&u);
        let sv = exact_shapley(&cached);
        assert!(check_efficiency(&cached, &sv));
    }

    #[test]
    fn aggregate_grand_coalition_is_fedavg_model() {
        let config = tiny_config();
        let world = World::generate(&config).unwrap();
        let updates = world.local_updates(&config);
        let u = AggregateUtility::new(
            &updates,
            &world.test,
            config.data.features,
            config.data.classes,
        );
        let grand = u.evaluate(Coalition::grand(3));
        let avg = mean_vectors(&updates);
        let model = LogisticModel::from_flat(&avg, config.data.features, config.data.classes);
        assert_eq!(grand, model_accuracy(&model, &world.test));
    }

    #[test]
    #[should_panic(expected = "dim mismatch")]
    fn aggregate_dim_checked() {
        let config = tiny_config();
        let world = World::generate(&config).unwrap();
        let _ = AggregateUtility::new(&[vec![0.0; 5]], &world.test, 64, 10);
    }
}
