//! End-to-end protocol orchestration.
//!
//! [`FlProtocol`] wires the whole paper together: it builds the world
//! (dataset → split → shards → quality noise), instantiates the data
//! owners and the consensus engine (every owner is also a miner,
//! Sect. III), and drives the rounds:
//!
//! * **block 0** — every owner advertises its DH public key *and*
//!   commits its key-escrow share commitments (the Bonawitz dropout
//!   extension: each owner Shamir-shares its DH private key across the
//!   cohort; the shares travel off-chain, their commitments live
//!   on-chain);
//! * **round blocks** — the surviving owners' masked updates for round
//!   `r` plus the `EvaluateRound` call. With a complete cohort that is
//!   one block; when the round's dropout schedule
//!   ([`FlConfig::dropout_schedule`]) withholds owners, the same
//!   `EvaluateRound` instead opens the contract's recovery phase and a
//!   **second block** carries the survivors' recovery shares plus the
//!   closing `EvaluateRound` — the full dropout lifecycle is on-chain,
//!   two state roots per churned round.
//!
//! Each block's transactions flow through the batched mempool pipeline:
//! staged with per-sender nonces, admitted in one
//! [`Mempool::submit_batch`] pass, drained as a sealed
//! [`fl_chain::tx::TxBundle`], and committed via
//! [`ConsensusEngine::commit_bundle`]. If consensus fails, the bundle is
//! [`Mempool::release`]d so the owners' nonce counters roll back instead
//! of wedging every later submission behind a permanent gap.
//!
//! After `R` rounds the contract holds each owner's cumulative
//! contribution `v_i = Σ_r v_i^r` (dropped owners earn exactly zero for
//! their missed rounds) and the final global model `W_G`.
//!
//! # Pipeline contract
//!
//! [`FlProtocol::run`] executes the round loop as a two-stage software
//! pipeline on [`par::par_overlap`]: while round `r`'s on-chain tail
//! (block commit, SV evaluation, dropout recovery) executes, round
//! `r+1`'s off-chain half (local training, masking, transaction
//! assembly) runs concurrently. Overlap cannot change a state root
//! because every cross-stage input is digest-fixed before the stage
//! that consumes it starts:
//!
//! * **Keys and the pair-secret epoch** are fixed by the phase-0 setup
//!   block and never change afterwards (`KeyAlreadyAdvertised` rejects
//!   re-advertising), so the snapshot taken once at run start is
//!   byte-identical to what any round would read from the live
//!   contract.
//! * **The next global model** is fixed at round `r`'s *aggregation*
//!   point — before SV evaluation even begins. Pairwise masks cancel
//!   exactly in the u64 ring, so the off-chain stage predicts the
//!   committed model bit-identically from the plaintext encodings it
//!   already holds: per group, `decode_avg(Σ_ring encode(update_i))`
//!   over the group's survivors, then the same surviving-mean
//!   reductions the contract applies (flat, or per-cohort then across
//!   alive cohorts when sharded). Round `r+1` trains against that
//!   prediction; after round `r` commits, the driver compares the
//!   prediction against the live contract **bit for bit** and fails
//!   with [`ProtocolError::PipelineDivergence`] on any mismatch. The
//!   check runs in sequential mode too, so the predictor is pinned by
//!   every test that drives the protocol.
//! * **Nonces and block order** are consensus-visible, so they are
//!   assigned only in the on-chain stage (which owns the mempool); the
//!   off-chain stage emits nonce-free `(sender, call)` pairs.
//!
//! [`FlProtocol::run_sequential`] drives the same two halves strictly
//! in order — the seed's original loop — and must produce a
//! bit-identical chain; the `par_determinism` suite pins pipelined ≡
//! sequential across thread caps, dropout schedules, and cohort
//! counts.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::time::Instant;

use fl_chain::consensus::engine::{
    CommitReport, ConsensusEngine, EngineConfig, EngineError, MinerBehavior,
};
use fl_chain::consensus::leader::LeaderSchedule;
use fl_chain::durability::{DurabilityConfig, DurabilityError, DurableStore, RecoveryReport};
use fl_chain::gas::Gas;
use fl_chain::hash::Hash32;
use fl_chain::mempool::Mempool;
use fl_chain::tx::{AccountId, Transaction};
use fl_crypto::shamir::{Shamir, Share};
use fl_crypto::ChaChaPrg;
use fl_ml::dataset::Dataset;
use numeric::{par, FixedCodec, U256};
use shapley::group::{grouping, permutation};

use crate::adversary::AdversaryKind;
use crate::config::{ConfigError, FlConfig};
use crate::contract_fl::{
    sharded_round_groups, share_commitment, FlCall, FlContract, FlParams, RoundRecord,
};
use crate::owner::DataOwner;
use crate::world::World;

/// Errors from building or running the protocol.
#[derive(Debug)]
pub enum ProtocolError {
    /// Invalid configuration.
    Config(ConfigError),
    /// Consensus failed (e.g. Byzantine majority).
    Consensus(EngineError),
    /// Secure aggregation failed (should not happen with valid config).
    SecureAgg(fl_crypto::secure_agg::SecureAggError),
    /// Dropout recovery failed (bad shares or a key mismatch).
    Dropout(fl_crypto::dropout::DropoutError),
    /// The mempool rejected part of a staged batch (internal invariant
    /// violation: the driver stages contiguous nonces and sizes the pool
    /// for the round, so this signals a bug — never commit a truncated
    /// round block silently).
    Admission(fl_chain::mempool::MempoolError),
    /// The attached durable store failed (log I/O, corrupt directory, or
    /// an injected crash). The in-memory run is intact; persistence is
    /// not.
    Durability(DurabilityError),
    /// An owner has no DH public key on-chain: the round machinery ran
    /// before the phase-0 setup block (a mis-sequenced caller).
    MissingAdvertisedKey {
        /// The owner whose key is missing.
        owner: AccountId,
    },
    /// The off-chain stage's predicted global model does not match the
    /// model the contract committed — the pipeline handoff invariant
    /// (see the module docs) was violated. This signals a bug in either
    /// half, never a recoverable runtime condition.
    PipelineDivergence {
        /// The round whose committed model diverged from the prediction.
        round: u64,
    },
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Config(e) => write!(f, "configuration: {e}"),
            Self::Consensus(e) => write!(f, "consensus: {e}"),
            Self::SecureAgg(e) => write!(f, "secure aggregation: {e}"),
            Self::Dropout(e) => write!(f, "dropout recovery: {e}"),
            Self::Admission(e) => write!(f, "batch admission: {e}"),
            Self::Durability(e) => write!(f, "durable store: {e}"),
            Self::MissingAdvertisedKey { owner } => {
                write!(
                    f,
                    "owner {owner} has no advertised key (phase 0 incomplete)"
                )
            }
            Self::PipelineDivergence { round } => write!(
                f,
                "round {round}: predicted global model diverged from the committed model"
            ),
        }
    }
}

impl std::error::Error for ProtocolError {}

impl From<ConfigError> for ProtocolError {
    fn from(e: ConfigError) -> Self {
        Self::Config(e)
    }
}

impl From<EngineError> for ProtocolError {
    fn from(e: EngineError) -> Self {
        Self::Consensus(e)
    }
}

impl From<fl_crypto::secure_agg::SecureAggError> for ProtocolError {
    fn from(e: fl_crypto::secure_agg::SecureAggError) -> Self {
        Self::SecureAgg(e)
    }
}

impl From<fl_crypto::dropout::DropoutError> for ProtocolError {
    fn from(e: fl_crypto::dropout::DropoutError) -> Self {
        Self::Dropout(e)
    }
}

impl From<DurabilityError> for ProtocolError {
    fn from(e: DurabilityError) -> Self {
        Self::Durability(e)
    }
}

/// Wall-clock seconds spent in each pipeline stage, accumulated over
/// the whole run.
///
/// Observability only — never consensus state. In pipelined mode the
/// stage sums can exceed the run's wall clock because the off-chain
/// stage (`train_mask` + `assemble`) overlaps the on-chain stage
/// (`commit` + `evaluate`); the gap between `Σ stages` and
/// [`FlRunReport::wall_seconds`] is exactly the overlap won.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StageTimings {
    /// Local training plus mask generation (off-chain, per owner).
    pub train_mask: f64,
    /// Transaction assembly and next-model prediction (off-chain).
    pub assemble: f64,
    /// Committing submission-only cohort bundles (on-chain; zero for
    /// flat rounds, whose single block lands under `evaluate`).
    pub commit: f64,
    /// Committing the `EvaluateRound`-bearing bundle(s): SV evaluation
    /// plus, on churned rounds, the recovery block.
    pub evaluate: f64,
}

impl StageTimings {
    /// Element-wise accumulation.
    pub fn accumulate(&mut self, other: &StageTimings) {
        self.train_mask += other.train_mask;
        self.assemble += other.assemble;
        self.commit += other.commit;
        self.evaluate += other.evaluate;
    }

    /// Sum over all stages — what a fully sequential run would cost.
    pub fn total(&self) -> f64 {
        self.train_mask + self.assemble + self.commit + self.evaluate
    }
}

/// Summary of a full protocol run.
#[derive(Debug, Clone)]
pub struct FlRunReport {
    /// Cumulative Shapley value per owner (indexed by owner position).
    pub per_owner_sv: Vec<f64>,
    /// Global-model test accuracy after each round.
    pub accuracy_history: Vec<f64>,
    /// Per-round evaluation records (the on-chain audit trail).
    pub round_records: Vec<RoundRecord>,
    /// Blocks committed.
    pub blocks: u64,
    /// Failed leader views (fraud attempts rejected).
    pub failed_views: u64,
    /// Total gas burned.
    pub total_gas: Gas,
    /// Commit reports per block, for deeper inspection.
    pub commits: Vec<CommitReport>,
    /// Per-stage wall-clock breakdown (see [`StageTimings`]).
    pub stages: StageTimings,
    /// End-to-end wall clock of the run, including setup.
    pub wall_seconds: f64,
}

/// Next nonce for `sender`: the pool's expectation plus however many
/// transactions the batch under construction already stages for it.
fn staged_nonce(
    pool: &Mempool<FlCall>,
    staged: &mut BTreeMap<AccountId, u64>,
    sender: AccountId,
) -> u64 {
    let count = staged.entry(sender).or_insert(0);
    let nonce = pool.expected_nonce(sender) + *count;
    *count += 1;
    nonce
}

/// One round's fully prepared off-chain work: everything `commit_round`
/// needs, with no nonces assigned (nonces are consensus-visible and
/// belong to the on-chain stage).
struct PreparedRound {
    round: u64,
    /// Round-block calls in assembly order (submissions per cohort,
    /// then the `EvaluateRound` trigger).
    calls: Vec<(AccountId, FlCall)>,
    /// Transactions per cohort bundle; `calls.len()` in total.
    bundle_sizes: Vec<usize>,
    /// Recovery-block calls (shares + closing `EvaluateRound`); empty
    /// when the round schedules no dropouts.
    recovery_calls: Vec<(AccountId, FlCall)>,
    /// The global model the contract will hold once this round commits
    /// — the pipeline handoff (see the module docs).
    predicted_model: Vec<f64>,
    /// Wall-clock seconds spent training + masking.
    train_mask_secs: f64,
    /// Wall-clock seconds spent assembling calls and predicting.
    assemble_secs: f64,
}

/// The off-chain half of the round pipeline: owners, their escrow
/// shares, and the phase-0 key snapshot. Borrows are disjoint from
/// `OnChainStage` so the two halves can run concurrently.
struct OffChainStage<'a> {
    config: &'a FlConfig,
    owners: &'a mut Vec<DataOwner>,
    escrows: &'a [Vec<Share>],
    /// Advertised DH public keys, indexed by owner position (fixed at
    /// phase 0).
    keys: &'a [U256],
    /// Pair-secret cache epoch: digest of the full advertised key set,
    /// stable across rounds.
    epoch: [u8; 32],
}

impl OffChainStage<'_> {
    /// Prepares one round entirely off-chain: local training against
    /// `global_model`, masking, call assembly, and the next-model
    /// prediction. Touches neither the mempool nor the engine.
    fn prepare_round(
        &mut self,
        round: u64,
        global_model: &[f64],
    ) -> Result<PreparedRound, ProtocolError> {
        let n = self.owners.len();
        let k = self.config.num_cohorts;
        let dropped = self.config.dropped_in_round(round);
        let is_dropped = |idx: usize| dropped.binary_search(&idx).is_ok();

        // Public grouping for the round (identical to the contract's):
        // flat rounds are the one-cohort special case, so the secure-agg
        // directories below are cohort-scoped in both paths.
        let cohort_groups: Vec<Vec<Vec<usize>>> = if k > 1 {
            sharded_round_groups(
                self.config.permutation_seed,
                round,
                n,
                k,
                self.config.num_groups,
            )
            .1
        } else {
            vec![grouping(
                &permutation(self.config.permutation_seed, round, n),
                self.config.num_groups,
            )]
        };
        let groups: Vec<Vec<usize>> = cohort_groups.iter().flatten().cloned().collect();

        // Every owner reads its group's keys from the phase-0 snapshot.
        let group_directories: Vec<Vec<(AccountId, U256)>> = groups
            .iter()
            .map(|group| {
                group
                    .iter()
                    .map(|&idx| (idx as u32, self.keys[idx]))
                    .collect()
            })
            .collect();

        let mut group_of = vec![0usize; n];
        for (j, group) in groups.iter().enumerate() {
            for &idx in group {
                group_of[idx] = j;
            }
        }

        let codec = FixedCodec::new(self.config.frac_bits);
        let num_features = self.config.data.features;
        let num_classes = self.config.data.classes;
        let epoch = self.epoch;

        // Local training + masking, off-chain per owner. In deployment
        // every owner computes on its own machine simultaneously; here the
        // owners fan out across cores. Each owner's update depends only on
        // its own shard, RNG, and the (shared, read-only) global model, so
        // the updates are bit-identical to a sequential pass. Owners
        // scheduled to drop vanish before producing anything visible. The
        // plaintext ring encoding rides along for the handoff prediction.
        let train_start = Instant::now();
        type MaskedAndPlain = (Vec<u64>, Vec<u64>);
        let outputs: Vec<Option<Result<MaskedAndPlain, fl_crypto::secure_agg::SecureAggError>>> =
            par::par_map_mut(&mut *self.owners, 1, |idx, owner| {
                if is_dropped(idx) {
                    return None;
                }
                let update = owner.local_update(global_model, num_features, num_classes);
                let plain = codec.encode_vec(&update);
                Some(
                    owner
                        .mask_update_cached(
                            &update,
                            round,
                            &group_directories[group_of[idx]],
                            epoch,
                        )
                        .map(|masked| (masked, plain)),
                )
            });
        let train_mask_secs = train_start.elapsed().as_secs_f64();

        let assemble_start = Instant::now();
        let encoded: Vec<Option<MaskedAndPlain>> = outputs
            .into_iter()
            .map(|r| r.transpose())
            .collect::<Result<_, _>>()?;
        let mut masked: Vec<Option<Vec<u64>>> = Vec::with_capacity(n);
        let mut plain: Vec<Option<Vec<u64>>> = Vec::with_capacity(n);
        for entry in encoded {
            match entry {
                Some((m, p)) => {
                    masked.push(Some(m));
                    plain.push(Some(p));
                }
                None => {
                    masked.push(None);
                    plain.push(None);
                }
            }
        }

        // Call assembly order is consensus-visible (it becomes nonce and
        // block order); bundle boundaries follow the cohort plan — one
        // bundle per cohort, in plan order.
        let mut calls: Vec<(AccountId, FlCall)> = Vec::with_capacity(n + 1);
        let mut bundle_sizes: Vec<usize> = Vec::with_capacity(cohort_groups.len());
        for cohort in &cohort_groups {
            let before = calls.len();
            for group in cohort {
                for &idx in group {
                    if is_dropped(idx) {
                        continue;
                    }
                    let m = masked[idx]
                        .take()
                        .expect("each survivor produces exactly one update");
                    calls.push((
                        self.owners[idx].id(),
                        FlCall::SubmitMaskedUpdate { round, masked: m },
                    ));
                }
            }
            bundle_sizes.push(calls.len() - before);
        }

        // Anyone alive may trigger evaluation; the first survivor does.
        // With owners missing this transaction opens recovery instead of
        // evaluating — same call, driven by the contract's state machine.
        // It rides in the final cohort's bundle: every earlier cohort's
        // submissions are then already-committed blocks.
        let survivors: Vec<usize> = (0..n).filter(|&idx| !is_dropped(idx)).collect();
        let trigger = self.owners[*survivors.first().expect("validated: survivors exist")].id();
        calls.push((trigger, FlCall::EvaluateRound { round }));
        *bundle_sizes.last_mut().expect("at least one cohort") += 1;

        // Handoff prediction: mirror the contract's aggregation bit-path
        // from the plaintext encodings. Masks cancel exactly in the u64
        // ring, so per group the masked-sum-then-strip the contract runs
        // equals this plaintext ring sum; the survivor-mean reductions
        // are then applied in the contract's exact order.
        let dim = (num_features + 1) * num_classes;
        let mut group_models: Vec<Option<Vec<f64>>> = Vec::with_capacity(groups.len());
        for group in &groups {
            let alive: Vec<usize> = group.iter().copied().filter(|&i| !is_dropped(i)).collect();
            if alive.is_empty() {
                group_models.push(None);
                continue;
            }
            let mut acc = vec![0u64; dim];
            for &i in &alive {
                FixedCodec::ring_add_assign(&mut acc, plain[i].as_ref().expect("survivor encoded"));
            }
            group_models.push(Some(
                acc.iter()
                    .map(|&r| codec.decode_avg(r, alive.len()))
                    .collect(),
            ));
        }
        let predicted_model = if k > 1 {
            let mut cohort_models: Vec<Vec<f64>> = Vec::new();
            let mut g = 0usize;
            for cohort in &cohort_groups {
                let mut surviving: Vec<Vec<f64>> = Vec::new();
                for _ in cohort {
                    if let Some(model) = group_models[g].take() {
                        surviving.push(model);
                    }
                    g += 1;
                }
                if !surviving.is_empty() {
                    cohort_models.push(numeric::linalg::mean_vectors(&surviving));
                }
            }
            numeric::linalg::mean_vectors(&cohort_models)
        } else {
            let surviving: Vec<Vec<f64>> = group_models.into_iter().flatten().collect();
            numeric::linalg::mean_vectors(&surviving)
        };

        // Recovery block (assembled here, committed only after the main
        // block): threshold-many survivors reveal their escrowed shares
        // for every dropped owner, then the closing EvaluateRound
        // reconstructs the keys, strips the residual masks, and
        // evaluates on the survivors.
        let recovery_calls: Vec<(AccountId, FlCall)> = if dropped.is_empty() {
            Vec::new()
        } else {
            let threshold = self.config.escrow_threshold();
            let mut recovery = Vec::with_capacity(dropped.len() * threshold + 1);
            for &d in &dropped {
                let dropped_id = self.owners[d].id();
                for &provider in survivors.iter().take(threshold) {
                    let share = &self.escrows[d][provider];
                    recovery.push((
                        self.owners[provider].id(),
                        FlCall::SubmitRecoveryShare {
                            round,
                            dropped: dropped_id,
                            share_x: share.x,
                            share_y: share.y.to_be_bytes(),
                        },
                    ));
                }
            }
            recovery.push((trigger, FlCall::EvaluateRound { round }));
            recovery
        };
        let assemble_secs = assemble_start.elapsed().as_secs_f64();

        Ok(PreparedRound {
            round,
            calls,
            bundle_sizes,
            recovery_calls,
            predicted_model,
            train_mask_secs,
            assemble_secs,
        })
    }
}

/// The on-chain half of the round pipeline: mempool, consensus engine,
/// and the optional durable store.
struct OnChainStage<'a> {
    engine: &'a mut ConsensusEngine<FlContract>,
    pool: &'a mut Mempool<FlCall>,
    durable: &'a mut Option<DurableStore<FlCall>>,
}

impl OnChainStage<'_> {
    /// Tails the honest replica's chain into the durable store: appends
    /// every block beyond the durable height, then snapshots the
    /// contract state if the cadence says so.
    fn sync_durable(&mut self) -> Result<(), ProtocolError> {
        let Some(durable) = self.durable.as_mut() else {
            return Ok(());
        };
        let live = self
            .engine
            .store_of(0)
            .expect("miner 0 always exists")
            .clone();
        for height in durable.store().height()..live.height() {
            let block = live.block_at(height).expect("height bounded by store");
            durable.append(block)?;
        }
        if durable.snapshot_due() {
            let state = self.engine.honest_contract().snapshot_state();
            durable.write_snapshot(&state)?;
        }
        Ok(())
    }

    /// Admits `txs` in one batched pass, drains *everything pending* as a
    /// sealed bundle, and commits it. The two error paths scope their
    /// rollback differently, on purpose: an admission failure un-admits
    /// only this batch (transactions queued earlier were not part of the
    /// failure and stay pending), while a consensus failure releases the
    /// whole bundle — earlier-queued transactions included, because they
    /// were part of the failed block — so every affected sender's nonce
    /// counter rewinds and resubmission is possible.
    fn commit_batch(
        &mut self,
        txs: Vec<Transaction<FlCall>>,
    ) -> Result<CommitReport, ProtocolError> {
        let admission = self.pool.submit_batch(txs);
        if !admission.all_admitted() {
            // Never commit a truncated round block (e.g. one missing an
            // owner's update or the evaluation trigger): un-admit this
            // batch — transactions queued before it stay pending — and
            // surface the first rejection.
            self.pool.rollback_admitted(admission.admitted);
            let (_, reason) = admission
                .rejected
                .into_iter()
                .next()
                .expect("not all_admitted implies a rejection");
            return Err(ProtocolError::Admission(reason));
        }
        let bundle = self.pool.drain_bundle(usize::MAX);
        match self.engine.commit_bundle(&bundle) {
            Ok(report) => {
                // Persist the freshly committed block(s) before reporting
                // success: a crash after this point replays them from disk.
                self.sync_durable()?;
                Ok(report)
            }
            Err(e) => {
                // Dropping release()'s evicted orphans is deliberate:
                // the rollback makes any still-queued transactions above
                // the rewind point unexecutable, and their senders
                // resubmit from the rewound nonce.
                self.pool.release(bundle.txs());
                Err(e.into())
            }
        }
    }

    /// Admits `txs` in one batched pass and commits them as a *stream*
    /// of consecutive blocks, one per entry of `sizes` — the sharded
    /// round's per-cohort bundles. The submission-only prefix is timed
    /// under `commit`, the final (`EvaluateRound`-bearing) bundle under
    /// `evaluate`.
    ///
    /// The per-bundle atomic-commit invariant carries over from
    /// [`ConsensusEngine::commit_bundles`]: a consensus failure at
    /// bundle `i` keeps the committed prefix (those blocks reached
    /// quorum on every replica) and releases only the unfinished
    /// suffix back to the pool, rewinding the affected senders'
    /// nonces for resubmission.
    fn commit_stream_timed(
        &mut self,
        txs: Vec<Transaction<FlCall>>,
        sizes: &[usize],
        timings: &mut StageTimings,
    ) -> Result<Vec<CommitReport>, ProtocolError> {
        debug_assert_eq!(txs.len(), sizes.iter().sum::<usize>());
        let admission = self.pool.submit_batch(txs);
        if !admission.all_admitted() {
            self.pool.rollback_admitted(admission.admitted);
            let (_, reason) = admission
                .rejected
                .into_iter()
                .next()
                .expect("not all_admitted implies a rejection");
            return Err(ProtocolError::Admission(reason));
        }
        let bundles = self.pool.drain_bundles(sizes);
        let split = bundles.len() - 1;
        let release_from = |pool: &mut Mempool<FlCall>, from: usize| {
            let unfinished: Vec<Transaction<FlCall>> = bundles[from..]
                .iter()
                .flat_map(|b| b.txs().iter().cloned())
                .collect();
            pool.release(&unfinished);
        };
        let commit_start = Instant::now();
        let mut reports = match self.engine.commit_bundles(&bundles[..split]) {
            Ok(reports) => reports,
            Err((_, failed_at, e)) => {
                release_from(self.pool, failed_at);
                // Persist the committed prefix before surfacing the
                // failure, so a crash-restart replays exactly the
                // blocks every replica agrees on.
                self.sync_durable()?;
                return Err(e.into());
            }
        };
        timings.commit += commit_start.elapsed().as_secs_f64();
        let evaluate_start = Instant::now();
        match self.engine.commit_bundles(&bundles[split..]) {
            Ok(mut tail) => {
                reports.append(&mut tail);
                self.sync_durable()?;
                timings.evaluate += evaluate_start.elapsed().as_secs_f64();
                Ok(reports)
            }
            Err((_, _, e)) => {
                release_from(self.pool, split);
                self.sync_durable()?;
                Err(e.into())
            }
        }
    }

    /// Commits one prepared round: assigns nonces, streams the cohort
    /// bundles (flat rounds commit one block), commits the recovery
    /// block on churned rounds, and verifies the pipeline handoff —
    /// the committed global model must equal the prediction bit for
    /// bit.
    fn commit_round(
        &mut self,
        prepared: PreparedRound,
    ) -> Result<(Vec<CommitReport>, StageTimings), ProtocolError> {
        let PreparedRound {
            round,
            calls,
            bundle_sizes,
            recovery_calls,
            predicted_model,
            ..
        } = prepared;
        let mut timings = StageTimings::default();

        let mut staged = BTreeMap::new();
        let txs: Vec<Transaction<FlCall>> = calls
            .into_iter()
            .map(|(id, call)| {
                let nonce = staged_nonce(self.pool, &mut staged, id);
                Transaction::new(id, nonce, call)
            })
            .collect();

        let mut commits = if bundle_sizes.len() > 1 {
            self.commit_stream_timed(txs, &bundle_sizes, &mut timings)?
        } else {
            // One flat block carries both the submissions and the
            // evaluation; SV evaluation dominates it, so it lands under
            // `evaluate`.
            let start = Instant::now();
            let report = self.commit_batch(txs)?;
            timings.evaluate += start.elapsed().as_secs_f64();
            vec![report]
        };

        if !recovery_calls.is_empty() {
            let mut staged = BTreeMap::new();
            let txs: Vec<Transaction<FlCall>> = recovery_calls
                .into_iter()
                .map(|(id, call)| {
                    let nonce = staged_nonce(self.pool, &mut staged, id);
                    Transaction::new(id, nonce, call)
                })
                .collect();
            let start = Instant::now();
            commits.push(self.commit_batch(txs)?);
            timings.evaluate += start.elapsed().as_secs_f64();
        }

        // Pipeline handoff check (module docs): round r+1 may already be
        // training against `predicted_model` on the other stage, so any
        // divergence here is a protocol bug that must halt the run, not
        // skew it silently.
        let live = self.engine.honest_contract().global_model();
        let agrees = live.len() == predicted_model.len()
            && live
                .iter()
                .zip(&predicted_model)
                .all(|(a, b)| a.to_bits() == b.to_bits());
        if !agrees {
            return Err(ProtocolError::PipelineDivergence { round });
        }
        Ok((commits, timings))
    }
}

/// The protocol driver.
pub struct FlProtocol {
    config: FlConfig,
    owners: Vec<DataOwner>,
    engine: ConsensusEngine<FlContract>,
    test_set: Dataset,
    pool: Mempool<FlCall>,
    /// Off-chain escrow shares: `escrows[i][j]` is the Shamir share of
    /// owner `i`'s DH private key held by owner `j` (its commitment is
    /// on-chain). In deployment each owner holds only its own column;
    /// the driver plays every owner, so it holds the whole matrix.
    escrows: Vec<Vec<Share>>,
    /// Optional on-disk tail of the honest replica's chain (see
    /// [`FlProtocol::persist_to`]); `None` keeps the run memory-only.
    durable: Option<DurableStore<FlCall>>,
}

impl FlProtocol {
    /// Builds the world with every miner honest.
    pub fn new(config: FlConfig) -> Result<Self, ProtocolError> {
        Self::with_behaviors(config, &BTreeMap::new())
    }

    /// Builds the world with specified miner behaviours (for fraud
    /// experiments).
    pub fn with_behaviors(
        config: FlConfig,
        behaviors: &BTreeMap<AccountId, MinerBehavior>,
    ) -> Result<Self, ProtocolError> {
        // World generation: dataset → 8:2 split → owner shards → noise.
        let world = World::generate(&config)?;

        let owner_ids: Vec<AccountId> = (0..config.num_owners as u32).collect();
        let owners: Vec<DataOwner> = owner_ids
            .iter()
            .zip(world.shards)
            .map(|(&id, shard)| {
                DataOwner::new(
                    id,
                    shard,
                    config.train,
                    config.frac_bits,
                    config.sub_seed("dh-keys"),
                )
            })
            .collect();

        // Key escrow (setup stage of the dropout extension): every owner
        // Shamir-shares its DH private key across the cohort, seeded
        // from the world seed so every rebuild derives identical shares.
        // With no scheduled dropouts the O(n²) share computation (and
        // the n escrow transactions) is pure overhead, so it is skipped
        // — at 10³+ owners this dominates setup cost.
        let n = config.num_owners;
        let shamir = Shamir::default();
        let threshold = config.escrow_threshold();
        let escrow_seed = config.sub_seed("key-escrow");
        let escrows: Vec<Vec<Share>> = if config.dropout_schedule.is_empty() {
            Vec::new()
        } else {
            owners
                .iter()
                .enumerate()
                .map(|(i, owner)| {
                    let mut seed_bytes = [0u8; 32];
                    seed_bytes[..8].copy_from_slice(&escrow_seed.to_le_bytes());
                    seed_bytes[8..16].copy_from_slice(&(i as u64).to_le_bytes());
                    let mut prg = ChaChaPrg::from_seed(&seed_bytes);
                    owner.escrow_key_shares(&shamir, threshold, n, &mut prg)
                })
                .collect::<Result<_, _>>()?
        };

        let params = FlParams {
            owners: owner_ids.clone(),
            num_groups: config.num_groups,
            sv_method: config.sv_method,
            permutation_seed: config.permutation_seed,
            total_rounds: config.rounds,
            model_dim: (config.data.features + 1) * config.data.classes,
            num_features: config.data.features,
            num_classes: config.data.classes,
            frac_bits: config.frac_bits,
            escrow_threshold: threshold,
            num_cohorts: config.num_cohorts,
        };
        let contract = FlContract::genesis(params, world.test.clone());
        // Miner committee: by default every owner mines (the paper's
        // consortium setting); at scale a prefix committee keeps the
        // per-block re-execution fan-out constant while owners stay
        // first-class on the data side.
        let miner_ids: Vec<AccountId> = if config.miner_committee > 0 {
            owner_ids
                .iter()
                .copied()
                .take(config.miner_committee)
                .collect()
        } else {
            owner_ids
        };
        let schedule = LeaderSchedule::round_robin(miner_ids);
        let engine = ConsensusEngine::new(contract, schedule, behaviors, EngineConfig::default())?;

        // Capacity: sized for the largest block any validated schedule
        // can assemble — the setup block (2n: keys + escrows), a round
        // block (n + 1), or a recovery block (dropped × threshold + 1,
        // which dominates as soon as several owners drop at once) — with
        // a few blocks of headroom.
        let max_dropped = config
            .dropout_schedule
            .iter()
            .map(|(r, _)| config.dropped_in_round(*r).len())
            .max()
            .unwrap_or(0);
        let max_block_txs = (2 * n).max(n + 1).max(max_dropped * threshold + 1);
        let pool = Mempool::new(max_block_txs * 8);

        Ok(Self {
            config,
            owners,
            engine,
            test_set: world.test,
            pool,
            escrows,
            durable: None,
        })
    }

    /// The on-chain half of the pipeline, borrowing the engine, pool,
    /// and durable store (disjoint from the off-chain borrows).
    fn on_chain(&mut self) -> OnChainStage<'_> {
        OnChainStage {
            engine: &mut self.engine,
            pool: &mut self.pool,
            durable: &mut self.durable,
        }
    }

    /// Attaches a durable store at `dir`: from now on, every committed
    /// block is write-ahead logged to disk (and snapshotted at the
    /// configured cadence) as it lands on the honest replica — blocks
    /// already committed are logged immediately, so attaching mid-run is
    /// sound. Reopening the directory later (or handing it to
    /// [`crate::audit::fast_sync`]) reproduces the chain bit-identically.
    ///
    /// If `dir` already holds a prefix of this run's chain (a resumed
    /// run), logging continues after it; a directory holding a
    /// *different* chain fails with
    /// [`DurabilityError::Rejected`] at the first divergent block.
    pub fn persist_to(
        &mut self,
        dir: impl Into<PathBuf>,
        config: DurabilityConfig,
    ) -> Result<RecoveryReport, ProtocolError> {
        let (durable, report) = DurableStore::open(dir, config)?;
        self.durable = Some(durable);
        self.on_chain().sync_durable()?;
        Ok(report)
    }

    /// The attached durable store, if any.
    pub fn durable_store(&self) -> Option<&DurableStore<FlCall>> {
        self.durable.as_ref()
    }

    /// Installs an adversarial behaviour on one owner (by position).
    ///
    /// # Panics
    ///
    /// Panics if `owner_index` is out of range.
    pub fn set_adversary(&mut self, owner_index: usize, kind: AdversaryKind) {
        self.owners[owner_index].set_adversary(kind);
    }

    /// The configuration this protocol was built with.
    pub fn config(&self) -> &FlConfig {
        &self.config
    }

    /// The held-out test set (the public utility data).
    pub fn test_set(&self) -> &Dataset {
        &self.test_set
    }

    /// The honest replica of the contract.
    pub fn contract(&self) -> &FlContract {
        self.engine.honest_contract()
    }

    /// The consensus engine (chain stores, stats).
    pub fn engine(&self) -> &ConsensusEngine<FlContract> {
        &self.engine
    }

    /// The mempool feeding the engine (nonce accounting, batched
    /// admission).
    pub fn mempool(&self) -> &Mempool<FlCall> {
        &self.pool
    }

    /// Commits the setup block (phase 0): every owner advertises its DH
    /// public key and escrows hash commitments to the Shamir shares of
    /// its private key — the on-chain half of the dropout extension.
    fn advertise_keys(&mut self) -> Result<CommitReport, ProtocolError> {
        let n = self.owners.len();
        let mut staged = BTreeMap::new();
        let mut txs: Vec<Transaction<FlCall>> = Vec::with_capacity(2 * n);
        for i in 0..n {
            let id = self.owners[i].id();
            let nonce = staged_nonce(&self.pool, &mut staged, id);
            txs.push(Transaction::new(
                id,
                nonce,
                FlCall::AdvertiseKey {
                    public_key: self.owners[i].public_key_bytes(),
                },
            ));
        }
        // No escrows were generated when the run schedules no dropouts;
        // the setup block is then keys-only.
        for (i, shares) in self.escrows.iter().enumerate() {
            let id = self.owners[i].id();
            let commitments: Vec<Hash32> = shares
                .iter()
                .map(|share| share_commitment(id, share))
                .collect();
            let nonce = staged_nonce(&self.pool, &mut staged, id);
            txs.push(Transaction::new(
                id,
                nonce,
                FlCall::EscrowKeyShares { commitments },
            ));
        }
        self.on_chain().commit_batch(txs)
    }

    /// Snapshots the phase-0 key directory: every owner's advertised DH
    /// public key plus the pair-secret epoch digest over the full set.
    /// Keys never change after phase 0, so the snapshot equals what any
    /// round would read from the live contract.
    fn snapshot_keys(&self) -> Result<(Vec<U256>, [u8; 32]), ProtocolError> {
        let contract = self.engine.honest_contract();
        let mut keys = Vec::with_capacity(self.owners.len());
        let mut directory: Vec<(AccountId, U256)> = Vec::with_capacity(self.owners.len());
        for owner in &self.owners {
            let id = owner.id();
            let bytes = contract
                .public_key_of(id)
                .ok_or(ProtocolError::MissingAdvertisedKey { owner: id })?;
            let key = U256::from_be_bytes(bytes);
            keys.push(key);
            directory.push((id, key));
        }
        let epoch = fl_crypto::key_epoch(&directory);
        Ok((keys, epoch))
    }

    /// Runs the complete protocol — key exchange plus all `R` rounds —
    /// as a two-stage pipeline: round `r+1`'s off-chain work overlaps
    /// round `r`'s on-chain tail (see the module docs' pipeline
    /// contract). Produces a chain bit-identical to
    /// [`Self::run_sequential`].
    pub fn run(&mut self) -> Result<FlRunReport, ProtocolError> {
        self.run_with(true)
    }

    /// Runs the complete protocol strictly round-sequentially (the
    /// paper's original loop): each round trains, commits, and
    /// evaluates before the next starts. The reference for the
    /// pipelined mode's bit-equality contract — and the baseline the
    /// `round_pipeline` bench measures against.
    pub fn run_sequential(&mut self) -> Result<FlRunReport, ProtocolError> {
        self.run_with(false)
    }

    fn run_with(&mut self, pipelined: bool) -> Result<FlRunReport, ProtocolError> {
        let run_start = Instant::now();
        let mut commits = Vec::new();
        // Phase 0, unless keys are already on-chain (re-advertising
        // would fail the block with `KeyAlreadyAdvertised` and wedge the
        // protocol).
        if self.contract().public_key_of(self.owners[0].id()).is_none() {
            commits.push(self.advertise_keys()?);
        }
        let (keys, epoch) = self.snapshot_keys()?;
        let mut stages = StageTimings::default();

        if self.config.rounds > 0 {
            // Split borrows: the off-chain stage owns the owners and
            // escrows, the on-chain stage the engine, pool, and durable
            // store — disjoint, so the two halves may run concurrently.
            let Self {
                config,
                owners,
                engine,
                pool,
                escrows,
                durable,
                test_set: _,
            } = self;
            let mut off = OffChainStage {
                config,
                owners,
                escrows,
                keys: &keys,
                epoch,
            };
            let mut on = OnChainStage {
                engine,
                pool,
                durable,
            };

            let model0 = on.engine.honest_contract().global_model().to_vec();
            let mut prepared = off.prepare_round(0, &model0)?;
            stages.train_mask += prepared.train_mask_secs;
            stages.assemble += prepared.assemble_secs;
            for round in 0..config.rounds {
                if round + 1 < config.rounds {
                    let next = if pipelined {
                        // Round r's on-chain tail and round r+1's
                        // off-chain half overlap; r+1 trains against the
                        // predicted (digest-fixed) model.
                        let next_model = prepared.predicted_model.clone();
                        let (commit_res, prep_res) = par::par_overlap(
                            || on.commit_round(prepared),
                            || off.prepare_round(round + 1, &next_model),
                        );
                        let (reports, t) = commit_res?;
                        commits.extend(reports);
                        stages.accumulate(&t);
                        prep_res?
                    } else {
                        let (reports, t) = on.commit_round(prepared)?;
                        commits.extend(reports);
                        stages.accumulate(&t);
                        // Sequential: train against the live committed
                        // model (the seed's loop verbatim); commit_round
                        // just pinned it equal to the prediction.
                        let live = on.engine.honest_contract().global_model().to_vec();
                        off.prepare_round(round + 1, &live)?
                    };
                    stages.train_mask += next.train_mask_secs;
                    stages.assemble += next.assemble_secs;
                    prepared = next;
                } else {
                    let (reports, t) = on.commit_round(prepared)?;
                    commits.extend(reports);
                    stages.accumulate(&t);
                    break;
                }
            }
        }

        let contract = self.engine.honest_contract();
        let per_owner_sv: Vec<f64> = contract
            .params()
            .owners
            .iter()
            .map(|id| contract.contributions()[id])
            .collect();
        let accuracy_history: Vec<f64> = contract
            .history()
            .iter()
            .map(|r| r.global_accuracy)
            .collect();
        let round_records = contract.history().to_vec();
        let stats = self.engine.stats();

        Ok(FlRunReport {
            per_owner_sv,
            accuracy_history,
            round_records,
            blocks: stats.blocks,
            failed_views: stats.failed_views,
            total_gas: stats.gas,
            commits,
            stages,
            wall_seconds: run_start.elapsed().as_secs_f64(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fl_chain::consensus::engine::MinerBehavior;
    use fl_chain::contract::SmartContract;

    fn quick() -> FlConfig {
        FlConfig::quick_demo()
    }

    #[test]
    fn full_run_commits_and_learns() {
        let mut protocol = FlProtocol::new(quick()).unwrap();
        let report = protocol.run().unwrap();
        // 1 key block + 1 round block.
        assert_eq!(report.blocks, 2);
        assert_eq!(report.per_owner_sv.len(), 4);
        assert_eq!(report.accuracy_history.len(), 1);
        // The global model must beat random guessing (10 classes).
        assert!(
            report.accuracy_history[0] > 0.5,
            "accuracy {} too low",
            report.accuracy_history[0]
        );
        assert_eq!(report.failed_views, 0);
        assert!(report.total_gas > Gas(0));
    }

    #[test]
    fn deterministic_end_to_end() {
        let run = || {
            let mut p = FlProtocol::new(quick()).unwrap();
            p.run().unwrap().per_owner_sv
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn multi_round_accumulates() {
        let mut config = quick();
        config.rounds = 2;
        let mut protocol = FlProtocol::new(config).unwrap();
        let report = protocol.run().unwrap();
        assert_eq!(report.blocks, 3);
        assert_eq!(report.round_records.len(), 2);
        // Cumulative SV = sum of per-round SVs.
        for (i, &total) in report.per_owner_sv.iter().enumerate() {
            let sum: f64 = report.round_records.iter().map(|r| r.per_owner_sv[i]).sum();
            assert!((total - sum).abs() < 1e-12);
        }
    }

    #[test]
    fn pipelined_run_matches_sequential_bit_for_bit() {
        // The tentpole invariant, on both protocol shapes: a flat
        // multi-round chain and a sharded chain with a churned round.
        let flat = {
            let mut c = quick();
            c.rounds = 3;
            c
        };
        let churned_sharded = {
            let mut c = sharded();
            c.rounds = 2;
            c.dropout_schedule = vec![(0, vec![1])];
            c
        };
        for config in [flat, churned_sharded] {
            let mut seq = FlProtocol::new(config.clone()).unwrap();
            let seq_report = seq.run_sequential().unwrap();
            let mut pipe = FlProtocol::new(config).unwrap();
            let pipe_report = pipe.run().unwrap();
            assert_eq!(seq_report.per_owner_sv, pipe_report.per_owner_sv);
            assert_eq!(seq_report.accuracy_history, pipe_report.accuracy_history);
            assert_eq!(seq_report.blocks, pipe_report.blocks);
            assert_eq!(
                seq.engine().store_of(0).unwrap().tip_digest(),
                pipe.engine().store_of(0).unwrap().tip_digest(),
                "pipelined chain must be bit-identical to sequential"
            );
        }
    }

    #[test]
    fn missing_advertised_key_is_a_typed_error() {
        // Snapshotting keys before the phase-0 block is the
        // mis-sequenced-caller case that used to panic.
        let p = FlProtocol::new(quick()).unwrap();
        match p.snapshot_keys() {
            Err(ProtocolError::MissingAdvertisedKey { owner: 0 }) => {}
            other => panic!("expected MissingAdvertisedKey for owner 0, got {other:?}"),
        }
    }

    #[test]
    fn stage_timings_are_recorded() {
        let mut config = quick();
        config.rounds = 2;
        let mut p = FlProtocol::new(config).unwrap();
        let report = p.run().unwrap();
        assert!(report.stages.train_mask > 0.0, "{:?}", report.stages);
        assert!(report.stages.evaluate > 0.0, "{:?}", report.stages);
        // Flat rounds commit a single block, accounted under `evaluate`.
        assert_eq!(report.stages.commit, 0.0);
        assert!(report.wall_seconds >= report.stages.evaluate);
        assert!(report.stages.total() > 0.0);
    }

    #[test]
    fn fraudulent_leader_rejected_and_result_unchanged() {
        // Owner 0 (first leader) proposes corrupted evaluation results;
        // the honest majority skips it. The contributions must equal the
        // all-honest run exactly.
        let honest = {
            let mut p = FlProtocol::new(quick()).unwrap();
            p.run().unwrap()
        };
        let behaviors: BTreeMap<AccountId, MinerBehavior> =
            [(0u32, MinerBehavior::CorruptProposals)].into();
        let mut p = FlProtocol::with_behaviors(quick(), &behaviors).unwrap();
        let fraud = p.run().unwrap();

        assert!(fraud.failed_views > 0, "fraud must cost views");
        assert_eq!(honest.per_owner_sv, fraud.per_owner_sv);
        assert_eq!(honest.accuracy_history, fraud.accuracy_history);
        // Fraudulent leader never successfully led a block, and its first
        // attempt is on record as rejected.
        for commit in &fraud.commits {
            assert_ne!(commit.leader, 0);
        }
        assert!(fraud.commits[0].rejected_leaders.contains(&0));
    }

    #[test]
    fn byzantine_majority_stalls_the_protocol() {
        let behaviors: BTreeMap<AccountId, MinerBehavior> = [
            (1u32, MinerBehavior::RejectAll),
            (2u32, MinerBehavior::RejectAll),
            (3u32, MinerBehavior::RejectAll),
        ]
        .into();
        let mut p = FlProtocol::with_behaviors(quick(), &behaviors).unwrap();
        match p.run() {
            Err(ProtocolError::Consensus(EngineError::NoQuorum { .. })) => {}
            other => panic!("expected NoQuorum, got {other:?}"),
        }
    }

    #[test]
    fn free_rider_scores_below_honest_owners() {
        let mut config = quick();
        config.train.epochs = 20;
        let mut p = FlProtocol::new(config).unwrap();
        p.set_adversary(3, AdversaryKind::FreeRider);
        let report = p.run().unwrap();
        let honest_min = report.per_owner_sv[..3]
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        // Free rider contributes a zero model; in expectation its group
        // is dragged down. With m=2 and 4 owners it shares a group, so we
        // only assert it does not come out on top.
        let max = report
            .per_owner_sv
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(
            report.per_owner_sv[3] < max || honest_min == report.per_owner_sv[3],
            "free rider must not uniquely lead: {:?}",
            report.per_owner_sv
        );
    }

    #[test]
    fn failed_consensus_releases_nonces_for_resubmission() {
        // Drain → consensus failure → the driver drops the block's txs.
        // Without the release path, every owner's nonce counter stays
        // advanced and all later submissions hit a permanent nonce gap.
        let behaviors: BTreeMap<AccountId, MinerBehavior> = [
            (1u32, MinerBehavior::RejectAll),
            (2u32, MinerBehavior::RejectAll),
            (3u32, MinerBehavior::RejectAll),
        ]
        .into();
        let mut p = FlProtocol::with_behaviors(quick(), &behaviors).unwrap();
        assert!(p.run().is_err(), "Byzantine majority must stall");
        assert!(p.mempool().is_empty(), "dropped txs are not requeued");
        for id in 0..4u32 {
            assert_eq!(
                p.mempool().expected_nonce(id),
                0,
                "owner {id}'s nonce counter must roll back for resubmission"
            );
        }
    }

    #[test]
    fn dropout_round_commits_end_to_end_through_the_mempool() {
        // Owner 1 vanishes after masking in round 0. The round commits
        // in two blocks (survivors + recovery), the record carries the
        // survivor set and recovery evidence, and the dropped owner
        // earns exactly zero.
        let mut config = quick();
        config.dropout_schedule = vec![(0, vec![1])];
        let mut p = FlProtocol::new(config).unwrap();
        let report = p.run().unwrap();
        // Setup block + survivor block + recovery block.
        assert_eq!(report.blocks, 3);
        assert_eq!(report.round_records.len(), 1);
        let record = &report.round_records[0];
        assert_eq!(record.survivors, vec![0, 2, 3]);
        assert_eq!(record.dropped, vec![1]);
        assert_eq!(record.per_owner_sv[1], 0.0);
        assert_eq!(report.per_owner_sv[1], 0.0);
        assert_eq!(record.recovery.len(), 1);
        assert_eq!(record.recovery[0].dropped, 1);
        // Threshold-many survivors vouched the reconstruction.
        assert_eq!(record.recovery[0].providers.len(), 3);
        assert!(record.recovery[0].providers.iter().all(|p| *p != 1));

        // Every replica audits the churned chain clean.
        let params = p.contract().params().clone();
        let store = p.engine().store_of(0).unwrap();
        let audit = crate::audit::replay_chain(store, params, p.test_set().clone()).unwrap();
        assert!(audit.clean, "recovery blocks must replay exactly");
    }

    #[test]
    fn dropout_round_matches_from_scratch_survivor_aggregate() {
        // The recovered global model must equal a from-scratch unmasked
        // aggregate of the survivors: group-wise survivor means, then the
        // mean over surviving groups — bit-path through the same ring.
        let mut config = quick();
        config.dropout_schedule = vec![(0, vec![3])];
        let mut p = FlProtocol::new(config.clone()).unwrap();
        let report = p.run().unwrap();
        let record = &report.round_records[0];

        let world = World::generate(&config).unwrap();
        let updates = world.local_updates(&config);
        let codec = numeric::FixedCodec::new(config.frac_bits);
        let dim = (config.data.features + 1) * config.data.classes;
        let mut surviving_models: Vec<Vec<f64>> = Vec::new();
        for group in &record.groups {
            let alive: Vec<usize> = group.iter().copied().filter(|&i| i != 3).collect();
            if alive.is_empty() {
                continue;
            }
            let mut acc = vec![0u64; dim];
            for &i in &alive {
                numeric::FixedCodec::ring_add_assign(&mut acc, &codec.encode_vec(&updates[i]));
            }
            surviving_models.push(
                acc.iter()
                    .map(|&r| codec.decode_avg(r, alive.len()))
                    .collect(),
            );
        }
        let expect = numeric::linalg::mean_vectors(&surviving_models);
        assert_eq!(
            p.contract().global_model(),
            expect.as_slice(),
            "mask-stripped aggregate must be bit-identical to the plaintext ring sum"
        );
    }

    #[test]
    fn multi_dropout_round_with_ceil_n_over_3_dropped() {
        // The acceptance shape: 9 owners, ⌈9/3⌉ = 3 drop simultaneously
        // (threshold 5 survivors remain), the round completes on-chain.
        let mut config = quick();
        config.num_owners = 9;
        config.num_groups = 3;
        config.dropout_schedule = vec![(0, vec![2, 5, 8])];
        let mut p = FlProtocol::new(config).unwrap();
        let report = p.run().unwrap();
        assert_eq!(report.blocks, 3);
        let record = &report.round_records[0];
        assert_eq!(record.dropped, vec![2, 5, 8]);
        assert_eq!(record.survivors.len(), 6);
        assert_eq!(record.recovery.len(), 3);
        for d in [2usize, 5, 8] {
            assert_eq!(record.per_owner_sv[d], 0.0);
        }
        // Survivors split their groups' value; the ledger reflects it.
        let paid: usize = record.per_owner_sv.iter().filter(|v| v.abs() > 0.0).count();
        assert!(paid > 0, "survivors must be evaluated: {record:?}");
        let params = p.contract().params().clone();
        let audit = crate::audit::replay_chain(
            p.engine().store_of(0).unwrap(),
            params,
            p.test_set().clone(),
        )
        .unwrap();
        assert!(audit.clean);
    }

    #[test]
    fn mempool_is_sized_for_the_recovery_block() {
        // Regression: the recovery block carries dropped × threshold + 1
        // transactions, which outgrows the old (n + 1) × 8 sizing for
        // wide cohorts with many simultaneous dropouts. Any schedule the
        // validator accepts must fit the pool.
        let mut config = quick();
        config.num_owners = 33;
        config.num_groups = 3;
        // Maximum recoverable dropouts: n − threshold = 33 − 17 = 16.
        config.dropout_schedule = vec![(0, (17..33).collect())];
        config.validate().unwrap();
        let threshold = config.escrow_threshold();
        let recovery_block_txs = 16 * threshold + 1;
        let p = FlProtocol::new(config).unwrap();
        assert!(
            p.mempool().capacity() >= recovery_block_txs,
            "pool capacity {} cannot admit a {}-tx recovery block",
            p.mempool().capacity(),
            recovery_block_txs
        );
    }

    #[test]
    fn dropout_rounds_are_deterministic() {
        let run = |seed_offset: u64| {
            let mut config = quick();
            config.world_seed += seed_offset;
            config.dropout_schedule = vec![(0, vec![2])];
            let mut p = FlProtocol::new(config).unwrap();
            let report = p.run().unwrap();
            (report.per_owner_sv, p.contract().global_model().to_vec())
        };
        assert_eq!(run(0), run(0));
        assert_ne!(run(0), run(1), "different world, different models");
    }

    #[test]
    fn dropped_owner_resumes_in_the_next_round() {
        // Dropping is per-round: the owner is back (and paid) in round 1.
        let mut config = quick();
        config.rounds = 2;
        config.dropout_schedule = vec![(0, vec![1])];
        let mut p = FlProtocol::new(config).unwrap();
        let report = p.run().unwrap();
        assert_eq!(report.round_records.len(), 2);
        assert_eq!(report.round_records[0].per_owner_sv[1], 0.0);
        assert_eq!(report.round_records[1].survivors, vec![0, 1, 2, 3]);
        // Cumulative SV for owner 1 comes entirely from round 1.
        assert_eq!(
            report.per_owner_sv[1],
            report.round_records[1].per_owner_sv[1]
        );
    }

    #[test]
    fn on_chain_method_selection_runs_and_audits() {
        // The round config picks the stratified estimator; the protocol
        // commits it, the audit record names it, and an auditor replaying
        // the chain with the true parameters verifies every state root.
        let method = crate::config::SvMethod::Stratified {
            samples_per_stratum: 2,
        };
        let mut config = quick();
        config.sv_method = method;
        let mut p = FlProtocol::new(config).unwrap();
        let report = p.run().unwrap();
        assert_eq!(report.round_records[0].sv_method, method);
        assert!(report.round_records[0].samples > 0);

        let params = p.contract().params().clone();
        assert_eq!(params.sv_method, method);
        let store = p.engine().store_of(0).unwrap();
        let audit = crate::audit::replay_chain(store, params, p.test_set().clone()).unwrap();
        assert!(audit.clean, "sampling evaluation must replay exactly");
    }

    #[test]
    fn chain_is_auditable_after_run() {
        let mut p = FlProtocol::new(quick()).unwrap();
        p.run().unwrap();
        for id in 0..4u32 {
            let store = p.engine().store_of(id).unwrap();
            assert_eq!(store.verify_chain(), Ok(()));
            assert_eq!(store.height(), 2);
        }
        // All replicas ended at the same state root.
        let roots: Vec<_> = (0..4u32)
            .map(|id| p.engine().contract_of(id).unwrap().state_digest())
            .collect();
        assert!(roots.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn invalid_config_rejected() {
        let mut c = quick();
        c.num_owners = 1;
        assert!(matches!(FlProtocol::new(c), Err(ProtocolError::Config(_))));
    }

    /// 8 owners in 2 cohorts of 4, 2 secure-agg groups per cohort.
    fn sharded() -> FlConfig {
        let mut config = quick();
        config.num_owners = 8;
        config.num_groups = 2;
        config.num_cohorts = 2;
        config
    }

    #[test]
    fn sharded_run_streams_one_block_per_cohort() {
        let mut p = FlProtocol::new(sharded()).unwrap();
        let report = p.run().unwrap();
        // 1 key block + 2 cohort blocks (no mega-block).
        assert_eq!(report.blocks, 3);
        assert_eq!(report.per_owner_sv.len(), 8);
        assert_eq!(report.failed_views, 0);

        let record = &report.round_records[0];
        assert_eq!(record.cohorts.len(), 2);
        assert_eq!(record.groups.len(), 4, "2 cohorts × 2 groups");
        let mut all: Vec<usize> = record
            .cohorts
            .iter()
            .flat_map(|c| c.members.clone())
            .collect();
        all.sort_unstable();
        assert_eq!(
            all,
            (0..8).collect::<Vec<_>>(),
            "evidence partitions owners"
        );
        // Each cohort's member payouts compose to its second-level value.
        for ev in &record.cohorts {
            let total: f64 = ev.members.iter().map(|&i| record.per_owner_sv[i]).sum();
            assert!((total - ev.sv).abs() < 1e-9);
        }
        // Sharded training still learns (10 classes, random = 0.1).
        assert!(
            report.accuracy_history[0] > 0.5,
            "accuracy {} too low",
            report.accuracy_history[0]
        );

        // Every replica audits the streamed chain clean.
        let params = p.contract().params().clone();
        let audit = crate::audit::replay_chain(
            p.engine().store_of(0).unwrap(),
            params,
            p.test_set().clone(),
        )
        .unwrap();
        assert!(audit.clean, "per-cohort bundles must replay exactly");
    }

    #[test]
    fn sharded_runs_are_deterministic() {
        let run = || {
            let mut p = FlProtocol::new(sharded()).unwrap();
            let report = p.run().unwrap();
            let tip = p.engine().store_of(0).unwrap().tip_digest();
            (report.per_owner_sv, tip)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn sharded_dropout_round_recovers_and_audits() {
        // Owner 1 drops in round 0 of a sharded run: 2 cohort blocks,
        // then the recovery block closes the round; the chain audits.
        let mut config = sharded();
        config.dropout_schedule = vec![(0, vec![1])];
        let mut p = FlProtocol::new(config).unwrap();
        let report = p.run().unwrap();
        // 1 key block + 2 cohort blocks + 1 recovery block.
        assert_eq!(report.blocks, 4);
        let record = &report.round_records[0];
        assert_eq!(record.dropped, vec![1]);
        assert_eq!(record.per_owner_sv[1], 0.0);
        assert_eq!(record.recovery.len(), 1);
        let dropped_cohort = record
            .cohorts
            .iter()
            .position(|c| c.dropped.contains(&1))
            .expect("owner 1 belongs to a cohort");
        assert!(record.cohorts[dropped_cohort].survivors.len() < 4);

        let params = p.contract().params().clone();
        let audit = crate::audit::replay_chain(
            p.engine().store_of(0).unwrap(),
            params,
            p.test_set().clone(),
        )
        .unwrap();
        assert!(audit.clean, "sharded recovery must replay exactly");
    }

    #[test]
    fn miner_committee_bounds_consensus_fanout() {
        // A 3-member committee mines for 8 owners: blocks carry committee
        // votes only, while all 8 owners keep training and earning.
        let mut config = sharded();
        config.miner_committee = 3;
        let mut p = FlProtocol::new(config).unwrap();
        assert_eq!(p.engine().miner_count(), 3);
        let report = p.run().unwrap();
        assert_eq!(report.blocks, 3);
        assert_eq!(report.per_owner_sv.len(), 8);
        for commit in &report.commits {
            assert_eq!(commit.votes_total, 3, "only the committee votes");
        }
        let paid = report.per_owner_sv.iter().filter(|v| v.abs() > 0.0).count();
        assert!(paid > 3, "non-miners still earn contributions");
    }

    #[test]
    fn escrow_is_skipped_without_a_dropout_schedule() {
        // No scheduled dropouts → no Shamir shares and a keys-only setup
        // block, halving setup traffic at scale.
        let p = FlProtocol::new(quick()).unwrap();
        assert!(p.escrows.is_empty());
        let mut p = p;
        let report = p.run().unwrap();
        assert_eq!(report.blocks, 2);
        // The setup block carries n key transactions, no escrows.
        let store = p.engine().store_of(0).unwrap();
        let setup = store.block_at(0).unwrap();
        assert_eq!(setup.txs.len(), 4, "keys only, no escrow txs");
    }
}
