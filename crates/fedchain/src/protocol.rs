//! End-to-end protocol orchestration.
//!
//! [`FlProtocol`] wires the whole paper together: it builds the world
//! (dataset → split → shards → quality noise), instantiates the data
//! owners and the consensus engine (every owner is also a miner,
//! Sect. III), and drives the rounds:
//!
//! * **block 0** — every owner advertises its DH public key *and*
//!   commits its key-escrow share commitments (the Bonawitz dropout
//!   extension: each owner Shamir-shares its DH private key across the
//!   cohort; the shares travel off-chain, their commitments live
//!   on-chain);
//! * **round blocks** — the surviving owners' masked updates for round
//!   `r` plus the `EvaluateRound` call. With a complete cohort that is
//!   one block; when the round's dropout schedule
//!   ([`FlConfig::dropout_schedule`]) withholds owners, the same
//!   `EvaluateRound` instead opens the contract's recovery phase and a
//!   **second block** carries the survivors' recovery shares plus the
//!   closing `EvaluateRound` — the full dropout lifecycle is on-chain,
//!   two state roots per churned round.
//!
//! Each block's transactions flow through the batched mempool pipeline:
//! staged with per-sender nonces, admitted in one
//! [`Mempool::submit_batch`] pass, drained as a sealed
//! [`fl_chain::tx::TxBundle`], and committed via
//! [`ConsensusEngine::commit_bundle`]. If consensus fails, the bundle is
//! [`Mempool::release`]d so the owners' nonce counters roll back instead
//! of wedging every later submission behind a permanent gap.
//!
//! After `R` rounds the contract holds each owner's cumulative
//! contribution `v_i = Σ_r v_i^r` (dropped owners earn exactly zero for
//! their missed rounds) and the final global model `W_G`.

use std::collections::BTreeMap;
use std::path::PathBuf;

use fl_chain::consensus::engine::{
    CommitReport, ConsensusEngine, EngineConfig, EngineError, MinerBehavior,
};
use fl_chain::consensus::leader::LeaderSchedule;
use fl_chain::durability::{DurabilityConfig, DurabilityError, DurableStore, RecoveryReport};
use fl_chain::gas::Gas;
use fl_chain::hash::Hash32;
use fl_chain::mempool::Mempool;
use fl_chain::tx::{AccountId, Transaction};
use fl_crypto::shamir::{Shamir, Share};
use fl_crypto::ChaChaPrg;
use fl_ml::dataset::Dataset;
use numeric::{par, U256};
use shapley::group::{grouping, permutation};

use crate::adversary::AdversaryKind;
use crate::config::{ConfigError, FlConfig};
use crate::contract_fl::{
    sharded_round_groups, share_commitment, FlCall, FlContract, FlParams, RoundRecord,
};
use crate::owner::DataOwner;
use crate::world::World;

/// Errors from building or running the protocol.
#[derive(Debug)]
pub enum ProtocolError {
    /// Invalid configuration.
    Config(ConfigError),
    /// Consensus failed (e.g. Byzantine majority).
    Consensus(EngineError),
    /// Secure aggregation failed (should not happen with valid config).
    SecureAgg(fl_crypto::secure_agg::SecureAggError),
    /// Dropout recovery failed (bad shares or a key mismatch).
    Dropout(fl_crypto::dropout::DropoutError),
    /// The mempool rejected part of a staged batch (internal invariant
    /// violation: the driver stages contiguous nonces and sizes the pool
    /// for the round, so this signals a bug — never commit a truncated
    /// round block silently).
    Admission(fl_chain::mempool::MempoolError),
    /// The attached durable store failed (log I/O, corrupt directory, or
    /// an injected crash). The in-memory run is intact; persistence is
    /// not.
    Durability(DurabilityError),
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Config(e) => write!(f, "configuration: {e}"),
            Self::Consensus(e) => write!(f, "consensus: {e}"),
            Self::SecureAgg(e) => write!(f, "secure aggregation: {e}"),
            Self::Dropout(e) => write!(f, "dropout recovery: {e}"),
            Self::Admission(e) => write!(f, "batch admission: {e}"),
            Self::Durability(e) => write!(f, "durable store: {e}"),
        }
    }
}

impl std::error::Error for ProtocolError {}

impl From<ConfigError> for ProtocolError {
    fn from(e: ConfigError) -> Self {
        Self::Config(e)
    }
}

impl From<EngineError> for ProtocolError {
    fn from(e: EngineError) -> Self {
        Self::Consensus(e)
    }
}

impl From<fl_crypto::secure_agg::SecureAggError> for ProtocolError {
    fn from(e: fl_crypto::secure_agg::SecureAggError) -> Self {
        Self::SecureAgg(e)
    }
}

impl From<fl_crypto::dropout::DropoutError> for ProtocolError {
    fn from(e: fl_crypto::dropout::DropoutError) -> Self {
        Self::Dropout(e)
    }
}

impl From<DurabilityError> for ProtocolError {
    fn from(e: DurabilityError) -> Self {
        Self::Durability(e)
    }
}

/// Summary of a full protocol run.
#[derive(Debug, Clone)]
pub struct FlRunReport {
    /// Cumulative Shapley value per owner (indexed by owner position).
    pub per_owner_sv: Vec<f64>,
    /// Global-model test accuracy after each round.
    pub accuracy_history: Vec<f64>,
    /// Per-round evaluation records (the on-chain audit trail).
    pub round_records: Vec<RoundRecord>,
    /// Blocks committed.
    pub blocks: u64,
    /// Failed leader views (fraud attempts rejected).
    pub failed_views: u64,
    /// Total gas burned.
    pub total_gas: Gas,
    /// Commit reports per block, for deeper inspection.
    pub commits: Vec<CommitReport>,
}

/// The protocol driver.
pub struct FlProtocol {
    config: FlConfig,
    owners: Vec<DataOwner>,
    engine: ConsensusEngine<FlContract>,
    test_set: Dataset,
    pool: Mempool<FlCall>,
    /// Off-chain escrow shares: `escrows[i][j]` is the Shamir share of
    /// owner `i`'s DH private key held by owner `j` (its commitment is
    /// on-chain). In deployment each owner holds only its own column;
    /// the driver plays every owner, so it holds the whole matrix.
    escrows: Vec<Vec<Share>>,
    /// Optional on-disk tail of the honest replica's chain (see
    /// [`FlProtocol::persist_to`]); `None` keeps the run memory-only.
    durable: Option<DurableStore<FlCall>>,
}

impl FlProtocol {
    /// Builds the world with every miner honest.
    pub fn new(config: FlConfig) -> Result<Self, ProtocolError> {
        Self::with_behaviors(config, &BTreeMap::new())
    }

    /// Builds the world with specified miner behaviours (for fraud
    /// experiments).
    pub fn with_behaviors(
        config: FlConfig,
        behaviors: &BTreeMap<AccountId, MinerBehavior>,
    ) -> Result<Self, ProtocolError> {
        // World generation: dataset → 8:2 split → owner shards → noise.
        let world = World::generate(&config)?;

        let owner_ids: Vec<AccountId> = (0..config.num_owners as u32).collect();
        let owners: Vec<DataOwner> = owner_ids
            .iter()
            .zip(world.shards)
            .map(|(&id, shard)| {
                DataOwner::new(
                    id,
                    shard,
                    config.train,
                    config.frac_bits,
                    config.sub_seed("dh-keys"),
                )
            })
            .collect();

        // Key escrow (setup stage of the dropout extension): every owner
        // Shamir-shares its DH private key across the cohort, seeded
        // from the world seed so every rebuild derives identical shares.
        // With no scheduled dropouts the O(n²) share computation (and
        // the n escrow transactions) is pure overhead, so it is skipped
        // — at 10³+ owners this dominates setup cost.
        let n = config.num_owners;
        let shamir = Shamir::default();
        let threshold = config.escrow_threshold();
        let escrow_seed = config.sub_seed("key-escrow");
        let escrows: Vec<Vec<Share>> = if config.dropout_schedule.is_empty() {
            Vec::new()
        } else {
            owners
                .iter()
                .enumerate()
                .map(|(i, owner)| {
                    let mut seed_bytes = [0u8; 32];
                    seed_bytes[..8].copy_from_slice(&escrow_seed.to_le_bytes());
                    seed_bytes[8..16].copy_from_slice(&(i as u64).to_le_bytes());
                    let mut prg = ChaChaPrg::from_seed(&seed_bytes);
                    owner.escrow_key_shares(&shamir, threshold, n, &mut prg)
                })
                .collect::<Result<_, _>>()?
        };

        let params = FlParams {
            owners: owner_ids.clone(),
            num_groups: config.num_groups,
            sv_method: config.sv_method,
            permutation_seed: config.permutation_seed,
            total_rounds: config.rounds,
            model_dim: (config.data.features + 1) * config.data.classes,
            num_features: config.data.features,
            num_classes: config.data.classes,
            frac_bits: config.frac_bits,
            escrow_threshold: threshold,
            num_cohorts: config.num_cohorts,
        };
        let contract = FlContract::genesis(params, world.test.clone());
        // Miner committee: by default every owner mines (the paper's
        // consortium setting); at scale a prefix committee keeps the
        // per-block re-execution fan-out constant while owners stay
        // first-class on the data side.
        let miner_ids: Vec<AccountId> = if config.miner_committee > 0 {
            owner_ids
                .iter()
                .copied()
                .take(config.miner_committee)
                .collect()
        } else {
            owner_ids
        };
        let schedule = LeaderSchedule::round_robin(miner_ids);
        let engine = ConsensusEngine::new(contract, schedule, behaviors, EngineConfig::default())?;

        // Capacity: sized for the largest block any validated schedule
        // can assemble — the setup block (2n: keys + escrows), a round
        // block (n + 1), or a recovery block (dropped × threshold + 1,
        // which dominates as soon as several owners drop at once) — with
        // a few blocks of headroom.
        let max_dropped = config
            .dropout_schedule
            .iter()
            .map(|(r, _)| config.dropped_in_round(*r).len())
            .max()
            .unwrap_or(0);
        let max_block_txs = (2 * n).max(n + 1).max(max_dropped * threshold + 1);
        let pool = Mempool::new(max_block_txs * 8);

        Ok(Self {
            config,
            owners,
            engine,
            test_set: world.test,
            pool,
            escrows,
            durable: None,
        })
    }

    /// Attaches a durable store at `dir`: from now on, every committed
    /// block is write-ahead logged to disk (and snapshotted at the
    /// configured cadence) as it lands on the honest replica — blocks
    /// already committed are logged immediately, so attaching mid-run is
    /// sound. Reopening the directory later (or handing it to
    /// [`crate::audit::fast_sync`]) reproduces the chain bit-identically.
    ///
    /// If `dir` already holds a prefix of this run's chain (a resumed
    /// run), logging continues after it; a directory holding a
    /// *different* chain fails with
    /// [`DurabilityError::Rejected`] at the first divergent block.
    pub fn persist_to(
        &mut self,
        dir: impl Into<PathBuf>,
        config: DurabilityConfig,
    ) -> Result<RecoveryReport, ProtocolError> {
        let (durable, report) = DurableStore::open(dir, config)?;
        self.durable = Some(durable);
        self.sync_durable()?;
        Ok(report)
    }

    /// The attached durable store, if any.
    pub fn durable_store(&self) -> Option<&DurableStore<FlCall>> {
        self.durable.as_ref()
    }

    /// Tails the honest replica's chain into the durable store: appends
    /// every block beyond the durable height, then snapshots the
    /// contract state if the cadence says so.
    fn sync_durable(&mut self) -> Result<(), ProtocolError> {
        let Some(durable) = self.durable.as_mut() else {
            return Ok(());
        };
        let live = self
            .engine
            .store_of(0)
            .expect("miner 0 always exists")
            .clone();
        for height in durable.store().height()..live.height() {
            let block = live.block_at(height).expect("height bounded by store");
            durable.append(block)?;
        }
        if durable.snapshot_due() {
            let state = self.engine.honest_contract().snapshot_state();
            durable.write_snapshot(&state)?;
        }
        Ok(())
    }

    /// Installs an adversarial behaviour on one owner (by position).
    ///
    /// # Panics
    ///
    /// Panics if `owner_index` is out of range.
    pub fn set_adversary(&mut self, owner_index: usize, kind: AdversaryKind) {
        self.owners[owner_index].set_adversary(kind);
    }

    /// The configuration this protocol was built with.
    pub fn config(&self) -> &FlConfig {
        &self.config
    }

    /// The held-out test set (the public utility data).
    pub fn test_set(&self) -> &Dataset {
        &self.test_set
    }

    /// The honest replica of the contract.
    pub fn contract(&self) -> &FlContract {
        self.engine.honest_contract()
    }

    /// The consensus engine (chain stores, stats).
    pub fn engine(&self) -> &ConsensusEngine<FlContract> {
        &self.engine
    }

    /// The mempool feeding the engine (nonce accounting, batched
    /// admission).
    pub fn mempool(&self) -> &Mempool<FlCall> {
        &self.pool
    }

    /// Next nonce for `sender`: the pool's expectation plus however many
    /// transactions the batch under construction already stages for it.
    fn staged_nonce(&self, staged: &mut BTreeMap<AccountId, u64>, sender: AccountId) -> u64 {
        let count = staged.entry(sender).or_insert(0);
        let nonce = self.pool.expected_nonce(sender) + *count;
        *count += 1;
        nonce
    }

    /// Admits `txs` in one batched pass, drains *everything pending* as a
    /// sealed bundle, and commits it. The two error paths scope their
    /// rollback differently, on purpose: an admission failure un-admits
    /// only this batch (transactions queued earlier were not part of the
    /// failure and stay pending), while a consensus failure releases the
    /// whole bundle — earlier-queued transactions included, because they
    /// were part of the failed block — so every affected sender's nonce
    /// counter rewinds and resubmission is possible.
    fn commit_batch(
        &mut self,
        txs: Vec<Transaction<FlCall>>,
    ) -> Result<CommitReport, ProtocolError> {
        let admission = self.pool.submit_batch(txs);
        if !admission.all_admitted() {
            // Never commit a truncated round block (e.g. one missing an
            // owner's update or the evaluation trigger): un-admit this
            // batch — transactions queued before it stay pending — and
            // surface the first rejection.
            self.pool.rollback_admitted(admission.admitted);
            let (_, reason) = admission
                .rejected
                .into_iter()
                .next()
                .expect("not all_admitted implies a rejection");
            return Err(ProtocolError::Admission(reason));
        }
        let bundle = self.pool.drain_bundle(usize::MAX);
        match self.engine.commit_bundle(&bundle) {
            Ok(report) => {
                // Persist the freshly committed block(s) before reporting
                // success: a crash after this point replays them from disk.
                self.sync_durable()?;
                Ok(report)
            }
            Err(e) => {
                // Dropping release()'s evicted orphans is deliberate:
                // the rollback makes any still-queued transactions above
                // the rewind point unexecutable, and their senders
                // resubmit from the rewound nonce.
                self.pool.release(bundle.txs());
                Err(e.into())
            }
        }
    }

    /// Admits `txs` in one batched pass and commits them as a *stream*
    /// of consecutive blocks, one per entry of `sizes` — the sharded
    /// round's per-cohort bundles.
    ///
    /// The per-bundle atomic-commit invariant carries over from
    /// [`ConsensusEngine::commit_bundles`]: a consensus failure at
    /// bundle `i` keeps the committed prefix (those blocks reached
    /// quorum on every replica) and releases only the unfinished
    /// suffix back to the pool, rewinding the affected senders'
    /// nonces for resubmission.
    fn commit_stream(
        &mut self,
        txs: Vec<Transaction<FlCall>>,
        sizes: &[usize],
    ) -> Result<Vec<CommitReport>, ProtocolError> {
        debug_assert_eq!(txs.len(), sizes.iter().sum::<usize>());
        let admission = self.pool.submit_batch(txs);
        if !admission.all_admitted() {
            self.pool.rollback_admitted(admission.admitted);
            let (_, reason) = admission
                .rejected
                .into_iter()
                .next()
                .expect("not all_admitted implies a rejection");
            return Err(ProtocolError::Admission(reason));
        }
        let bundles = self.pool.drain_bundles(sizes);
        match self.engine.commit_bundles(&bundles) {
            Ok(reports) => {
                self.sync_durable()?;
                Ok(reports)
            }
            Err((_, failed_at, e)) => {
                let unfinished: Vec<Transaction<FlCall>> = bundles[failed_at..]
                    .iter()
                    .flat_map(|b| b.txs().iter().cloned())
                    .collect();
                self.pool.release(&unfinished);
                // Persist the committed prefix before surfacing the
                // failure, so a crash-restart replays exactly the
                // blocks every replica agrees on.
                self.sync_durable()?;
                Err(e.into())
            }
        }
    }

    /// Commits the setup block (phase 0): every owner advertises its DH
    /// public key and escrows hash commitments to the Shamir shares of
    /// its private key — the on-chain half of the dropout extension.
    fn advertise_keys(&mut self) -> Result<CommitReport, ProtocolError> {
        let n = self.owners.len();
        let mut staged = BTreeMap::new();
        let mut txs: Vec<Transaction<FlCall>> = Vec::with_capacity(2 * n);
        for i in 0..n {
            let id = self.owners[i].id();
            let nonce = self.staged_nonce(&mut staged, id);
            txs.push(Transaction::new(
                id,
                nonce,
                FlCall::AdvertiseKey {
                    public_key: self.owners[i].public_key_bytes(),
                },
            ));
        }
        // No escrows were generated when the run schedules no dropouts;
        // the setup block is then keys-only.
        for (i, shares) in self.escrows.iter().enumerate() {
            let id = self.owners[i].id();
            let commitments: Vec<Hash32> = shares
                .iter()
                .map(|share| share_commitment(id, share))
                .collect();
            let nonce = self.staged_nonce(&mut staged, id);
            txs.push(Transaction::new(
                id,
                nonce,
                FlCall::EscrowKeyShares { commitments },
            ));
        }
        self.commit_batch(txs)
    }

    /// Runs one federated round: local training, masking, submission,
    /// evaluation. A flat full round commits one block; a round whose
    /// dropout schedule withholds owners commits one more — the
    /// recovery block (shares + the closing `EvaluateRound`). A
    /// cohort-sharded round (`num_cohorts > 1`) streams **one block
    /// per cohort** through the mempool instead of one mega-block;
    /// the `EvaluateRound` trigger rides in the last cohort's bundle.
    fn run_round(&mut self, round: u64) -> Result<Vec<CommitReport>, ProtocolError> {
        let n = self.owners.len();
        let k = self.config.num_cohorts;
        let dropped = self.config.dropped_in_round(round);
        let is_dropped = |idx: usize| dropped.binary_search(&idx).is_ok();
        let contract = self.engine.honest_contract();
        let global_model = contract.global_model().to_vec();
        let num_features = contract.params().num_features;
        let num_classes = contract.params().num_classes;

        // Public grouping for the round (identical to the contract's):
        // flat rounds are the one-cohort special case, so the secure-agg
        // directories below are cohort-scoped in both paths.
        let cohort_groups: Vec<Vec<Vec<usize>>> = if k > 1 {
            sharded_round_groups(
                self.config.permutation_seed,
                round,
                n,
                k,
                self.config.num_groups,
            )
            .1
        } else {
            vec![grouping(
                &permutation(self.config.permutation_seed, round, n),
                self.config.num_groups,
            )]
        };
        let groups: Vec<Vec<usize>> = cohort_groups.iter().flatten().cloned().collect();

        // Every owner reads its group's keys from the chain.
        let key_of = |idx: usize, contract: &FlContract| -> U256 {
            let id = idx as u32;
            let bytes = contract
                .public_key_of(id)
                .expect("keys advertised in phase 0");
            U256::from_be_bytes(bytes)
        };
        let mut group_directories: Vec<Vec<(AccountId, U256)>> = Vec::new();
        for group in &groups {
            group_directories.push(
                group
                    .iter()
                    .map(|&idx| (idx as u32, key_of(idx, contract)))
                    .collect(),
            );
        }

        // Pair-secret cache epoch: a digest of the *full* advertised key
        // set (not the per-round group directories, which permute every
        // round). Keys are advertised once in phase 0, so the epoch is
        // stable across rounds and each owner's DH agreements run once
        // per run instead of once per round.
        let all_keys: Vec<(AccountId, U256)> = (0..n)
            .map(|idx| (idx as u32, key_of(idx, contract)))
            .collect();
        let epoch = fl_crypto::key_epoch(&all_keys);

        // Local training + masking, off-chain per owner. In deployment
        // every owner computes on its own machine simultaneously; here the
        // owners fan out across cores. Each owner's update depends only on
        // its own shard, RNG, and the (shared, read-only) global model, so
        // the updates are bit-identical to a sequential pass. Owners
        // scheduled to drop vanish before producing anything visible.
        let mut group_of = vec![0usize; n];
        for (j, group) in groups.iter().enumerate() {
            for &idx in group {
                group_of[idx] = j;
            }
        }
        let masked_updates: Vec<Option<Result<Vec<u64>, fl_crypto::secure_agg::SecureAggError>>> =
            par::par_map_mut(&mut self.owners, 1, |idx, owner| {
                if is_dropped(idx) {
                    return None;
                }
                let update = owner.local_update(&global_model, num_features, num_classes);
                Some(owner.mask_update_cached(
                    &update,
                    round,
                    &group_directories[group_of[idx]],
                    epoch,
                ))
            });

        // Transaction assembly stays sequential: nonces and block order
        // are consensus-visible and must not depend on the schedule.
        // Bundle boundaries follow the cohort plan — one bundle per
        // cohort, in plan order.
        let mut staged = BTreeMap::new();
        let mut txs: Vec<Transaction<FlCall>> = Vec::with_capacity(n + 1);
        let mut bundle_sizes: Vec<usize> = Vec::with_capacity(cohort_groups.len());
        let mut masked_updates: Vec<Option<Vec<u64>>> = masked_updates
            .into_iter()
            .map(|r| r.transpose())
            .collect::<Result<_, _>>()?;
        for cohort in &cohort_groups {
            let before = txs.len();
            for group in cohort {
                for &idx in group {
                    if is_dropped(idx) {
                        continue;
                    }
                    let masked = masked_updates[idx]
                        .take()
                        .expect("each survivor produces exactly one update");
                    let id = self.owners[idx].id();
                    let nonce = self.staged_nonce(&mut staged, id);
                    txs.push(Transaction::new(
                        id,
                        nonce,
                        FlCall::SubmitMaskedUpdate { round, masked },
                    ));
                }
            }
            bundle_sizes.push(txs.len() - before);
        }

        // Anyone alive may trigger evaluation; the first survivor does.
        // With owners missing this transaction opens recovery instead of
        // evaluating — same call, driven by the contract's state machine.
        // It rides in the final cohort's bundle: every earlier cohort's
        // submissions are then already-committed blocks.
        let survivors: Vec<usize> = (0..n).filter(|&idx| !is_dropped(idx)).collect();
        let trigger = self.owners[*survivors.first().expect("validated: survivors exist")].id();
        let nonce = self.staged_nonce(&mut staged, trigger);
        txs.push(Transaction::new(
            trigger,
            nonce,
            FlCall::EvaluateRound { round },
        ));
        *bundle_sizes.last_mut().expect("at least one cohort") += 1;

        let mut commits = if k > 1 {
            self.commit_stream(txs, &bundle_sizes)?
        } else {
            vec![self.commit_batch(txs)?]
        };
        if dropped.is_empty() {
            return Ok(commits);
        }

        // Recovery block: threshold-many survivors reveal their escrowed
        // shares for every dropped owner, then the closing EvaluateRound
        // reconstructs the keys, strips the residual masks, and
        // evaluates on the survivors.
        let threshold = self.config.escrow_threshold();
        let mut staged = BTreeMap::new();
        let mut txs: Vec<Transaction<FlCall>> = Vec::with_capacity(dropped.len() * threshold + 1);
        for &d in &dropped {
            let dropped_id = self.owners[d].id();
            for &provider in survivors.iter().take(threshold) {
                let share = &self.escrows[d][provider];
                let id = self.owners[provider].id();
                let nonce = self.staged_nonce(&mut staged, id);
                txs.push(Transaction::new(
                    id,
                    nonce,
                    FlCall::SubmitRecoveryShare {
                        round,
                        dropped: dropped_id,
                        share_x: share.x,
                        share_y: share.y.to_be_bytes(),
                    },
                ));
            }
        }
        let nonce = self.staged_nonce(&mut staged, trigger);
        txs.push(Transaction::new(
            trigger,
            nonce,
            FlCall::EvaluateRound { round },
        ));
        commits.push(self.commit_batch(txs)?);
        Ok(commits)
    }

    /// Runs the complete protocol: key exchange plus all `R` rounds.
    pub fn run(&mut self) -> Result<FlRunReport, ProtocolError> {
        let mut commits = Vec::new();
        // Phase 0, unless keys are already on-chain (re-advertising
        // would fail the block with `KeyAlreadyAdvertised` and wedge the
        // protocol).
        if self.contract().public_key_of(self.owners[0].id()).is_none() {
            commits.push(self.advertise_keys()?);
        }
        for round in 0..self.config.rounds {
            commits.extend(self.run_round(round)?);
        }

        let contract = self.engine.honest_contract();
        let per_owner_sv: Vec<f64> = contract
            .params()
            .owners
            .iter()
            .map(|id| contract.contributions()[id])
            .collect();
        let accuracy_history: Vec<f64> = contract
            .history()
            .iter()
            .map(|r| r.global_accuracy)
            .collect();
        let round_records = contract.history().to_vec();
        let stats = self.engine.stats();

        Ok(FlRunReport {
            per_owner_sv,
            accuracy_history,
            round_records,
            blocks: stats.blocks,
            failed_views: stats.failed_views,
            total_gas: stats.gas,
            commits,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fl_chain::consensus::engine::MinerBehavior;
    use fl_chain::contract::SmartContract;

    fn quick() -> FlConfig {
        FlConfig::quick_demo()
    }

    #[test]
    fn full_run_commits_and_learns() {
        let mut protocol = FlProtocol::new(quick()).unwrap();
        let report = protocol.run().unwrap();
        // 1 key block + 1 round block.
        assert_eq!(report.blocks, 2);
        assert_eq!(report.per_owner_sv.len(), 4);
        assert_eq!(report.accuracy_history.len(), 1);
        // The global model must beat random guessing (10 classes).
        assert!(
            report.accuracy_history[0] > 0.5,
            "accuracy {} too low",
            report.accuracy_history[0]
        );
        assert_eq!(report.failed_views, 0);
        assert!(report.total_gas > Gas(0));
    }

    #[test]
    fn deterministic_end_to_end() {
        let run = || {
            let mut p = FlProtocol::new(quick()).unwrap();
            p.run().unwrap().per_owner_sv
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn multi_round_accumulates() {
        let mut config = quick();
        config.rounds = 2;
        let mut protocol = FlProtocol::new(config).unwrap();
        let report = protocol.run().unwrap();
        assert_eq!(report.blocks, 3);
        assert_eq!(report.round_records.len(), 2);
        // Cumulative SV = sum of per-round SVs.
        for (i, &total) in report.per_owner_sv.iter().enumerate() {
            let sum: f64 = report.round_records.iter().map(|r| r.per_owner_sv[i]).sum();
            assert!((total - sum).abs() < 1e-12);
        }
    }

    #[test]
    fn fraudulent_leader_rejected_and_result_unchanged() {
        // Owner 0 (first leader) proposes corrupted evaluation results;
        // the honest majority skips it. The contributions must equal the
        // all-honest run exactly.
        let honest = {
            let mut p = FlProtocol::new(quick()).unwrap();
            p.run().unwrap()
        };
        let behaviors: BTreeMap<AccountId, MinerBehavior> =
            [(0u32, MinerBehavior::CorruptProposals)].into();
        let mut p = FlProtocol::with_behaviors(quick(), &behaviors).unwrap();
        let fraud = p.run().unwrap();

        assert!(fraud.failed_views > 0, "fraud must cost views");
        assert_eq!(honest.per_owner_sv, fraud.per_owner_sv);
        assert_eq!(honest.accuracy_history, fraud.accuracy_history);
        // Fraudulent leader never successfully led a block, and its first
        // attempt is on record as rejected.
        for commit in &fraud.commits {
            assert_ne!(commit.leader, 0);
        }
        assert!(fraud.commits[0].rejected_leaders.contains(&0));
    }

    #[test]
    fn byzantine_majority_stalls_the_protocol() {
        let behaviors: BTreeMap<AccountId, MinerBehavior> = [
            (1u32, MinerBehavior::RejectAll),
            (2u32, MinerBehavior::RejectAll),
            (3u32, MinerBehavior::RejectAll),
        ]
        .into();
        let mut p = FlProtocol::with_behaviors(quick(), &behaviors).unwrap();
        match p.run() {
            Err(ProtocolError::Consensus(EngineError::NoQuorum { .. })) => {}
            other => panic!("expected NoQuorum, got {other:?}"),
        }
    }

    #[test]
    fn free_rider_scores_below_honest_owners() {
        let mut config = quick();
        config.train.epochs = 20;
        let mut p = FlProtocol::new(config).unwrap();
        p.set_adversary(3, AdversaryKind::FreeRider);
        let report = p.run().unwrap();
        let honest_min = report.per_owner_sv[..3]
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        // Free rider contributes a zero model; in expectation its group
        // is dragged down. With m=2 and 4 owners it shares a group, so we
        // only assert it does not come out on top.
        let max = report
            .per_owner_sv
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(
            report.per_owner_sv[3] < max || honest_min == report.per_owner_sv[3],
            "free rider must not uniquely lead: {:?}",
            report.per_owner_sv
        );
    }

    #[test]
    fn failed_consensus_releases_nonces_for_resubmission() {
        // Drain → consensus failure → the driver drops the block's txs.
        // Without the release path, every owner's nonce counter stays
        // advanced and all later submissions hit a permanent nonce gap.
        let behaviors: BTreeMap<AccountId, MinerBehavior> = [
            (1u32, MinerBehavior::RejectAll),
            (2u32, MinerBehavior::RejectAll),
            (3u32, MinerBehavior::RejectAll),
        ]
        .into();
        let mut p = FlProtocol::with_behaviors(quick(), &behaviors).unwrap();
        assert!(p.run().is_err(), "Byzantine majority must stall");
        assert!(p.mempool().is_empty(), "dropped txs are not requeued");
        for id in 0..4u32 {
            assert_eq!(
                p.mempool().expected_nonce(id),
                0,
                "owner {id}'s nonce counter must roll back for resubmission"
            );
        }
    }

    #[test]
    fn dropout_round_commits_end_to_end_through_the_mempool() {
        // Owner 1 vanishes after masking in round 0. The round commits
        // in two blocks (survivors + recovery), the record carries the
        // survivor set and recovery evidence, and the dropped owner
        // earns exactly zero.
        let mut config = quick();
        config.dropout_schedule = vec![(0, vec![1])];
        let mut p = FlProtocol::new(config).unwrap();
        let report = p.run().unwrap();
        // Setup block + survivor block + recovery block.
        assert_eq!(report.blocks, 3);
        assert_eq!(report.round_records.len(), 1);
        let record = &report.round_records[0];
        assert_eq!(record.survivors, vec![0, 2, 3]);
        assert_eq!(record.dropped, vec![1]);
        assert_eq!(record.per_owner_sv[1], 0.0);
        assert_eq!(report.per_owner_sv[1], 0.0);
        assert_eq!(record.recovery.len(), 1);
        assert_eq!(record.recovery[0].dropped, 1);
        // Threshold-many survivors vouched the reconstruction.
        assert_eq!(record.recovery[0].providers.len(), 3);
        assert!(record.recovery[0].providers.iter().all(|p| *p != 1));

        // Every replica audits the churned chain clean.
        let params = p.contract().params().clone();
        let store = p.engine().store_of(0).unwrap();
        let audit = crate::audit::replay_chain(store, params, p.test_set().clone()).unwrap();
        assert!(audit.clean, "recovery blocks must replay exactly");
    }

    #[test]
    fn dropout_round_matches_from_scratch_survivor_aggregate() {
        // The recovered global model must equal a from-scratch unmasked
        // aggregate of the survivors: group-wise survivor means, then the
        // mean over surviving groups — bit-path through the same ring.
        let mut config = quick();
        config.dropout_schedule = vec![(0, vec![3])];
        let mut p = FlProtocol::new(config.clone()).unwrap();
        let report = p.run().unwrap();
        let record = &report.round_records[0];

        let world = World::generate(&config).unwrap();
        let updates = world.local_updates(&config);
        let codec = numeric::FixedCodec::new(config.frac_bits);
        let dim = (config.data.features + 1) * config.data.classes;
        let mut surviving_models: Vec<Vec<f64>> = Vec::new();
        for group in &record.groups {
            let alive: Vec<usize> = group.iter().copied().filter(|&i| i != 3).collect();
            if alive.is_empty() {
                continue;
            }
            let mut acc = vec![0u64; dim];
            for &i in &alive {
                numeric::FixedCodec::ring_add_assign(&mut acc, &codec.encode_vec(&updates[i]));
            }
            surviving_models.push(
                acc.iter()
                    .map(|&r| codec.decode_avg(r, alive.len()))
                    .collect(),
            );
        }
        let expect = numeric::linalg::mean_vectors(&surviving_models);
        assert_eq!(
            p.contract().global_model(),
            expect.as_slice(),
            "mask-stripped aggregate must be bit-identical to the plaintext ring sum"
        );
    }

    #[test]
    fn multi_dropout_round_with_ceil_n_over_3_dropped() {
        // The acceptance shape: 9 owners, ⌈9/3⌉ = 3 drop simultaneously
        // (threshold 5 survivors remain), the round completes on-chain.
        let mut config = quick();
        config.num_owners = 9;
        config.num_groups = 3;
        config.dropout_schedule = vec![(0, vec![2, 5, 8])];
        let mut p = FlProtocol::new(config).unwrap();
        let report = p.run().unwrap();
        assert_eq!(report.blocks, 3);
        let record = &report.round_records[0];
        assert_eq!(record.dropped, vec![2, 5, 8]);
        assert_eq!(record.survivors.len(), 6);
        assert_eq!(record.recovery.len(), 3);
        for d in [2usize, 5, 8] {
            assert_eq!(record.per_owner_sv[d], 0.0);
        }
        // Survivors split their groups' value; the ledger reflects it.
        let paid: usize = record.per_owner_sv.iter().filter(|v| v.abs() > 0.0).count();
        assert!(paid > 0, "survivors must be evaluated: {record:?}");
        let params = p.contract().params().clone();
        let audit = crate::audit::replay_chain(
            p.engine().store_of(0).unwrap(),
            params,
            p.test_set().clone(),
        )
        .unwrap();
        assert!(audit.clean);
    }

    #[test]
    fn mempool_is_sized_for_the_recovery_block() {
        // Regression: the recovery block carries dropped × threshold + 1
        // transactions, which outgrows the old (n + 1) × 8 sizing for
        // wide cohorts with many simultaneous dropouts. Any schedule the
        // validator accepts must fit the pool.
        let mut config = quick();
        config.num_owners = 33;
        config.num_groups = 3;
        // Maximum recoverable dropouts: n − threshold = 33 − 17 = 16.
        config.dropout_schedule = vec![(0, (17..33).collect())];
        config.validate().unwrap();
        let threshold = config.escrow_threshold();
        let recovery_block_txs = 16 * threshold + 1;
        let p = FlProtocol::new(config).unwrap();
        assert!(
            p.mempool().capacity() >= recovery_block_txs,
            "pool capacity {} cannot admit a {}-tx recovery block",
            p.mempool().capacity(),
            recovery_block_txs
        );
    }

    #[test]
    fn dropout_rounds_are_deterministic() {
        let run = |seed_offset: u64| {
            let mut config = quick();
            config.world_seed += seed_offset;
            config.dropout_schedule = vec![(0, vec![2])];
            let mut p = FlProtocol::new(config).unwrap();
            let report = p.run().unwrap();
            (report.per_owner_sv, p.contract().global_model().to_vec())
        };
        assert_eq!(run(0), run(0));
        assert_ne!(run(0), run(1), "different world, different models");
    }

    #[test]
    fn dropped_owner_resumes_in_the_next_round() {
        // Dropping is per-round: the owner is back (and paid) in round 1.
        let mut config = quick();
        config.rounds = 2;
        config.dropout_schedule = vec![(0, vec![1])];
        let mut p = FlProtocol::new(config).unwrap();
        let report = p.run().unwrap();
        assert_eq!(report.round_records.len(), 2);
        assert_eq!(report.round_records[0].per_owner_sv[1], 0.0);
        assert_eq!(report.round_records[1].survivors, vec![0, 1, 2, 3]);
        // Cumulative SV for owner 1 comes entirely from round 1.
        assert_eq!(
            report.per_owner_sv[1],
            report.round_records[1].per_owner_sv[1]
        );
    }

    #[test]
    fn on_chain_method_selection_runs_and_audits() {
        // The round config picks the stratified estimator; the protocol
        // commits it, the audit record names it, and an auditor replaying
        // the chain with the true parameters verifies every state root.
        let method = crate::config::SvMethod::Stratified {
            samples_per_stratum: 2,
        };
        let mut config = quick();
        config.sv_method = method;
        let mut p = FlProtocol::new(config).unwrap();
        let report = p.run().unwrap();
        assert_eq!(report.round_records[0].sv_method, method);
        assert!(report.round_records[0].samples > 0);

        let params = p.contract().params().clone();
        assert_eq!(params.sv_method, method);
        let store = p.engine().store_of(0).unwrap();
        let audit = crate::audit::replay_chain(store, params, p.test_set().clone()).unwrap();
        assert!(audit.clean, "sampling evaluation must replay exactly");
    }

    #[test]
    fn chain_is_auditable_after_run() {
        let mut p = FlProtocol::new(quick()).unwrap();
        p.run().unwrap();
        for id in 0..4u32 {
            let store = p.engine().store_of(id).unwrap();
            assert_eq!(store.verify_chain(), Ok(()));
            assert_eq!(store.height(), 2);
        }
        // All replicas ended at the same state root.
        let roots: Vec<_> = (0..4u32)
            .map(|id| p.engine().contract_of(id).unwrap().state_digest())
            .collect();
        assert!(roots.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn invalid_config_rejected() {
        let mut c = quick();
        c.num_owners = 1;
        assert!(matches!(FlProtocol::new(c), Err(ProtocolError::Config(_))));
    }

    /// 8 owners in 2 cohorts of 4, 2 secure-agg groups per cohort.
    fn sharded() -> FlConfig {
        let mut config = quick();
        config.num_owners = 8;
        config.num_groups = 2;
        config.num_cohorts = 2;
        config
    }

    #[test]
    fn sharded_run_streams_one_block_per_cohort() {
        let mut p = FlProtocol::new(sharded()).unwrap();
        let report = p.run().unwrap();
        // 1 key block + 2 cohort blocks (no mega-block).
        assert_eq!(report.blocks, 3);
        assert_eq!(report.per_owner_sv.len(), 8);
        assert_eq!(report.failed_views, 0);

        let record = &report.round_records[0];
        assert_eq!(record.cohorts.len(), 2);
        assert_eq!(record.groups.len(), 4, "2 cohorts × 2 groups");
        let mut all: Vec<usize> = record
            .cohorts
            .iter()
            .flat_map(|c| c.members.clone())
            .collect();
        all.sort_unstable();
        assert_eq!(
            all,
            (0..8).collect::<Vec<_>>(),
            "evidence partitions owners"
        );
        // Each cohort's member payouts compose to its second-level value.
        for ev in &record.cohorts {
            let total: f64 = ev.members.iter().map(|&i| record.per_owner_sv[i]).sum();
            assert!((total - ev.sv).abs() < 1e-9);
        }
        // Sharded training still learns (10 classes, random = 0.1).
        assert!(
            report.accuracy_history[0] > 0.5,
            "accuracy {} too low",
            report.accuracy_history[0]
        );

        // Every replica audits the streamed chain clean.
        let params = p.contract().params().clone();
        let audit = crate::audit::replay_chain(
            p.engine().store_of(0).unwrap(),
            params,
            p.test_set().clone(),
        )
        .unwrap();
        assert!(audit.clean, "per-cohort bundles must replay exactly");
    }

    #[test]
    fn sharded_runs_are_deterministic() {
        let run = || {
            let mut p = FlProtocol::new(sharded()).unwrap();
            let report = p.run().unwrap();
            let tip = p.engine().store_of(0).unwrap().tip_digest();
            (report.per_owner_sv, tip)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn sharded_dropout_round_recovers_and_audits() {
        // Owner 1 drops in round 0 of a sharded run: 2 cohort blocks,
        // then the recovery block closes the round; the chain audits.
        let mut config = sharded();
        config.dropout_schedule = vec![(0, vec![1])];
        let mut p = FlProtocol::new(config).unwrap();
        let report = p.run().unwrap();
        // 1 key block + 2 cohort blocks + 1 recovery block.
        assert_eq!(report.blocks, 4);
        let record = &report.round_records[0];
        assert_eq!(record.dropped, vec![1]);
        assert_eq!(record.per_owner_sv[1], 0.0);
        assert_eq!(record.recovery.len(), 1);
        let dropped_cohort = record
            .cohorts
            .iter()
            .position(|c| c.dropped.contains(&1))
            .expect("owner 1 belongs to a cohort");
        assert!(record.cohorts[dropped_cohort].survivors.len() < 4);

        let params = p.contract().params().clone();
        let audit = crate::audit::replay_chain(
            p.engine().store_of(0).unwrap(),
            params,
            p.test_set().clone(),
        )
        .unwrap();
        assert!(audit.clean, "sharded recovery must replay exactly");
    }

    #[test]
    fn miner_committee_bounds_consensus_fanout() {
        // A 3-member committee mines for 8 owners: blocks carry committee
        // votes only, while all 8 owners keep training and earning.
        let mut config = sharded();
        config.miner_committee = 3;
        let mut p = FlProtocol::new(config).unwrap();
        assert_eq!(p.engine().miner_count(), 3);
        let report = p.run().unwrap();
        assert_eq!(report.blocks, 3);
        assert_eq!(report.per_owner_sv.len(), 8);
        for commit in &report.commits {
            assert_eq!(commit.votes_total, 3, "only the committee votes");
        }
        let paid = report.per_owner_sv.iter().filter(|v| v.abs() > 0.0).count();
        assert!(paid > 3, "non-miners still earn contributions");
    }

    #[test]
    fn escrow_is_skipped_without_a_dropout_schedule() {
        // No scheduled dropouts → no Shamir shares and a keys-only setup
        // block, halving setup traffic at scale.
        let p = FlProtocol::new(quick()).unwrap();
        assert!(p.escrows.is_empty());
        let mut p = p;
        let report = p.run().unwrap();
        assert_eq!(report.blocks, 2);
        // The setup block carries n key transactions, no escrows.
        let store = p.engine().store_of(0).unwrap();
        let setup = store.block_at(0).unwrap();
        assert_eq!(setup.txs.len(), 4, "keys only, no escrow txs");
    }
}
