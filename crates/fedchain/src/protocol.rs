//! End-to-end protocol orchestration.
//!
//! [`FlProtocol`] wires the whole paper together: it builds the world
//! (dataset → split → shards → quality noise), instantiates the data
//! owners and the consensus engine (every owner is also a miner,
//! Sect. III), and drives the rounds:
//!
//! * **block 0** — every owner advertises its DH public key;
//! * **block r+1** — all owners' masked updates for round `r` plus the
//!   `EvaluateRound` call, committed through the full propose /
//!   re-execute / vote cycle.
//!
//! Each block's transactions flow through the batched mempool pipeline:
//! staged with per-sender nonces, admitted in one
//! [`Mempool::submit_batch`] pass, drained as a sealed
//! [`fl_chain::tx::TxBundle`], and committed via
//! [`ConsensusEngine::commit_bundle`]. If consensus fails, the bundle is
//! [`Mempool::release`]d so the owners' nonce counters roll back instead
//! of wedging every later submission behind a permanent gap.
//!
//! After `R` rounds the contract holds each owner's cumulative
//! contribution `v_i = Σ_r v_i^r` and the final global model `W_G`.

use std::collections::BTreeMap;

use fl_chain::consensus::engine::{
    CommitReport, ConsensusEngine, EngineConfig, EngineError, MinerBehavior,
};
use fl_chain::consensus::leader::LeaderSchedule;
use fl_chain::gas::Gas;
use fl_chain::mempool::Mempool;
use fl_chain::tx::{AccountId, Transaction};
use fl_crypto::dh::DhGroup;
use fl_crypto::dropout::{reconstruct_private_key, strip_dropped_masks};
use fl_crypto::shamir::{Shamir, Share};
use fl_crypto::ChaChaPrg;
use fl_ml::dataset::Dataset;
use numeric::{par, FixedCodec, U256};
use shapley::group::{grouping, permutation};

use crate::adversary::AdversaryKind;
use crate::config::{ConfigError, FlConfig};
use crate::contract_fl::{FlCall, FlContract, FlParams, RoundRecord};
use crate::owner::DataOwner;
use crate::world::World;

/// Errors from building or running the protocol.
#[derive(Debug)]
pub enum ProtocolError {
    /// Invalid configuration.
    Config(ConfigError),
    /// Consensus failed (e.g. Byzantine majority).
    Consensus(EngineError),
    /// Secure aggregation failed (should not happen with valid config).
    SecureAgg(fl_crypto::secure_agg::SecureAggError),
    /// Dropout recovery failed (bad shares or a key mismatch).
    Dropout(fl_crypto::dropout::DropoutError),
    /// The mempool rejected part of a staged batch (internal invariant
    /// violation: the driver stages contiguous nonces and sizes the pool
    /// for the round, so this signals a bug — never commit a truncated
    /// round block silently).
    Admission(fl_chain::mempool::MempoolError),
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Config(e) => write!(f, "configuration: {e}"),
            Self::Consensus(e) => write!(f, "consensus: {e}"),
            Self::SecureAgg(e) => write!(f, "secure aggregation: {e}"),
            Self::Dropout(e) => write!(f, "dropout recovery: {e}"),
            Self::Admission(e) => write!(f, "batch admission: {e}"),
        }
    }
}

impl std::error::Error for ProtocolError {}

impl From<ConfigError> for ProtocolError {
    fn from(e: ConfigError) -> Self {
        Self::Config(e)
    }
}

impl From<EngineError> for ProtocolError {
    fn from(e: EngineError) -> Self {
        Self::Consensus(e)
    }
}

impl From<fl_crypto::secure_agg::SecureAggError> for ProtocolError {
    fn from(e: fl_crypto::secure_agg::SecureAggError) -> Self {
        Self::SecureAgg(e)
    }
}

impl From<fl_crypto::dropout::DropoutError> for ProtocolError {
    fn from(e: fl_crypto::dropout::DropoutError) -> Self {
        Self::Dropout(e)
    }
}

/// Summary of a full protocol run.
#[derive(Debug, Clone)]
pub struct FlRunReport {
    /// Cumulative Shapley value per owner (indexed by owner position).
    pub per_owner_sv: Vec<f64>,
    /// Global-model test accuracy after each round.
    pub accuracy_history: Vec<f64>,
    /// Per-round evaluation records (the on-chain audit trail).
    pub round_records: Vec<RoundRecord>,
    /// Blocks committed.
    pub blocks: u64,
    /// Failed leader views (fraud attempts rejected).
    pub failed_views: u64,
    /// Total gas burned.
    pub total_gas: Gas,
    /// Commit reports per block, for deeper inspection.
    pub commits: Vec<CommitReport>,
}

/// Outcome of a dropout-recovery drill ([`FlProtocol::run_dropout_recovery`]).
#[derive(Debug, Clone)]
pub struct DropoutRecovery {
    /// Owner (by position) that dropped after masking.
    pub dropped: usize,
    /// The dropped owner's group this round (owner positions).
    pub group: Vec<usize>,
    /// Survivor mean decoded from the mask-stripped partial aggregate.
    pub recovered_model: Vec<f64>,
    /// Plaintext mean of the survivors' updates (the driver-side check
    /// value — in deployment nobody holds this).
    pub survivor_mean: Vec<f64>,
}

/// The protocol driver.
pub struct FlProtocol {
    config: FlConfig,
    owners: Vec<DataOwner>,
    engine: ConsensusEngine<FlContract>,
    test_set: Dataset,
    pool: Mempool<FlCall>,
}

impl FlProtocol {
    /// Builds the world with every miner honest.
    pub fn new(config: FlConfig) -> Result<Self, ProtocolError> {
        Self::with_behaviors(config, &BTreeMap::new())
    }

    /// Builds the world with specified miner behaviours (for fraud
    /// experiments).
    pub fn with_behaviors(
        config: FlConfig,
        behaviors: &BTreeMap<AccountId, MinerBehavior>,
    ) -> Result<Self, ProtocolError> {
        // World generation: dataset → 8:2 split → owner shards → noise.
        let world = World::generate(&config)?;

        let owner_ids: Vec<AccountId> = (0..config.num_owners as u32).collect();
        let owners: Vec<DataOwner> = owner_ids
            .iter()
            .zip(world.shards)
            .map(|(&id, shard)| {
                DataOwner::new(
                    id,
                    shard,
                    config.train,
                    config.frac_bits,
                    config.sub_seed("dh-keys"),
                )
            })
            .collect();

        let params = FlParams {
            owners: owner_ids.clone(),
            num_groups: config.num_groups,
            sv_method: config.sv_method,
            permutation_seed: config.permutation_seed,
            total_rounds: config.rounds,
            model_dim: (config.data.features + 1) * config.data.classes,
            num_features: config.data.features,
            num_classes: config.data.classes,
            frac_bits: config.frac_bits,
        };
        let contract = FlContract::genesis(params, world.test.clone());
        let schedule = LeaderSchedule::round_robin(owner_ids);
        let engine = ConsensusEngine::new(contract, schedule, behaviors, EngineConfig::default())?;

        // Capacity: a round block is one masked update per owner plus the
        // evaluation trigger; hold a few rounds of headroom.
        let pool = Mempool::new((config.num_owners + 1) * 8);

        Ok(Self {
            config,
            owners,
            engine,
            test_set: world.test,
            pool,
        })
    }

    /// Installs an adversarial behaviour on one owner (by position).
    ///
    /// # Panics
    ///
    /// Panics if `owner_index` is out of range.
    pub fn set_adversary(&mut self, owner_index: usize, kind: AdversaryKind) {
        self.owners[owner_index].set_adversary(kind);
    }

    /// The configuration this protocol was built with.
    pub fn config(&self) -> &FlConfig {
        &self.config
    }

    /// The held-out test set (the public utility data).
    pub fn test_set(&self) -> &Dataset {
        &self.test_set
    }

    /// The honest replica of the contract.
    pub fn contract(&self) -> &FlContract {
        self.engine.honest_contract()
    }

    /// The consensus engine (chain stores, stats).
    pub fn engine(&self) -> &ConsensusEngine<FlContract> {
        &self.engine
    }

    /// The mempool feeding the engine (nonce accounting, batched
    /// admission).
    pub fn mempool(&self) -> &Mempool<FlCall> {
        &self.pool
    }

    /// Next nonce for `sender`: the pool's expectation plus however many
    /// transactions the batch under construction already stages for it.
    fn staged_nonce(&self, staged: &mut BTreeMap<AccountId, u64>, sender: AccountId) -> u64 {
        let count = staged.entry(sender).or_insert(0);
        let nonce = self.pool.expected_nonce(sender) + *count;
        *count += 1;
        nonce
    }

    /// Admits `txs` in one batched pass, drains *everything pending* as a
    /// sealed bundle, and commits it. The two error paths scope their
    /// rollback differently, on purpose: an admission failure un-admits
    /// only this batch (transactions queued earlier were not part of the
    /// failure and stay pending), while a consensus failure releases the
    /// whole bundle — earlier-queued transactions included, because they
    /// were part of the failed block — so every affected sender's nonce
    /// counter rewinds and resubmission is possible.
    fn commit_batch(
        &mut self,
        txs: Vec<Transaction<FlCall>>,
    ) -> Result<CommitReport, ProtocolError> {
        let admission = self.pool.submit_batch(txs);
        if !admission.all_admitted() {
            // Never commit a truncated round block (e.g. one missing an
            // owner's update or the evaluation trigger): un-admit this
            // batch — transactions queued before it stay pending — and
            // surface the first rejection.
            self.pool.rollback_admitted(admission.admitted);
            let (_, reason) = admission
                .rejected
                .into_iter()
                .next()
                .expect("not all_admitted implies a rejection");
            return Err(ProtocolError::Admission(reason));
        }
        let bundle = self.pool.drain_bundle(usize::MAX);
        match self.engine.commit_bundle(&bundle) {
            Ok(report) => Ok(report),
            Err(e) => {
                // Dropping release()'s evicted orphans is deliberate:
                // the rollback makes any still-queued transactions above
                // the rewind point unexecutable, and their senders
                // resubmit from the rewound nonce.
                self.pool.release(bundle.txs());
                Err(e.into())
            }
        }
    }

    /// Commits the key-advertisement block (phase 0).
    fn advertise_keys(&mut self) -> Result<CommitReport, ProtocolError> {
        let mut staged = BTreeMap::new();
        let mut txs: Vec<Transaction<FlCall>> = Vec::with_capacity(self.owners.len());
        for i in 0..self.owners.len() {
            let id = self.owners[i].id();
            let nonce = self.staged_nonce(&mut staged, id);
            txs.push(Transaction::new(
                id,
                nonce,
                FlCall::AdvertiseKey {
                    public_key: self.owners[i].public_key_bytes(),
                },
            ));
        }
        self.commit_batch(txs)
    }

    /// Runs one federated round: local training, masking, submission,
    /// evaluation — committed as a single block.
    fn run_round(&mut self, round: u64) -> Result<CommitReport, ProtocolError> {
        let n = self.owners.len();
        let contract = self.engine.honest_contract();
        let global_model = contract.global_model().to_vec();
        let num_features = contract.params().num_features;
        let num_classes = contract.params().num_classes;

        // Public grouping for the round (identical to the contract's).
        let pi = permutation(self.config.permutation_seed, round, n);
        let groups = grouping(&pi, self.config.num_groups);

        // Every owner reads its group's keys from the chain.
        let key_of = |idx: usize, contract: &FlContract| -> U256 {
            let id = idx as u32;
            let bytes = contract
                .public_key_of(id)
                .expect("keys advertised in phase 0");
            U256::from_be_bytes(bytes)
        };
        let mut group_directories: Vec<Vec<(AccountId, U256)>> = Vec::new();
        for group in &groups {
            group_directories.push(
                group
                    .iter()
                    .map(|&idx| (idx as u32, key_of(idx, contract)))
                    .collect(),
            );
        }

        // Local training + masking, off-chain per owner. In deployment
        // every owner computes on its own machine simultaneously; here the
        // owners fan out across cores. Each owner's update depends only on
        // its own shard, RNG, and the (shared, read-only) global model, so
        // the updates are bit-identical to a sequential pass.
        let mut group_of = vec![0usize; n];
        for (j, group) in groups.iter().enumerate() {
            for &idx in group {
                group_of[idx] = j;
            }
        }
        let masked_updates: Vec<Result<Vec<u64>, fl_crypto::secure_agg::SecureAggError>> =
            par::par_map_mut(&mut self.owners, 1, |idx, owner| {
                let update = owner.local_update(&global_model, num_features, num_classes);
                owner.mask_update(&update, round, &group_directories[group_of[idx]])
            });

        // Transaction assembly stays sequential: nonces and block order
        // are consensus-visible and must not depend on the schedule.
        let mut staged = BTreeMap::new();
        let mut txs: Vec<Transaction<FlCall>> = Vec::with_capacity(n + 1);
        let mut masked_updates: Vec<Option<Vec<u64>>> = masked_updates
            .into_iter()
            .map(|r| r.map(Some))
            .collect::<Result<_, _>>()?;
        for group in &groups {
            for &idx in group {
                let masked = masked_updates[idx]
                    .take()
                    .expect("each owner produces exactly one update");
                let id = self.owners[idx].id();
                let nonce = self.staged_nonce(&mut staged, id);
                txs.push(Transaction::new(
                    id,
                    nonce,
                    FlCall::SubmitMaskedUpdate { round, masked },
                ));
            }
        }

        // Anyone may trigger evaluation; owner 0 does.
        let trigger = self.owners[0].id();
        let nonce = self.staged_nonce(&mut staged, trigger);
        txs.push(Transaction::new(
            trigger,
            nonce,
            FlCall::EvaluateRound { round },
        ));

        self.commit_batch(txs)
    }

    /// Drills the secure-aggregation dropout path end-to-end through the
    /// driver: the owners of `dropped`'s group train and mask for
    /// `round`, the dropped owner's submission never arrives, and the
    /// cohort recovers the survivors' aggregate via the Shamir key
    /// escrow ([`fl_crypto::dropout`]).
    ///
    /// Sequence (the full-Bonawitz extension the paper omits):
    ///
    /// 1. every owner Shamir-shares its DH private key across the cohort
    ///    (threshold = majority), seeded from the world seed;
    /// 2. the group trains and masks exactly as in a live round;
    /// 3. survivors' masked submissions are summed — the dropped owner's
    ///    pairwise masks do **not** cancel;
    /// 4. a majority pools its shares, reconstructs the dropped key, and
    ///    verifies it against the public key advertised **on-chain**;
    /// 5. [`strip_dropped_masks`] removes the residuals, leaving the
    ///    survivors' exact aggregate.
    ///
    /// Nothing is committed for `round` — this is the recovery drill the
    /// ROADMAP's "secure-agg dropout path" item asks for; a
    /// dropout-tolerant `EvaluateRound` remains future work. (Phase 0 is
    /// committed if keys are not yet on-chain, since step 4 verifies
    /// against the advertised key.)
    ///
    /// # Panics
    ///
    /// Panics if `dropped` is out of range or its group this round is a
    /// singleton (an unmasked submission has nothing to recover).
    pub fn run_dropout_recovery(
        &mut self,
        round: u64,
        dropped: usize,
    ) -> Result<DropoutRecovery, ProtocolError> {
        let n = self.owners.len();
        assert!(dropped < n, "owner index {dropped} out of range");
        if self
            .contract()
            .public_key_of(self.owners[dropped].id())
            .is_none()
        {
            self.advertise_keys()?;
        }

        let pi = permutation(self.config.permutation_seed, round, n);
        let groups = grouping(&pi, self.config.num_groups);
        let group = groups
            .iter()
            .find(|g| g.contains(&dropped))
            .cloned()
            .expect("every owner is grouped");
        assert!(
            group.len() >= 2,
            "owner {dropped} is alone in its group this round; nothing is masked"
        );

        // Setup: every owner escrows its DH private key to the cohort.
        let shamir = Shamir::default();
        let threshold = n / 2 + 1;
        let escrow_seed = self.config.sub_seed("key-escrow");
        let escrowed: Vec<Vec<Share>> = self
            .owners
            .iter()
            .enumerate()
            .map(|(i, owner)| {
                let mut seed_bytes = [0u8; 32];
                seed_bytes[..8].copy_from_slice(&escrow_seed.to_le_bytes());
                seed_bytes[8..16].copy_from_slice(&(i as u64).to_le_bytes());
                let mut prg = ChaChaPrg::from_seed(&seed_bytes);
                owner.escrow_key_shares(&shamir, threshold, n, &mut prg)
            })
            .collect::<Result<_, _>>()?;

        // The round, as far as it gets: the group trains and masks
        // against the keys advertised on-chain.
        let contract = self.engine.honest_contract();
        let global_model = contract.global_model().to_vec();
        let num_features = contract.params().num_features;
        let num_classes = contract.params().num_classes;
        let model_dim = contract.params().model_dim;
        let chain_key = |idx: usize, contract: &FlContract| -> U256 {
            let bytes = contract
                .public_key_of(idx as u32)
                .expect("keys advertised above");
            U256::from_be_bytes(bytes)
        };
        let directory: Vec<(AccountId, U256)> = group
            .iter()
            .map(|&idx| (idx as u32, chain_key(idx, contract)))
            .collect();
        let dropped_public = chain_key(dropped, contract);

        let mut partial = vec![0u64; model_dim];
        let mut plain_updates: Vec<Vec<f64>> = Vec::new();
        for &idx in &group {
            let update = self.owners[idx].local_update(&global_model, num_features, num_classes);
            let masked = self.owners[idx].mask_update(&update, round, &directory)?;
            if idx != dropped {
                // Survivors' submissions arrive; the dropped one never
                // does, so its pairwise masks stay uncancelled.
                FixedCodec::ring_add_assign(&mut partial, &masked);
                plain_updates.push(update);
            }
        }

        // Recovery: a majority pools its shares of the dropped key and
        // verifies the reconstruction against the advertised public key.
        let dh = DhGroup::simulation_256();
        let pooled: Vec<Share> = (0..n)
            .filter(|&j| j != dropped)
            .take(threshold)
            .map(|j| escrowed[dropped][j].clone())
            .collect();
        let recovered_key =
            reconstruct_private_key(&shamir, &dh, &pooled, threshold, &dropped_public)?;

        let survivors: Vec<(AccountId, U256)> = directory
            .iter()
            .copied()
            .filter(|(id, _)| *id != dropped as u32)
            .collect();
        strip_dropped_masks(
            &dh,
            &mut partial,
            dropped as u32,
            &recovered_key,
            &survivors,
            round,
        );

        let codec = FixedCodec::new(self.config.frac_bits);
        let survivor_count = group.len() - 1;
        let recovered_model: Vec<f64> = partial
            .iter()
            .map(|&r| codec.decode_avg(r, survivor_count))
            .collect();
        let mut survivor_mean = vec![0.0f64; model_dim];
        for update in &plain_updates {
            for (acc, w) in survivor_mean.iter_mut().zip(update) {
                *acc += w / survivor_count as f64;
            }
        }

        Ok(DropoutRecovery {
            dropped,
            group,
            recovered_model,
            survivor_mean,
        })
    }

    /// Runs the complete protocol: key exchange plus all `R` rounds.
    pub fn run(&mut self) -> Result<FlRunReport, ProtocolError> {
        let mut commits = Vec::new();
        // Phase 0, unless keys are already on-chain (a dropout drill may
        // have committed them): re-advertising would fail the block with
        // `KeyAlreadyAdvertised` and wedge the protocol.
        if self.contract().public_key_of(self.owners[0].id()).is_none() {
            commits.push(self.advertise_keys()?);
        }
        for round in 0..self.config.rounds {
            commits.push(self.run_round(round)?);
        }

        let contract = self.engine.honest_contract();
        let per_owner_sv: Vec<f64> = contract
            .params()
            .owners
            .iter()
            .map(|id| contract.contributions()[id])
            .collect();
        let accuracy_history: Vec<f64> = contract
            .history()
            .iter()
            .map(|r| r.global_accuracy)
            .collect();
        let round_records = contract.history().to_vec();
        let stats = self.engine.stats();

        Ok(FlRunReport {
            per_owner_sv,
            accuracy_history,
            round_records,
            blocks: stats.blocks,
            failed_views: stats.failed_views,
            total_gas: stats.gas,
            commits,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fl_chain::consensus::engine::MinerBehavior;
    use fl_chain::contract::SmartContract;

    fn quick() -> FlConfig {
        FlConfig::quick_demo()
    }

    #[test]
    fn full_run_commits_and_learns() {
        let mut protocol = FlProtocol::new(quick()).unwrap();
        let report = protocol.run().unwrap();
        // 1 key block + 1 round block.
        assert_eq!(report.blocks, 2);
        assert_eq!(report.per_owner_sv.len(), 4);
        assert_eq!(report.accuracy_history.len(), 1);
        // The global model must beat random guessing (10 classes).
        assert!(
            report.accuracy_history[0] > 0.5,
            "accuracy {} too low",
            report.accuracy_history[0]
        );
        assert_eq!(report.failed_views, 0);
        assert!(report.total_gas > Gas(0));
    }

    #[test]
    fn deterministic_end_to_end() {
        let run = || {
            let mut p = FlProtocol::new(quick()).unwrap();
            p.run().unwrap().per_owner_sv
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn multi_round_accumulates() {
        let mut config = quick();
        config.rounds = 2;
        let mut protocol = FlProtocol::new(config).unwrap();
        let report = protocol.run().unwrap();
        assert_eq!(report.blocks, 3);
        assert_eq!(report.round_records.len(), 2);
        // Cumulative SV = sum of per-round SVs.
        for (i, &total) in report.per_owner_sv.iter().enumerate() {
            let sum: f64 = report.round_records.iter().map(|r| r.per_owner_sv[i]).sum();
            assert!((total - sum).abs() < 1e-12);
        }
    }

    #[test]
    fn fraudulent_leader_rejected_and_result_unchanged() {
        // Owner 0 (first leader) proposes corrupted evaluation results;
        // the honest majority skips it. The contributions must equal the
        // all-honest run exactly.
        let honest = {
            let mut p = FlProtocol::new(quick()).unwrap();
            p.run().unwrap()
        };
        let behaviors: BTreeMap<AccountId, MinerBehavior> =
            [(0u32, MinerBehavior::CorruptProposals)].into();
        let mut p = FlProtocol::with_behaviors(quick(), &behaviors).unwrap();
        let fraud = p.run().unwrap();

        assert!(fraud.failed_views > 0, "fraud must cost views");
        assert_eq!(honest.per_owner_sv, fraud.per_owner_sv);
        assert_eq!(honest.accuracy_history, fraud.accuracy_history);
        // Fraudulent leader never successfully led a block, and its first
        // attempt is on record as rejected.
        for commit in &fraud.commits {
            assert_ne!(commit.leader, 0);
        }
        assert!(fraud.commits[0].rejected_leaders.contains(&0));
    }

    #[test]
    fn byzantine_majority_stalls_the_protocol() {
        let behaviors: BTreeMap<AccountId, MinerBehavior> = [
            (1u32, MinerBehavior::RejectAll),
            (2u32, MinerBehavior::RejectAll),
            (3u32, MinerBehavior::RejectAll),
        ]
        .into();
        let mut p = FlProtocol::with_behaviors(quick(), &behaviors).unwrap();
        match p.run() {
            Err(ProtocolError::Consensus(EngineError::NoQuorum { .. })) => {}
            other => panic!("expected NoQuorum, got {other:?}"),
        }
    }

    #[test]
    fn free_rider_scores_below_honest_owners() {
        let mut config = quick();
        config.train.epochs = 20;
        let mut p = FlProtocol::new(config).unwrap();
        p.set_adversary(3, AdversaryKind::FreeRider);
        let report = p.run().unwrap();
        let honest_min = report.per_owner_sv[..3]
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        // Free rider contributes a zero model; in expectation its group
        // is dragged down. With m=2 and 4 owners it shares a group, so we
        // only assert it does not come out on top.
        let max = report
            .per_owner_sv
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(
            report.per_owner_sv[3] < max || honest_min == report.per_owner_sv[3],
            "free rider must not uniquely lead: {:?}",
            report.per_owner_sv
        );
    }

    #[test]
    fn failed_consensus_releases_nonces_for_resubmission() {
        // Drain → consensus failure → the driver drops the block's txs.
        // Without the release path, every owner's nonce counter stays
        // advanced and all later submissions hit a permanent nonce gap.
        let behaviors: BTreeMap<AccountId, MinerBehavior> = [
            (1u32, MinerBehavior::RejectAll),
            (2u32, MinerBehavior::RejectAll),
            (3u32, MinerBehavior::RejectAll),
        ]
        .into();
        let mut p = FlProtocol::with_behaviors(quick(), &behaviors).unwrap();
        assert!(p.run().is_err(), "Byzantine majority must stall");
        assert!(p.mempool().is_empty(), "dropped txs are not requeued");
        for id in 0..4u32 {
            assert_eq!(
                p.mempool().expected_nonce(id),
                0,
                "owner {id}'s nonce counter must roll back for resubmission"
            );
        }
    }

    #[test]
    fn dropout_recovery_through_protocol_driver() {
        // One owner vanishes after masking; Shamir recovery of its DH key
        // (verified against the key advertised on-chain) strips the
        // residual masks and yields the survivors' exact aggregate.
        let mut p = FlProtocol::new(quick()).unwrap();
        let drill = p.run_dropout_recovery(0, 1).unwrap();
        assert_eq!(drill.dropped, 1);
        assert!(drill.group.contains(&1));
        assert!(drill.group.len() >= 2);
        assert_eq!(drill.recovered_model.len(), drill.survivor_mean.len());
        for (d, (got, want)) in drill
            .recovered_model
            .iter()
            .zip(&drill.survivor_mean)
            .enumerate()
        {
            assert!(
                (got - want).abs() < 1e-6,
                "dim {d}: recovered {got}, survivors' mean {want}"
            );
        }
        // The drill must not advance the round: nothing was evaluated.
        assert_eq!(p.contract().current_round(), 0);
        assert!(p.contract().history().is_empty());
    }

    #[test]
    fn run_succeeds_after_a_dropout_drill() {
        // Regression: the drill commits the key block; a subsequent
        // run() must not re-advertise (KeyAlreadyAdvertised would fail
        // every block and wedge the protocol permanently).
        let mut p = FlProtocol::new(quick()).unwrap();
        p.run_dropout_recovery(0, 1).unwrap();
        let report = p.run().unwrap();
        // Keys block was committed by the drill; run() adds the rounds.
        assert_eq!(report.blocks, 2);
        assert_eq!(report.round_records.len(), 1);

        // The learned outcome matches a drill-free run exactly: the
        // drill is observation, not interference.
        let baseline = FlProtocol::new(quick()).unwrap().run().unwrap();
        assert_eq!(report.per_owner_sv, baseline.per_owner_sv);
        assert_eq!(report.accuracy_history, baseline.accuracy_history);
    }

    #[test]
    fn dropout_recovery_is_deterministic() {
        let drill = |seed_offset: u64| {
            let mut config = quick();
            config.world_seed += seed_offset;
            let mut p = FlProtocol::new(config).unwrap();
            p.run_dropout_recovery(0, 2).unwrap().recovered_model
        };
        assert_eq!(drill(0), drill(0));
        assert_ne!(drill(0), drill(1), "different world, different models");
    }

    #[test]
    fn on_chain_method_selection_runs_and_audits() {
        // The round config picks the stratified estimator; the protocol
        // commits it, the audit record names it, and an auditor replaying
        // the chain with the true parameters verifies every state root.
        let method = crate::config::SvMethod::Stratified {
            samples_per_stratum: 2,
        };
        let mut config = quick();
        config.sv_method = method;
        let mut p = FlProtocol::new(config).unwrap();
        let report = p.run().unwrap();
        assert_eq!(report.round_records[0].sv_method, method);
        assert!(report.round_records[0].samples > 0);

        let params = p.contract().params().clone();
        assert_eq!(params.sv_method, method);
        let store = p.engine().store_of(0).unwrap();
        let audit = crate::audit::replay_chain(store, params, p.test_set().clone()).unwrap();
        assert!(audit.clean, "sampling evaluation must replay exactly");
    }

    #[test]
    fn chain_is_auditable_after_run() {
        let mut p = FlProtocol::new(quick()).unwrap();
        p.run().unwrap();
        for id in 0..4u32 {
            let store = p.engine().store_of(id).unwrap();
            assert!(store.verify_chain());
            assert_eq!(store.height(), 2);
        }
        // All replicas ended at the same state root.
        let roots: Vec<_> = (0..4u32)
            .map(|id| p.engine().contract_of(id).unwrap().state_digest())
            .collect();
        assert!(roots.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn invalid_config_rejected() {
        let mut c = quick();
        c.num_owners = 1;
        assert!(matches!(FlProtocol::new(c), Err(ProtocolError::Config(_))));
    }
}
