//! Privacy/resolution analysis of the `m` knob.
//!
//! Paper Sect. IV-B: "In general, given the number of groups m, the
//! average model parameters for each group of size n/m is revealed, in
//! some sense similar to (n/m)-anonymity. Hence, the larger the m, the
//! less private. When m decreases … the resolution decreases."
//!
//! This module quantifies both sides of the trade-off for the Ext-C
//! experiment:
//!
//! * **anonymity** — the sizes of the groups an observer can attribute a
//!   revealed average to;
//! * **leakage** — how close the revealed group average is to an
//!   individual's private update (singleton groups leak exactly);
//! * **resolution** — how many distinct contribution levels the
//!   evaluation can assign (`m` groups ⇒ at most `m` levels).

use numeric::linalg::norm2;
use shapley::group::{grouping, permutation};

/// What an on-chain observer learns about one round.
#[derive(Debug, Clone, PartialEq)]
pub struct PrivacyReport {
    /// Number of groups `m`.
    pub num_groups: usize,
    /// Group sizes (anonymity sets).
    pub anonymity_sets: Vec<usize>,
    /// Smallest anonymity set — the weakest owner's protection.
    pub min_anonymity: usize,
    /// Per-owner leakage: L2 distance between the owner's private update
    /// and the revealed group average (0 = fully revealed).
    pub per_owner_leak_distance: Vec<f64>,
    /// Number of distinct contribution levels the round can assign.
    pub resolution_levels: usize,
}

/// Analyzes the privacy/resolution trade-off of one round's grouping.
///
/// `local_updates[i]` is owner `i`'s private update; `seed`/`round`
/// reproduce the on-chain grouping.
///
/// # Panics
///
/// Panics on empty or ragged input, or `m` out of `1..=n`.
pub fn analyze_round(
    local_updates: &[Vec<f64>],
    num_groups: usize,
    seed: u64,
    round: u64,
) -> PrivacyReport {
    let n = local_updates.len();
    assert!(n > 0, "no owners");
    assert!(
        (1..=n).contains(&num_groups),
        "num_groups must be in 1..={n}"
    );
    let dim = local_updates[0].len();
    assert!(
        local_updates.iter().all(|u| u.len() == dim),
        "ragged updates"
    );

    let pi = permutation(seed, round, n);
    let groups = grouping(&pi, num_groups);

    let mut per_owner_leak = vec![0.0f64; n];
    let mut anonymity_sets = Vec::with_capacity(num_groups);
    for group in &groups {
        anonymity_sets.push(group.len());
        // The revealed value: the group's average update.
        let mut avg = vec![0.0f64; dim];
        for &i in group {
            for (a, &w) in avg.iter_mut().zip(&local_updates[i]) {
                *a += w;
            }
        }
        let inv = 1.0 / group.len() as f64;
        for a in &mut avg {
            *a *= inv;
        }
        for &i in group {
            let diff: Vec<f64> = local_updates[i]
                .iter()
                .zip(&avg)
                .map(|(w, a)| w - a)
                .collect();
            per_owner_leak[i] = norm2(&diff);
        }
    }

    let min_anonymity = anonymity_sets.iter().copied().min().unwrap_or(0);
    PrivacyReport {
        num_groups,
        anonymity_sets,
        min_anonymity,
        per_owner_leak_distance: per_owner_leak,
        resolution_levels: num_groups,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn updates(n: usize, dim: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| (0..dim).map(|d| (i * dim + d) as f64).collect())
            .collect()
    }

    #[test]
    fn singleton_groups_leak_exactly() {
        // m = n: every group average IS the owner's update.
        let u = updates(4, 3);
        let report = analyze_round(&u, 4, 1, 0);
        assert_eq!(report.min_anonymity, 1);
        for leak in &report.per_owner_leak_distance {
            assert_eq!(*leak, 0.0, "singleton group reveals the model exactly");
        }
        assert_eq!(report.resolution_levels, 4);
    }

    #[test]
    fn one_group_maximal_anonymity() {
        let u = updates(6, 2);
        let report = analyze_round(&u, 1, 1, 0);
        assert_eq!(report.anonymity_sets, vec![6]);
        assert_eq!(report.min_anonymity, 6);
        assert_eq!(report.resolution_levels, 1);
        // Distinct updates hide behind the average: leak > 0.
        assert!(report.per_owner_leak_distance.iter().all(|&l| l > 0.0));
    }

    #[test]
    fn anonymity_monotone_in_m() {
        let u = updates(9, 2);
        let mut last_min = usize::MAX;
        for m in 1..=9 {
            let report = analyze_round(&u, m, 7, 0);
            assert!(
                report.min_anonymity <= last_min,
                "anonymity cannot grow with m"
            );
            last_min = report.min_anonymity;
            let total: usize = report.anonymity_sets.iter().sum();
            assert_eq!(total, 9, "groups partition owners");
        }
    }

    #[test]
    fn identical_updates_never_leak() {
        // If everyone's update is the same, the average reveals nothing
        // beyond what each owner already knows.
        let u = vec![vec![1.0, 2.0]; 5];
        let report = analyze_round(&u, 2, 3, 1);
        for leak in &report.per_owner_leak_distance {
            assert!(leak.abs() < 1e-12);
        }
    }

    #[test]
    fn grouping_matches_contract_grouping() {
        // The analysis must reproduce the exact on-chain grouping.
        let u = updates(9, 1);
        let report = analyze_round(&u, 3, 42, 5);
        let expected = grouping(&permutation(42, 5, 9), 3);
        let sizes: Vec<usize> = expected.iter().map(Vec::len).collect();
        assert_eq!(report.anonymity_sets, sizes);
    }

    #[test]
    #[should_panic(expected = "num_groups")]
    fn bad_m_panics() {
        let _ = analyze_round(&updates(3, 1), 4, 0, 0);
    }
}
