//! Protocol configuration — the paper's "off-chain setup stage".
//!
//! Sect. IV-B: "users reach a consensus on FL parameters (e.g., FL
//! algorithm), secure aggregation parameters (e.g., generator g), and
//! contribution evaluation parameters (e.g., permutation seed e, group
//! size m, utility function u) and submit them to the blockchain."

use fl_ml::dataset::SyntheticDigits;
use fl_ml::TrainConfig;

/// Full configuration of one protocol run.
#[derive(Debug, Clone)]
pub struct FlConfig {
    /// Number of data owners `n` (the paper uses 9).
    pub num_owners: usize,
    /// Number of SV groups `m` (resolution/privacy knob, `1..=n`).
    pub num_groups: usize,
    /// Public permutation seed `e`.
    pub permutation_seed: u64,
    /// Total federated rounds `R`.
    pub rounds: u64,
    /// Local-trainer hyper-parameters.
    pub train: TrainConfig,
    /// Dataset generator settings.
    pub data: SyntheticDigits,
    /// Data-quality noise schedule `σ` (owner `i` gets `N(0, σ·i)`).
    pub sigma: f64,
    /// Train fraction of the train/test split (paper: 0.8).
    pub train_fraction: f64,
    /// Master seed: derives the dataset, the split, the shards, the
    /// noise, and every DH keypair. One seed ⇒ one reproducible world.
    pub world_seed: u64,
    /// Fixed-point fractional bits for the secure-aggregation ring.
    pub frac_bits: u32,
}

/// Errors from validating a configuration.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// Fewer than two owners: secure aggregation cannot hide anything.
    TooFewOwners(usize),
    /// Group count outside `1..=num_owners`.
    BadGroupCount {
        /// Requested groups.
        groups: usize,
        /// Owner count.
        owners: usize,
    },
    /// Zero rounds requested.
    NoRounds,
    /// Train fraction outside `(0, 1)`.
    BadTrainFraction(f64),
    /// Negative sigma.
    NegativeSigma(f64),
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::TooFewOwners(n) => write!(f, "need >= 2 owners, got {n}"),
            Self::BadGroupCount { groups, owners } => {
                write!(f, "num_groups {groups} outside 1..={owners}")
            }
            Self::NoRounds => write!(f, "need at least one round"),
            Self::BadTrainFraction(v) => write!(f, "train fraction {v} outside (0,1)"),
            Self::NegativeSigma(v) => write!(f, "sigma {v} must be non-negative"),
        }
    }
}

impl std::error::Error for ConfigError {}

impl FlConfig {
    /// The paper's experimental setting: 9 owners on the digits layout,
    /// 8:2 split. `num_groups` defaults to 3; experiments sweep it.
    pub fn paper_setting() -> Self {
        Self {
            num_owners: 9,
            num_groups: 3,
            permutation_seed: 0x5eed,
            rounds: 1,
            train: TrainConfig {
                learning_rate: 0.5,
                epochs: 30,
                l2: 1e-4,
            },
            data: SyntheticDigits::default(),
            sigma: 0.0,
            train_fraction: 0.8,
            world_seed: 20210424, // arXiv v2 date of the paper
            frac_bits: 24,
        }
    }

    /// A small, fast configuration for doc-tests and examples: 4 owners,
    /// 600 instances, 2 groups, 1 round.
    pub fn quick_demo() -> Self {
        Self {
            num_owners: 4,
            num_groups: 2,
            data: SyntheticDigits::small(),
            train: TrainConfig {
                learning_rate: 0.5,
                epochs: 10,
                l2: 1e-4,
            },
            ..Self::paper_setting()
        }
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.num_owners < 2 {
            return Err(ConfigError::TooFewOwners(self.num_owners));
        }
        if self.num_groups == 0 || self.num_groups > self.num_owners {
            return Err(ConfigError::BadGroupCount {
                groups: self.num_groups,
                owners: self.num_owners,
            });
        }
        if self.rounds == 0 {
            return Err(ConfigError::NoRounds);
        }
        if !(self.train_fraction > 0.0 && self.train_fraction < 1.0) {
            return Err(ConfigError::BadTrainFraction(self.train_fraction));
        }
        if self.sigma < 0.0 {
            return Err(ConfigError::NegativeSigma(self.sigma));
        }
        Ok(())
    }

    /// Derived sub-seed for a named purpose, so the world seed fans out
    /// into independent streams.
    pub fn sub_seed(&self, purpose: &str) -> u64 {
        let mut acc: u64 = self.world_seed;
        for b in purpose.bytes() {
            acc = acc.wrapping_mul(0x100_0000_01b3).wrapping_add(b as u64);
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_setting_is_valid_and_matches_paper() {
        let c = FlConfig::paper_setting();
        c.validate().unwrap();
        assert_eq!(c.num_owners, 9);
        assert_eq!(c.data.instances, 5620);
        assert!((c.train_fraction - 0.8).abs() < 1e-12);
    }

    #[test]
    fn quick_demo_is_valid() {
        FlConfig::quick_demo().validate().unwrap();
    }

    #[test]
    fn validation_catches_each_field() {
        let base = FlConfig::quick_demo;
        let mut c = base();
        c.num_owners = 1;
        assert_eq!(c.validate(), Err(ConfigError::TooFewOwners(1)));

        let mut c = base();
        c.num_groups = 0;
        assert!(matches!(
            c.validate(),
            Err(ConfigError::BadGroupCount { .. })
        ));

        let mut c = base();
        c.num_groups = c.num_owners + 1;
        assert!(matches!(
            c.validate(),
            Err(ConfigError::BadGroupCount { .. })
        ));

        let mut c = base();
        c.rounds = 0;
        assert_eq!(c.validate(), Err(ConfigError::NoRounds));

        let mut c = base();
        c.train_fraction = 1.0;
        assert!(matches!(
            c.validate(),
            Err(ConfigError::BadTrainFraction(_))
        ));

        let mut c = base();
        c.sigma = -0.1;
        assert!(matches!(c.validate(), Err(ConfigError::NegativeSigma(_))));
    }

    #[test]
    fn sub_seeds_differ_by_purpose_and_world() {
        let c = FlConfig::quick_demo();
        assert_ne!(c.sub_seed("data"), c.sub_seed("keys"));
        let mut c2 = FlConfig::quick_demo();
        c2.world_seed += 1;
        assert_ne!(c.sub_seed("data"), c2.sub_seed("data"));
    }

    #[test]
    fn error_messages_render() {
        assert!(ConfigError::TooFewOwners(1).to_string().contains("2"));
        assert!(ConfigError::NoRounds.to_string().contains("round"));
    }
}
