//! Protocol configuration — the paper's "off-chain setup stage".
//!
//! Sect. IV-B: "users reach a consensus on FL parameters (e.g., FL
//! algorithm), secure aggregation parameters (e.g., generator g), and
//! contribution evaluation parameters (e.g., permutation seed e, group
//! size m, utility function u) and submit them to the blockchain."

use fl_chain::codec::{Decode, DecodeError, Encode, Reader};
use fl_ml::dataset::SyntheticDigits;
use fl_ml::TrainConfig;
use shapley::coalition::{MAX_PLAYERS, MAX_SAMPLED_PLAYERS};
use shapley::hierarchy::CohortPlan;

/// The contribution-evaluation method for a protocol run — part of the
/// on-chain agreement, exactly like the permutation seed and group
/// count.
///
/// The paper treats "contribution evaluation parameters" as setup-stage
/// consensus artefacts; making the *method* one of them keeps the
/// evaluation transparent: every miner dispatches through the same
/// [`shapley::estimator::SvEstimator`], and the choice is encoded into
/// the contract's state digest and every round's audit record, so an
/// auditor replaying the chain with a different method diverges
/// immediately.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SvMethod {
    /// Exact SV over the `m` group models — the paper's Algorithm 1
    /// lines 4–6 (`2^m` utility evaluations, `m ≤ 25`).
    #[default]
    GroupExact,
    /// Permutation-sampling Monte-Carlo over the group models
    /// (`m ≤ 64`).
    MonteCarlo {
        /// Permutations sampled per evaluation.
        permutations: u32,
    },
    /// Stratified per-(group, size) subset sampling over the group
    /// models — polynomial cost, `m ≤ 64`; the method that lifts the
    /// exact-enumeration cap.
    Stratified {
        /// Subset draws per stratum.
        samples_per_stratum: u32,
    },
}

impl SvMethod {
    /// Stable method name (matches the estimator layer's naming; shown
    /// in round events and reports).
    pub fn name(&self) -> &'static str {
        match self {
            Self::GroupExact => "group_exact",
            Self::MonteCarlo { .. } => "monte_carlo",
            Self::Stratified { .. } => "stratified",
        }
    }

    /// Largest group count the method supports: the `2^m` enumeration
    /// cap for [`SvMethod::GroupExact`], the coalition-mask width for
    /// the sampling methods.
    pub fn max_groups(&self) -> usize {
        match self {
            Self::GroupExact => MAX_PLAYERS,
            Self::MonteCarlo { .. } | Self::Stratified { .. } => MAX_SAMPLED_PLAYERS,
        }
    }

    /// Validates the method against a group count.
    pub fn validate_groups(&self, num_groups: usize) -> Result<(), ConfigError> {
        if num_groups > self.max_groups() {
            return Err(ConfigError::GroupCountExceedsMethodCap {
                groups: num_groups,
                cap: self.max_groups(),
                method: self.name(),
            });
        }
        match self {
            Self::MonteCarlo { permutations: 0 } => Err(ConfigError::NoSvSamples("monte_carlo")),
            Self::Stratified {
                samples_per_stratum: 0,
            } => Err(ConfigError::NoSvSamples("stratified")),
            _ => Ok(()),
        }
    }
}

impl Encode for SvMethod {
    fn encode_to(&self, out: &mut Vec<u8>) {
        match self {
            Self::GroupExact => out.push(0),
            Self::MonteCarlo { permutations } => {
                out.push(1);
                u64::from(*permutations).encode_to(out);
            }
            Self::Stratified {
                samples_per_stratum,
            } => {
                out.push(2);
                u64::from(*samples_per_stratum).encode_to(out);
            }
        }
    }
}

impl Decode for SvMethod {
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let widened = |v: u64| {
            u32::try_from(v).map_err(|_| DecodeError::BadTag {
                type_name: "SvMethod sample count",
                tag: 0xff,
            })
        };
        match r.take_u8()? {
            0 => Ok(Self::GroupExact),
            1 => Ok(Self::MonteCarlo {
                permutations: widened(u64::decode_from(r)?)?,
            }),
            2 => Ok(Self::Stratified {
                samples_per_stratum: widened(u64::decode_from(r)?)?,
            }),
            tag => Err(DecodeError::BadTag {
                type_name: "SvMethod",
                tag,
            }),
        }
    }
}

/// Full configuration of one protocol run.
#[derive(Debug, Clone)]
pub struct FlConfig {
    /// Number of data owners `n` (the paper uses 9).
    pub num_owners: usize,
    /// Number of SV groups `m` (resolution/privacy knob, `1..=n`).
    pub num_groups: usize,
    /// Contribution-evaluation method the contract dispatches to.
    pub sv_method: SvMethod,
    /// Public permutation seed `e`.
    pub permutation_seed: u64,
    /// Total federated rounds `R`.
    pub rounds: u64,
    /// Local-trainer hyper-parameters.
    pub train: TrainConfig,
    /// Dataset generator settings.
    pub data: SyntheticDigits,
    /// Data-quality noise schedule `σ` (owner `i` gets `N(0, σ·i)`).
    pub sigma: f64,
    /// Train fraction of the train/test split (paper: 0.8).
    pub train_fraction: f64,
    /// Master seed: derives the dataset, the split, the shards, the
    /// noise, and every DH keypair. One seed ⇒ one reproducible world.
    pub world_seed: u64,
    /// Fixed-point fractional bits for the secure-aggregation ring.
    pub frac_bits: u32,
    /// Per-round dropout schedule: `(round, owner positions)` pairs
    /// naming owners that vanish after masking but before submitting in
    /// that round. The protocol driver withholds their transactions and
    /// drives the contract's recovery phase instead; an empty schedule is
    /// the paper's no-churn setting.
    pub dropout_schedule: Vec<(u64, Vec<usize>)>,
    /// Number of cohorts the owners are sharded into each round
    /// (`1` = the flat single-cohort round). With `k > 1` every round
    /// partitions the owners with a deterministic
    /// [`shapley::hierarchy::CohortPlan`], runs secure aggregation and a
    /// cohort-local SV pass per cohort, and composes global
    /// contributions through the second-level cohort game.
    pub num_cohorts: usize,
    /// Size of the miner committee that runs consensus (`0` = every
    /// owner mines, the cross-silo default). At cohort scale a bounded
    /// committee keeps per-commit re-execution cost independent of the
    /// owner count.
    pub miner_committee: usize,
}

/// Errors from validating a configuration.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// Fewer than two owners: secure aggregation cannot hide anything.
    TooFewOwners(usize),
    /// Group count outside `1..=num_owners`.
    BadGroupCount {
        /// Requested groups.
        groups: usize,
        /// Owner count.
        owners: usize,
    },
    /// Zero rounds requested.
    NoRounds,
    /// Train fraction outside `(0, 1)`.
    BadTrainFraction(f64),
    /// Negative sigma.
    NegativeSigma(f64),
    /// The chosen SV method cannot evaluate this many groups.
    GroupCountExceedsMethodCap {
        /// Requested groups.
        groups: usize,
        /// The method's cap.
        cap: usize,
        /// Method name.
        method: &'static str,
    },
    /// A sampling SV method was configured with zero samples.
    NoSvSamples(&'static str),
    /// A dropout schedule entry names a round the protocol never runs.
    DropoutRoundOutOfRange {
        /// Scheduled round.
        round: u64,
        /// Configured round count.
        rounds: u64,
    },
    /// A dropout schedule entry names an owner position out of range.
    DropoutOwnerOutOfRange {
        /// Scheduled owner position.
        owner: usize,
        /// Owner count.
        owners: usize,
    },
    /// A round drops so many owners that the survivors cannot reach the
    /// escrow threshold — the dropped keys would be unrecoverable.
    TooManyDropouts {
        /// The offending round.
        round: u64,
        /// Owners dropped in that round.
        dropped: usize,
        /// Maximum recoverable dropouts (`n - escrow_threshold`).
        max: usize,
    },
    /// Cohort count outside `1..=num_owners`.
    BadCohortCount {
        /// Requested cohorts.
        cohorts: usize,
        /// Owner count.
        owners: usize,
    },
    /// The chosen SV method cannot play the second-level game over this
    /// many cohorts.
    CohortCountExceedsMethodCap {
        /// Requested cohorts.
        cohorts: usize,
        /// The method's cap.
        cap: usize,
        /// Method name.
        method: &'static str,
    },
    /// More within-cohort groups requested than the smallest cohort
    /// holds under the balanced partition.
    GroupCountExceedsCohortSize {
        /// Requested within-cohort groups.
        groups: usize,
        /// Smallest cohort size (`num_owners / num_cohorts`).
        cohort_size: usize,
    },
    /// The dropout schedule wipes out an entire cohort of that round's
    /// plan. The contract tolerates a fully-dropped cohort at runtime
    /// (the second-level game restricts to survivors), but *scheduling*
    /// one is almost always a misconfiguration — the cohort's data
    /// contributes nothing that round — so validation rejects it.
    CohortFullyDropped {
        /// The offending round.
        round: u64,
        /// Cohort index within that round's plan.
        cohort: usize,
        /// The cohort's size.
        size: usize,
    },
    /// Miner committee larger than the owner set.
    BadMinerCommittee {
        /// Requested committee size.
        committee: usize,
        /// Owner count.
        owners: usize,
    },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::TooFewOwners(n) => write!(f, "need >= 2 owners, got {n}"),
            Self::BadGroupCount { groups, owners } => {
                write!(f, "num_groups {groups} outside 1..={owners}")
            }
            Self::NoRounds => write!(f, "need at least one round"),
            Self::BadTrainFraction(v) => write!(f, "train fraction {v} outside (0,1)"),
            Self::NegativeSigma(v) => write!(f, "sigma {v} must be non-negative"),
            Self::GroupCountExceedsMethodCap {
                groups,
                cap,
                method,
            } => {
                write!(
                    f,
                    "SV method {method} supports at most {cap} groups, got {groups}"
                )
            }
            Self::NoSvSamples(method) => {
                write!(f, "SV method {method} needs a non-zero sample count")
            }
            Self::DropoutRoundOutOfRange { round, rounds } => {
                write!(
                    f,
                    "dropout scheduled for round {round}, but only {rounds} rounds run"
                )
            }
            Self::DropoutOwnerOutOfRange { owner, owners } => {
                write!(
                    f,
                    "dropout names owner {owner}, but only {owners} owners exist"
                )
            }
            Self::TooManyDropouts {
                round,
                dropped,
                max,
            } => {
                write!(
                    f,
                    "round {round} drops {dropped} owners; at most {max} are recoverable"
                )
            }
            Self::BadCohortCount { cohorts, owners } => {
                write!(f, "num_cohorts {cohorts} outside 1..={owners}")
            }
            Self::CohortCountExceedsMethodCap {
                cohorts,
                cap,
                method,
            } => {
                write!(
                    f,
                    "SV method {method} supports at most {cap} cohorts in the second-level game, got {cohorts}"
                )
            }
            Self::GroupCountExceedsCohortSize {
                groups,
                cohort_size,
            } => {
                write!(
                    f,
                    "num_groups {groups} exceeds the smallest cohort ({cohort_size} members)"
                )
            }
            Self::CohortFullyDropped {
                round,
                cohort,
                size,
            } => {
                write!(
                    f,
                    "round {round} drops all {size} members of cohort {cohort}"
                )
            }
            Self::BadMinerCommittee { committee, owners } => {
                write!(f, "miner committee {committee} exceeds {owners} owners")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

impl FlConfig {
    /// The paper's experimental setting: 9 owners on the digits layout,
    /// 8:2 split. `num_groups` defaults to 3; experiments sweep it.
    pub fn paper_setting() -> Self {
        Self {
            num_owners: 9,
            num_groups: 3,
            sv_method: SvMethod::GroupExact,
            permutation_seed: 0x5eed,
            rounds: 1,
            train: TrainConfig {
                learning_rate: 0.5,
                epochs: 30,
                l2: 1e-4,
            },
            data: SyntheticDigits::default(),
            sigma: 0.0,
            train_fraction: 0.8,
            world_seed: 20210424, // arXiv v2 date of the paper
            frac_bits: 24,
            dropout_schedule: Vec::new(),
            num_cohorts: 1,
            miner_committee: 0,
        }
    }

    /// A small, fast configuration for doc-tests and examples: 4 owners,
    /// 600 instances, 2 groups, 1 round.
    pub fn quick_demo() -> Self {
        Self {
            num_owners: 4,
            num_groups: 2,
            data: SyntheticDigits::small(),
            train: TrainConfig {
                learning_rate: 0.5,
                epochs: 10,
                l2: 1e-4,
            },
            ..Self::paper_setting()
        }
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.num_owners < 2 {
            return Err(ConfigError::TooFewOwners(self.num_owners));
        }
        if self.num_groups == 0 || self.num_groups > self.num_owners {
            return Err(ConfigError::BadGroupCount {
                groups: self.num_groups,
                owners: self.num_owners,
            });
        }
        if self.rounds == 0 {
            return Err(ConfigError::NoRounds);
        }
        if !(self.train_fraction > 0.0 && self.train_fraction < 1.0) {
            return Err(ConfigError::BadTrainFraction(self.train_fraction));
        }
        if self.sigma < 0.0 {
            return Err(ConfigError::NegativeSigma(self.sigma));
        }
        self.sv_method.validate_groups(self.num_groups)?;
        if self.num_cohorts == 0 || self.num_cohorts > self.num_owners {
            return Err(ConfigError::BadCohortCount {
                cohorts: self.num_cohorts,
                owners: self.num_owners,
            });
        }
        if self.num_cohorts > 1 {
            if self.num_cohorts > self.sv_method.max_groups() {
                return Err(ConfigError::CohortCountExceedsMethodCap {
                    cohorts: self.num_cohorts,
                    cap: self.sv_method.max_groups(),
                    method: self.sv_method.name(),
                });
            }
            let min_cohort = CohortPlan::min_cohort_size(self.num_owners, self.num_cohorts);
            if self.num_groups > min_cohort {
                return Err(ConfigError::GroupCountExceedsCohortSize {
                    groups: self.num_groups,
                    cohort_size: min_cohort,
                });
            }
        }
        if self.miner_committee > self.num_owners {
            return Err(ConfigError::BadMinerCommittee {
                committee: self.miner_committee,
                owners: self.num_owners,
            });
        }
        let max_dropouts = self.num_owners - self.escrow_threshold();
        for (round, owners) in &self.dropout_schedule {
            if *round >= self.rounds {
                return Err(ConfigError::DropoutRoundOutOfRange {
                    round: *round,
                    rounds: self.rounds,
                });
            }
            for &owner in owners {
                if owner >= self.num_owners {
                    return Err(ConfigError::DropoutOwnerOutOfRange {
                        owner,
                        owners: self.num_owners,
                    });
                }
            }
            let dropped = self.dropped_in_round(*round);
            if dropped.len() > max_dropouts {
                return Err(ConfigError::TooManyDropouts {
                    round: *round,
                    dropped: dropped.len(),
                    max: max_dropouts,
                });
            }
            // Cohort interaction: the partition is round-dependent, so
            // check each scheduled round's actual plan. Wiping a whole
            // cohort is rejected here as a planning error; the contract
            // itself still tolerates one at runtime.
            if self.num_cohorts > 1 && !dropped.is_empty() {
                let plan = CohortPlan::new(
                    self.permutation_seed,
                    *round,
                    self.num_owners,
                    self.num_cohorts,
                )
                .expect("cohort count validated above");
                for (c, cohort) in plan.cohorts().iter().enumerate() {
                    if cohort.iter().all(|m| dropped.binary_search(m).is_ok()) {
                        return Err(ConfigError::CohortFullyDropped {
                            round: *round,
                            cohort: c,
                            size: cohort.len(),
                        });
                    }
                }
            }
        }
        Ok(())
    }

    /// Shamir reconstruction threshold for the on-chain key escrow: a
    /// strict majority of the cohort, so any honest-majority survivor set
    /// can recover a dropped owner's key while no minority can.
    pub fn escrow_threshold(&self) -> usize {
        self.num_owners / 2 + 1
    }

    /// Owner positions scheduled to drop in `round`, ascending and
    /// deduplicated across schedule entries.
    pub fn dropped_in_round(&self, round: u64) -> Vec<usize> {
        let mut dropped: Vec<usize> = self
            .dropout_schedule
            .iter()
            .filter(|(r, _)| *r == round)
            .flat_map(|(_, owners)| owners.iter().copied())
            .collect();
        dropped.sort_unstable();
        dropped.dedup();
        dropped
    }

    /// Derived sub-seed for a named purpose, so the world seed fans out
    /// into independent streams.
    pub fn sub_seed(&self, purpose: &str) -> u64 {
        let mut acc: u64 = self.world_seed;
        for b in purpose.bytes() {
            acc = acc.wrapping_mul(0x100_0000_01b3).wrapping_add(b as u64);
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_setting_is_valid_and_matches_paper() {
        let c = FlConfig::paper_setting();
        c.validate().unwrap();
        assert_eq!(c.num_owners, 9);
        assert_eq!(c.data.instances, 5620);
        assert!((c.train_fraction - 0.8).abs() < 1e-12);
    }

    #[test]
    fn quick_demo_is_valid() {
        FlConfig::quick_demo().validate().unwrap();
    }

    #[test]
    fn validation_catches_each_field() {
        let base = FlConfig::quick_demo;
        let mut c = base();
        c.num_owners = 1;
        assert_eq!(c.validate(), Err(ConfigError::TooFewOwners(1)));

        let mut c = base();
        c.num_groups = 0;
        assert!(matches!(
            c.validate(),
            Err(ConfigError::BadGroupCount { .. })
        ));

        let mut c = base();
        c.num_groups = c.num_owners + 1;
        assert!(matches!(
            c.validate(),
            Err(ConfigError::BadGroupCount { .. })
        ));

        let mut c = base();
        c.rounds = 0;
        assert_eq!(c.validate(), Err(ConfigError::NoRounds));

        let mut c = base();
        c.train_fraction = 1.0;
        assert!(matches!(
            c.validate(),
            Err(ConfigError::BadTrainFraction(_))
        ));

        let mut c = base();
        c.sigma = -0.1;
        assert!(matches!(c.validate(), Err(ConfigError::NegativeSigma(_))));
    }

    #[test]
    fn sv_method_caps_and_samples_validated() {
        // GroupExact is capped at the exact-enumeration bound.
        assert_eq!(SvMethod::GroupExact.max_groups(), 25);
        assert!(SvMethod::GroupExact.validate_groups(25).is_ok());
        assert!(matches!(
            SvMethod::GroupExact.validate_groups(26),
            Err(ConfigError::GroupCountExceedsMethodCap { cap: 25, .. })
        ));
        // Sampling methods reach the full mask width.
        let strat = SvMethod::Stratified {
            samples_per_stratum: 8,
        };
        assert!(strat.validate_groups(64).is_ok());
        assert!(strat.validate_groups(65).is_err());
        // Zero samples are rejected.
        assert_eq!(
            SvMethod::MonteCarlo { permutations: 0 }.validate_groups(4),
            Err(ConfigError::NoSvSamples("monte_carlo"))
        );
        assert_eq!(
            SvMethod::Stratified {
                samples_per_stratum: 0
            }
            .validate_groups(4),
            Err(ConfigError::NoSvSamples("stratified"))
        );
    }

    #[test]
    fn sv_method_encoding_distinguishes_variants() {
        let encodings: Vec<Vec<u8>> = [
            SvMethod::GroupExact,
            SvMethod::MonteCarlo { permutations: 100 },
            SvMethod::MonteCarlo { permutations: 101 },
            SvMethod::Stratified {
                samples_per_stratum: 100,
            },
        ]
        .iter()
        .map(|m| {
            let mut buf = Vec::new();
            m.encode_to(&mut buf);
            buf
        })
        .collect();
        for i in 0..encodings.len() {
            for j in (i + 1)..encodings.len() {
                assert_ne!(encodings[i], encodings[j], "{i} vs {j}");
            }
        }
    }

    #[test]
    fn config_validation_includes_sv_method() {
        let mut c = FlConfig::quick_demo();
        c.sv_method = SvMethod::MonteCarlo { permutations: 0 };
        assert_eq!(c.validate(), Err(ConfigError::NoSvSamples("monte_carlo")));
    }

    #[test]
    fn dropout_schedule_validated() {
        // quick_demo: 4 owners, threshold 3 → at most 1 recoverable drop.
        let mut c = FlConfig::quick_demo();
        assert_eq!(c.escrow_threshold(), 3);
        c.dropout_schedule = vec![(0, vec![1])];
        c.validate().unwrap();

        c.dropout_schedule = vec![(5, vec![1])];
        assert_eq!(
            c.validate(),
            Err(ConfigError::DropoutRoundOutOfRange {
                round: 5,
                rounds: 1
            })
        );

        c.dropout_schedule = vec![(0, vec![9])];
        assert_eq!(
            c.validate(),
            Err(ConfigError::DropoutOwnerOutOfRange {
                owner: 9,
                owners: 4
            })
        );

        // Two entries for the same round accumulate (and dedup).
        c.dropout_schedule = vec![(0, vec![1, 1]), (0, vec![2])];
        assert_eq!(c.dropped_in_round(0), vec![1, 2]);
        assert_eq!(
            c.validate(),
            Err(ConfigError::TooManyDropouts {
                round: 0,
                dropped: 2,
                max: 1
            })
        );
    }

    #[test]
    fn cohort_knobs_validated() {
        // quick_demo: 4 owners. Two cohorts of two is a valid sharding.
        let mut c = FlConfig::quick_demo();
        c.num_cohorts = 2;
        c.validate().unwrap();

        let mut c = FlConfig::quick_demo();
        c.num_cohorts = 0;
        assert_eq!(
            c.validate(),
            Err(ConfigError::BadCohortCount {
                cohorts: 0,
                owners: 4
            })
        );

        let mut c = FlConfig::quick_demo();
        c.num_cohorts = 5;
        assert_eq!(
            c.validate(),
            Err(ConfigError::BadCohortCount {
                cohorts: 5,
                owners: 4
            })
        );

        // GroupExact caps the second-level game at 25 cohorts.
        let mut c = FlConfig::quick_demo();
        c.num_owners = 60;
        c.num_groups = 1;
        c.num_cohorts = 26;
        assert_eq!(
            c.validate(),
            Err(ConfigError::CohortCountExceedsMethodCap {
                cohorts: 26,
                cap: 25,
                method: "group_exact"
            })
        );
        // A sampling method lifts the cap to the mask width.
        c.sv_method = SvMethod::Stratified {
            samples_per_stratum: 4,
        };
        c.validate().unwrap();
        c.num_owners = 70;
        c.num_cohorts = 65;
        assert_eq!(
            c.validate(),
            Err(ConfigError::CohortCountExceedsMethodCap {
                cohorts: 65,
                cap: 64,
                method: "stratified"
            })
        );

        // Groups must fit the smallest cohort: 4 owners in 3 cohorts
        // leaves a smallest cohort of 1, so 2 groups cannot fit.
        let mut c = FlConfig::quick_demo();
        c.num_cohorts = 3;
        assert_eq!(
            c.validate(),
            Err(ConfigError::GroupCountExceedsCohortSize {
                groups: 2,
                cohort_size: 1
            })
        );
    }

    #[test]
    fn miner_committee_validated() {
        let mut c = FlConfig::quick_demo();
        c.miner_committee = 3;
        c.validate().unwrap();
        c.miner_committee = 5;
        assert_eq!(
            c.validate(),
            Err(ConfigError::BadMinerCommittee {
                committee: 5,
                owners: 4
            })
        );
    }

    #[test]
    fn cohort_dropout_interaction_validated() {
        // 9 owners, threshold 5 → up to 4 recoverable drops; 3 cohorts of
        // 3, so wiping one cohort (3 drops) passes the global bound but
        // must be rejected as a planning error.
        let mut c = FlConfig::paper_setting();
        c.num_cohorts = 3;
        c.validate().unwrap();
        let plan = CohortPlan::new(c.permutation_seed, 0, 9, 3).unwrap();
        let victim: Vec<usize> = plan.cohorts()[1].clone();
        assert_eq!(victim.len(), 3);
        c.dropout_schedule = vec![(0, victim.clone())];
        assert_eq!(
            c.validate(),
            Err(ConfigError::CohortFullyDropped {
                round: 0,
                cohort: 1,
                size: 3
            })
        );
        // Dropping all but one member of the cohort is recoverable and
        // allowed — the cohort still has a survivor.
        c.dropout_schedule = vec![(0, victim[..2].to_vec())];
        c.validate().unwrap();
        // The flat path is indifferent to cohort structure.
        c.num_cohorts = 1;
        c.dropout_schedule = vec![(0, victim)];
        c.validate().unwrap();
    }

    #[test]
    fn dropped_in_round_is_sorted_and_scoped() {
        let mut c = FlConfig::quick_demo();
        c.rounds = 2;
        c.dropout_schedule = vec![(1, vec![3]), (0, vec![2]), (1, vec![0])];
        assert_eq!(c.dropped_in_round(0), vec![2]);
        assert_eq!(c.dropped_in_round(1), vec![0, 3]);
        assert!(c.dropped_in_round(7).is_empty());
    }

    #[test]
    fn sub_seeds_differ_by_purpose_and_world() {
        let c = FlConfig::quick_demo();
        assert_ne!(c.sub_seed("data"), c.sub_seed("keys"));
        let mut c2 = FlConfig::quick_demo();
        c2.world_seed += 1;
        assert_ne!(c.sub_seed("data"), c2.sub_seed("data"));
    }

    #[test]
    fn error_messages_render() {
        assert!(ConfigError::TooFewOwners(1).to_string().contains("2"));
        assert!(ConfigError::NoRounds.to_string().contains("round"));
    }
}
