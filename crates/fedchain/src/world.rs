//! World generation: the experimental universe of Sect. V-A.
//!
//! One [`FlConfig`] deterministically produces the dataset, the 8:2
//! train/test split, the per-owner shards and the quality-noise schedule.
//! Both the on-chain protocol ([`crate::protocol::FlProtocol`]) and the
//! off-chain analyses (ground truth, figures) build their world through
//! this module, so they see **bit-identical data** — a prerequisite for
//! comparing GroupSV against the native ground truth at all.

use fl_ml::dataset::Dataset;
use fl_ml::logreg::LogisticModel;
use fl_ml::noise::apply_quality_schedule;
use fl_ml::split::{shard_for_owners, train_test_split};

use crate::config::{ConfigError, FlConfig};

/// The generated experimental world.
#[derive(Debug, Clone)]
pub struct World {
    /// Per-owner training shards (after quality noise).
    pub shards: Vec<Dataset>,
    /// Held-out test set (the utility data).
    pub test: Dataset,
}

impl World {
    /// Generates the world for a configuration.
    pub fn generate(config: &FlConfig) -> Result<Self, ConfigError> {
        config.validate()?;
        let dataset = config.data.generate(config.sub_seed("dataset"));
        let split = train_test_split(&dataset, config.train_fraction, config.sub_seed("split"));
        let mut shards =
            shard_for_owners(&split.train, config.num_owners, config.sub_seed("shards"));
        apply_quality_schedule(&mut shards, config.sigma, config.sub_seed("noise"));
        Ok(Self {
            shards,
            test: split.test,
        })
    }

    /// Number of owners.
    pub fn num_owners(&self) -> usize {
        self.shards.len()
    }

    /// Trains each owner's local model from zero weights and returns the
    /// flat updates — the single-round `w_i` of the paper's evaluation.
    pub fn local_updates(&self, config: &FlConfig) -> Vec<Vec<f64>> {
        let zeros = vec![0.0; (config.data.features + 1) * config.data.classes];
        self.local_updates_from(config, &zeros)
    }

    /// Trains each owner's local model *starting from `global`* — one FL
    /// round's worth of local updates (used by multi-round analyses).
    ///
    /// Owners train in parallel on [`numeric::par`]: each update is a
    /// pure function of the owner index (shard → conditioned design →
    /// warm-started batched trainer), and the batched kernels are
    /// themselves bit-identical across thread counts, so the update
    /// vector is too.
    pub fn local_updates_from(&self, config: &FlConfig, global: &[f64]) -> Vec<Vec<f64>> {
        numeric::par::par_map(&self.shards, 1, |_, shard| {
            let design = fl_ml::Design::new(shard);
            LogisticModel::train_from(global, &design, &config.train).to_flat()
        })
    }

    /// Accuracy of the zero model on the test set (the `u(∅)` baseline).
    pub fn empty_utility(&self, config: &FlConfig) -> f64 {
        let zero = LogisticModel::zeros(config.data.features, config.data.classes);
        fl_ml::metrics::model_accuracy(&zero, &self.test)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_deterministic() {
        let config = FlConfig::quick_demo();
        let a = World::generate(&config).unwrap();
        let b = World::generate(&config).unwrap();
        assert_eq!(a.shards, b.shards);
        assert_eq!(a.test, b.test);
    }

    #[test]
    fn owner_count_and_split_sizes() {
        let config = FlConfig::quick_demo();
        let world = World::generate(&config).unwrap();
        assert_eq!(world.num_owners(), config.num_owners);
        let train_total: usize = world.shards.iter().map(Dataset::len).sum();
        assert_eq!(train_total, 480); // 80% of 600
        assert_eq!(world.test.len(), 120);
    }

    #[test]
    fn local_updates_have_model_dim() {
        let config = FlConfig::quick_demo();
        let world = World::generate(&config).unwrap();
        let updates = world.local_updates(&config);
        assert_eq!(updates.len(), config.num_owners);
        let dim = (config.data.features + 1) * config.data.classes;
        assert!(updates.iter().all(|u| u.len() == dim));
    }

    #[test]
    fn empty_utility_is_class_prior() {
        // Zero model predicts class 0 everywhere; accuracy ≈ 1/classes.
        let config = FlConfig::quick_demo();
        let world = World::generate(&config).unwrap();
        let u0 = world.empty_utility(&config);
        assert!((0.0..0.3).contains(&u0), "zero-model accuracy {u0}");
    }

    #[test]
    fn invalid_config_propagates() {
        let mut config = FlConfig::quick_demo();
        config.rounds = 0;
        assert!(World::generate(&config).is_err());
    }
}
