//! Adversarial data owners.
//!
//! The paper's future work (Sect. VI): "we will study the effects of
//! adversarial participants on the Shapley value calculation". These
//! behaviours cover the standard attack surface of FL contribution
//! systems; the Ext-B experiment sweeps them against GroupSV.
//!
//! Note the distinction from *miner* misbehaviour (`fl-chain`'s
//! [`MinerBehavior`](fl_chain::consensus::engine::MinerBehavior)): an
//! adversarial data owner submits a well-formed but *harmful* update,
//! which consensus cannot reject — only the contribution evaluation can
//! (and should) price it at zero or negative SV.

use fl_ml::dataset::Dataset;
use fl_ml::rng::Xoshiro256;

/// Ways a data owner can deviate while staying protocol-conformant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AdversaryKind {
    /// Flips a fraction of training labels to a random other class
    /// (data poisoning).
    LabelFlip {
        /// Fraction of labels to flip, `0..=1`.
        fraction: f64,
    },
    /// Adds Gaussian noise to the trained update (low-effort
    /// obfuscation / stale hardware).
    NoisyUpdate {
        /// Noise standard deviation.
        sigma: f64,
    },
    /// Scales the update (model-poisoning amplification; negative values
    /// invert the gradient direction).
    ScaledUpdate {
        /// Multiplicative factor.
        factor: f64,
    },
    /// Submits an all-zero update while still collecting rewards
    /// (free-rider).
    FreeRider,
}

/// Applies data poisoning to a training shard (before local training).
///
/// Only [`AdversaryKind::LabelFlip`] touches the data; other kinds act on
/// the update via [`corrupt_update`].
pub fn corrupt_shard(kind: &AdversaryKind, shard: &mut Dataset, rng: &mut Xoshiro256) {
    if let AdversaryKind::LabelFlip { fraction } = kind {
        assert!(
            (0.0..=1.0).contains(fraction),
            "flip fraction must be in [0,1], got {fraction}"
        );
        let classes = shard.num_classes;
        assert!(classes >= 2, "label flipping needs >= 2 classes");
        for label in &mut shard.labels {
            if rng.next_f64() < *fraction {
                // Pick a different class uniformly.
                let shift = 1 + rng.next_below(classes as u64 - 1) as usize;
                *label = (*label + shift) % classes;
            }
        }
    }
}

/// Applies update-level corruption (after local training).
pub fn corrupt_update(kind: &AdversaryKind, update: &mut [f64], rng: &mut Xoshiro256) {
    match kind {
        AdversaryKind::LabelFlip { .. } => {} // acted at data level
        AdversaryKind::NoisyUpdate { sigma } => {
            assert!(*sigma >= 0.0, "sigma must be non-negative");
            for w in update.iter_mut() {
                *w += rng.next_gaussian_with(0.0, *sigma);
            }
        }
        AdversaryKind::ScaledUpdate { factor } => {
            for w in update.iter_mut() {
                *w *= factor;
            }
        }
        AdversaryKind::FreeRider => update.fill(0.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fl_ml::dataset::SyntheticDigits;

    fn rng() -> Xoshiro256 {
        Xoshiro256::seed_from_u64(1)
    }

    #[test]
    fn label_flip_changes_requested_fraction() {
        let mut shard = SyntheticDigits::small().generate(1);
        let before = shard.labels.clone();
        corrupt_shard(
            &AdversaryKind::LabelFlip { fraction: 0.5 },
            &mut shard,
            &mut rng(),
        );
        let flipped = shard
            .labels
            .iter()
            .zip(&before)
            .filter(|(a, b)| a != b)
            .count();
        let fraction = flipped as f64 / before.len() as f64;
        assert!(
            (0.4..0.6).contains(&fraction),
            "flip fraction {fraction} outside expectation"
        );
        // Labels stay in range.
        assert!(shard.labels.iter().all(|&l| l < shard.num_classes));
    }

    #[test]
    fn label_flip_zero_fraction_is_identity() {
        let mut shard = SyntheticDigits::small().generate(2);
        let before = shard.labels.clone();
        corrupt_shard(
            &AdversaryKind::LabelFlip { fraction: 0.0 },
            &mut shard,
            &mut rng(),
        );
        assert_eq!(shard.labels, before);
    }

    #[test]
    fn flipped_labels_always_differ() {
        // With fraction 1.0 every label must change.
        let mut shard = SyntheticDigits::small().generate(3);
        let before = shard.labels.clone();
        corrupt_shard(
            &AdversaryKind::LabelFlip { fraction: 1.0 },
            &mut shard,
            &mut rng(),
        );
        for (a, b) in shard.labels.iter().zip(&before) {
            assert_ne!(a, b, "a flipped label must change class");
        }
    }

    #[test]
    fn noisy_update_perturbs() {
        let mut update = vec![1.0; 100];
        corrupt_update(
            &AdversaryKind::NoisyUpdate { sigma: 0.5 },
            &mut update,
            &mut rng(),
        );
        assert!(update.iter().any(|&w| (w - 1.0).abs() > 1e-6));
    }

    #[test]
    fn scaled_update_scales() {
        let mut update = vec![2.0, -4.0];
        corrupt_update(
            &AdversaryKind::ScaledUpdate { factor: -0.5 },
            &mut update,
            &mut rng(),
        );
        assert_eq!(update, vec![-1.0, 2.0]);
    }

    #[test]
    fn free_rider_zeroes() {
        let mut update = vec![1.0, 2.0, 3.0];
        corrupt_update(&AdversaryKind::FreeRider, &mut update, &mut rng());
        assert_eq!(update, vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn data_level_kind_leaves_update_alone() {
        let mut update = vec![1.0, 2.0];
        corrupt_update(
            &AdversaryKind::LabelFlip { fraction: 1.0 },
            &mut update,
            &mut rng(),
        );
        assert_eq!(update, vec![1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "flip fraction")]
    fn bad_fraction_panics() {
        let mut shard = SyntheticDigits::small().generate(1);
        corrupt_shard(
            &AdversaryKind::LabelFlip { fraction: 1.5 },
            &mut shard,
            &mut rng(),
        );
    }
}
