//! # transparent-fl: the paper's framework
//!
//! Reproduction of *"Transparent Contribution Evaluation for Secure
//! Federated Learning on Blockchain"* (Ma, Cao, Xiong — ICDE 2021).
//!
//! Cross-silo horizontal federated learning where the blockchain replaces
//! the semi-trusted server:
//!
//! * data owners train locally and submit **masked** updates (secure
//!   aggregation, `fl-crypto`);
//! * a smart contract ([`contract_fl::FlContract`]) aggregates the
//!   masked updates per group and evaluates contributions with
//!   **GroupSV** (`shapley::group`, the paper's Algorithm 1);
//! * every miner re-executes the contract and accepts only matching
//!   results (`fl-chain`'s consensus engine), making the evaluation
//!   *transparent and verifiable* while the updates stay private.
//!
//! Start with [`protocol::FlProtocol`] — it wires the whole system and
//! runs the paper's training-plus-evaluation workflow end to end:
//!
//! ```
//! use fedchain::config::FlConfig;
//! use fedchain::protocol::FlProtocol;
//!
//! let config = FlConfig::quick_demo();
//! let mut protocol = FlProtocol::new(config).expect("valid config");
//! let report = protocol.run().expect("honest majority commits");
//! assert_eq!(report.per_owner_sv.len(), 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversary;
pub mod audit;
pub mod config;
pub mod contract_fl;
pub mod ground_truth;
pub mod owner;
pub mod privacy;
pub mod protocol;
pub mod rewards;
pub mod world;

pub use config::FlConfig;
pub use contract_fl::{FlCall, FlContract, FlError, FlParams};
pub use protocol::{FlProtocol, FlRunReport};
pub use world::World;
