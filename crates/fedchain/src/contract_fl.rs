//! The federated-learning smart contract.
//!
//! Paper Sect. III: "in our setting, Smart contract builds the FL model
//! and evaluates the contribution." The contract is a deterministic state
//! machine executed identically by every miner:
//!
//! * **AdvertiseKey** — a data owner registers its DH public key (round 0
//!   of secure aggregation).
//! * **EscrowKeyShares** — a data owner commits hash commitments to the
//!   Shamir shares of its DH private key, one per cohort member (the
//!   shares themselves travel off-chain to their holders). The
//!   commitments are bound into the state digest, so the escrow cannot
//!   be rewritten after the fact.
//! * **SubmitMaskedUpdate** — a data owner submits its masked local
//!   weights for the current round. The contract can *never* unmask an
//!   individual submission: masks only cancel in the within-group sum.
//! * **SubmitRecoveryShare** — during recovery, a surviving owner
//!   reveals its escrowed share of a dropped owner's key; the contract
//!   checks it against the escrowed commitment before accepting it.
//! * **EvaluateRound** — drives the round state machine (see
//!   [`FlContract`]): with every submission in it evaluates immediately;
//!   with owners missing it declares them dropped and opens recovery;
//!   called again with ≥ threshold verified shares per dropped owner it
//!   reconstructs the dropped keys, strips the residual masks, and
//!   evaluates the group-model game **restricted to survivors**.
//!
//! Everything the contract decides — including *which* estimator ran,
//! its sampling diagnostics, the survivor set, and the recovery
//! evidence — is emitted as events and captured in the state digest, so
//! a fraudulent leader cannot tamper with the evaluation (or quietly
//! swap the method, or forge the survivor set) without every honest
//! miner's re-execution diverging at the first state root.

use std::collections::{BTreeMap, BTreeSet};

use fl_chain::codec::{Decode, DecodeError, Encode, Reader};
use fl_chain::contract::{ExecutionOutcome, SmartContract, TxContext};
use fl_chain::gas::GasSchedule;
use fl_chain::hash::Hash32;
use fl_chain::tx::AccountId;
use fl_crypto::dh::DhGroup;
use fl_crypto::dropout::{reconstruct_private_key, strip_dropped_set_masks};
use fl_crypto::shamir::{Shamir, Share};
use fl_ml::dataset::Dataset;
use fl_ml::metrics::model_accuracy_design;
use fl_ml::LogisticModel;
use numeric::{FixedCodec, U256};
use shapley::estimator::{Exact, MonteCarlo, Stratified, SvEstimate, SvEstimator};
use shapley::group::{grouping, permutation, GroupModelGame};
use shapley::hierarchy::{cohort_stream, compose, CohortPlan};
use shapley::monte_carlo::McConfig;
use shapley::stratified::StratifiedConfig;
use shapley::utility::{CachedUtility, ModelUtility, RestrictedGame};

use crate::config::SvMethod;

/// Static protocol parameters agreed at the off-chain setup stage.
#[derive(Debug, Clone, PartialEq)]
pub struct FlParams {
    /// Participating data owners (also the miner set).
    pub owners: Vec<AccountId>,
    /// Number of SV groups `m`.
    pub num_groups: usize,
    /// Contribution-evaluation method every miner dispatches to.
    pub sv_method: SvMethod,
    /// Public permutation seed `e`.
    pub permutation_seed: u64,
    /// Total rounds `R`.
    pub total_rounds: u64,
    /// Flat model dimension (`(features+1) × classes`).
    pub model_dim: usize,
    /// Feature count of the model.
    pub num_features: usize,
    /// Class count of the model.
    pub num_classes: usize,
    /// Fixed-point fractional bits of the aggregation ring.
    pub frac_bits: u32,
    /// Shamir threshold of the key escrow: recovery of a dropped owner's
    /// key needs verified shares from this many surviving owners.
    pub escrow_threshold: usize,
    /// Number of cohorts `k` each round is sharded into (1 = the flat
    /// single-cohort round). With `k > 1` every round partitions the
    /// owners by a [`shapley::hierarchy::CohortPlan`], runs the group
    /// game *within* each cohort, and prices the cohorts against each
    /// other in a second-level game over their aggregate models.
    pub num_cohorts: usize,
}

impl Encode for FlParams {
    fn encode_to(&self, out: &mut Vec<u8>) {
        self.owners.encode_to(out);
        self.num_groups.encode_to(out);
        self.sv_method.encode_to(out);
        self.permutation_seed.encode_to(out);
        self.total_rounds.encode_to(out);
        self.model_dim.encode_to(out);
        self.num_features.encode_to(out);
        self.num_classes.encode_to(out);
        (self.frac_bits as u64).encode_to(out);
        self.escrow_threshold.encode_to(out);
        self.num_cohorts.encode_to(out);
    }
}

/// Contract calls.
#[derive(Debug, Clone, PartialEq)]
pub enum FlCall {
    /// Register the sender's DH public key (big-endian bytes).
    AdvertiseKey {
        /// Public key bytes.
        public_key: Vec<u8>,
    },
    /// Submit the sender's masked fixed-point update for `round`.
    SubmitMaskedUpdate {
        /// Target round.
        round: u64,
        /// Masked ring vector of length `model_dim`.
        masked: Vec<u64>,
    },
    /// Drive the round state machine: evaluate `round` if complete, open
    /// recovery if submissions are missing, or finish recovery once
    /// enough shares are in.
    EvaluateRound {
        /// Round to evaluate.
        round: u64,
    },
    /// Commit hash commitments to the Shamir shares of the sender's DH
    /// private key — `commitments[j]` commits the share destined for
    /// owner position `j` (see [`share_commitment`]).
    EscrowKeyShares {
        /// One commitment per cohort member, by owner position.
        commitments: Vec<Hash32>,
    },
    /// Reveal the sender's escrowed share of a dropped owner's key
    /// during the recovery phase of `round`.
    SubmitRecoveryShare {
        /// Round under recovery.
        round: u64,
        /// The dropped owner whose key the share belongs to.
        dropped: AccountId,
        /// Share evaluation point (the sender's owner position + 1).
        share_x: u64,
        /// Share value, big-endian field-element bytes.
        share_y: Vec<u8>,
    },
}

impl Encode for FlCall {
    fn encode_to(&self, out: &mut Vec<u8>) {
        match self {
            FlCall::AdvertiseKey { public_key } => {
                out.push(0);
                public_key.encode_to(out);
            }
            FlCall::SubmitMaskedUpdate { round, masked } => {
                out.push(1);
                round.encode_to(out);
                masked.encode_to(out);
            }
            FlCall::EvaluateRound { round } => {
                out.push(2);
                round.encode_to(out);
            }
            FlCall::EscrowKeyShares { commitments } => {
                out.push(3);
                commitments.encode_to(out);
            }
            FlCall::SubmitRecoveryShare {
                round,
                dropped,
                share_x,
                share_y,
            } => {
                out.push(4);
                round.encode_to(out);
                dropped.encode_to(out);
                share_x.encode_to(out);
                share_y.encode_to(out);
            }
        }
    }
}

impl Decode for FlCall {
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.take_u8()? {
            0 => Ok(FlCall::AdvertiseKey {
                public_key: Vec::decode_from(r)?,
            }),
            1 => Ok(FlCall::SubmitMaskedUpdate {
                round: u64::decode_from(r)?,
                masked: Vec::decode_from(r)?,
            }),
            2 => Ok(FlCall::EvaluateRound {
                round: u64::decode_from(r)?,
            }),
            3 => Ok(FlCall::EscrowKeyShares {
                commitments: Vec::decode_from(r)?,
            }),
            4 => Ok(FlCall::SubmitRecoveryShare {
                round: u64::decode_from(r)?,
                dropped: AccountId::decode_from(r)?,
                share_x: u64::decode_from(r)?,
                share_y: Vec::decode_from(r)?,
            }),
            tag => Err(DecodeError::BadTag {
                type_name: "FlCall",
                tag,
            }),
        }
    }
}

/// Commitment to one escrowed Shamir share, as committed on-chain by
/// [`FlCall::EscrowKeyShares`] and checked when the share is revealed by
/// [`FlCall::SubmitRecoveryShare`]. Domain-separated and bound to the
/// escrowing owner, so a share can never be replayed against a different
/// owner's escrow.
pub fn share_commitment(owner: AccountId, share: &Share) -> Hash32 {
    Hash32::of(
        "transparent-fl/escrow-share",
        &(owner, share.x, share.y.to_be_bytes()),
    )
}

/// Contract-level errors (abort the block proposal).
#[derive(Debug, Clone, PartialEq)]
pub enum FlError {
    /// Sender is not a registered data owner.
    NotAnOwner(AccountId),
    /// Sender advertised a key twice.
    KeyAlreadyAdvertised(AccountId),
    /// An update arrived before all keys were advertised.
    KeysIncomplete {
        /// Keys registered so far.
        have: usize,
        /// Keys required.
        need: usize,
    },
    /// Call targeted the wrong round.
    WrongRound {
        /// Current round of the contract.
        expected: u64,
        /// Round named by the call.
        got: u64,
    },
    /// Sender already submitted this round.
    DuplicateSubmission(AccountId),
    /// Update has the wrong dimension.
    DimMismatch {
        /// Expected length.
        expected: usize,
        /// Received length.
        got: usize,
    },
    /// All `total_rounds` rounds already evaluated.
    ProtocolFinished,
    /// An advertised public key was not a full-width group element.
    BadKeyEncoding {
        /// Required byte length.
        expected: usize,
        /// Received byte length.
        got: usize,
    },
    /// An advertised public key decoded but is not a usable group element
    /// (degenerate — 0, 1, p−1 — or non-canonical `>= p`); accepting it
    /// would let the owner force a predictable pair mask on every peer.
    InvalidKeyElement {
        /// The offending owner.
        owner: AccountId,
        /// Why the DH layer rejected the key.
        reason: String,
    },
    /// A revealed share value was not a full-width field element.
    BadShareEncoding {
        /// Required byte length.
        expected: usize,
        /// Received byte length.
        got: usize,
    },
    /// An owner tried to escrow key shares before advertising its key.
    EscrowWithoutKey(AccountId),
    /// An owner committed its escrow twice.
    EscrowAlreadyCommitted(AccountId),
    /// An escrow did not carry one commitment per cohort member.
    EscrowSizeMismatch {
        /// Cohort size.
        expected: usize,
        /// Commitments received.
        got: usize,
    },
    /// A missing owner never escrowed its key shares, so its masks are
    /// unrecoverable and the round cannot enter recovery.
    EscrowMissing(AccountId),
    /// A submission arrived after the round entered recovery — the
    /// sender was already declared dropped.
    RoundInRecovery(u64),
    /// Too few owners submitted to reach the escrow threshold; the
    /// dropped keys cannot be reconstructed and the round cannot
    /// complete.
    InsufficientSurvivors {
        /// Owners that submitted.
        survivors: usize,
        /// Escrow threshold.
        need: usize,
    },
    /// A recovery share arrived while the round was not in recovery.
    NotRecovering(u64),
    /// A recovery share named an owner that was not declared dropped.
    NotDropped(AccountId),
    /// A recovery share came from an owner that did not submit this
    /// round (only survivors hold liveness to vouch shares).
    NotASurvivor(AccountId),
    /// A recovery share used an evaluation point that does not belong to
    /// its sender.
    BadRecoveryShare {
        /// The sender's canonical evaluation point.
        expected_x: u64,
        /// The point the share claimed.
        got: u64,
    },
    /// A revealed share does not match the escrowed commitment.
    ShareCommitmentMismatch {
        /// The dropped owner whose escrow was checked.
        dropped: AccountId,
        /// The share's provider.
        provider: AccountId,
    },
    /// The same survivor revealed a share for the same dropped owner
    /// twice.
    DuplicateRecoveryShare {
        /// The dropped owner.
        dropped: AccountId,
        /// The share's provider.
        provider: AccountId,
    },
    /// Evaluation was triggered during recovery before every dropped
    /// owner accumulated threshold-many verified shares.
    RecoveryIncomplete {
        /// The dropped owner still short of shares.
        dropped: AccountId,
        /// Verified shares so far.
        have: usize,
        /// Escrow threshold.
        need: usize,
    },
    /// Reconstruction of a dropped owner's key failed (the pooled shares
    /// do not reproduce the advertised public key).
    RecoveryFailed {
        /// The dropped owner.
        owner: AccountId,
        /// Underlying dropout-recovery error.
        reason: String,
    },
}

impl std::fmt::Display for FlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::NotAnOwner(id) => write!(f, "account {id} is not a data owner"),
            Self::KeyAlreadyAdvertised(id) => {
                write!(f, "account {id} already advertised a key")
            }
            Self::KeysIncomplete { have, need } => {
                write!(f, "key exchange incomplete: {have}/{need}")
            }
            Self::WrongRound { expected, got } => {
                write!(f, "wrong round: contract at {expected}, call names {got}")
            }
            Self::DuplicateSubmission(id) => {
                write!(f, "account {id} already submitted this round")
            }
            Self::DimMismatch { expected, got } => {
                write!(f, "update dimension {got} != {expected}")
            }
            Self::ProtocolFinished => write!(f, "all rounds already evaluated"),
            Self::BadKeyEncoding { expected, got } => {
                write!(f, "public key must be {expected} bytes, got {got}")
            }
            Self::InvalidKeyElement { owner, reason } => {
                write!(
                    f,
                    "owner {owner} advertised an invalid public key: {reason}"
                )
            }
            Self::BadShareEncoding { expected, got } => {
                write!(f, "share value must be {expected} bytes, got {got}")
            }
            Self::EscrowWithoutKey(id) => {
                write!(
                    f,
                    "owner {id} must advertise its key before escrowing shares"
                )
            }
            Self::EscrowAlreadyCommitted(id) => {
                write!(f, "owner {id} already committed its escrow")
            }
            Self::EscrowSizeMismatch { expected, got } => {
                write!(f, "escrow carries {got} commitments, cohort has {expected}")
            }
            Self::EscrowMissing(id) => {
                write!(f, "dropped owner {id} never escrowed key shares")
            }
            Self::RoundInRecovery(round) => {
                write!(f, "round {round} is in recovery; submissions are closed")
            }
            Self::InsufficientSurvivors { survivors, need } => {
                write!(
                    f,
                    "{survivors} survivors cannot reach escrow threshold {need}"
                )
            }
            Self::NotRecovering(round) => {
                write!(f, "round {round} is not in recovery")
            }
            Self::NotDropped(id) => write!(f, "owner {id} was not declared dropped"),
            Self::NotASurvivor(id) => {
                write!(
                    f,
                    "owner {id} did not submit this round; shares need a survivor"
                )
            }
            Self::BadRecoveryShare { expected_x, got } => {
                write!(
                    f,
                    "recovery share point {got} != sender's point {expected_x}"
                )
            }
            Self::ShareCommitmentMismatch { dropped, provider } => {
                write!(
                    f,
                    "share from {provider} for dropped {dropped} fails its escrow commitment"
                )
            }
            Self::DuplicateRecoveryShare { dropped, provider } => {
                write!(f, "owner {provider} already revealed a share for {dropped}")
            }
            Self::RecoveryIncomplete {
                dropped,
                have,
                need,
            } => {
                write!(
                    f,
                    "dropped owner {dropped} has {have}/{need} verified shares"
                )
            }
            Self::RecoveryFailed { owner, reason } => {
                write!(f, "key recovery for owner {owner} failed: {reason}")
            }
        }
    }
}

impl std::error::Error for FlError {}

/// Lifecycle phase of the round currently being assembled on-chain.
///
/// Part of the consensus state (encoded into the state digest): every
/// honest replica agrees not only on *what* was evaluated but on *where
/// in the lifecycle* the current round stands.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RoundPhase {
    /// Collecting masked submissions.
    Submitting,
    /// Submissions are closed with owners missing; collecting recovery
    /// shares for the declared dropout set.
    Recovering {
        /// Owners declared dropped, ascending by account id.
        dropped: Vec<AccountId>,
    },
}

impl Encode for RoundPhase {
    fn encode_to(&self, out: &mut Vec<u8>) {
        match self {
            Self::Submitting => out.push(0),
            Self::Recovering { dropped } => {
                out.push(1);
                dropped.encode_to(out);
            }
        }
    }
}

impl Decode for RoundPhase {
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.take_u8()? {
            0 => Ok(Self::Submitting),
            1 => Ok(Self::Recovering {
                dropped: Vec::decode_from(r)?,
            }),
            tag => Err(DecodeError::BadTag {
                type_name: "RoundPhase",
                tag,
            }),
        }
    }
}

/// How one dropped owner's key was recovered — the per-dropout entry of
/// the round's public audit trail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryEvidence {
    /// Owner position of the dropped owner.
    pub dropped: usize,
    /// Owner positions of the survivors whose verified shares
    /// reconstructed the key (ascending, exactly threshold-many).
    pub providers: Vec<usize>,
}

impl Encode for RecoveryEvidence {
    fn encode_to(&self, out: &mut Vec<u8>) {
        self.dropped.encode_to(out);
        self.providers.encode_to(out);
    }
}

impl Decode for RecoveryEvidence {
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(Self {
            dropped: usize::decode_from(r)?,
            providers: Vec::decode_from(r)?,
        })
    }
}

/// Per-cohort section of a sharded round's audit trail.
///
/// One entry per cohort of the round's
/// [`shapley::hierarchy::CohortPlan`], bound into the state digest via
/// [`RoundRecord`]: a tampered cohort assignment, survivor set, or
/// within-cohort estimator diverges at the first state root exactly like
/// the flat-round evidence.
#[derive(Debug, Clone, PartialEq)]
pub struct CohortEvidence {
    /// Owner positions assigned to this cohort (the plan row).
    pub members: Vec<usize>,
    /// Members that submitted and were evaluated, ascending.
    pub survivors: Vec<usize>,
    /// Members declared dropped, ascending. A fully-dropped cohort lists
    /// everyone here and leaves the second-level game.
    pub dropped: Vec<usize>,
    /// The estimator that ran the within-cohort game.
    pub sv_method: SvMethod,
    /// The cohort's second-level Shapley value `V_c` (`0.0` for a
    /// fully-dropped cohort).
    pub sv: f64,
    /// Utility evaluations of the within-cohort pass.
    pub utility_evaluations: usize,
    /// Samples drawn by the within-cohort estimator (0 for exact).
    pub samples: usize,
}

impl Encode for CohortEvidence {
    fn encode_to(&self, out: &mut Vec<u8>) {
        self.members.encode_to(out);
        self.survivors.encode_to(out);
        self.dropped.encode_to(out);
        self.sv_method.encode_to(out);
        self.sv.encode_to(out);
        self.utility_evaluations.encode_to(out);
        self.samples.encode_to(out);
    }
}

impl Decode for CohortEvidence {
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(Self {
            members: Vec::decode_from(r)?,
            survivors: Vec::decode_from(r)?,
            dropped: Vec::decode_from(r)?,
            sv_method: SvMethod::decode_from(r)?,
            sv: f64::decode_from(r)?,
            utility_evaluations: usize::decode_from(r)?,
            samples: usize::decode_from(r)?,
        })
    }
}

/// Immutable record of one evaluated round — the public audit trail.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundRecord {
    /// Round number.
    pub round: u64,
    /// The estimator that produced this round's values — the method is
    /// part of the public audit trail, not an implementation detail.
    pub sv_method: SvMethod,
    /// Group memberships used (owner *indices*, not account ids).
    pub groups: Vec<Vec<usize>>,
    /// Owner positions that submitted and were evaluated, ascending. A
    /// full round lists every owner.
    pub survivors: Vec<usize>,
    /// Owner positions declared dropped, ascending (empty for a full
    /// round). Dropped owners score exactly `0.0` this round.
    pub dropped: Vec<usize>,
    /// Per-dropout recovery evidence (which survivors' shares
    /// reconstructed each dropped key).
    pub recovery: Vec<RecoveryEvidence>,
    /// Per-group Shapley values `V_j` (groups whose members all dropped
    /// are excluded from the game and record `0.0`).
    pub per_group_sv: Vec<f64>,
    /// Per-owner Shapley values `v_i^r` (indexed by owner position).
    pub per_owner_sv: Vec<f64>,
    /// Test accuracy of the round's global model.
    pub global_accuracy: f64,
    /// Utility evaluations performed (`2^m` for the exact method; the
    /// sampling methods' cost envelope otherwise).
    pub utility_evaluations: usize,
    /// Independent samples drawn by a sampling estimator (0 for exact).
    pub samples: usize,
    /// Per-cohort evidence of a sharded round, one entry per cohort in
    /// plan order (empty for flat `num_cohorts == 1` rounds). For
    /// sharded rounds, [`RoundRecord::groups`] and
    /// [`RoundRecord::per_group_sv`] concatenate the cohorts'
    /// within-cohort groups/values in the same order.
    pub cohorts: Vec<CohortEvidence>,
}

impl Encode for RoundRecord {
    fn encode_to(&self, out: &mut Vec<u8>) {
        self.round.encode_to(out);
        self.sv_method.encode_to(out);
        self.groups.encode_to(out);
        self.survivors.encode_to(out);
        self.dropped.encode_to(out);
        self.recovery.encode_to(out);
        self.per_group_sv.encode_to(out);
        self.per_owner_sv.encode_to(out);
        self.global_accuracy.encode_to(out);
        self.utility_evaluations.encode_to(out);
        self.samples.encode_to(out);
        self.cohorts.encode_to(out);
    }
}

impl Decode for RoundRecord {
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(Self {
            round: u64::decode_from(r)?,
            sv_method: SvMethod::decode_from(r)?,
            groups: Vec::decode_from(r)?,
            survivors: Vec::decode_from(r)?,
            dropped: Vec::decode_from(r)?,
            recovery: Vec::decode_from(r)?,
            per_group_sv: Vec::decode_from(r)?,
            per_owner_sv: Vec::decode_from(r)?,
            global_accuracy: f64::decode_from(r)?,
            utility_evaluations: usize::decode_from(r)?,
            samples: usize::decode_from(r)?,
            cohorts: Vec::decode_from(r)?,
        })
    }
}

/// Derives the round's public sampling seed from the permutation seed.
///
/// A different multiplier than the grouping permutation's golden-ratio
/// stream, so the subsets a sampling estimator draws are not correlated
/// with the round's group assignment. Pure function of public on-chain
/// data — any miner or auditor re-derives it.
fn sampling_seed(permutation_seed: u64, round: u64) -> u64 {
    permutation_seed ^ round.wrapping_mul(0xd1b5_4a32_d192_ed03) ^ 0x5eed_5a3f_0e1e_57a7
}

/// The deterministic cohort plan and per-cohort group directory of one
/// sharded round.
///
/// For each cohort of the round's [`CohortPlan`] (drawn on the
/// [`shapley::hierarchy::COHORT_STREAM`]-separated seed), the
/// within-cohort grouping is drawn on that cohort's
/// [`cohort_stream`] sub-seed and mapped back to owner positions. The
/// protocol driver masks within exactly these groups and the contract
/// aggregates over them — both derive the directory from the same public
/// `(seed, round, n, k, m)` inputs, all of which are digest-bound.
///
/// # Panics
///
/// Panics if `num_cohorts` is outside `1..=num_owners` (genesis rejects
/// such parameters).
pub fn sharded_round_groups(
    permutation_seed: u64,
    round: u64,
    num_owners: usize,
    num_cohorts: usize,
    num_groups: usize,
) -> (CohortPlan, Vec<Vec<Vec<usize>>>) {
    let plan = CohortPlan::new(permutation_seed, round, num_owners, num_cohorts)
        .unwrap_or_else(|e| panic!("{e}"));
    let groups = plan
        .cohorts()
        .iter()
        .enumerate()
        .map(|(c, members)| {
            let pi = permutation(
                cohort_stream(permutation_seed, c as u64),
                round,
                members.len(),
            );
            grouping(&pi, num_groups)
                .into_iter()
                .map(|g| g.into_iter().map(|i| members[i]).collect())
                .collect()
        })
        .collect();
    (plan, groups)
}

/// Test-set-accuracy utility `u(W)` shared by the contract and the
/// off-chain analysis (Fig. 1/2 ground truth uses the same function).
///
/// The test set is conditioned into a prepared design **once** at
/// construction; every `of_model` call — GroupSV issues `2^m` of them
/// per round — then runs one GEMM over the cached design instead of
/// re-scaling and re-bias-extending the test matrix. The accuracy values
/// are bit-identical to the uncached pipeline, so state digests and
/// round records are unaffected.
pub struct AccuracyUtility {
    test_design: fl_ml::Design,
    num_features: usize,
    num_classes: usize,
}

impl AccuracyUtility {
    /// Builds the utility over a held-out test set.
    pub fn new(test_set: &Dataset, num_features: usize, num_classes: usize) -> Self {
        Self {
            test_design: fl_ml::Design::new(test_set),
            num_features,
            num_classes,
        }
    }
}

impl ModelUtility for AccuracyUtility {
    fn of_model(&self, weights: &[f64]) -> f64 {
        let model = LogisticModel::from_flat(weights, self.num_features, self.num_classes);
        model_accuracy_design(&model, &self.test_design)
    }

    fn of_empty(&self) -> f64 {
        // The zero model: uniform logits, argmax picks class 0 — exactly
        // what an untrained participant would deploy.
        let zero = LogisticModel::zeros(self.num_features, self.num_classes);
        model_accuracy_design(&zero, &self.test_design)
    }
}

/// The contract state. `Clone` gives each miner an independent replica.
///
/// # Round state machine
///
/// Each round walks a deterministic lifecycle, driven entirely by
/// committed transactions:
///
/// ```text
///              SubmitMaskedUpdate×k          EvaluateRound
///  Submitting ────────────────────▶ Submitting ──────────┐
///      │                                                 │ all owners
///      │ EvaluateRound, owners missing                   │ submitted
///      ▼                                                 ▼
///  Recovering { dropped }                            Evaluated
///      │  SubmitRecoveryShare×(≥t per dropped)      (RoundRecord,
///      │                                             round += 1,
///      └───────────── EvaluateRound ────────────▶    → Submitting)
/// ```
///
/// * **Submitting** — masked updates accumulate. `EvaluateRound` with a
///   complete cohort evaluates immediately (the paper's original path).
///   With owners missing — and provided the survivors can reach the
///   escrow threshold and every missing owner escrowed its key shares —
///   the round transitions to *Recovering* and the missing owners are
///   declared dropped; late submissions are rejected from that point on.
/// * **Recovering** — survivors reveal their escrowed shares of each
///   dropped key via [`FlCall::SubmitRecoveryShare`]; each share is
///   checked against its on-chain commitment before it counts. A second
///   `EvaluateRound` (with ≥ threshold shares per dropped owner)
///   reconstructs every dropped key, verifies it against the advertised
///   DH public key, strips the residual pairwise masks from each group's
///   partial aggregate, and evaluates the group-model game **restricted
///   to survivors** ([`shapley::utility::RestrictedGame`]): dropped
///   owners score exactly zero, groups whose members all dropped leave
///   the game entirely.
/// * **Evaluated** — terminal per round: the [`RoundRecord`] (survivor
///   set, dropout set, and recovery evidence included) is appended to
///   the history, the phase resets to *Submitting*, and the round
///   counter advances.
///
/// The phase, the escrow commitments, and every accepted recovery share
/// are part of the state digest, so a replica (or auditor) that disagrees
/// on any lifecycle step — including the survivor set — diverges at the
/// first state root.
#[derive(Debug, Clone)]
pub struct FlContract {
    params: FlParams,
    /// Public test set for the utility function (agreed at setup; the
    /// *training* shards never leave their owners).
    test_set: Dataset,
    gas: GasSchedule,
    keys: BTreeMap<AccountId, Vec<u8>>,
    /// Escrow commitments per owner: entry `j` commits the Shamir share
    /// of the owner's DH private key destined for owner position `j`.
    escrows: BTreeMap<AccountId, Vec<Hash32>>,
    current_round: u64,
    phase: RoundPhase,
    submissions: BTreeMap<AccountId, Vec<u64>>,
    /// Verified recovery shares: dropped owner → (provider → share).
    recovery_shares: BTreeMap<AccountId, BTreeMap<AccountId, Share>>,
    contributions: BTreeMap<AccountId, f64>,
    global_model: Vec<f64>,
    history: Vec<RoundRecord>,
}

impl FlContract {
    /// Creates the genesis contract state.
    ///
    /// # Panics
    ///
    /// Panics if the parameters are internally inconsistent.
    pub fn genesis(params: FlParams, test_set: Dataset) -> Self {
        assert!(params.owners.len() >= 2, "need >= 2 owners");
        assert!(
            (1..=params.owners.len()).contains(&params.num_groups),
            "num_groups out of range"
        );
        params
            .sv_method
            .validate_groups(params.num_groups)
            .expect("SV method must support the group count");
        assert_eq!(
            params.model_dim,
            (params.num_features + 1) * params.num_classes,
            "model_dim must equal (features+1)*classes"
        );
        assert_eq!(
            test_set.num_features(),
            params.num_features,
            "test set feature mismatch"
        );
        assert!(
            (1..=params.owners.len()).contains(&params.escrow_threshold),
            "escrow threshold out of range"
        );
        assert!(
            (1..=params.owners.len()).contains(&params.num_cohorts),
            "num_cohorts out of range"
        );
        if params.num_cohorts > 1 {
            // The second-level game enumerates coalitions over the
            // cohorts; the within game needs every cohort to hold at
            // least num_groups members.
            params
                .sv_method
                .validate_groups(params.num_cohorts)
                .expect("SV method must support the cohort count");
            assert!(
                params.num_groups
                    <= CohortPlan::min_cohort_size(params.owners.len(), params.num_cohorts),
                "num_groups exceeds the smallest cohort"
            );
        }
        let global_model = vec![0.0; params.model_dim];
        let contributions = params.owners.iter().map(|&o| (o, 0.0)).collect();
        Self {
            params,
            test_set,
            gas: GasSchedule::default(),
            keys: BTreeMap::new(),
            escrows: BTreeMap::new(),
            current_round: 0,
            phase: RoundPhase::Submitting,
            submissions: BTreeMap::new(),
            recovery_shares: BTreeMap::new(),
            contributions,
            global_model,
            history: Vec::new(),
        }
    }

    /// Static parameters.
    pub fn params(&self) -> &FlParams {
        &self.params
    }

    /// Current (unevaluated) round.
    pub fn current_round(&self) -> u64 {
        self.current_round
    }

    /// True once all rounds are evaluated.
    pub fn finished(&self) -> bool {
        self.current_round >= self.params.total_rounds
    }

    /// Cumulative contribution (total SV `v_i = Σ_r v_i^r`) per owner.
    pub fn contributions(&self) -> &BTreeMap<AccountId, f64> {
        &self.contributions
    }

    /// The current global model (flat weights).
    pub fn global_model(&self) -> &[f64] {
        &self.global_model
    }

    /// The audit trail of evaluated rounds.
    pub fn history(&self) -> &[RoundRecord] {
        &self.history
    }

    /// Test-only mutable history access, used to *forge* audit records
    /// (e.g. a tampered survivor set) and prove the digest catches it.
    #[cfg(test)]
    pub(crate) fn history_mut(&mut self) -> &mut [RoundRecord] {
        &mut self.history
    }

    /// Advertised public key of an owner.
    pub fn public_key_of(&self, owner: AccountId) -> Option<&[u8]> {
        self.keys.get(&owner).map(Vec::as_slice)
    }

    /// Current lifecycle phase of the round under assembly.
    pub fn phase(&self) -> &RoundPhase {
        &self.phase
    }

    /// The escrow commitments an owner committed, if any.
    pub fn escrow_of(&self, owner: AccountId) -> Option<&[Hash32]> {
        self.escrows.get(&owner).map(Vec::as_slice)
    }

    /// What a chain observer sees for `owner` this round: the masked
    /// submission (used by the privacy analysis).
    pub fn observed_submission(&self, owner: AccountId) -> Option<&[u64]> {
        self.submissions.get(&owner).map(Vec::as_slice)
    }

    fn owner_index(&self, id: AccountId) -> Result<usize, FlError> {
        self.params
            .owners
            .iter()
            .position(|&o| o == id)
            .ok_or(FlError::NotAnOwner(id))
    }

    fn advertise_key(
        &mut self,
        sender: AccountId,
        public_key: &[u8],
    ) -> Result<ExecutionOutcome, FlError> {
        self.owner_index(sender)?;
        if self.keys.contains_key(&sender) {
            return Err(FlError::KeyAlreadyAdvertised(sender));
        }
        // Keys are full-width 256-bit group elements. Rejecting other
        // lengths here keeps every later parse (`U256::from_be_bytes` in
        // the recovery path) infallible — an oversized key must never be
        // able to panic a re-executing replica mid-round.
        if public_key.len() != 32 {
            return Err(FlError::BadKeyEncoding {
                expected: 32,
                got: public_key.len(),
            });
        }
        // A length-valid key must also be a *usable* group element. The DH
        // layer rejects degenerate (0, 1, p−1) and non-canonical (>= p)
        // keys — a malicious owner could otherwise force a predictable
        // pair mask — and the contract surfaces that rejection here, at
        // advertise time, so a round can never wedge at derive time.
        let element = U256::from_be_bytes(public_key);
        if let Err(reason) = DhGroup::simulation_256().validate_public_key(&element) {
            return Err(FlError::InvalidKeyElement {
                owner: sender,
                reason: reason.to_string(),
            });
        }
        self.keys.insert(sender, public_key.to_vec());
        let gas = self.gas.charge(public_key.len().div_ceil(8), 0);
        Ok(ExecutionOutcome::event(
            format!(
                "key: owner {sender} advertised ({}/{})",
                self.keys.len(),
                self.params.owners.len()
            ),
            gas,
        ))
    }

    fn submit_update(
        &mut self,
        sender: AccountId,
        round: u64,
        masked: &[u64],
    ) -> Result<ExecutionOutcome, FlError> {
        self.owner_index(sender)?;
        if self.finished() {
            return Err(FlError::ProtocolFinished);
        }
        if self.keys.len() != self.params.owners.len() {
            return Err(FlError::KeysIncomplete {
                have: self.keys.len(),
                need: self.params.owners.len(),
            });
        }
        if round != self.current_round {
            return Err(FlError::WrongRound {
                expected: self.current_round,
                got: round,
            });
        }
        if matches!(self.phase, RoundPhase::Recovering { .. }) {
            // The sender was declared dropped when recovery opened; a
            // late submission would change the survivor set after the
            // fact and is rejected deterministically.
            return Err(FlError::RoundInRecovery(round));
        }
        if self.submissions.contains_key(&sender) {
            return Err(FlError::DuplicateSubmission(sender));
        }
        if masked.len() != self.params.model_dim {
            return Err(FlError::DimMismatch {
                expected: self.params.model_dim,
                got: masked.len(),
            });
        }
        self.submissions.insert(sender, masked.to_vec());
        let gas = self.gas.charge(masked.len(), masked.len());
        Ok(ExecutionOutcome::event(
            format!(
                "submit: owner {sender} round {round} ({}/{})",
                self.submissions.len(),
                self.params.owners.len()
            ),
            gas,
        ))
    }

    fn escrow_key_shares(
        &mut self,
        sender: AccountId,
        commitments: &[Hash32],
    ) -> Result<ExecutionOutcome, FlError> {
        self.owner_index(sender)?;
        if self.finished() {
            return Err(FlError::ProtocolFinished);
        }
        if !self.keys.contains_key(&sender) {
            // The escrow secret-shares the advertised key; without the
            // key there is nothing for recovery to verify against.
            return Err(FlError::EscrowWithoutKey(sender));
        }
        if self.escrows.contains_key(&sender) {
            return Err(FlError::EscrowAlreadyCommitted(sender));
        }
        let n = self.params.owners.len();
        if commitments.len() != n {
            return Err(FlError::EscrowSizeMismatch {
                expected: n,
                got: commitments.len(),
            });
        }
        self.escrows.insert(sender, commitments.to_vec());
        let gas = self.gas.charge(commitments.len() * 4, 0);
        Ok(ExecutionOutcome::event(
            format!(
                "escrow: owner {sender} committed {n} share commitments ({}/{})",
                self.escrows.len(),
                n
            ),
            gas,
        ))
    }

    fn submit_recovery_share(
        &mut self,
        sender: AccountId,
        round: u64,
        dropped: AccountId,
        share_x: u64,
        share_y: &[u8],
    ) -> Result<ExecutionOutcome, FlError> {
        let provider_pos = self.owner_index(sender)?;
        if self.finished() {
            return Err(FlError::ProtocolFinished);
        }
        if round != self.current_round {
            return Err(FlError::WrongRound {
                expected: self.current_round,
                got: round,
            });
        }
        let RoundPhase::Recovering { dropped: ref set } = self.phase else {
            return Err(FlError::NotRecovering(round));
        };
        if !set.contains(&dropped) {
            return Err(FlError::NotDropped(dropped));
        }
        if !self.submissions.contains_key(&sender) {
            return Err(FlError::NotASurvivor(sender));
        }
        let expected_x = provider_pos as u64 + 1;
        if share_x != expected_x {
            return Err(FlError::BadRecoveryShare {
                expected_x,
                got: share_x,
            });
        }
        // Length-check before parsing: `U256::from_be_bytes` panics on
        // oversized input, and a panic inside `execute` would take down
        // every re-executing replica on one malformed transaction.
        if share_y.len() != 32 {
            return Err(FlError::BadShareEncoding {
                expected: 32,
                got: share_y.len(),
            });
        }
        let share = Share {
            x: share_x,
            y: U256::from_be_bytes(share_y),
        };
        let committed = self
            .escrows
            .get(&dropped)
            .expect("recovery only opens for escrowed owners")[provider_pos];
        if share_commitment(dropped, &share) != committed {
            return Err(FlError::ShareCommitmentMismatch {
                dropped,
                provider: sender,
            });
        }
        let entry = self.recovery_shares.entry(dropped).or_default();
        if entry.contains_key(&sender) {
            return Err(FlError::DuplicateRecoveryShare {
                dropped,
                provider: sender,
            });
        }
        entry.insert(sender, share);
        let have = self.recovery_shares[&dropped].len();
        let need = self.params.escrow_threshold;
        let gas = self.gas.charge(4, 0);
        Ok(ExecutionOutcome::event(
            format!("recover: owner {sender} revealed share for dropped {dropped} ({have}/{need})"),
            gas,
        ))
    }

    fn evaluate_round(&mut self, round: u64) -> Result<ExecutionOutcome, FlError> {
        if self.finished() {
            return Err(FlError::ProtocolFinished);
        }
        if round != self.current_round {
            return Err(FlError::WrongRound {
                expected: self.current_round,
                got: round,
            });
        }
        match self.phase.clone() {
            RoundPhase::Submitting => {
                let missing: Vec<AccountId> = self
                    .params
                    .owners
                    .iter()
                    .copied()
                    .filter(|o| !self.submissions.contains_key(o))
                    .collect();
                if missing.is_empty() {
                    return self.finish_round(round, &[]);
                }
                // Opening recovery is only sound if the dropped keys are
                // actually recoverable: the survivors must be able to
                // reach the escrow threshold, and every missing owner
                // must have escrowed its shares.
                let survivors = self.params.owners.len() - missing.len();
                let need = self.params.escrow_threshold;
                if survivors < need {
                    return Err(FlError::InsufficientSurvivors { survivors, need });
                }
                for &d in &missing {
                    if !self.escrows.contains_key(&d) {
                        return Err(FlError::EscrowMissing(d));
                    }
                }
                self.phase = RoundPhase::Recovering {
                    dropped: missing.clone(),
                };
                let gas = self.gas.charge(missing.len() * 2, 0);
                Ok(ExecutionOutcome::event(
                    format!(
                        "recover: round {round} entered recovery, dropped {missing:?}, \
                         {survivors} survivors"
                    ),
                    gas,
                ))
            }
            RoundPhase::Recovering { dropped } => {
                let need = self.params.escrow_threshold;
                for &d in &dropped {
                    let have = self.recovery_shares.get(&d).map_or(0, BTreeMap::len);
                    if have < need {
                        return Err(FlError::RecoveryIncomplete {
                            dropped: d,
                            have,
                            need,
                        });
                    }
                }
                self.finish_round(round, &dropped)
            }
        }
    }

    /// Completes a round on the survivor set, dispatching between the
    /// flat single-cohort path and the sharded hierarchical path on the
    /// digest-bound `num_cohorts` parameter.
    fn finish_round(
        &mut self,
        round: u64,
        dropped_ids: &[AccountId],
    ) -> Result<ExecutionOutcome, FlError> {
        if self.params.num_cohorts > 1 {
            self.finish_round_sharded(round, dropped_ids)
        } else {
            self.finish_round_flat(round, dropped_ids)
        }
    }

    /// Reconstructs every dropped key from the first threshold-many
    /// verified shares (providers ascending — a pure function of the
    /// on-chain share set) and checks it against the advertised public
    /// key. All fallible work happens before any state mutation, so a
    /// failed recovery leaves the round intact.
    #[allow(clippy::type_complexity)]
    fn recover_dropped_keys(
        &self,
        dh: &DhGroup,
        dropped_pos: &[usize],
    ) -> Result<(BTreeMap<AccountId, U256>, Vec<RecoveryEvidence>), FlError> {
        let threshold = self.params.escrow_threshold;
        let shamir = Shamir::default();
        let mut recovered: BTreeMap<AccountId, U256> = BTreeMap::new();
        let mut evidence: Vec<RecoveryEvidence> = Vec::with_capacity(dropped_pos.len());
        for &pos in dropped_pos {
            let id = self.params.owners[pos];
            let provided = self
                .recovery_shares
                .get(&id)
                .expect("threshold checked before finish_round");
            let providers: Vec<AccountId> = provided.keys().copied().take(threshold).collect();
            let shares: Vec<Share> = providers.iter().map(|p| provided[p].clone()).collect();
            let advertised =
                U256::from_be_bytes(self.keys.get(&id).expect("dropped owner advertised"));
            let private = reconstruct_private_key(&shamir, dh, &shares, threshold, &advertised)
                .map_err(|e| FlError::RecoveryFailed {
                    owner: id,
                    reason: e.to_string(),
                })?;
            recovered.insert(id, private);
            evidence.push(RecoveryEvidence {
                dropped: pos,
                providers: providers
                    .iter()
                    .map(|p| self.owner_index(*p).expect("provider is an owner"))
                    .collect(),
            });
        }
        Ok((recovered, evidence))
    }

    /// Line 3 of Algorithm 1, survivor-restricted, over one group
    /// directory: each group's aggregate sums its *surviving* members'
    /// masked submissions; survivor-survivor masks cancel in the sum,
    /// and each dropped member's residual masks are stripped with its
    /// reconstructed key. A group whose members all dropped has no model
    /// (a zero placeholder keeps indices aligned) and leaves the game.
    /// Returns the per-group models and the surviving group indices.
    fn aggregate_group_models(
        &self,
        groups: &[Vec<usize>],
        dropped_set: &BTreeSet<AccountId>,
        recovered: &BTreeMap<AccountId, U256>,
        dh: &DhGroup,
        codec: &FixedCodec,
        round: u64,
    ) -> (Vec<Vec<f64>>, Vec<usize>) {
        let is_dropped = |idx: usize| dropped_set.contains(&self.params.owners[idx]);
        let mut group_models: Vec<Vec<f64>> = Vec::with_capacity(groups.len());
        let mut surviving_groups: Vec<usize> = Vec::new();
        for (j, g) in groups.iter().enumerate() {
            let alive: Vec<usize> = g.iter().copied().filter(|&i| !is_dropped(i)).collect();
            if alive.is_empty() {
                group_models.push(vec![0.0; self.params.model_dim]);
                continue;
            }
            surviving_groups.push(j);
            let mut acc = vec![0u64; self.params.model_dim];
            for &idx in &alive {
                let owner = self.params.owners[idx];
                let masked = self
                    .submissions
                    .get(&owner)
                    .expect("survivors submitted by definition");
                FixedCodec::ring_add_assign(&mut acc, masked);
            }
            let mut group_dropped: Vec<(AccountId, U256)> = g
                .iter()
                .copied()
                .filter(|&i| is_dropped(i))
                .map(|i| {
                    let id = self.params.owners[i];
                    (id, recovered[&id])
                })
                .collect();
            if !group_dropped.is_empty() {
                group_dropped.sort_unstable_by_key(|(id, _)| *id);
                let survivor_keys: Vec<(AccountId, U256)> = alive
                    .iter()
                    .map(|&i| {
                        let id = self.params.owners[i];
                        (
                            id,
                            U256::from_be_bytes(self.keys.get(&id).expect("keys complete")),
                        )
                    })
                    .collect();
                strip_dropped_set_masks(dh, &mut acc, &group_dropped, &survivor_keys, round);
            }
            group_models.push(
                acc.iter()
                    .map(|&r| codec.decode_avg(r, alive.len()))
                    .collect(),
            );
        }
        (group_models, surviving_groups)
    }

    /// Completes a flat round on the survivor set: reconstructs the
    /// dropped keys (if any), strips residual masks per group, and
    /// evaluates the group-model game restricted to the surviving
    /// groups.
    ///
    /// The full-cohort path is the special case `dropped_ids = []`.
    fn finish_round_flat(
        &mut self,
        round: u64,
        dropped_ids: &[AccountId],
    ) -> Result<ExecutionOutcome, FlError> {
        let n = self.params.owners.len();
        let m = self.params.num_groups;
        let codec = FixedCodec::new(self.params.frac_bits);

        let dropped_set: BTreeSet<AccountId> = dropped_ids.iter().copied().collect();
        let is_dropped = |idx: usize| dropped_set.contains(&self.params.owners[idx]);
        let dropped_pos: Vec<usize> = (0..n).filter(|&i| is_dropped(i)).collect();
        let survivor_pos: Vec<usize> = (0..n).filter(|&i| !is_dropped(i)).collect();

        let dh = DhGroup::simulation_256();
        let (recovered, evidence) = self.recover_dropped_keys(&dh, &dropped_pos)?;

        // Lines 1–2 of Algorithm 1: the public grouping for this round
        // (over the *full* cohort — the grouping is fixed at round start;
        // dropping out does not reshuffle anyone).
        let pi = permutation(self.params.permutation_seed, round, n);
        let groups = grouping(&pi, m);

        let (group_models, surviving_groups) =
            self.aggregate_group_models(&groups, &dropped_set, &recovered, &dh, &codec, round);

        // Lines 4–6 (generalized): SV over the group coalition game
        // restricted to the surviving groups, dispatched through the
        // estimator the round config selects. Every miner derives the
        // same sampling seed from the public permutation seed and the
        // round number, so sampling estimators re-execute bit-identically.
        let utility = AccuracyUtility::new(
            &self.test_set,
            self.params.num_features,
            self.params.num_classes,
        );
        let full_game = GroupModelGame::new(&group_models, &utility);
        let game = RestrictedGame::new(&full_game, surviving_groups.clone());
        let estimate = Self::dispatch_estimator(
            self.params.sv_method,
            sampling_seed(self.params.permutation_seed, round),
            &game,
        );
        let SvEstimate {
            values,
            utility_evaluations,
            diagnostics,
        } = estimate;

        let mut per_group_sv = vec![0.0f64; m];
        for (k, &j) in surviving_groups.iter().enumerate() {
            per_group_sv[j] = values[k];
        }

        // Line 7: uniform split among each group's *survivors*; dropped
        // owners score exactly zero this round.
        let mut per_owner_sv = vec![0.0f64; n];
        for &j in &surviving_groups {
            let alive: Vec<usize> = groups[j]
                .iter()
                .copied()
                .filter(|&i| !is_dropped(i))
                .collect();
            let share = per_group_sv[j] / alive.len() as f64;
            for idx in alive {
                per_owner_sv[idx] = share;
                let owner = self.params.owners[idx];
                *self
                    .contributions
                    .get_mut(&owner)
                    .expect("initialized at genesis") += share;
            }
        }

        // New global model: the average of the surviving group models.
        let surviving_models: Vec<Vec<f64>> = surviving_groups
            .iter()
            .map(|&j| group_models[j].clone())
            .collect();
        self.global_model = numeric::linalg::mean_vectors(&surviving_models);
        let global_accuracy = utility.of_model(&self.global_model);

        let method = self.params.sv_method;
        self.history.push(RoundRecord {
            round,
            sv_method: method,
            groups: groups.clone(),
            survivors: survivor_pos.clone(),
            dropped: dropped_pos.clone(),
            recovery: evidence,
            per_group_sv: per_group_sv.clone(),
            per_owner_sv,
            global_accuracy,
            utility_evaluations,
            samples: diagnostics.samples,
            cohorts: Vec::new(),
        });
        self.submissions.clear();
        self.recovery_shares.clear();
        self.phase = RoundPhase::Submitting;
        self.current_round += 1;

        let gas = self.gas.charge(
            self.params.model_dim,
            (utility_evaluations + dropped_pos.len() * survivor_pos.len()) * self.params.model_dim,
        );
        Ok(ExecutionOutcome::event(
            format!(
                "evaluate: round {round}, m={m}, method {}, survivors {}/{n}, global acc \
                 {global_accuracy:.4}, group SVs {per_group_sv:?}",
                method.name(),
                survivor_pos.len(),
            ),
            gas,
        ))
    }

    /// Completes a cohort-sharded round: each cohort independently
    /// aggregates its group models and runs the configured estimator
    /// under its own seed stream (one `numeric::par` slot per cohort,
    /// index-pure so the fan-out is bit-identical across thread caps),
    /// then a second-level coalition game over the cohort aggregate
    /// models prices the cohorts, and the two levels compose into
    /// global per-owner contributions
    /// (see [`shapley::hierarchy::compose`]).
    ///
    /// A cohort whose members all dropped keeps a zero-model
    /// placeholder and leaves the second-level game via
    /// [`RestrictedGame`]; its members score exactly zero this round.
    fn finish_round_sharded(
        &mut self,
        round: u64,
        dropped_ids: &[AccountId],
    ) -> Result<ExecutionOutcome, FlError> {
        let n = self.params.owners.len();
        let m = self.params.num_groups;
        let k = self.params.num_cohorts;
        let codec = FixedCodec::new(self.params.frac_bits);

        let dropped_set: BTreeSet<AccountId> = dropped_ids.iter().copied().collect();
        let is_dropped = |idx: usize| dropped_set.contains(&self.params.owners[idx]);
        let dropped_pos: Vec<usize> = (0..n).filter(|&i| is_dropped(i)).collect();
        let survivor_pos: Vec<usize> = (0..n).filter(|&i| !is_dropped(i)).collect();

        let dh = DhGroup::simulation_256();
        let (recovered, evidence) = self.recover_dropped_keys(&dh, &dropped_pos)?;

        // The cohort plan and the per-cohort groupings are pure
        // functions of the digest-bound round parameters, so every
        // miner and every auditor derives the identical partition.
        let (plan, cohort_groups) =
            sharded_round_groups(self.params.permutation_seed, round, n, k, m);

        let utility = AccuracyUtility::new(
            &self.test_set,
            self.params.num_features,
            self.params.num_classes,
        );
        let method = self.params.sv_method;
        let seed = self.params.permutation_seed;

        struct CohortOutcome {
            group_models: Vec<Vec<f64>>,
            surviving_groups: Vec<usize>,
            per_group_sv: Vec<f64>,
            utility_evaluations: usize,
            samples: usize,
        }

        // First level, fanned out one slot per cohort. Each slot only
        // reads cohort-indexed inputs, so slot `c` is a pure function
        // of `c` regardless of the thread cap.
        let this: &Self = self;
        let per_cohort: Vec<CohortOutcome> =
            numeric::par::par_map(cohort_groups.as_slice(), 1, |c, groups_c| {
                let (group_models, surviving_groups) = this.aggregate_group_models(
                    groups_c,
                    &dropped_set,
                    &recovered,
                    &dh,
                    &codec,
                    round,
                );
                if surviving_groups.is_empty() {
                    return CohortOutcome {
                        group_models,
                        surviving_groups,
                        per_group_sv: vec![0.0; m],
                        utility_evaluations: 0,
                        samples: 0,
                    };
                }
                let full_game = GroupModelGame::new(&group_models, &utility);
                let game = RestrictedGame::new(&full_game, surviving_groups.clone());
                let estimate = Self::dispatch_estimator(
                    method,
                    sampling_seed(cohort_stream(seed, c as u64), round),
                    &game,
                );
                let mut per_group_sv = vec![0.0f64; m];
                for (gi, &j) in surviving_groups.iter().enumerate() {
                    per_group_sv[j] = estimate.values[gi];
                }
                CohortOutcome {
                    group_models,
                    surviving_groups,
                    per_group_sv,
                    utility_evaluations: estimate.utility_evaluations,
                    samples: estimate.diagnostics.samples,
                }
            });

        // Cohort aggregate models: the mean of each cohort's surviving
        // group models; fully-dropped cohorts keep a zero placeholder
        // and leave the second-level game.
        let mut cohort_models: Vec<Vec<f64>> = Vec::with_capacity(k);
        let mut alive_cohorts: Vec<usize> = Vec::new();
        for (c, out) in per_cohort.iter().enumerate() {
            if out.surviving_groups.is_empty() {
                cohort_models.push(vec![0.0; self.params.model_dim]);
            } else {
                let models: Vec<Vec<f64>> = out
                    .surviving_groups
                    .iter()
                    .map(|&j| out.group_models[j].clone())
                    .collect();
                cohort_models.push(numeric::linalg::mean_vectors(&models));
                alive_cohorts.push(c);
            }
        }

        // Second level: the coalition game over cohort aggregate
        // models, restricted to cohorts with at least one survivor,
        // under the round's own (un-streamed) sampling seed.
        let full_game2 = GroupModelGame::new(&cohort_models, &utility);
        let game2 = RestrictedGame::new(&full_game2, alive_cohorts.clone());
        let estimate2 = Self::dispatch_estimator(method, sampling_seed(seed, round), &game2);
        let mut per_cohort_sv = vec![0.0f64; k];
        for (ci, &c) in alive_cohorts.iter().enumerate() {
            per_cohort_sv[c] = estimate2.values[ci];
        }

        // Two-level composition: within-cohort survivor values (group
        // value split uniformly among the group's survivors) scaled by
        // the cohort's second-level value. Dropped owners are excluded
        // from the within vectors so even the uniform zero-total
        // fallback can never pay them; they score exactly zero.
        let mut within: Vec<Vec<f64>> = Vec::with_capacity(k);
        let mut within_owners: Vec<Vec<usize>> = Vec::with_capacity(k);
        for (c, out) in per_cohort.iter().enumerate() {
            let mut vals = Vec::new();
            let mut owners_of = Vec::new();
            for &j in &out.surviving_groups {
                let alive: Vec<usize> = cohort_groups[c][j]
                    .iter()
                    .copied()
                    .filter(|&i| !is_dropped(i))
                    .collect();
                let share = out.per_group_sv[j] / alive.len() as f64;
                for idx in alive {
                    vals.push(share);
                    owners_of.push(idx);
                }
            }
            within.push(vals);
            within_owners.push(owners_of);
        }
        let composed =
            compose(&within, &per_cohort_sv).expect("within/cohort lengths match by construction");

        let mut per_owner_sv = vec![0.0f64; n];
        for (c, vals) in composed.iter().enumerate() {
            for (vi, &v) in vals.iter().enumerate() {
                let idx = within_owners[c][vi];
                per_owner_sv[idx] = v;
                let owner = self.params.owners[idx];
                *self
                    .contributions
                    .get_mut(&owner)
                    .expect("initialized at genesis") += v;
            }
        }

        // New global model: the average of the surviving cohort models.
        let alive_models: Vec<Vec<f64>> = alive_cohorts
            .iter()
            .map(|&c| cohort_models[c].clone())
            .collect();
        self.global_model = numeric::linalg::mean_vectors(&alive_models);
        let global_accuracy = utility.of_model(&self.global_model);

        // Evidence: the flat `groups`/`per_group_sv` sections
        // concatenate the cohorts' within-cohort groups and values in
        // plan order; the per-cohort section binds each cohort's
        // membership, survivor set, and second-level value into the
        // state digest.
        let mut flat_groups: Vec<Vec<usize>> = Vec::with_capacity(k * m);
        let mut flat_group_sv: Vec<f64> = Vec::with_capacity(k * m);
        let mut cohort_evidence: Vec<CohortEvidence> = Vec::with_capacity(k);
        let mut total_evals = estimate2.utility_evaluations;
        let mut total_samples = estimate2.diagnostics.samples;
        for (c, out) in per_cohort.iter().enumerate() {
            flat_groups.extend(cohort_groups[c].iter().cloned());
            flat_group_sv.extend(out.per_group_sv.iter().copied());
            total_evals += out.utility_evaluations;
            total_samples += out.samples;
            let members = plan.cohorts()[c].clone();
            let survivors: Vec<usize> = members
                .iter()
                .copied()
                .filter(|&i| !is_dropped(i))
                .collect();
            let dropped: Vec<usize> = members.iter().copied().filter(|&i| is_dropped(i)).collect();
            cohort_evidence.push(CohortEvidence {
                members,
                survivors,
                dropped,
                sv_method: method,
                sv: per_cohort_sv[c],
                utility_evaluations: out.utility_evaluations,
                samples: out.samples,
            });
        }

        self.history.push(RoundRecord {
            round,
            sv_method: method,
            groups: flat_groups,
            survivors: survivor_pos.clone(),
            dropped: dropped_pos.clone(),
            recovery: evidence,
            per_group_sv: flat_group_sv,
            per_owner_sv,
            global_accuracy,
            utility_evaluations: total_evals,
            samples: total_samples,
            cohorts: cohort_evidence,
        });
        self.submissions.clear();
        self.recovery_shares.clear();
        self.phase = RoundPhase::Submitting;
        self.current_round += 1;

        let gas = self.gas.charge(
            self.params.model_dim,
            (total_evals + dropped_pos.len() * survivor_pos.len()) * self.params.model_dim,
        );
        Ok(ExecutionOutcome::event(
            format!(
                "evaluate: round {round}, k={k} cohorts, m={m}, method {}, survivors {}/{n}, \
                 global acc {global_accuracy:.4}, cohort SVs {per_cohort_sv:?}",
                method.name(),
                survivor_pos.len(),
            ),
            gas,
        ))
    }

    /// Runs the configured estimator over the round's group game.
    ///
    /// The method is on-chain configuration; the dispatch is the single
    /// point where that configuration meets the estimator layer, so
    /// every miner — and every later auditor replaying the chain —
    /// resolves the identical estimator with the identical seed.
    ///
    /// The sampling estimators revisit coalitions (e.g. every size-0
    /// stratum draws the same singleton), so their game is wrapped in
    /// [`CachedUtility`] — each distinct coalition model pays for one
    /// accuracy pass, with bit-identical values. The exact path visits
    /// each coalition exactly once and skips the cache.
    ///
    /// The cache's hit/miss counters are copied into the estimate's
    /// diagnostics afterwards so the streaming-evaluation behaviour is
    /// auditable; they stay out of [`RoundRecord`] and every consensus
    /// digest because the counters are scheduling observability, not
    /// protocol state.
    fn dispatch_estimator(
        method: SvMethod,
        seed: u64,
        game: &(impl shapley::utility::CoalitionUtility + Sync),
    ) -> SvEstimate {
        match method {
            SvMethod::GroupExact => Exact.estimate(game),
            SvMethod::MonteCarlo { permutations } => {
                let cached = CachedUtility::new(game);
                let mut estimate = MonteCarlo {
                    config: McConfig {
                        permutations: permutations as usize,
                        seed,
                        truncation_tolerance: None,
                    },
                }
                .estimate(&cached);
                let stats = cached.stats();
                estimate.diagnostics.cache_hits = stats.hits;
                estimate.diagnostics.cache_misses = stats.misses;
                estimate
            }
            SvMethod::Stratified {
                samples_per_stratum,
            } => {
                let cached = CachedUtility::new(game);
                let mut estimate = Stratified {
                    config: StratifiedConfig {
                        samples_per_stratum: samples_per_stratum as usize,
                        seed,
                    },
                }
                .estimate(&cached);
                let stats = cached.stats();
                estimate.diagnostics.cache_hits = stats.hits;
                estimate.diagnostics.cache_misses = stats.misses;
                estimate
            }
        }
    }
}

/// Encodes a map as `len ‖ (key ‖ value)*` — the same shape the state
/// digest uses, but with an explicit length everywhere so the snapshot
/// is strictly decodable.
fn encode_map<K: Encode, V: Encode>(map: &BTreeMap<K, V>, out: &mut Vec<u8>) {
    (map.len() as u64).encode_to(out);
    for (k, v) in map {
        k.encode_to(out);
        v.encode_to(out);
    }
}

/// Strict inverse of [`encode_map`].
fn decode_map<K: Decode + Ord, V: Decode>(
    r: &mut Reader<'_>,
) -> Result<BTreeMap<K, V>, DecodeError> {
    let len = u64::decode_from(r)?;
    let mut map = BTreeMap::new();
    for _ in 0..len {
        let k = K::decode_from(r)?;
        let v = V::decode_from(r)?;
        map.insert(k, v);
    }
    Ok(map)
}

impl FlContract {
    /// Serializes the contract's **dynamic** state — everything that is
    /// not a genesis artefact — for a durability snapshot
    /// ([`fl_chain::durability::DurableStore::write_snapshot`]).
    ///
    /// The static half (params, test set) is deliberately excluded: both
    /// are public setup-stage artefacts an auditor already holds (the
    /// same ones [`crate::audit::replay_chain`] takes), and excluding
    /// them keeps snapshots proportional to the live state. The blob is
    /// opaque to the chain layer; [`FlContract::restore`] is its inverse,
    /// and `fedchain::audit::fast_sync` verifies a restored state against
    /// the committed state root before trusting it.
    pub fn snapshot_state(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.current_round.encode_to(&mut out);
        self.phase.encode_to(&mut out);
        encode_map(&self.keys, &mut out);
        encode_map(&self.escrows, &mut out);
        encode_map(&self.submissions, &mut out);
        (self.recovery_shares.len() as u64).encode_to(&mut out);
        for (dropped, providers) in &self.recovery_shares {
            dropped.encode_to(&mut out);
            (providers.len() as u64).encode_to(&mut out);
            for (provider, share) in providers {
                provider.encode_to(&mut out);
                share.x.encode_to(&mut out);
                share.y.to_be_bytes().encode_to(&mut out);
            }
        }
        encode_map(&self.contributions, &mut out);
        self.global_model.encode_to(&mut out);
        self.history.encode_to(&mut out);
        out
    }

    /// Rebuilds a contract from the genesis artefacts plus a
    /// [`FlContract::snapshot_state`] blob.
    ///
    /// Decoding is strict (truncated, malformed, or trailing bytes all
    /// `Err`), but a *well-formed forgery* cannot be detected here: the
    /// caller must check [`SmartContract::state_digest`] of the result
    /// against the state root committed at the snapshot height, as
    /// `fedchain::audit::fast_sync` does.
    ///
    /// # Panics
    ///
    /// Panics where [`FlContract::genesis`] does: on internally
    /// inconsistent genesis parameters.
    pub fn restore(
        params: FlParams,
        test_set: Dataset,
        snapshot: &[u8],
    ) -> Result<Self, DecodeError> {
        let mut c = Self::genesis(params, test_set);
        let mut r = Reader::new(snapshot);
        c.current_round = u64::decode_from(&mut r)?;
        c.phase = RoundPhase::decode_from(&mut r)?;
        c.keys = decode_map(&mut r)?;
        c.escrows = decode_map(&mut r)?;
        c.submissions = decode_map(&mut r)?;
        let dropped_count = u64::decode_from(&mut r)?;
        c.recovery_shares = BTreeMap::new();
        for _ in 0..dropped_count {
            let dropped = AccountId::decode_from(&mut r)?;
            let provider_count = u64::decode_from(&mut r)?;
            let mut providers = BTreeMap::new();
            for _ in 0..provider_count {
                let provider = AccountId::decode_from(&mut r)?;
                let x = u64::decode_from(&mut r)?;
                let y_bytes = <[u8; 32]>::decode_from(&mut r)?;
                providers.insert(
                    provider,
                    Share {
                        x,
                        y: U256::from_be_bytes(&y_bytes),
                    },
                );
            }
            c.recovery_shares.insert(dropped, providers);
        }
        c.contributions = decode_map(&mut r)?;
        c.global_model = Vec::decode_from(&mut r)?;
        c.history = Vec::decode_from(&mut r)?;
        if !r.is_empty() {
            return Err(DecodeError::TrailingBytes {
                remaining: r.remaining(),
            });
        }
        Ok(c)
    }
}

impl SmartContract for FlContract {
    type Call = FlCall;
    type Error = FlError;

    fn execute(&mut self, ctx: &TxContext, call: &FlCall) -> Result<ExecutionOutcome, FlError> {
        match call {
            FlCall::AdvertiseKey { public_key } => self.advertise_key(ctx.sender, public_key),
            FlCall::SubmitMaskedUpdate { round, masked } => {
                self.submit_update(ctx.sender, *round, masked)
            }
            FlCall::EvaluateRound { round } => self.evaluate_round(*round),
            FlCall::EscrowKeyShares { commitments } => {
                self.escrow_key_shares(ctx.sender, commitments)
            }
            FlCall::SubmitRecoveryShare {
                round,
                dropped,
                share_x,
                share_y,
            } => self.submit_recovery_share(ctx.sender, *round, *dropped, *share_x, share_y),
        }
    }

    fn state_digest(&self) -> Hash32 {
        let mut buf = Vec::new();
        self.params.encode_to(&mut buf);
        self.current_round.encode_to(&mut buf);
        self.phase.encode_to(&mut buf);
        (self.keys.len() as u64).encode_to(&mut buf);
        for (id, key) in &self.keys {
            id.encode_to(&mut buf);
            key.encode_to(&mut buf);
        }
        (self.escrows.len() as u64).encode_to(&mut buf);
        for (id, commitments) in &self.escrows {
            id.encode_to(&mut buf);
            commitments.encode_to(&mut buf);
        }
        (self.submissions.len() as u64).encode_to(&mut buf);
        for (id, update) in &self.submissions {
            id.encode_to(&mut buf);
            update.encode_to(&mut buf);
        }
        (self.recovery_shares.len() as u64).encode_to(&mut buf);
        for (dropped, providers) in &self.recovery_shares {
            dropped.encode_to(&mut buf);
            (providers.len() as u64).encode_to(&mut buf);
            for (provider, share) in providers {
                provider.encode_to(&mut buf);
                share.x.encode_to(&mut buf);
                share.y.to_be_bytes().encode_to(&mut buf);
            }
        }
        for (id, value) in &self.contributions {
            id.encode_to(&mut buf);
            value.encode_to(&mut buf);
        }
        self.global_model.encode_to(&mut buf);
        self.history.encode_to(&mut buf);
        Hash32::of("transparent-fl/state", &buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fl_ml::dataset::SyntheticDigits;

    fn test_params(n: usize, m: usize) -> FlParams {
        FlParams {
            owners: (0..n as u32).collect(),
            num_groups: m,
            sv_method: SvMethod::GroupExact,
            permutation_seed: 7,
            total_rounds: 2,
            model_dim: (64 + 1) * 10,
            num_features: 64,
            num_classes: 10,
            frac_bits: 24,
            escrow_threshold: n / 2 + 1,
            num_cohorts: 1,
        }
    }

    fn contract(n: usize, m: usize) -> FlContract {
        let test_set = SyntheticDigits::small().generate(99);
        FlContract::genesis(test_params(n, m), test_set)
    }

    fn ctx(sender: AccountId) -> TxContext {
        TxContext {
            block_height: 0,
            view: 0,
            sender,
            tx_index: 0,
        }
    }

    fn advertise_all(c: &mut FlContract, n: usize) {
        for i in 0..n as u32 {
            c.execute(
                &ctx(i),
                &FlCall::AdvertiseKey {
                    public_key: vec![i as u8 + 1; 32],
                },
            )
            .unwrap();
        }
    }

    /// Unmasked "masked" updates: with no pairwise masks (sum of zero
    /// masks), the ring math still holds — the contract cannot tell.
    fn plain_update(c: &FlContract, value: f64) -> Vec<u64> {
        let codec = FixedCodec::new(c.params.frac_bits);
        codec.encode_vec(&vec![value; c.params.model_dim])
    }

    #[test]
    fn key_exchange_rules() {
        let mut c = contract(3, 2);
        assert!(matches!(
            c.execute(
                &ctx(9),
                &FlCall::AdvertiseKey {
                    public_key: vec![1; 32]
                }
            ),
            Err(FlError::NotAnOwner(9))
        ));
        // Keys must be full-width group elements: a short (or oversized)
        // encoding is rejected before it can poison the recovery path.
        assert!(matches!(
            c.execute(
                &ctx(0),
                &FlCall::AdvertiseKey {
                    public_key: vec![1]
                }
            ),
            Err(FlError::BadKeyEncoding {
                expected: 32,
                got: 1
            })
        ));
        assert!(matches!(
            c.execute(
                &ctx(0),
                &FlCall::AdvertiseKey {
                    public_key: vec![1; 33]
                }
            ),
            Err(FlError::BadKeyEncoding {
                expected: 32,
                got: 33
            })
        ));
        // Length-valid but degenerate or non-canonical group elements are
        // rejected with the offender named (a degenerate key would force a
        // predictable pair mask on every peer).
        for bad in [vec![0u8; 32], {
            let mut one = vec![0u8; 32];
            one[31] = 1;
            one
        }] {
            assert!(matches!(
                c.execute(&ctx(0), &FlCall::AdvertiseKey { public_key: bad }),
                Err(FlError::InvalidKeyElement { owner: 0, .. })
            ));
        }
        assert!(matches!(
            c.execute(
                &ctx(0),
                &FlCall::AdvertiseKey {
                    public_key: vec![0xFF; 32] // >= p: not canonical
                }
            ),
            Err(FlError::InvalidKeyElement { owner: 0, .. })
        ));
        c.execute(
            &ctx(0),
            &FlCall::AdvertiseKey {
                public_key: vec![1; 32],
            },
        )
        .unwrap();
        assert!(matches!(
            c.execute(
                &ctx(0),
                &FlCall::AdvertiseKey {
                    public_key: vec![2; 32]
                }
            ),
            Err(FlError::KeyAlreadyAdvertised(0))
        ));
        assert_eq!(c.public_key_of(0), Some(&[1u8; 32][..]));
        assert_eq!(c.public_key_of(1), None);
    }

    #[test]
    fn submissions_require_complete_keys() {
        let mut c = contract(3, 2);
        let update = plain_update(&c, 0.1);
        assert!(matches!(
            c.execute(
                &ctx(0),
                &FlCall::SubmitMaskedUpdate {
                    round: 0,
                    masked: update
                }
            ),
            Err(FlError::KeysIncomplete { have: 0, need: 3 })
        ));
    }

    #[test]
    fn submission_validation() {
        let mut c = contract(3, 2);
        advertise_all(&mut c, 3);
        let update = plain_update(&c, 0.1);
        // Wrong round.
        assert!(matches!(
            c.execute(
                &ctx(0),
                &FlCall::SubmitMaskedUpdate {
                    round: 5,
                    masked: update.clone()
                }
            ),
            Err(FlError::WrongRound {
                expected: 0,
                got: 5
            })
        ));
        // Wrong dimension.
        assert!(matches!(
            c.execute(
                &ctx(0),
                &FlCall::SubmitMaskedUpdate {
                    round: 0,
                    masked: vec![0u64; 3]
                }
            ),
            Err(FlError::DimMismatch { .. })
        ));
        // Valid, then duplicate.
        c.execute(
            &ctx(0),
            &FlCall::SubmitMaskedUpdate {
                round: 0,
                masked: update.clone(),
            },
        )
        .unwrap();
        assert!(matches!(
            c.execute(
                &ctx(0),
                &FlCall::SubmitMaskedUpdate {
                    round: 0,
                    masked: update
                }
            ),
            Err(FlError::DuplicateSubmission(0))
        ));
    }

    #[test]
    fn incomplete_round_needs_threshold_survivors_and_escrow() {
        // 3 owners, threshold 2. One submission: survivors below the
        // escrow threshold, the round cannot even open recovery.
        let mut c = contract(3, 2);
        advertise_all(&mut c, 3);
        let update = plain_update(&c, 0.1);
        c.execute(
            &ctx(0),
            &FlCall::SubmitMaskedUpdate {
                round: 0,
                masked: update.clone(),
            },
        )
        .unwrap();
        assert!(matches!(
            c.execute(&ctx(0), &FlCall::EvaluateRound { round: 0 }),
            Err(FlError::InsufficientSurvivors {
                survivors: 1,
                need: 2
            })
        ));
        // Two submissions reach the threshold, but the missing owner
        // never escrowed its key shares: its masks are unrecoverable.
        c.execute(
            &ctx(1),
            &FlCall::SubmitMaskedUpdate {
                round: 0,
                masked: update,
            },
        )
        .unwrap();
        assert!(matches!(
            c.execute(&ctx(0), &FlCall::EvaluateRound { round: 0 }),
            Err(FlError::EscrowMissing(2))
        ));
        // Nothing transitioned: the round is still accepting submissions.
        assert_eq!(c.phase(), &RoundPhase::Submitting);
    }

    #[test]
    fn full_round_evaluates_and_advances() {
        let mut c = contract(4, 2);
        advertise_all(&mut c, 4);
        for i in 0..4u32 {
            let update = plain_update(&c, 0.01 * (i as f64 + 1.0));
            c.execute(
                &ctx(i),
                &FlCall::SubmitMaskedUpdate {
                    round: 0,
                    masked: update,
                },
            )
            .unwrap();
        }
        let out = c
            .execute(&ctx(0), &FlCall::EvaluateRound { round: 0 })
            .unwrap();
        assert!(out.events[0].contains("evaluate: round 0"));
        assert_eq!(c.current_round(), 1);
        assert_eq!(c.history().len(), 1);
        let record = &c.history()[0];
        assert_eq!(record.per_owner_sv.len(), 4);
        assert_eq!(record.utility_evaluations, 4); // 2^m, m=2
                                                   // Groups partition all 4 owners.
        let total: usize = record.groups.iter().map(Vec::len).sum();
        assert_eq!(total, 4);
        // Submissions cleared for the next round.
        assert!(c.observed_submission(0).is_none());
    }

    fn contract_with_method(n: usize, m: usize, method: SvMethod) -> FlContract {
        let mut params = test_params(n, m);
        params.sv_method = method;
        let test_set = SyntheticDigits::small().generate(99);
        FlContract::genesis(params, test_set)
    }

    fn run_one_round(c: &mut FlContract, n: usize) {
        advertise_all(c, n);
        for i in 0..n as u32 {
            let update = plain_update(c, 0.01 * (i as f64 + 1.0));
            c.execute(
                &ctx(i),
                &FlCall::SubmitMaskedUpdate {
                    round: 0,
                    masked: update,
                },
            )
            .unwrap();
        }
        c.execute(&ctx(0), &FlCall::EvaluateRound { round: 0 })
            .unwrap();
    }

    #[test]
    fn method_choice_appears_in_audit_record() {
        let method = SvMethod::Stratified {
            samples_per_stratum: 2,
        };
        let mut c = contract_with_method(4, 4, method);
        run_one_round(&mut c, 4);
        let record = &c.history()[0];
        assert_eq!(record.sv_method, method);
        // Stratified cost envelope: 2 evals × m² strata × k samples.
        assert_eq!(record.utility_evaluations, 2 * 16 * 2);
        assert_eq!(record.samples, 16 * 2);
        // Exact records report zero samples.
        let mut exact = contract_with_method(4, 4, SvMethod::GroupExact);
        run_one_round(&mut exact, 4);
        let exact_record = &exact.history()[0];
        assert_eq!(exact_record.sv_method, SvMethod::GroupExact);
        assert_eq!(exact_record.samples, 0);
        assert_eq!(exact_record.utility_evaluations, 16);
    }

    #[test]
    fn method_name_appears_in_round_event() {
        let mut c = contract_with_method(3, 3, SvMethod::MonteCarlo { permutations: 8 });
        advertise_all(&mut c, 3);
        for i in 0..3u32 {
            let update = plain_update(&c, 0.01);
            c.execute(
                &ctx(i),
                &FlCall::SubmitMaskedUpdate {
                    round: 0,
                    masked: update,
                },
            )
            .unwrap();
        }
        let out = c
            .execute(&ctx(0), &FlCall::EvaluateRound { round: 0 })
            .unwrap();
        assert!(
            out.events[0].contains("method monte_carlo"),
            "event must name the estimator: {}",
            out.events[0]
        );
    }

    #[test]
    fn method_is_part_of_the_state_digest() {
        // Two replicas that agree on everything but the estimator must
        // diverge from genesis: the method is consensus configuration.
        let a = contract_with_method(3, 2, SvMethod::GroupExact);
        let b = contract_with_method(3, 2, SvMethod::MonteCarlo { permutations: 50 });
        assert_ne!(a.state_digest(), b.state_digest());
    }

    #[test]
    fn sampling_replicas_stay_digest_identical() {
        // The sampling estimators are deterministic per (seed, round), so
        // two honest replicas running Stratified agree bit-for-bit.
        let method = SvMethod::Stratified {
            samples_per_stratum: 3,
        };
        let mut a = contract_with_method(4, 2, method);
        let mut b = contract_with_method(4, 2, method);
        run_one_round(&mut a, 4);
        run_one_round(&mut b, 4);
        assert_eq!(a.state_digest(), b.state_digest());
        assert_eq!(a.history()[0].per_owner_sv, b.history()[0].per_owner_sv);
    }

    #[test]
    #[should_panic(expected = "must support the group count")]
    fn genesis_rejects_method_that_cannot_cover_the_groups() {
        let mut params = test_params(4, 2);
        params.sv_method = SvMethod::MonteCarlo { permutations: 0 };
        let test_set = SyntheticDigits::small().generate(99);
        let _ = FlContract::genesis(params, test_set);
    }

    #[test]
    fn contributions_accumulate_across_rounds() {
        let mut c = contract(3, 3);
        advertise_all(&mut c, 3);
        for round in 0..2u64 {
            for i in 0..3u32 {
                let update = plain_update(&c, 0.01 * (i as f64 + 1.0));
                c.execute(
                    &ctx(i),
                    &FlCall::SubmitMaskedUpdate {
                        round,
                        masked: update,
                    },
                )
                .unwrap();
            }
            c.execute(&ctx(0), &FlCall::EvaluateRound { round })
                .unwrap();
        }
        assert!(c.finished());
        // Cumulative SV equals the sum over round records.
        for (pos, owner) in (0..3u32).enumerate() {
            let total: f64 = c.history().iter().map(|r| r.per_owner_sv[pos]).sum();
            let ledger = c.contributions()[&owner];
            assert!((ledger - total).abs() < 1e-12);
        }
        // Further activity is rejected.
        assert!(matches!(
            c.execute(&ctx(0), &FlCall::EvaluateRound { round: 2 }),
            Err(FlError::ProtocolFinished)
        ));
    }

    #[test]
    fn replicas_stay_digest_identical() {
        let mut a = contract(3, 2);
        let mut b = contract(3, 2);
        assert_eq!(a.state_digest(), b.state_digest());
        advertise_all(&mut a, 3);
        advertise_all(&mut b, 3);
        assert_eq!(a.state_digest(), b.state_digest());
        let update = plain_update(&a, 0.2);
        for c in [&mut a, &mut b] {
            c.execute(
                &ctx(1),
                &FlCall::SubmitMaskedUpdate {
                    round: 0,
                    masked: update.clone(),
                },
            )
            .unwrap();
        }
        assert_eq!(a.state_digest(), b.state_digest());
    }

    #[test]
    fn digest_changes_with_state() {
        let mut c = contract(3, 2);
        let before = c.state_digest();
        advertise_all(&mut c, 3);
        assert_ne!(c.state_digest(), before);
    }

    #[test]
    fn sharded_round_groups_partition_the_owner_set() {
        for (n, k, m) in [(10usize, 3usize, 2usize), (9, 9, 1), (32, 4, 3)] {
            let (plan, groups) = sharded_round_groups(7, 5, n, k, m);
            assert_eq!(plan.num_cohorts(), k);
            assert_eq!(groups.len(), k);
            let mut seen: Vec<usize> = groups.iter().flatten().flatten().copied().collect();
            assert_eq!(seen.len(), n, "every owner grouped exactly once");
            seen.sort_unstable();
            assert_eq!(seen, (0..n).collect::<Vec<_>>());
            for (c, gs) in groups.iter().enumerate() {
                assert_eq!(gs.len(), m, "each cohort runs m groups");
                let mut members: Vec<usize> = gs.iter().flatten().copied().collect();
                members.sort_unstable();
                let mut expect = plan.cohorts()[c].clone();
                expect.sort_unstable();
                assert_eq!(members, expect, "cohort {c} groups cover its members");
            }
        }
    }

    #[test]
    fn flat_round_record_has_no_cohort_section() {
        let mut c = contract(4, 2);
        run_one_round(&mut c, 4);
        assert!(c.history()[0].cohorts.is_empty());
    }

    #[test]
    #[should_panic(expected = "num_cohorts out of range")]
    fn genesis_rejects_zero_cohorts() {
        let mut params = test_params(4, 2);
        params.num_cohorts = 0;
        FlContract::genesis(params, SyntheticDigits::small().generate(99));
    }

    #[test]
    #[should_panic(expected = "num_cohorts out of range")]
    fn genesis_rejects_more_cohorts_than_owners() {
        let mut params = test_params(4, 1);
        params.num_cohorts = 5;
        FlContract::genesis(params, SyntheticDigits::small().generate(99));
    }

    #[test]
    #[should_panic(expected = "num_groups exceeds the smallest cohort")]
    fn genesis_rejects_groups_wider_than_smallest_cohort() {
        let mut params = test_params(4, 3);
        params.num_cohorts = 2;
        FlContract::genesis(params, SyntheticDigits::small().generate(99));
    }

    #[test]
    #[should_panic(expected = "SV method must support the cohort count")]
    fn genesis_rejects_method_incapable_of_cohort_count() {
        let mut params = test_params(26, 1);
        params.num_cohorts = 26;
        FlContract::genesis(params, SyntheticDigits::small().generate(99));
    }

    #[test]
    fn sharded_history_snapshot_roundtrip() {
        // CohortEvidence must survive the snapshot/restore cycle and
        // land on the identical state digest.
        let (n, m, k) = (8usize, 2usize, 2usize);
        let mut w = dropout_lifecycle::masked_world_sharded(n, m, k);
        for i in 0..n {
            let masked = dropout_lifecycle::masked_submission(&w, i, 0);
            w.contract
                .execute(
                    &ctx(i as u32),
                    &FlCall::SubmitMaskedUpdate { round: 0, masked },
                )
                .unwrap();
        }
        w.contract
            .execute(&ctx(0), &FlCall::EvaluateRound { round: 0 })
            .unwrap();
        assert!(!w.contract.history()[0].cohorts.is_empty());
        let snap = w.contract.snapshot_state();
        let restored = FlContract::restore(
            w.contract.params().clone(),
            SyntheticDigits::small().generate(99),
            &snap,
        )
        .unwrap();
        assert_eq!(restored.state_digest(), w.contract.state_digest());
    }

    mod dropout_lifecycle {
        //! The round state machine under real pairwise masks: escrow,
        //! dropout declaration, share verification, survivor-only
        //! evaluation.

        use super::*;
        use fl_crypto::dh::{DhGroup, DhKeyPair};
        use fl_crypto::dropout::escrow_private_key;
        use fl_crypto::secure_agg::{KeyDirectory, PartyState};
        use fl_crypto::ChaChaPrg;

        pub(super) struct MaskedWorld {
            pub contract: FlContract,
            pub keypairs: Vec<DhKeyPair>,
            /// `escrowed[i][j]`: share of owner i's key held by owner j.
            pub escrowed: Vec<Vec<Share>>,
            pub groups: Vec<Vec<usize>>,
            pub weights: Vec<Vec<f64>>,
        }

        /// Builds a contract with real DH keys advertised, escrows
        /// committed, and per-owner plaintext weights prepared.
        pub(super) fn masked_world(n: usize, m: usize) -> MaskedWorld {
            masked_world_from(super::contract(n, m))
        }

        /// Like [`masked_world`] but sharded into `k` cohorts: the
        /// group directories are the flattened per-cohort groupings of
        /// the round-0 cohort plan.
        pub(super) fn masked_world_sharded(n: usize, m: usize, k: usize) -> MaskedWorld {
            let mut params = test_params(n, m);
            params.num_cohorts = k;
            let test_set = SyntheticDigits::small().generate(99);
            masked_world_from(FlContract::genesis(params, test_set))
        }

        fn masked_world_from(contract: FlContract) -> MaskedWorld {
            let n = contract.params().owners.len();
            let m = contract.params().num_groups;
            let k = contract.params().num_cohorts;
            let dh = DhGroup::simulation_256();
            let shamir = Shamir::default();
            let threshold = contract.params().escrow_threshold;
            let keypairs: Vec<DhKeyPair> = (0..n)
                .map(|i| dh.keypair_from_seed(&[i as u8 + 1; 32]))
                .collect();
            let mut c = contract;
            for (i, kp) in keypairs.iter().enumerate() {
                c.execute(
                    &ctx(i as u32),
                    &FlCall::AdvertiseKey {
                        public_key: kp.public.to_be_bytes(),
                    },
                )
                .unwrap();
            }
            let escrowed: Vec<Vec<Share>> = keypairs
                .iter()
                .enumerate()
                .map(|(i, kp)| {
                    let mut prg = ChaChaPrg::from_seed(&[i as u8 + 50; 32]);
                    escrow_private_key(&shamir, kp, threshold, n, &mut prg).unwrap()
                })
                .collect();
            for (i, shares) in escrowed.iter().enumerate() {
                let commitments: Vec<Hash32> = shares
                    .iter()
                    .map(|s| share_commitment(i as u32, s))
                    .collect();
                c.execute(&ctx(i as u32), &FlCall::EscrowKeyShares { commitments })
                    .unwrap();
            }
            let groups: Vec<Vec<usize>> = if k > 1 {
                sharded_round_groups(c.params().permutation_seed, 0, n, k, m)
                    .1
                    .into_iter()
                    .flatten()
                    .collect()
            } else {
                grouping(&permutation(c.params().permutation_seed, 0, n), m)
            };
            let dim = c.params().model_dim;
            let weights: Vec<Vec<f64>> =
                (0..n).map(|i| vec![0.1 * (i as f64 + 1.0); dim]).collect();
            MaskedWorld {
                contract: c,
                keypairs,
                escrowed,
                groups,
                weights,
            }
        }

        pub(super) fn masked_submission(w: &MaskedWorld, i: usize, round: u64) -> Vec<u64> {
            let codec = FixedCodec::new(w.contract.params().frac_bits);
            let group = w
                .groups
                .iter()
                .find(|g| g.contains(&i))
                .expect("every owner grouped");
            if group.len() == 1 {
                return codec.encode_vec(&w.weights[i]);
            }
            let dh = DhGroup::simulation_256();
            let mut dir = KeyDirectory::new();
            for &j in group {
                dir.advertise(j as u32, w.keypairs[j].public).unwrap();
            }
            let party = PartyState::derive(&dh, i as u32, &w.keypairs[i], &dir).unwrap();
            party.masked_update(&codec, round, &w.weights[i])
        }

        pub(super) fn recovery_share_call(
            w: &MaskedWorld,
            dropped: usize,
            provider: usize,
        ) -> FlCall {
            let share = &w.escrowed[dropped][provider];
            FlCall::SubmitRecoveryShare {
                round: 0,
                dropped: dropped as u32,
                share_x: share.x,
                share_y: share.y.to_be_bytes(),
            }
        }

        #[test]
        fn escrow_requires_key_size_and_uniqueness() {
            let mut c = contract(3, 2);
            let commitments = vec![Hash32::ZERO; 3];
            assert!(matches!(
                c.execute(
                    &ctx(0),
                    &FlCall::EscrowKeyShares {
                        commitments: commitments.clone()
                    }
                ),
                Err(FlError::EscrowWithoutKey(0))
            ));
            advertise_all(&mut c, 3);
            assert!(matches!(
                c.execute(
                    &ctx(0),
                    &FlCall::EscrowKeyShares {
                        commitments: vec![Hash32::ZERO; 2]
                    }
                ),
                Err(FlError::EscrowSizeMismatch {
                    expected: 3,
                    got: 2
                })
            ));
            c.execute(
                &ctx(0),
                &FlCall::EscrowKeyShares {
                    commitments: commitments.clone(),
                },
            )
            .unwrap();
            assert_eq!(c.escrow_of(0), Some(&commitments[..]));
            assert!(matches!(
                c.execute(&ctx(0), &FlCall::EscrowKeyShares { commitments }),
                Err(FlError::EscrowAlreadyCommitted(0))
            ));
        }

        #[test]
        fn dropout_round_completes_on_survivors_only() {
            // 4 owners in ONE group (everyone pairwise masked), owner 2
            // vanishes after masking. Threshold = 3.
            let mut w = masked_world(4, 1);
            let dropped = 2usize;
            for i in [0usize, 1, 3] {
                let masked = masked_submission(&w, i, 0);
                w.contract
                    .execute(
                        &ctx(i as u32),
                        &FlCall::SubmitMaskedUpdate { round: 0, masked },
                    )
                    .unwrap();
            }

            // Evaluation with a missing owner opens recovery.
            let out = w
                .contract
                .execute(&ctx(0), &FlCall::EvaluateRound { round: 0 })
                .unwrap();
            assert!(
                out.events[0].contains("entered recovery"),
                "{:?}",
                out.events
            );
            assert_eq!(
                w.contract.phase(),
                &RoundPhase::Recovering { dropped: vec![2] }
            );

            // Late submission from the dropped owner is rejected.
            let late = masked_submission(&w, dropped, 0);
            assert!(matches!(
                w.contract.execute(
                    &ctx(2),
                    &FlCall::SubmitMaskedUpdate {
                        round: 0,
                        masked: late
                    }
                ),
                Err(FlError::RoundInRecovery(0))
            ));

            // Recovery-share validation: wrong target, dead sender,
            // foreign evaluation point, tampered value, early evaluate.
            assert!(matches!(
                w.contract.execute(&ctx(0), &recovery_share_call(&w, 1, 0)),
                Err(FlError::NotDropped(1))
            ));
            assert!(matches!(
                w.contract.execute(&ctx(2), &recovery_share_call(&w, 2, 2)),
                Err(FlError::NotASurvivor(2))
            ));
            assert!(matches!(
                w.contract.execute(&ctx(0), &recovery_share_call(&w, 2, 1)),
                Err(FlError::BadRecoveryShare {
                    expected_x: 1,
                    got: 2
                })
            ));
            let tampered = FlCall::SubmitRecoveryShare {
                round: 0,
                dropped: 2,
                share_x: 1,
                share_y: vec![0xAB; 32],
            };
            assert!(matches!(
                w.contract.execute(&ctx(0), &tampered),
                Err(FlError::ShareCommitmentMismatch {
                    dropped: 2,
                    provider: 0
                })
            ));
            // An oversized share value must be a clean error, never a
            // parse panic that would crash every replica.
            let oversized = FlCall::SubmitRecoveryShare {
                round: 0,
                dropped: 2,
                share_x: 1,
                share_y: vec![0xAB; 33],
            };
            assert!(matches!(
                w.contract.execute(&ctx(0), &oversized),
                Err(FlError::BadShareEncoding {
                    expected: 32,
                    got: 33
                })
            ));
            assert!(matches!(
                w.contract
                    .execute(&ctx(0), &FlCall::EvaluateRound { round: 0 }),
                Err(FlError::RecoveryIncomplete {
                    dropped: 2,
                    have: 0,
                    need: 3
                })
            ));

            // Three survivors reveal their verified shares; duplicates
            // are rejected.
            for provider in [0usize, 1, 3] {
                w.contract
                    .execute(
                        &ctx(provider as u32),
                        &recovery_share_call(&w, dropped, provider),
                    )
                    .unwrap();
            }
            assert!(matches!(
                w.contract
                    .execute(&ctx(0), &recovery_share_call(&w, dropped, 0)),
                Err(FlError::DuplicateRecoveryShare {
                    dropped: 2,
                    provider: 0
                })
            ));

            // The second EvaluateRound completes the round on survivors.
            let out = w
                .contract
                .execute(&ctx(0), &FlCall::EvaluateRound { round: 0 })
                .unwrap();
            assert!(out.events[0].contains("survivors 3/4"), "{:?}", out.events);
            assert_eq!(w.contract.current_round(), 1);
            assert_eq!(w.contract.phase(), &RoundPhase::Submitting);

            let record = &w.contract.history()[0];
            assert_eq!(record.survivors, vec![0, 1, 3]);
            assert_eq!(record.dropped, vec![2]);
            assert_eq!(record.per_owner_sv[2], 0.0);
            assert_eq!(record.recovery.len(), 1);
            assert_eq!(record.recovery[0].dropped, 2);
            assert_eq!(record.recovery[0].providers, vec![0, 1, 3]);

            // Survivor-only aggregate: the single group model must be
            // the survivors' mean — masks (incl. the dropped owner's
            // residuals) stripped exactly.
            let expect = (0.1 + 0.2 + 0.4) / 3.0;
            for v in w.contract.global_model() {
                assert!((v - expect).abs() < 1e-6, "got {v}, want {expect}");
            }
        }

        #[test]
        fn recovery_state_is_part_of_the_digest() {
            // Two replicas agree while both track the same lifecycle;
            // declaring the dropout (and each accepted share) moves the
            // digest, so replicas cannot silently disagree on phase.
            let build = || {
                let mut w = masked_world(4, 1);
                for i in [0usize, 1, 3] {
                    let masked = masked_submission(&w, i, 0);
                    w.contract
                        .execute(
                            &ctx(i as u32),
                            &FlCall::SubmitMaskedUpdate { round: 0, masked },
                        )
                        .unwrap();
                }
                w
            };
            let mut a = build();
            let b = build();
            assert_eq!(a.contract.state_digest(), b.contract.state_digest());
            a.contract
                .execute(&ctx(0), &FlCall::EvaluateRound { round: 0 })
                .unwrap();
            assert_ne!(
                a.contract.state_digest(),
                b.contract.state_digest(),
                "entering recovery must move the state root"
            );
            let before_share = a.contract.state_digest();
            a.contract
                .execute(&ctx(0), &recovery_share_call(&a, 2, 0))
                .unwrap();
            assert_ne!(
                a.contract.state_digest(),
                before_share,
                "every accepted share must move the state root"
            );
        }

        #[test]
        fn full_round_records_everyone_as_survivor() {
            let mut w = masked_world(4, 2);
            for i in 0..4usize {
                let masked = masked_submission(&w, i, 0);
                w.contract
                    .execute(
                        &ctx(i as u32),
                        &FlCall::SubmitMaskedUpdate { round: 0, masked },
                    )
                    .unwrap();
            }
            w.contract
                .execute(&ctx(0), &FlCall::EvaluateRound { round: 0 })
                .unwrap();
            let record = &w.contract.history()[0];
            assert_eq!(record.survivors, vec![0, 1, 2, 3]);
            assert!(record.dropped.is_empty());
            assert!(record.recovery.is_empty());
        }

        #[test]
        fn sharded_round_emits_cohort_evidence_and_composes() {
            // 8 owners, 2 cohorts of 4, 2 groups per cohort, nobody
            // drops: the hierarchical path must bind per-cohort
            // evidence into the record and compose within-cohort
            // values with the second-level cohort values.
            let (n, m, k) = (8usize, 2usize, 2usize);
            let mut w = masked_world_sharded(n, m, k);
            for i in 0..n {
                let masked = masked_submission(&w, i, 0);
                w.contract
                    .execute(
                        &ctx(i as u32),
                        &FlCall::SubmitMaskedUpdate { round: 0, masked },
                    )
                    .unwrap();
            }
            let out = w
                .contract
                .execute(&ctx(0), &FlCall::EvaluateRound { round: 0 })
                .unwrap();
            assert!(out.events[0].contains("k=2 cohorts"), "{:?}", out.events);

            let record = &w.contract.history()[0];
            assert_eq!(record.cohorts.len(), k);
            assert_eq!(record.groups.len(), k * m);
            assert_eq!(record.per_group_sv.len(), k * m);

            // The cohort memberships partition the owner set.
            let mut all: Vec<usize> = record
                .cohorts
                .iter()
                .flat_map(|c| c.members.clone())
                .collect();
            all.sort_unstable();
            assert_eq!(all, (0..n).collect::<Vec<_>>());

            for (c, ev) in record.cohorts.iter().enumerate() {
                assert_eq!(ev.survivors, ev.members, "nobody dropped");
                assert!(ev.dropped.is_empty());
                assert_eq!(ev.sv_method, SvMethod::GroupExact);
                // Composition efficiency: each cohort's member values
                // sum to the cohort's second-level value.
                let total: f64 = ev.members.iter().map(|&i| record.per_owner_sv[i]).sum();
                assert!(
                    (total - ev.sv).abs() < 1e-9,
                    "cohort {c}: members sum {total}, cohort SV {}",
                    ev.sv
                );
            }
            // The record totals include the second-level game on top
            // of the per-cohort passes.
            let within: usize = record.cohorts.iter().map(|c| c.utility_evaluations).sum();
            assert!(record.utility_evaluations > within);
        }

        #[test]
        fn fully_dropped_cohort_scores_zero_and_survives_evaluation() {
            // 9 owners, 3 cohorts of 3, one group per cohort. Every
            // member of one cohort drops after masking; the 6 survivors
            // (>= threshold 5) recover the keys and the round completes
            // with the dead cohort out of the second-level game.
            let (n, m, k) = (9usize, 1usize, 3usize);
            let mut w = masked_world_sharded(n, m, k);
            let threshold = w.contract.params().escrow_threshold;
            let (plan, _) = sharded_round_groups(w.contract.params().permutation_seed, 0, n, k, m);
            let dead: Vec<usize> = {
                let mut v = plan.cohorts()[0].clone();
                v.sort_unstable();
                v
            };
            let survivors: Vec<usize> = (0..n).filter(|i| !dead.contains(i)).collect();

            for &i in &survivors {
                let masked = masked_submission(&w, i, 0);
                w.contract
                    .execute(
                        &ctx(i as u32),
                        &FlCall::SubmitMaskedUpdate { round: 0, masked },
                    )
                    .unwrap();
            }
            w.contract
                .execute(
                    &ctx(survivors[0] as u32),
                    &FlCall::EvaluateRound { round: 0 },
                )
                .unwrap();
            assert!(matches!(w.contract.phase(), RoundPhase::Recovering { .. }));
            for &d in &dead {
                for &p in survivors.iter().take(threshold) {
                    w.contract
                        .execute(&ctx(p as u32), &recovery_share_call(&w, d, p))
                        .unwrap();
                }
            }
            w.contract
                .execute(
                    &ctx(survivors[0] as u32),
                    &FlCall::EvaluateRound { round: 0 },
                )
                .unwrap();

            let record = &w.contract.history()[0];
            assert_eq!(record.survivors, survivors);
            assert_eq!(record.dropped, dead);
            // The dead cohort stays evidence-complete but worthless.
            let ev0 = &record.cohorts[0];
            assert!(ev0.survivors.is_empty());
            assert_eq!(ev0.sv, 0.0);
            assert_eq!(ev0.utility_evaluations, 0);
            for &i in &dead {
                assert_eq!(record.per_owner_sv[i], 0.0);
            }
            // Live cohorts still compose to their second-level values.
            for ev in &record.cohorts[1..] {
                let total: f64 = ev.members.iter().map(|&i| record.per_owner_sv[i]).sum();
                assert!((total - ev.sv).abs() < 1e-9);
            }
            assert_eq!(w.contract.current_round(), 1);
            assert_eq!(w.contract.phase(), &RoundPhase::Submitting);
        }
    }

    #[test]
    fn masked_aggregation_cancels_for_real_masks() {
        // End-to-end through the contract: three owners in ONE group mask
        // pairwise; the group model must equal the mean of the plaintext.
        use fl_crypto::dh::DhGroup;
        use fl_crypto::secure_agg::{KeyDirectory, PartyState};

        let mut c = contract(3, 1); // single group: all three cancel
        let dh = DhGroup::simulation_256();
        let codec = FixedCodec::new(c.params.frac_bits);
        let dim = c.params.model_dim;

        let keypairs: Vec<_> = (0..3u8)
            .map(|i| dh.keypair_from_seed(&[i + 1; 32]))
            .collect();
        let mut dir = KeyDirectory::new();
        for (i, kp) in keypairs.iter().enumerate() {
            dir.advertise(i as u32, kp.public).unwrap();
        }
        for (i, kp) in keypairs.iter().enumerate() {
            c.execute(
                &ctx(i as u32),
                &FlCall::AdvertiseKey {
                    public_key: kp.public.to_be_bytes(),
                },
            )
            .unwrap();
        }
        let plain: Vec<Vec<f64>> = (0..3).map(|i| vec![0.1 * (i as f64 + 1.0); dim]).collect();
        for (i, kp) in keypairs.iter().enumerate() {
            let party = PartyState::derive(&dh, i as u32, kp, &dir).unwrap();
            let masked = party.masked_update(&codec, 0, &plain[i]);
            c.execute(
                &ctx(i as u32),
                &FlCall::SubmitMaskedUpdate { round: 0, masked },
            )
            .unwrap();
        }
        c.execute(&ctx(0), &FlCall::EvaluateRound { round: 0 })
            .unwrap();
        // Global model = the single group model = mean of plaintexts = 0.2.
        for w in c.global_model() {
            assert!((w - 0.2).abs() < 1e-6, "got {w}");
        }
    }

    #[test]
    fn fl_call_decode_roundtrips_every_variant() {
        let calls = [
            FlCall::AdvertiseKey {
                public_key: vec![7; 32],
            },
            FlCall::SubmitMaskedUpdate {
                round: 3,
                masked: vec![1, u64::MAX, 0],
            },
            FlCall::EvaluateRound { round: 9 },
            FlCall::EscrowKeyShares {
                commitments: vec![Hash32::of_bytes(b"a"), Hash32::of_bytes(b"b")],
            },
            FlCall::SubmitRecoveryShare {
                round: 1,
                dropped: 2,
                share_x: 3,
                share_y: vec![0xde, 0xad],
            },
        ];
        for call in &calls {
            let enc = call.encode();
            assert_eq!(&FlCall::decode(&enc).unwrap(), call);
            // Strict: a truncated call must never decode.
            assert!(FlCall::decode(&enc[..enc.len() - 1]).is_err());
        }
        assert!(FlCall::decode(&[0xee]).is_err(), "unknown tag rejected");
    }

    #[test]
    fn snapshot_state_restores_to_identical_digest() {
        // Drive a contract through a full round — keys, escrows, masked
        // updates, evaluation — then snapshot, restore, and require the
        // restored contract to be digest-identical AND behaviourally
        // live (it must accept the next round's traffic).
        let mut c = contract(3, 2);
        advertise_all(&mut c, 3);
        for i in 0..3u32 {
            let masked = plain_update(&c, 0.5);
            c.execute(&ctx(i), &FlCall::SubmitMaskedUpdate { round: 0, masked })
                .unwrap();
        }
        c.execute(&ctx(0), &FlCall::EvaluateRound { round: 0 })
            .unwrap();
        assert_eq!(c.history().len(), 1);

        let blob = c.snapshot_state();
        let test_set = SyntheticDigits::small().generate(99);
        let mut restored =
            FlContract::restore(test_params(3, 2), test_set, &blob).expect("snapshot decodes");
        assert_eq!(
            restored.state_digest(),
            c.state_digest(),
            "restore must be digest-exact"
        );
        assert_eq!(restored.history().len(), 1);

        // The restored contract keeps executing in lockstep.
        for i in 0..3u32 {
            let call = FlCall::SubmitMaskedUpdate {
                round: 1,
                masked: plain_update(&restored, 0.25),
            };
            restored.execute(&ctx(i), &call).unwrap();
            c.execute(&ctx(i), &call).unwrap();
        }
        assert_eq!(restored.state_digest(), c.state_digest());
    }

    #[test]
    fn snapshot_restore_rejects_malformed_blobs() {
        let c = contract(3, 2);
        let blob = c.snapshot_state();
        let test_set = SyntheticDigits::small().generate(99);
        // Truncations and trailing garbage must error, never panic.
        for cut in [0, 1, blob.len() / 2, blob.len() - 1] {
            assert!(
                FlContract::restore(test_params(3, 2), test_set.clone(), &blob[..cut]).is_err(),
                "prefix of {cut} bytes"
            );
        }
        let mut padded = blob;
        padded.push(0);
        assert!(FlContract::restore(test_params(3, 2), test_set, &padded).is_err());
    }
}
