//! The federated-learning smart contract.
//!
//! Paper Sect. III: "in our setting, Smart contract builds the FL model
//! and evaluates the contribution." The contract is a deterministic state
//! machine executed identically by every miner:
//!
//! * **AdvertiseKey** — a data owner registers its DH public key (round 0
//!   of secure aggregation).
//! * **SubmitMaskedUpdate** — a data owner submits its masked local
//!   weights for the current round. The contract can *never* unmask an
//!   individual submission: masks only cancel in the within-group sum.
//! * **EvaluateRound** — once every owner has submitted, anyone may
//!   trigger evaluation: the contract forms per-group secure aggregates,
//!   decodes the group models, estimates contributions over the group
//!   coalition game with the **method selected in the round
//!   configuration** ([`SvMethod`], dispatched through the
//!   [`shapley::estimator::SvEstimator`] trait), credits each owner's
//!   contribution, and publishes the new global model.
//!
//! Everything the contract decides — including *which* estimator ran and
//! its sampling diagnostics — is emitted as events and captured in the
//! state digest, so a fraudulent leader cannot tamper with the
//! evaluation (or quietly swap the method) without every honest miner's
//! re-execution diverging.

use std::collections::BTreeMap;

use fl_chain::codec::Encode;
use fl_chain::contract::{ExecutionOutcome, SmartContract, TxContext};
use fl_chain::gas::GasSchedule;
use fl_chain::hash::Hash32;
use fl_chain::tx::AccountId;
use fl_ml::dataset::Dataset;
use fl_ml::metrics::model_accuracy;
use fl_ml::LogisticModel;
use numeric::FixedCodec;
use shapley::estimator::{Exact, MonteCarlo, Stratified, SvEstimate, SvEstimator};
use shapley::group::{grouping, permutation, GroupModelGame};
use shapley::monte_carlo::McConfig;
use shapley::stratified::StratifiedConfig;
use shapley::utility::{CachedUtility, ModelUtility};

use crate::config::SvMethod;

/// Static protocol parameters agreed at the off-chain setup stage.
#[derive(Debug, Clone, PartialEq)]
pub struct FlParams {
    /// Participating data owners (also the miner set).
    pub owners: Vec<AccountId>,
    /// Number of SV groups `m`.
    pub num_groups: usize,
    /// Contribution-evaluation method every miner dispatches to.
    pub sv_method: SvMethod,
    /// Public permutation seed `e`.
    pub permutation_seed: u64,
    /// Total rounds `R`.
    pub total_rounds: u64,
    /// Flat model dimension (`(features+1) × classes`).
    pub model_dim: usize,
    /// Feature count of the model.
    pub num_features: usize,
    /// Class count of the model.
    pub num_classes: usize,
    /// Fixed-point fractional bits of the aggregation ring.
    pub frac_bits: u32,
}

impl Encode for FlParams {
    fn encode_to(&self, out: &mut Vec<u8>) {
        self.owners.encode_to(out);
        self.num_groups.encode_to(out);
        self.sv_method.encode_to(out);
        self.permutation_seed.encode_to(out);
        self.total_rounds.encode_to(out);
        self.model_dim.encode_to(out);
        self.num_features.encode_to(out);
        self.num_classes.encode_to(out);
        (self.frac_bits as u64).encode_to(out);
    }
}

/// Contract calls.
#[derive(Debug, Clone, PartialEq)]
pub enum FlCall {
    /// Register the sender's DH public key (big-endian bytes).
    AdvertiseKey {
        /// Public key bytes.
        public_key: Vec<u8>,
    },
    /// Submit the sender's masked fixed-point update for `round`.
    SubmitMaskedUpdate {
        /// Target round.
        round: u64,
        /// Masked ring vector of length `model_dim`.
        masked: Vec<u64>,
    },
    /// Trigger evaluation of `round` once all submissions are in.
    EvaluateRound {
        /// Round to evaluate.
        round: u64,
    },
}

impl Encode for FlCall {
    fn encode_to(&self, out: &mut Vec<u8>) {
        match self {
            FlCall::AdvertiseKey { public_key } => {
                out.push(0);
                public_key.encode_to(out);
            }
            FlCall::SubmitMaskedUpdate { round, masked } => {
                out.push(1);
                round.encode_to(out);
                masked.encode_to(out);
            }
            FlCall::EvaluateRound { round } => {
                out.push(2);
                round.encode_to(out);
            }
        }
    }
}

/// Contract-level errors (abort the block proposal).
#[derive(Debug, Clone, PartialEq)]
pub enum FlError {
    /// Sender is not a registered data owner.
    NotAnOwner(AccountId),
    /// Sender advertised a key twice.
    KeyAlreadyAdvertised(AccountId),
    /// An update arrived before all keys were advertised.
    KeysIncomplete {
        /// Keys registered so far.
        have: usize,
        /// Keys required.
        need: usize,
    },
    /// Call targeted the wrong round.
    WrongRound {
        /// Current round of the contract.
        expected: u64,
        /// Round named by the call.
        got: u64,
    },
    /// Sender already submitted this round.
    DuplicateSubmission(AccountId),
    /// Update has the wrong dimension.
    DimMismatch {
        /// Expected length.
        expected: usize,
        /// Received length.
        got: usize,
    },
    /// Evaluation requested before every owner submitted.
    SubmissionsIncomplete {
        /// Owners that have not submitted.
        missing: Vec<AccountId>,
    },
    /// All `total_rounds` rounds already evaluated.
    ProtocolFinished,
}

impl std::fmt::Display for FlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::NotAnOwner(id) => write!(f, "account {id} is not a data owner"),
            Self::KeyAlreadyAdvertised(id) => {
                write!(f, "account {id} already advertised a key")
            }
            Self::KeysIncomplete { have, need } => {
                write!(f, "key exchange incomplete: {have}/{need}")
            }
            Self::WrongRound { expected, got } => {
                write!(f, "wrong round: contract at {expected}, call names {got}")
            }
            Self::DuplicateSubmission(id) => {
                write!(f, "account {id} already submitted this round")
            }
            Self::DimMismatch { expected, got } => {
                write!(f, "update dimension {got} != {expected}")
            }
            Self::SubmissionsIncomplete { missing } => {
                write!(f, "missing submissions from {missing:?}")
            }
            Self::ProtocolFinished => write!(f, "all rounds already evaluated"),
        }
    }
}

impl std::error::Error for FlError {}

/// Immutable record of one evaluated round — the public audit trail.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundRecord {
    /// Round number.
    pub round: u64,
    /// The estimator that produced this round's values — the method is
    /// part of the public audit trail, not an implementation detail.
    pub sv_method: SvMethod,
    /// Group memberships used (owner *indices*, not account ids).
    pub groups: Vec<Vec<usize>>,
    /// Per-group Shapley values `V_j`.
    pub per_group_sv: Vec<f64>,
    /// Per-owner Shapley values `v_i^r` (indexed by owner position).
    pub per_owner_sv: Vec<f64>,
    /// Test accuracy of the round's global model.
    pub global_accuracy: f64,
    /// Utility evaluations performed (`2^m` for the exact method; the
    /// sampling methods' cost envelope otherwise).
    pub utility_evaluations: usize,
    /// Independent samples drawn by a sampling estimator (0 for exact).
    pub samples: usize,
}

impl Encode for RoundRecord {
    fn encode_to(&self, out: &mut Vec<u8>) {
        self.round.encode_to(out);
        self.sv_method.encode_to(out);
        self.groups.encode_to(out);
        self.per_group_sv.encode_to(out);
        self.per_owner_sv.encode_to(out);
        self.global_accuracy.encode_to(out);
        self.utility_evaluations.encode_to(out);
        self.samples.encode_to(out);
    }
}

/// Derives the round's public sampling seed from the permutation seed.
///
/// A different multiplier than the grouping permutation's golden-ratio
/// stream, so the subsets a sampling estimator draws are not correlated
/// with the round's group assignment. Pure function of public on-chain
/// data — any miner or auditor re-derives it.
fn sampling_seed(permutation_seed: u64, round: u64) -> u64 {
    permutation_seed ^ round.wrapping_mul(0xd1b5_4a32_d192_ed03) ^ 0x5eed_5a3f_0e1e_57a7
}

/// Test-set-accuracy utility `u(W)` shared by the contract and the
/// off-chain analysis (Fig. 1/2 ground truth uses the same function).
pub struct AccuracyUtility<'a> {
    test_set: &'a Dataset,
    num_features: usize,
    num_classes: usize,
}

impl<'a> AccuracyUtility<'a> {
    /// Builds the utility over a held-out test set.
    pub fn new(test_set: &'a Dataset, num_features: usize, num_classes: usize) -> Self {
        Self {
            test_set,
            num_features,
            num_classes,
        }
    }
}

impl ModelUtility for AccuracyUtility<'_> {
    fn of_model(&self, weights: &[f64]) -> f64 {
        let model = LogisticModel::from_flat(weights, self.num_features, self.num_classes);
        model_accuracy(&model, self.test_set)
    }

    fn of_empty(&self) -> f64 {
        // The zero model: uniform logits, argmax picks class 0 — exactly
        // what an untrained participant would deploy.
        let zero = LogisticModel::zeros(self.num_features, self.num_classes);
        model_accuracy(&zero, self.test_set)
    }
}

/// The contract state. `Clone` gives each miner an independent replica.
#[derive(Debug, Clone)]
pub struct FlContract {
    params: FlParams,
    /// Public test set for the utility function (agreed at setup; the
    /// *training* shards never leave their owners).
    test_set: Dataset,
    gas: GasSchedule,
    keys: BTreeMap<AccountId, Vec<u8>>,
    current_round: u64,
    submissions: BTreeMap<AccountId, Vec<u64>>,
    contributions: BTreeMap<AccountId, f64>,
    global_model: Vec<f64>,
    history: Vec<RoundRecord>,
}

impl FlContract {
    /// Creates the genesis contract state.
    ///
    /// # Panics
    ///
    /// Panics if the parameters are internally inconsistent.
    pub fn genesis(params: FlParams, test_set: Dataset) -> Self {
        assert!(params.owners.len() >= 2, "need >= 2 owners");
        assert!(
            (1..=params.owners.len()).contains(&params.num_groups),
            "num_groups out of range"
        );
        params
            .sv_method
            .validate_groups(params.num_groups)
            .expect("SV method must support the group count");
        assert_eq!(
            params.model_dim,
            (params.num_features + 1) * params.num_classes,
            "model_dim must equal (features+1)*classes"
        );
        assert_eq!(
            test_set.num_features(),
            params.num_features,
            "test set feature mismatch"
        );
        let global_model = vec![0.0; params.model_dim];
        let contributions = params.owners.iter().map(|&o| (o, 0.0)).collect();
        Self {
            params,
            test_set,
            gas: GasSchedule::default(),
            keys: BTreeMap::new(),
            current_round: 0,
            submissions: BTreeMap::new(),
            contributions,
            global_model,
            history: Vec::new(),
        }
    }

    /// Static parameters.
    pub fn params(&self) -> &FlParams {
        &self.params
    }

    /// Current (unevaluated) round.
    pub fn current_round(&self) -> u64 {
        self.current_round
    }

    /// True once all rounds are evaluated.
    pub fn finished(&self) -> bool {
        self.current_round >= self.params.total_rounds
    }

    /// Cumulative contribution (total SV `v_i = Σ_r v_i^r`) per owner.
    pub fn contributions(&self) -> &BTreeMap<AccountId, f64> {
        &self.contributions
    }

    /// The current global model (flat weights).
    pub fn global_model(&self) -> &[f64] {
        &self.global_model
    }

    /// The audit trail of evaluated rounds.
    pub fn history(&self) -> &[RoundRecord] {
        &self.history
    }

    /// Advertised public key of an owner.
    pub fn public_key_of(&self, owner: AccountId) -> Option<&[u8]> {
        self.keys.get(&owner).map(Vec::as_slice)
    }

    /// What a chain observer sees for `owner` this round: the masked
    /// submission (used by the privacy analysis).
    pub fn observed_submission(&self, owner: AccountId) -> Option<&[u64]> {
        self.submissions.get(&owner).map(Vec::as_slice)
    }

    fn owner_index(&self, id: AccountId) -> Result<usize, FlError> {
        self.params
            .owners
            .iter()
            .position(|&o| o == id)
            .ok_or(FlError::NotAnOwner(id))
    }

    fn advertise_key(
        &mut self,
        sender: AccountId,
        public_key: &[u8],
    ) -> Result<ExecutionOutcome, FlError> {
        self.owner_index(sender)?;
        if self.keys.contains_key(&sender) {
            return Err(FlError::KeyAlreadyAdvertised(sender));
        }
        self.keys.insert(sender, public_key.to_vec());
        let gas = self.gas.charge(public_key.len().div_ceil(8), 0);
        Ok(ExecutionOutcome::event(
            format!(
                "key: owner {sender} advertised ({}/{})",
                self.keys.len(),
                self.params.owners.len()
            ),
            gas,
        ))
    }

    fn submit_update(
        &mut self,
        sender: AccountId,
        round: u64,
        masked: &[u64],
    ) -> Result<ExecutionOutcome, FlError> {
        self.owner_index(sender)?;
        if self.finished() {
            return Err(FlError::ProtocolFinished);
        }
        if self.keys.len() != self.params.owners.len() {
            return Err(FlError::KeysIncomplete {
                have: self.keys.len(),
                need: self.params.owners.len(),
            });
        }
        if round != self.current_round {
            return Err(FlError::WrongRound {
                expected: self.current_round,
                got: round,
            });
        }
        if self.submissions.contains_key(&sender) {
            return Err(FlError::DuplicateSubmission(sender));
        }
        if masked.len() != self.params.model_dim {
            return Err(FlError::DimMismatch {
                expected: self.params.model_dim,
                got: masked.len(),
            });
        }
        self.submissions.insert(sender, masked.to_vec());
        let gas = self.gas.charge(masked.len(), masked.len());
        Ok(ExecutionOutcome::event(
            format!(
                "submit: owner {sender} round {round} ({}/{})",
                self.submissions.len(),
                self.params.owners.len()
            ),
            gas,
        ))
    }

    fn evaluate_round(&mut self, round: u64) -> Result<ExecutionOutcome, FlError> {
        if self.finished() {
            return Err(FlError::ProtocolFinished);
        }
        if round != self.current_round {
            return Err(FlError::WrongRound {
                expected: self.current_round,
                got: round,
            });
        }
        let missing: Vec<AccountId> = self
            .params
            .owners
            .iter()
            .copied()
            .filter(|o| !self.submissions.contains_key(o))
            .collect();
        if !missing.is_empty() {
            return Err(FlError::SubmissionsIncomplete { missing });
        }

        let n = self.params.owners.len();
        let m = self.params.num_groups;
        let codec = FixedCodec::new(self.params.frac_bits);

        // Lines 1–2 of Algorithm 1: the public grouping for this round.
        let pi = permutation(self.params.permutation_seed, round, n);
        let groups = grouping(&pi, m);

        // Line 3: per-group secure aggregates. Summing the group's masked
        // submissions cancels the within-group pairwise masks; dividing
        // by the group size yields the group model W_j.
        let group_models: Vec<Vec<f64>> = groups
            .iter()
            .map(|g| {
                let mut acc = vec![0u64; self.params.model_dim];
                for &idx in g {
                    let owner = self.params.owners[idx];
                    let masked = self
                        .submissions
                        .get(&owner)
                        .expect("completeness checked above");
                    FixedCodec::ring_add_assign(&mut acc, masked);
                }
                acc.iter().map(|&r| codec.decode_avg(r, g.len())).collect()
            })
            .collect();

        // Lines 4–6 (generalized): SV over the group coalition game,
        // dispatched through the estimator the round config selects.
        // Every miner derives the same sampling seed from the public
        // permutation seed and the round number, so sampling estimators
        // re-execute bit-identically.
        let utility = AccuracyUtility::new(
            &self.test_set,
            self.params.num_features,
            self.params.num_classes,
        );
        let game = GroupModelGame::new(&group_models, &utility);
        let estimate = Self::dispatch_estimator(
            self.params.sv_method,
            sampling_seed(self.params.permutation_seed, round),
            &game,
        );
        let SvEstimate {
            values: per_group_sv,
            utility_evaluations,
            diagnostics,
        } = estimate;

        // Line 7: uniform split within groups.
        let mut per_owner_sv = vec![0.0f64; n];
        for (j, group) in groups.iter().enumerate() {
            let share = per_group_sv[j] / group.len() as f64;
            for &idx in group {
                per_owner_sv[idx] = share;
                let owner = self.params.owners[idx];
                *self
                    .contributions
                    .get_mut(&owner)
                    .expect("initialized at genesis") += share;
            }
        }

        // New global model: the average of all group models.
        self.global_model = numeric::linalg::mean_vectors(&group_models);
        let global_accuracy = utility.of_model(&self.global_model);

        let method = self.params.sv_method;
        self.history.push(RoundRecord {
            round,
            sv_method: method,
            groups: groups.clone(),
            per_group_sv: per_group_sv.clone(),
            per_owner_sv,
            global_accuracy,
            utility_evaluations,
            samples: diagnostics.samples,
        });
        self.submissions.clear();
        self.current_round += 1;

        let gas = self.gas.charge(
            self.params.model_dim,
            utility_evaluations * self.params.model_dim,
        );
        Ok(ExecutionOutcome::event(
            format!(
                "evaluate: round {round}, m={m}, method {}, global acc \
                 {global_accuracy:.4}, group SVs {per_group_sv:?}",
                method.name()
            ),
            gas,
        ))
    }

    /// Runs the configured estimator over the round's group game.
    ///
    /// The method is on-chain configuration; the dispatch is the single
    /// point where that configuration meets the estimator layer, so
    /// every miner — and every later auditor replaying the chain —
    /// resolves the identical estimator with the identical seed.
    ///
    /// The sampling estimators revisit coalitions (e.g. every size-0
    /// stratum draws the same singleton), so their game is wrapped in
    /// [`CachedUtility`] — each distinct coalition model pays for one
    /// accuracy pass, with bit-identical values. The exact path visits
    /// each coalition exactly once and skips the cache.
    fn dispatch_estimator(
        method: SvMethod,
        seed: u64,
        game: &(impl shapley::utility::CoalitionUtility + Sync),
    ) -> SvEstimate {
        match method {
            SvMethod::GroupExact => Exact.estimate(game),
            SvMethod::MonteCarlo { permutations } => MonteCarlo {
                config: McConfig {
                    permutations: permutations as usize,
                    seed,
                    truncation_tolerance: None,
                },
            }
            .estimate(&CachedUtility::new(game)),
            SvMethod::Stratified {
                samples_per_stratum,
            } => Stratified {
                config: StratifiedConfig {
                    samples_per_stratum: samples_per_stratum as usize,
                    seed,
                },
            }
            .estimate(&CachedUtility::new(game)),
        }
    }
}

impl SmartContract for FlContract {
    type Call = FlCall;
    type Error = FlError;

    fn execute(&mut self, ctx: &TxContext, call: &FlCall) -> Result<ExecutionOutcome, FlError> {
        match call {
            FlCall::AdvertiseKey { public_key } => self.advertise_key(ctx.sender, public_key),
            FlCall::SubmitMaskedUpdate { round, masked } => {
                self.submit_update(ctx.sender, *round, masked)
            }
            FlCall::EvaluateRound { round } => self.evaluate_round(*round),
        }
    }

    fn state_digest(&self) -> Hash32 {
        let mut buf = Vec::new();
        self.params.encode_to(&mut buf);
        self.current_round.encode_to(&mut buf);
        (self.keys.len() as u64).encode_to(&mut buf);
        for (id, key) in &self.keys {
            id.encode_to(&mut buf);
            key.encode_to(&mut buf);
        }
        (self.submissions.len() as u64).encode_to(&mut buf);
        for (id, update) in &self.submissions {
            id.encode_to(&mut buf);
            update.encode_to(&mut buf);
        }
        for (id, value) in &self.contributions {
            id.encode_to(&mut buf);
            value.encode_to(&mut buf);
        }
        self.global_model.encode_to(&mut buf);
        self.history.encode_to(&mut buf);
        Hash32::of("transparent-fl/state", &buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fl_ml::dataset::SyntheticDigits;

    fn test_params(n: usize, m: usize) -> FlParams {
        FlParams {
            owners: (0..n as u32).collect(),
            num_groups: m,
            sv_method: SvMethod::GroupExact,
            permutation_seed: 7,
            total_rounds: 2,
            model_dim: (64 + 1) * 10,
            num_features: 64,
            num_classes: 10,
            frac_bits: 24,
        }
    }

    fn contract(n: usize, m: usize) -> FlContract {
        let test_set = SyntheticDigits::small().generate(99);
        FlContract::genesis(test_params(n, m), test_set)
    }

    fn ctx(sender: AccountId) -> TxContext {
        TxContext {
            block_height: 0,
            view: 0,
            sender,
            tx_index: 0,
        }
    }

    fn advertise_all(c: &mut FlContract, n: usize) {
        for i in 0..n as u32 {
            c.execute(
                &ctx(i),
                &FlCall::AdvertiseKey {
                    public_key: vec![i as u8 + 1; 32],
                },
            )
            .unwrap();
        }
    }

    /// Unmasked "masked" updates: with no pairwise masks (sum of zero
    /// masks), the ring math still holds — the contract cannot tell.
    fn plain_update(c: &FlContract, value: f64) -> Vec<u64> {
        let codec = FixedCodec::new(c.params.frac_bits);
        codec.encode_vec(&vec![value; c.params.model_dim])
    }

    #[test]
    fn key_exchange_rules() {
        let mut c = contract(3, 2);
        assert!(matches!(
            c.execute(
                &ctx(9),
                &FlCall::AdvertiseKey {
                    public_key: vec![1]
                }
            ),
            Err(FlError::NotAnOwner(9))
        ));
        c.execute(
            &ctx(0),
            &FlCall::AdvertiseKey {
                public_key: vec![1],
            },
        )
        .unwrap();
        assert!(matches!(
            c.execute(
                &ctx(0),
                &FlCall::AdvertiseKey {
                    public_key: vec![2]
                }
            ),
            Err(FlError::KeyAlreadyAdvertised(0))
        ));
        assert_eq!(c.public_key_of(0), Some(&[1u8][..]));
        assert_eq!(c.public_key_of(1), None);
    }

    #[test]
    fn submissions_require_complete_keys() {
        let mut c = contract(3, 2);
        let update = plain_update(&c, 0.1);
        assert!(matches!(
            c.execute(
                &ctx(0),
                &FlCall::SubmitMaskedUpdate {
                    round: 0,
                    masked: update
                }
            ),
            Err(FlError::KeysIncomplete { have: 0, need: 3 })
        ));
    }

    #[test]
    fn submission_validation() {
        let mut c = contract(3, 2);
        advertise_all(&mut c, 3);
        let update = plain_update(&c, 0.1);
        // Wrong round.
        assert!(matches!(
            c.execute(
                &ctx(0),
                &FlCall::SubmitMaskedUpdate {
                    round: 5,
                    masked: update.clone()
                }
            ),
            Err(FlError::WrongRound {
                expected: 0,
                got: 5
            })
        ));
        // Wrong dimension.
        assert!(matches!(
            c.execute(
                &ctx(0),
                &FlCall::SubmitMaskedUpdate {
                    round: 0,
                    masked: vec![0u64; 3]
                }
            ),
            Err(FlError::DimMismatch { .. })
        ));
        // Valid, then duplicate.
        c.execute(
            &ctx(0),
            &FlCall::SubmitMaskedUpdate {
                round: 0,
                masked: update.clone(),
            },
        )
        .unwrap();
        assert!(matches!(
            c.execute(
                &ctx(0),
                &FlCall::SubmitMaskedUpdate {
                    round: 0,
                    masked: update
                }
            ),
            Err(FlError::DuplicateSubmission(0))
        ));
    }

    #[test]
    fn evaluation_requires_all_submissions() {
        let mut c = contract(3, 2);
        advertise_all(&mut c, 3);
        let update = plain_update(&c, 0.1);
        c.execute(
            &ctx(0),
            &FlCall::SubmitMaskedUpdate {
                round: 0,
                masked: update,
            },
        )
        .unwrap();
        match c.execute(&ctx(0), &FlCall::EvaluateRound { round: 0 }) {
            Err(FlError::SubmissionsIncomplete { missing }) => {
                assert_eq!(missing, vec![1, 2]);
            }
            other => panic!("expected SubmissionsIncomplete, got {other:?}"),
        }
    }

    #[test]
    fn full_round_evaluates_and_advances() {
        let mut c = contract(4, 2);
        advertise_all(&mut c, 4);
        for i in 0..4u32 {
            let update = plain_update(&c, 0.01 * (i as f64 + 1.0));
            c.execute(
                &ctx(i),
                &FlCall::SubmitMaskedUpdate {
                    round: 0,
                    masked: update,
                },
            )
            .unwrap();
        }
        let out = c
            .execute(&ctx(0), &FlCall::EvaluateRound { round: 0 })
            .unwrap();
        assert!(out.events[0].contains("evaluate: round 0"));
        assert_eq!(c.current_round(), 1);
        assert_eq!(c.history().len(), 1);
        let record = &c.history()[0];
        assert_eq!(record.per_owner_sv.len(), 4);
        assert_eq!(record.utility_evaluations, 4); // 2^m, m=2
                                                   // Groups partition all 4 owners.
        let total: usize = record.groups.iter().map(Vec::len).sum();
        assert_eq!(total, 4);
        // Submissions cleared for the next round.
        assert!(c.observed_submission(0).is_none());
    }

    fn contract_with_method(n: usize, m: usize, method: SvMethod) -> FlContract {
        let mut params = test_params(n, m);
        params.sv_method = method;
        let test_set = SyntheticDigits::small().generate(99);
        FlContract::genesis(params, test_set)
    }

    fn run_one_round(c: &mut FlContract, n: usize) {
        advertise_all(c, n);
        for i in 0..n as u32 {
            let update = plain_update(c, 0.01 * (i as f64 + 1.0));
            c.execute(
                &ctx(i),
                &FlCall::SubmitMaskedUpdate {
                    round: 0,
                    masked: update,
                },
            )
            .unwrap();
        }
        c.execute(&ctx(0), &FlCall::EvaluateRound { round: 0 })
            .unwrap();
    }

    #[test]
    fn method_choice_appears_in_audit_record() {
        let method = SvMethod::Stratified {
            samples_per_stratum: 2,
        };
        let mut c = contract_with_method(4, 4, method);
        run_one_round(&mut c, 4);
        let record = &c.history()[0];
        assert_eq!(record.sv_method, method);
        // Stratified cost envelope: 2 evals × m² strata × k samples.
        assert_eq!(record.utility_evaluations, 2 * 16 * 2);
        assert_eq!(record.samples, 16 * 2);
        // Exact records report zero samples.
        let mut exact = contract_with_method(4, 4, SvMethod::GroupExact);
        run_one_round(&mut exact, 4);
        let exact_record = &exact.history()[0];
        assert_eq!(exact_record.sv_method, SvMethod::GroupExact);
        assert_eq!(exact_record.samples, 0);
        assert_eq!(exact_record.utility_evaluations, 16);
    }

    #[test]
    fn method_name_appears_in_round_event() {
        let mut c = contract_with_method(3, 3, SvMethod::MonteCarlo { permutations: 8 });
        advertise_all(&mut c, 3);
        for i in 0..3u32 {
            let update = plain_update(&c, 0.01);
            c.execute(
                &ctx(i),
                &FlCall::SubmitMaskedUpdate {
                    round: 0,
                    masked: update,
                },
            )
            .unwrap();
        }
        let out = c
            .execute(&ctx(0), &FlCall::EvaluateRound { round: 0 })
            .unwrap();
        assert!(
            out.events[0].contains("method monte_carlo"),
            "event must name the estimator: {}",
            out.events[0]
        );
    }

    #[test]
    fn method_is_part_of_the_state_digest() {
        // Two replicas that agree on everything but the estimator must
        // diverge from genesis: the method is consensus configuration.
        let a = contract_with_method(3, 2, SvMethod::GroupExact);
        let b = contract_with_method(3, 2, SvMethod::MonteCarlo { permutations: 50 });
        assert_ne!(a.state_digest(), b.state_digest());
    }

    #[test]
    fn sampling_replicas_stay_digest_identical() {
        // The sampling estimators are deterministic per (seed, round), so
        // two honest replicas running Stratified agree bit-for-bit.
        let method = SvMethod::Stratified {
            samples_per_stratum: 3,
        };
        let mut a = contract_with_method(4, 2, method);
        let mut b = contract_with_method(4, 2, method);
        run_one_round(&mut a, 4);
        run_one_round(&mut b, 4);
        assert_eq!(a.state_digest(), b.state_digest());
        assert_eq!(a.history()[0].per_owner_sv, b.history()[0].per_owner_sv);
    }

    #[test]
    #[should_panic(expected = "must support the group count")]
    fn genesis_rejects_method_that_cannot_cover_the_groups() {
        let mut params = test_params(4, 2);
        params.sv_method = SvMethod::MonteCarlo { permutations: 0 };
        let test_set = SyntheticDigits::small().generate(99);
        let _ = FlContract::genesis(params, test_set);
    }

    #[test]
    fn contributions_accumulate_across_rounds() {
        let mut c = contract(3, 3);
        advertise_all(&mut c, 3);
        for round in 0..2u64 {
            for i in 0..3u32 {
                let update = plain_update(&c, 0.01 * (i as f64 + 1.0));
                c.execute(
                    &ctx(i),
                    &FlCall::SubmitMaskedUpdate {
                        round,
                        masked: update,
                    },
                )
                .unwrap();
            }
            c.execute(&ctx(0), &FlCall::EvaluateRound { round })
                .unwrap();
        }
        assert!(c.finished());
        // Cumulative SV equals the sum over round records.
        for (pos, owner) in (0..3u32).enumerate() {
            let total: f64 = c.history().iter().map(|r| r.per_owner_sv[pos]).sum();
            let ledger = c.contributions()[&owner];
            assert!((ledger - total).abs() < 1e-12);
        }
        // Further activity is rejected.
        assert!(matches!(
            c.execute(&ctx(0), &FlCall::EvaluateRound { round: 2 }),
            Err(FlError::ProtocolFinished)
        ));
    }

    #[test]
    fn replicas_stay_digest_identical() {
        let mut a = contract(3, 2);
        let mut b = contract(3, 2);
        assert_eq!(a.state_digest(), b.state_digest());
        advertise_all(&mut a, 3);
        advertise_all(&mut b, 3);
        assert_eq!(a.state_digest(), b.state_digest());
        let update = plain_update(&a, 0.2);
        for c in [&mut a, &mut b] {
            c.execute(
                &ctx(1),
                &FlCall::SubmitMaskedUpdate {
                    round: 0,
                    masked: update.clone(),
                },
            )
            .unwrap();
        }
        assert_eq!(a.state_digest(), b.state_digest());
    }

    #[test]
    fn digest_changes_with_state() {
        let mut c = contract(3, 2);
        let before = c.state_digest();
        advertise_all(&mut c, 3);
        assert_ne!(c.state_digest(), before);
    }

    #[test]
    fn masked_aggregation_cancels_for_real_masks() {
        // End-to-end through the contract: three owners in ONE group mask
        // pairwise; the group model must equal the mean of the plaintext.
        use fl_crypto::dh::DhGroup;
        use fl_crypto::secure_agg::{KeyDirectory, PartyState};

        let mut c = contract(3, 1); // single group: all three cancel
        let dh = DhGroup::simulation_256();
        let codec = FixedCodec::new(c.params.frac_bits);
        let dim = c.params.model_dim;

        let keypairs: Vec<_> = (0..3u8)
            .map(|i| dh.keypair_from_seed(&[i + 1; 32]))
            .collect();
        let mut dir = KeyDirectory::new();
        for (i, kp) in keypairs.iter().enumerate() {
            dir.advertise(i as u32, kp.public).unwrap();
        }
        for (i, kp) in keypairs.iter().enumerate() {
            c.execute(
                &ctx(i as u32),
                &FlCall::AdvertiseKey {
                    public_key: kp.public.to_be_bytes(),
                },
            )
            .unwrap();
        }
        let plain: Vec<Vec<f64>> = (0..3).map(|i| vec![0.1 * (i as f64 + 1.0); dim]).collect();
        for (i, kp) in keypairs.iter().enumerate() {
            let party = PartyState::derive(&dh, i as u32, kp, &dir).unwrap();
            let masked = party.masked_update(&codec, 0, &plain[i]);
            c.execute(
                &ctx(i as u32),
                &FlCall::SubmitMaskedUpdate { round: 0, masked },
            )
            .unwrap();
        }
        c.execute(&ctx(0), &FlCall::EvaluateRound { round: 0 })
            .unwrap();
        // Global model = the single group model = mean of plaintexts = 0.2.
        for w in c.global_model() {
            assert!((w - 0.2).abs() < 1e-6, "got {w}");
        }
    }
}
