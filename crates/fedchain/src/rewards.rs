//! Reward allocation from contribution scores.
//!
//! The paper's motivation is incentive: "a fair reward based on their
//! contributions". This module converts cumulative Shapley values into
//! payouts from a budget. SVs from accuracy utilities can be negative
//! (a harmful owner), so two policies are offered for mapping them onto
//! a non-negative payout simplex. The estimator layer's uniform output
//! plugs in directly via [`allocate_estimate`].

use shapley::estimator::SvEstimate;

/// How negative Shapley values are handled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NegativePolicy {
    /// Clamp negatives to zero, then share proportionally (harmful owners
    /// get nothing; they do not eat into others' shares).
    ClampZero,
    /// Shift all values by the minimum so the worst owner gets zero and
    /// relative gaps are preserved.
    ShiftMin,
}

/// Allocates `budget` proportionally to `shapley_values`.
///
/// Returns one payout per owner summing to `budget` (to within floating
/// point). Under [`NegativePolicy::ShiftMin`] the worst owner's
/// transformed value is **exactly** `0.0` (computed as `v - min`, an
/// exact IEEE subtraction when `v == min`), never a stray negative ULP
/// that could leak sign into a payout.
///
/// **Equal-split fallback:** when every *transformed* value is zero the
/// proportional rule has no mass to distribute, so the budget is split
/// equally — the natural reading of the symmetry axiom. This is reached
/// by all-zero values under either policy, by all-negative values under
/// [`NegativePolicy::ClampZero`], and by all-*equal* (including
/// all-negative-equal, or a single all-negative owner) values under
/// [`NegativePolicy::ShiftMin`] — the shift zeroes every coordinate at
/// once. In particular a lone owner with a negative Shapley value still
/// receives the full budget:
///
/// ```
/// use fedchain::rewards::{allocate, NegativePolicy};
///
/// // A single owner whose SV is negative: the shift makes its value
/// // exactly 0, and the equal-split fallback pays the whole budget.
/// assert_eq!(allocate(50.0, &[-3.0], NegativePolicy::ShiftMin), vec![50.0]);
///
/// // Three equally-harmful owners: no proportional mass, equal split.
/// let p = allocate(30.0, &[-2.0, -2.0, -2.0], NegativePolicy::ShiftMin);
/// assert_eq!(p, vec![10.0, 10.0, 10.0]);
///
/// // Unequal all-negative owners keep their relative gaps: the worst
/// // gets exactly zero and the rest share proportionally.
/// let p = allocate(90.0, &[-5.0, -2.0], NegativePolicy::ShiftMin);
/// assert_eq!(p, vec![0.0, 90.0]);
/// ```
///
/// # Panics
///
/// Panics if `budget` is negative, `shapley_values` is empty, or any
/// value is non-finite.
pub fn allocate(budget: f64, shapley_values: &[f64], policy: NegativePolicy) -> Vec<f64> {
    assert!(budget >= 0.0, "budget must be non-negative, got {budget}");
    assert!(!shapley_values.is_empty(), "no owners to reward");
    assert!(
        shapley_values.iter().all(|v| v.is_finite()),
        "Shapley values must be finite"
    );

    let transformed: Vec<f64> = match policy {
        NegativePolicy::ClampZero => shapley_values.iter().map(|&v| v.max(0.0)).collect(),
        NegativePolicy::ShiftMin => {
            let min = shapley_values.iter().cloned().fold(f64::INFINITY, f64::min);
            if min < 0.0 {
                // `v - min` is exact for `v == min`: the worst owner
                // lands on 0.0, not on a rounding residue.
                shapley_values.iter().map(|&v| v - min).collect()
            } else {
                shapley_values.to_vec()
            }
        }
    };

    let total: f64 = transformed.iter().sum();
    let n = transformed.len() as f64;
    if total <= 0.0 {
        // No proportional mass (all transformed values are zero): split
        // equally per the symmetry axiom. See the doc example above.
        return vec![budget / n; transformed.len()];
    }
    transformed.iter().map(|&v| budget * v / total).collect()
}

/// Allocates `budget` from an estimator-layer result — the uniform
/// [`SvEstimate`] every method in [`shapley::estimator`] returns.
///
/// # Panics
///
/// As [`allocate`].
pub fn allocate_estimate(budget: f64, estimate: &SvEstimate, policy: NegativePolicy) -> Vec<f64> {
    allocate(budget, &estimate.values, policy)
}

/// Allocates `budget` for a round with dropouts: owners listed in
/// `dropped` (positions, ascending) are paid **exactly** `0.0` — not a
/// clamped or shifted residue — and the entire budget is renormalized
/// over the survivors' Shapley values under `policy`.
///
/// This is the payout rule matching the contract's survivor-only
/// evaluation ([`crate::contract_fl::RoundRecord::dropped`] owners score
/// zero): an owner that vanished mid-round contributed nothing to the
/// evaluated model, so it cannot dilute the survivors' rewards — even
/// under [`NegativePolicy::ShiftMin`], where a dropped owner's zero
/// score would otherwise re-enter the shifted simplex.
///
/// ```
/// use fedchain::rewards::{allocate_with_dropouts, NegativePolicy};
///
/// // Owner 1 dropped; owners 0 and 2 split the budget 1:3.
/// let p = allocate_with_dropouts(100.0, &[1.0, 0.5, 3.0], &[1], NegativePolicy::ClampZero);
/// assert_eq!(p, vec![25.0, 0.0, 75.0]);
/// ```
///
/// # Panics
///
/// As [`allocate`], and if `dropped` is not strictly ascending, names an
/// owner out of range, or drops the whole cohort.
pub fn allocate_with_dropouts(
    budget: f64,
    shapley_values: &[f64],
    dropped: &[usize],
    policy: NegativePolicy,
) -> Vec<f64> {
    assert!(
        dropped.windows(2).all(|w| w[0] < w[1]),
        "dropped positions must be strictly ascending"
    );
    if let Some(&last) = dropped.last() {
        assert!(last < shapley_values.len(), "dropped position out of range");
    }
    assert!(
        dropped.len() < shapley_values.len(),
        "cannot drop the whole cohort"
    );
    let survivor_values: Vec<f64> = shapley_values
        .iter()
        .enumerate()
        .filter(|(i, _)| dropped.binary_search(i).is_err())
        .map(|(_, &v)| v)
        .collect();
    let survivor_payouts = allocate(budget, &survivor_values, policy);
    let mut payouts = vec![0.0f64; shapley_values.len()];
    let mut next = survivor_payouts.into_iter();
    for (i, payout) in payouts.iter_mut().enumerate() {
        if dropped.binary_search(&i).is_err() {
            *payout = next.next().expect("one payout per survivor");
        }
    }
    payouts
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn proportional_for_positive_values() {
        let payouts = allocate(100.0, &[1.0, 3.0], NegativePolicy::ClampZero);
        assert!((payouts[0] - 25.0).abs() < 1e-12);
        assert!((payouts[1] - 75.0).abs() < 1e-12);
    }

    #[test]
    fn clamp_zero_excludes_harmful_owner() {
        let payouts = allocate(100.0, &[2.0, -1.0, 2.0], NegativePolicy::ClampZero);
        assert_eq!(payouts[1], 0.0);
        assert!((payouts[0] - 50.0).abs() < 1e-12);
        assert!((payouts[2] - 50.0).abs() < 1e-12);
    }

    #[test]
    fn shift_min_gives_worst_owner_zero() {
        let payouts = allocate(90.0, &[1.0, -2.0, 4.0], NegativePolicy::ShiftMin);
        assert_eq!(payouts[1], 0.0);
        // Shifted values: 3, 0, 6 → payouts 30, 0, 60.
        assert!((payouts[0] - 30.0).abs() < 1e-12);
        assert!((payouts[2] - 60.0).abs() < 1e-12);
    }

    #[test]
    fn single_owner_all_negative_shift_min_pays_full_budget() {
        // Regression: the shift zeroes the lone (worst) owner's value,
        // and the equal-split fallback must still pay out the whole
        // budget rather than dropping it.
        assert_eq!(
            allocate(100.0, &[-7.5], NegativePolicy::ShiftMin),
            vec![100.0]
        );
    }

    #[test]
    fn all_equal_negative_shift_min_splits_equally() {
        let payouts = allocate(30.0, &[-4.0, -4.0, -4.0], NegativePolicy::ShiftMin);
        assert_eq!(payouts, vec![10.0, 10.0, 10.0]);
    }

    #[test]
    fn shift_min_worst_owner_is_exactly_zero() {
        // The transformed worst value must be exactly 0.0 — `v - min`
        // with v == min — so its payout is an exact zero, not an ULP.
        let payouts = allocate(
            60.0,
            &[-0.1 + 0.2 - 0.3, 1.0, 2.0], // a value with fp residue
            NegativePolicy::ShiftMin,
        );
        assert_eq!(payouts[0], 0.0);
        let total: f64 = payouts.iter().sum();
        assert!((total - 60.0).abs() < 1e-9);
    }

    #[test]
    fn allocate_estimate_consumes_the_estimator_envelope() {
        use shapley::estimator::{Exact, SvEstimator};
        use shapley::utility::utility_fn;

        // An additive 2-player game: SV = (1, 3), payouts 25/75.
        let game = utility_fn(2, |c: shapley::coalition::Coalition| {
            c.members().map(|i| (1 + 2 * i) as f64).sum()
        });
        let estimate = Exact.estimate(&game);
        let payouts = allocate_estimate(100.0, &estimate, NegativePolicy::ClampZero);
        assert!((payouts[0] - 25.0).abs() < 1e-9);
        assert!((payouts[1] - 75.0).abs() < 1e-9);
    }

    #[test]
    fn dropped_owners_paid_exactly_zero_under_both_policies() {
        for policy in [NegativePolicy::ClampZero, NegativePolicy::ShiftMin] {
            let payouts = allocate_with_dropouts(90.0, &[1.0, -5.0, 2.0, 0.5], &[1], policy);
            assert_eq!(payouts[1], 0.0, "{policy:?}");
            let total: f64 = payouts.iter().sum();
            assert!((total - 90.0).abs() < 1e-9, "{policy:?}: budget conserved");
        }
    }

    #[test]
    fn dropout_renormalizes_over_survivors() {
        // Survivors 0 and 2 hold values 1 and 3 → 25/75; the dropped
        // owner's (large!) value never enters the denominator.
        let payouts =
            allocate_with_dropouts(100.0, &[1.0, 100.0, 3.0], &[1], NegativePolicy::ClampZero);
        assert!((payouts[0] - 25.0).abs() < 1e-12);
        assert_eq!(payouts[1], 0.0);
        assert!((payouts[2] - 75.0).abs() < 1e-12);
    }

    #[test]
    fn shift_min_dropout_keeps_worst_survivor_at_zero() {
        // The shift is computed over survivors only: worst survivor gets
        // exactly 0, the dropped owner stays exactly 0 as well.
        let payouts =
            allocate_with_dropouts(60.0, &[-2.0, 1.0, 4.0], &[1], NegativePolicy::ShiftMin);
        assert_eq!(payouts[0], 0.0);
        assert_eq!(payouts[1], 0.0);
        assert!((payouts[2] - 60.0).abs() < 1e-9);
    }

    #[test]
    fn empty_dropout_set_is_plain_allocation() {
        let values = [1.0, 3.0];
        assert_eq!(
            allocate_with_dropouts(100.0, &values, &[], NegativePolicy::ClampZero),
            allocate(100.0, &values, NegativePolicy::ClampZero)
        );
    }

    #[test]
    #[should_panic(expected = "whole cohort")]
    fn dropping_everyone_panics() {
        let _ = allocate_with_dropouts(10.0, &[1.0, 2.0], &[0, 1], NegativePolicy::ClampZero);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn unsorted_dropout_positions_panic() {
        let _ = allocate_with_dropouts(10.0, &[1.0, 2.0, 3.0], &[2, 0], NegativePolicy::ClampZero);
    }

    #[test]
    fn all_zero_splits_equally() {
        let payouts = allocate(30.0, &[0.0, 0.0, 0.0], NegativePolicy::ClampZero);
        assert_eq!(payouts, vec![10.0, 10.0, 10.0]);
    }

    #[test]
    fn all_negative_clamp_splits_equally() {
        let payouts = allocate(30.0, &[-1.0, -2.0], NegativePolicy::ClampZero);
        assert_eq!(payouts, vec![15.0, 15.0]);
    }

    #[test]
    fn zero_budget_zero_payouts() {
        let payouts = allocate(0.0, &[1.0, 2.0], NegativePolicy::ClampZero);
        assert_eq!(payouts, vec![0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_budget_panics() {
        let _ = allocate(-1.0, &[1.0], NegativePolicy::ClampZero);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_value_panics() {
        let _ = allocate(1.0, &[f64::NAN], NegativePolicy::ClampZero);
    }

    proptest! {
        #[test]
        fn prop_payouts_sum_to_budget(
            budget in 0.0f64..1e6,
            values in proptest::collection::vec(-100.0f64..100.0, 1..10),
        ) {
            for policy in [NegativePolicy::ClampZero, NegativePolicy::ShiftMin] {
                let payouts = allocate(budget, &values, policy);
                let total: f64 = payouts.iter().sum();
                prop_assert!((total - budget).abs() < 1e-6 * budget.max(1.0));
                prop_assert!(payouts.iter().all(|&p| p >= 0.0));
            }
        }

        #[test]
        fn prop_order_preserved(
            budget in 1.0f64..1000.0,
            values in proptest::collection::vec(-10.0f64..10.0, 2..8),
        ) {
            // Higher SV never receives less payout.
            for policy in [NegativePolicy::ClampZero, NegativePolicy::ShiftMin] {
                let payouts = allocate(budget, &values, policy);
                for i in 0..values.len() {
                    for j in 0..values.len() {
                        if values[i] > values[j] {
                            prop_assert!(payouts[i] >= payouts[j] - 1e-9);
                        }
                    }
                }
            }
        }
    }
}
