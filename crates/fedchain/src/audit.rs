//! Independent chain auditing — transparency made executable.
//!
//! The paper's core selling point is that the contribution evaluation is
//! "fully transparent \[and\] verifiable" (Sect. II-C): anyone holding the
//! chain can replay it and confirm every published state root. This
//! module is that *anyone*: given a chain and the public genesis
//! parameters, [`replay_chain`] reconstructs the contract state from
//! nothing but committed transactions and checks it against each block's
//! `state_root`. It is exactly what a regulator, a new miner syncing from
//! genesis, or a disgruntled data owner would run.
//!
//! [`fast_sync`] is the same certification run against **cold bytes on
//! disk**: it opens a [`fl_chain::durability::DurableStore`] directory
//! (recovering from any crash state), verifies the hash chain, and
//! either replays from genesis or — when a valid snapshot is present —
//! restores the contract from the snapshot blob, *proves* the restored
//! state against the state root committed at the snapshot height, and
//! replays only the blocks after it.

use std::path::Path;

use fl_chain::codec::DecodeError;
use fl_chain::contract::{SmartContract, TxContext};
use fl_chain::durability::{DurabilityConfig, DurabilityError, DurableStore};
use fl_chain::hash::Hash32;
use fl_chain::log::TornTail;
use fl_chain::store::ChainStore;
use fl_ml::dataset::Dataset;

use crate::contract_fl::{FlCall, FlContract, FlParams};

/// Outcome of replaying one block.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockAudit {
    /// Block height.
    pub height: u64,
    /// Root the block committed to.
    pub committed_root: Hash32,
    /// Root the auditor computed by re-execution.
    pub recomputed_root: Hash32,
    /// Whether they match.
    pub consistent: bool,
    /// Transactions replayed.
    pub txs: usize,
}

/// Full audit report.
#[derive(Debug, Clone)]
pub struct AuditReport {
    /// Per-block results, in height order.
    pub blocks: Vec<BlockAudit>,
    /// The reconstructed final contract state.
    pub final_contributions: Vec<(u32, f64)>,
    /// True iff the hash chain and every state root verified.
    pub clean: bool,
}

/// Errors from replaying a chain.
#[derive(Debug, Clone, PartialEq)]
pub enum AuditError {
    /// The hash chain itself is broken; the fault names the first
    /// divergent height and the failed check (parent link, height, or
    /// transaction root).
    BrokenChain(fl_chain::store::ChainFault),
    /// A committed transaction failed to execute during replay — a chain
    /// this library produced can never contain one, so this indicates a
    /// foreign or tampered chain.
    ReplayFailure {
        /// Height of the failing block.
        height: u64,
        /// Index of the failing transaction.
        tx_index: usize,
        /// Contract error rendering.
        reason: String,
    },
}

impl std::fmt::Display for AuditError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::BrokenChain(fault) => {
                write!(f, "hash chain failed structural verification: {fault}")
            }
            Self::ReplayFailure {
                height,
                tx_index,
                reason,
            } => write!(
                f,
                "replay failed at block {height}, tx {tx_index}: {reason}"
            ),
        }
    }
}

impl std::error::Error for AuditError {}

/// Replays a chain from genesis through a fresh contract replica.
///
/// `params` and `test_set` are the public setup artefacts (on-chain at
/// genesis in a deployment); everything else comes from the blocks.
pub fn replay_chain(
    store: &ChainStore<FlCall>,
    params: FlParams,
    test_set: Dataset,
) -> Result<AuditReport, AuditError> {
    store.verify_chain().map_err(AuditError::BrokenChain)?;
    let mut contract = FlContract::genesis(params, test_set);
    let (blocks, clean) = replay_blocks(&mut contract, store, 0)?;
    Ok(report_of(&contract, blocks, clean))
}

/// Re-executes blocks `from..height` through `contract`, checking each
/// recomputed state digest against the committed root. The contract must
/// already hold the state *after* block `from - 1`.
fn replay_blocks(
    contract: &mut FlContract,
    store: &ChainStore<FlCall>,
    from: u64,
) -> Result<(Vec<BlockAudit>, bool), AuditError> {
    let mut blocks = Vec::new();
    let mut clean = true;
    for height in from..store.height() {
        let block = store.block_at(height).expect("height bounded by store");
        for (tx_index, tx) in block.txs.iter().enumerate() {
            let ctx = TxContext {
                block_height: height,
                view: block.header.view,
                sender: tx.sender,
                tx_index,
            };
            contract
                .execute(&ctx, &tx.call)
                .map_err(|e| AuditError::ReplayFailure {
                    height,
                    tx_index,
                    reason: format!("{e:?}"),
                })?;
        }
        let recomputed = contract.state_digest();
        let consistent = recomputed == block.header.state_root;
        clean &= consistent;
        blocks.push(BlockAudit {
            height,
            committed_root: block.header.state_root,
            recomputed_root: recomputed,
            consistent,
            txs: block.txs.len(),
        });
    }
    Ok((blocks, clean))
}

fn report_of(contract: &FlContract, blocks: Vec<BlockAudit>, clean: bool) -> AuditReport {
    let final_contributions = contract
        .contributions()
        .iter()
        .map(|(&id, &v)| (id, v))
        .collect();
    AuditReport {
        blocks,
        final_contributions,
        clean,
    }
}

/// Errors from certifying an on-disk chain.
#[derive(Debug, Clone, PartialEq)]
pub enum FastSyncError {
    /// The durable directory could not be recovered (corrupt log,
    /// tampered record, I/O failure).
    Durability(DurabilityError),
    /// The recovered chain failed the audit (broken hash chain or a
    /// transaction that no longer replays).
    Audit(AuditError),
    /// The snapshot blob did not decode as contract state. Its CRC and
    /// tip binding were valid, so this is tampering, not a crash.
    SnapshotUndecodable(DecodeError),
    /// The state restored from the snapshot does not hash to the state
    /// root committed at the snapshot height — a well-formed forgery.
    SnapshotStateMismatch {
        /// Snapshot height.
        height: u64,
        /// Root committed by block `height - 1`.
        committed: Hash32,
        /// Digest of the restored state.
        restored: Hash32,
    },
}

impl std::fmt::Display for FastSyncError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Durability(e) => write!(f, "durable store recovery: {e}"),
            Self::Audit(e) => write!(f, "{e}"),
            Self::SnapshotUndecodable(e) => write!(f, "snapshot state undecodable: {e}"),
            Self::SnapshotStateMismatch {
                height,
                committed,
                restored,
            } => write!(
                f,
                "snapshot at height {height} hashes to {restored:?}, chain committed {committed:?}"
            ),
        }
    }
}

impl std::error::Error for FastSyncError {}

impl From<DurabilityError> for FastSyncError {
    fn from(e: DurabilityError) -> Self {
        Self::Durability(e)
    }
}

impl From<AuditError> for FastSyncError {
    fn from(e: AuditError) -> Self {
        Self::Audit(e)
    }
}

/// Outcome of [`fast_sync`]: the audit verdict plus how the chain was
/// brought up from disk.
#[derive(Debug, Clone)]
pub struct FastSyncReport {
    /// The audit over the replayed range. With a snapshot,
    /// `audit.blocks` covers only the blocks *after* the snapshot (the
    /// prefix is certified by the snapshot's digest proof);
    /// `final_contributions` and `clean` always describe the full chain
    /// tip.
    pub audit: AuditReport,
    /// Height replay started at: 0 for a genesis sync, the snapshot
    /// height otherwise.
    pub synced_from: u64,
    /// Total blocks recovered from the log.
    pub blocks: u64,
    /// Digest of the tip header — compare against a live replica to
    /// confirm the on-disk chain is the same chain.
    pub tip_digest: Hash32,
    /// Torn tail record truncated during log recovery, if any.
    pub truncated: Option<TornTail>,
    /// Snapshot files present but rejected (torn, corrupt, or unbound).
    pub snapshots_rejected: usize,
}

/// Certifies a durable chain directory from cold bytes on disk.
///
/// Opens the [`DurableStore`] (running full crash recovery), verifies
/// the hash chain, then rebuilds the contract state: from the newest
/// valid snapshot when one exists — restoring the blob and **verifying
/// its digest against the state root committed at the snapshot height**
/// before trusting it — or from genesis otherwise. Either way every
/// block after the sync point is re-executed and checked against its
/// committed state root, so a clean report certifies the whole chain.
pub fn fast_sync(
    dir: &Path,
    params: FlParams,
    test_set: Dataset,
) -> Result<FastSyncReport, FastSyncError> {
    let (durable, recovery) = DurableStore::<FlCall>::open(dir, DurabilityConfig::default())?;
    let store = durable.store();
    store
        .verify_chain()
        .map_err(|e| FastSyncError::Audit(AuditError::BrokenChain(e)))?;

    let (mut contract, synced_from) = match &recovery.snapshot {
        Some(snap) => {
            let restored = FlContract::restore(params, test_set, &snap.state)
                .map_err(FastSyncError::SnapshotUndecodable)?;
            let committed = store
                .block_at(snap.height - 1)
                .expect("snapshot height validated during recovery")
                .header
                .state_root;
            let digest = restored.state_digest();
            if digest != committed {
                return Err(FastSyncError::SnapshotStateMismatch {
                    height: snap.height,
                    committed,
                    restored: digest,
                });
            }
            (restored, snap.height)
        }
        None => (FlContract::genesis(params, test_set), 0),
    };

    let (blocks, clean) = replay_blocks(&mut contract, store, synced_from)?;
    let audit = report_of(&contract, blocks, clean);
    Ok(FastSyncReport {
        audit,
        synced_from,
        blocks: recovery.blocks,
        tip_digest: store.tip_digest(),
        truncated: recovery.truncated,
        snapshots_rejected: recovery.snapshots_rejected,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FlConfig;
    use crate::protocol::FlProtocol;

    fn run_protocol() -> (FlProtocol, FlParams, Dataset) {
        let config = FlConfig::quick_demo();
        let mut protocol = FlProtocol::new(config).expect("valid config");
        protocol.run().expect("honest run");
        let params = protocol.contract().params().clone();
        let test_set = protocol.test_set().clone();
        (protocol, params, test_set)
    }

    #[test]
    fn honest_chain_audits_clean() {
        let (protocol, params, test_set) = run_protocol();
        let store = protocol.engine().store_of(0).expect("miner 0");
        let report = replay_chain(store, params, test_set).expect("replayable");
        assert!(
            report.clean,
            "every block must verify: {:#?}",
            report.blocks
        );
        assert_eq!(report.blocks.len(), 2);
        // The auditor reconstructs the same ledger the contract holds.
        for (id, value) in &report.final_contributions {
            let live = protocol.contract().contributions()[id];
            assert_eq!(*value, live, "owner {id}");
        }
    }

    #[test]
    fn audit_requires_the_true_public_parameters() {
        // An auditor replaying with the wrong permutation seed derives a
        // different grouping, so the recomputed roots diverge: the chain
        // binds the evaluation to the published parameters.
        let (protocol, mut params, test_set) = run_protocol();
        params.permutation_seed ^= 1;
        let store = protocol.engine().store_of(0).expect("miner 0");
        let report = replay_chain(store, params, test_set).expect("still replayable");
        assert!(
            !report.clean,
            "wrong parameters must be detected via state roots"
        );
    }

    #[test]
    fn audit_detects_wrong_sv_method() {
        // The estimator choice is consensus configuration: replaying with
        // a different method diverges from the committed state roots, so
        // nobody can claim after the fact that another method ran.
        let (protocol, mut params, test_set) = run_protocol();
        params.sv_method = crate::config::SvMethod::MonteCarlo { permutations: 16 };
        let store = protocol.engine().store_of(0).expect("miner 0");
        let report = replay_chain(store, params, test_set).expect("still replayable");
        assert!(
            !report.clean,
            "a swapped evaluation method must be detected via state roots"
        );
    }

    #[test]
    fn audit_detects_wrong_test_set() {
        // Utility is part of the agreement; a different test set changes
        // evaluated accuracies and therefore the state roots.
        let (protocol, params, _) = run_protocol();
        let other_test = fl_ml::dataset::SyntheticDigits::small().generate(987_654);
        let store = protocol.engine().store_of(0).expect("miner 0");
        let report = replay_chain(store, params, other_test).expect("replayable");
        assert!(!report.clean);
    }

    #[test]
    fn dropout_chain_audits_clean_and_carries_recovery_evidence() {
        // A churned round (owner 1 drops, recovery block closes it)
        // replays exactly: the recovery lifecycle is part of the
        // re-executable record, not out-of-band state.
        let mut config = FlConfig::quick_demo();
        config.dropout_schedule = vec![(0, vec![1])];
        let mut protocol = FlProtocol::new(config).expect("valid config");
        protocol.run().expect("honest run");
        let params = protocol.contract().params().clone();
        let test_set = protocol.test_set().clone();
        let store = protocol.engine().store_of(0).expect("miner 0");
        let report = replay_chain(store, params, test_set).expect("replayable");
        assert!(
            report.clean,
            "churned chain must replay: {:#?}",
            report.blocks
        );
        // Setup + survivor block + recovery block.
        assert_eq!(report.blocks.len(), 3);
        let record = &protocol.contract().history()[0];
        assert_eq!(record.dropped, vec![1]);
        assert!(!record.recovery.is_empty());
    }

    #[test]
    fn tampered_survivor_set_diverges_at_the_first_state_root() {
        // An auditor (or malicious archivist) claiming a different
        // survivor set cannot produce the committed roots: the survivor
        // set is part of the round record, the record is part of the
        // state digest, and the digest is the block's state root.
        let mut config = FlConfig::quick_demo();
        config.dropout_schedule = vec![(0, vec![1])];
        let mut protocol = FlProtocol::new(config).expect("valid config");
        protocol.run().expect("honest run");
        let params = protocol.contract().params().clone();
        let test_set = protocol.test_set().clone();
        let store = protocol.engine().store_of(0).expect("miner 0");

        // Honest replay of every transaction, block by block.
        let mut contract = crate::contract_fl::FlContract::genesis(params, test_set);
        for height in 0..store.height() {
            let block = store.block_at(height).expect("height bounded");
            for (tx_index, tx) in block.txs.iter().enumerate() {
                let ctx = TxContext {
                    block_height: height,
                    view: block.header.view,
                    sender: tx.sender,
                    tx_index,
                };
                contract.execute(&ctx, &tx.call).expect("honest tx replays");
            }
        }
        let evaluated_block = store.block_at(store.height() - 1).expect("recovery block");
        assert_eq!(
            contract.state_digest(),
            evaluated_block.header.state_root,
            "sanity: the honest replay reproduces the committed root"
        );

        // Forge the record: claim the dropped owner survived.
        let record = &mut contract.history_mut()[0];
        assert_eq!(record.dropped, vec![1]);
        record.dropped.clear();
        record.survivors = vec![0, 1, 2, 3];
        assert_ne!(
            contract.state_digest(),
            evaluated_block.header.state_root,
            "a tampered survivor set must diverge at the first state root"
        );
    }

    #[test]
    fn every_replicas_chain_audits_identically() {
        let (protocol, params, test_set) = run_protocol();
        let mut roots = Vec::new();
        for id in 0..4u32 {
            let store = protocol.engine().store_of(id).expect("miner");
            let report = replay_chain(store, params.clone(), test_set.clone()).expect("ok");
            assert!(report.clean);
            roots.push(report.blocks.last().expect("blocks").recomputed_root);
        }
        assert!(roots.windows(2).all(|w| w[0] == w[1]));
    }
}
