//! Data owners: the client side of the protocol.
//!
//! Each owner holds a private training shard and a DH keypair. Per round
//! it (1) downloads the global model from the chain, (2) trains locally,
//! (3) masks its update against the *other members of its group* (the
//! grouping is public, derived from the on-chain seed), and (4) submits
//! the masked vector as a transaction. The raw shard and the plaintext
//! update never leave this struct — the privacy tests grep the chain for
//! them.

use fl_chain::tx::AccountId;
use fl_crypto::dh::{DhGroup, DhKeyPair};
use fl_crypto::dropout::{escrow_private_key, DropoutError};
use fl_crypto::secure_agg::{KeyDirectory, PairSecretCache, PartyState, SecureAggError};
use fl_crypto::shamir::{Shamir, Share};
use fl_crypto::ChaChaPrg;
use fl_ml::dataset::Dataset;
use fl_ml::logreg::{LogisticModel, TrainConfig};
use fl_ml::rng::Xoshiro256;
use numeric::{FixedCodec, U256};

use crate::adversary::{corrupt_shard, corrupt_update, AdversaryKind};

/// A data owner (client + miner in the paper's model).
pub struct DataOwner {
    id: AccountId,
    shard: Dataset,
    keypair: DhKeyPair,
    group: DhGroup,
    train: TrainConfig,
    codec: FixedCodec,
    adversary: Option<AdversaryKind>,
    adversary_rng: Xoshiro256,
    pair_cache: PairSecretCache,
}

impl DataOwner {
    /// Creates an owner with a deterministic keypair derived from `seed`.
    pub fn new(
        id: AccountId,
        shard: Dataset,
        train: TrainConfig,
        frac_bits: u32,
        seed: u64,
    ) -> Self {
        let group = DhGroup::simulation_256();
        let mut seed_bytes = [0u8; 32];
        seed_bytes[..8].copy_from_slice(&seed.to_le_bytes());
        seed_bytes[8..16].copy_from_slice(&u64::from(id).to_le_bytes());
        let keypair = group.keypair_from_seed(&seed_bytes);
        Self {
            id,
            shard,
            keypair,
            group,
            train,
            codec: FixedCodec::new(frac_bits),
            adversary: None,
            adversary_rng: Xoshiro256::seed_from_u64(seed ^ u64::from(id)),
            pair_cache: PairSecretCache::new(),
        }
    }

    /// Account id.
    pub fn id(&self) -> AccountId {
        self.id
    }

    /// Number of local training examples.
    pub fn shard_len(&self) -> usize {
        self.shard.len()
    }

    /// Public key bytes to advertise on-chain.
    pub fn public_key_bytes(&self) -> Vec<u8> {
        self.keypair.public.to_be_bytes()
    }

    /// The owner's DH public key as a group element.
    pub fn public_key(&self) -> U256 {
        self.keypair.public
    }

    /// Shamir-shares the owner's DH private key across the cohort — the
    /// setup step of the Bonawitz dropout-recovery extension. Share `j`
    /// goes to cohort member `j`; any `threshold` of them can later
    /// reconstruct this owner's key to strip its residual pair masks
    /// from a partial aggregate should the owner vanish mid-round.
    pub fn escrow_key_shares(
        &self,
        shamir: &Shamir,
        threshold: usize,
        cohort_size: usize,
        prg: &mut ChaChaPrg,
    ) -> Result<Vec<Share>, DropoutError> {
        escrow_private_key(shamir, &self.keypair, threshold, cohort_size, prg)
    }

    /// Installs an adversarial behaviour. Label-flip corrupts the shard
    /// immediately (data poisoning happens before training); update-level
    /// attacks apply at each [`DataOwner::local_update`].
    pub fn set_adversary(&mut self, kind: AdversaryKind) {
        if matches!(kind, AdversaryKind::LabelFlip { .. }) {
            corrupt_shard(&kind, &mut self.shard, &mut self.adversary_rng);
        }
        self.adversary = Some(kind);
    }

    /// Trains locally from the current global model and returns the new
    /// local weights (the paper's `w_i`: owners submit trained weights,
    /// FedAvg averages them).
    pub fn local_update(
        &mut self,
        global_model: &[f64],
        num_features: usize,
        num_classes: usize,
    ) -> Vec<f64> {
        let mut model = LogisticModel::from_flat(global_model, num_features, num_classes);
        model.train(&self.shard, &self.train);
        let mut update = model.to_flat();
        if let Some(kind) = &self.adversary {
            corrupt_update(kind, &mut update, &mut self.adversary_rng);
        }
        update
    }

    /// Masks `update` for submission, using the advertised keys of the
    /// owner's *group members* this round.
    ///
    /// `group_directory` maps every member of the owner's group
    /// (including itself) to its public key, exactly as read from the
    /// chain. A singleton group has nobody to pair with, so the encoding
    /// goes out unmasked — this is the paper's `m = n` resolution
    /// extreme, which it explicitly notes "reveals the model parameters".
    pub fn mask_update(
        &self,
        update: &[f64],
        round: u64,
        group_directory: &[(AccountId, U256)],
    ) -> Result<Vec<u64>, SecureAggError> {
        let Some(directory) = self.build_directory(group_directory)? else {
            return Ok(self.codec.encode_vec(update));
        };
        let party = PartyState::derive(&self.group, self.id, &self.keypair, &directory)?;
        Ok(party.masked_update(&self.codec, round, update))
    }

    /// [`DataOwner::mask_update`] through the owner's persistent
    /// pair-secret cache: group members whose keys are unchanged since the
    /// last derivation under the same `epoch` skip the DH exponentiation.
    ///
    /// `epoch` must be [`fl_crypto::key_epoch`] over the *full* advertised
    /// key set (not the per-round group directory, which permutes every
    /// round) — stable while keys stand, rolled on any rotation. Cached
    /// pair keys are bit-identical to cold-derived ones, so the masked
    /// submission never depends on cache state.
    pub fn mask_update_cached(
        &mut self,
        update: &[f64],
        round: u64,
        group_directory: &[(AccountId, U256)],
        epoch: [u8; 32],
    ) -> Result<Vec<u64>, SecureAggError> {
        let Some(directory) = self.build_directory(group_directory)? else {
            return Ok(self.codec.encode_vec(update));
        };
        let party = PartyState::derive_cached(
            &self.group,
            self.id,
            &self.keypair,
            &directory,
            epoch,
            &mut self.pair_cache,
        )?;
        Ok(party.masked_update(&self.codec, round, update))
    }

    /// Number of pair secrets currently cached (observability for tests).
    pub fn cached_pair_secrets(&self) -> usize {
        self.pair_cache.len()
    }

    /// Validates the group directory and builds the secure-agg
    /// [`KeyDirectory`]; `None` means a singleton group (submit plain).
    fn build_directory(
        &self,
        group_directory: &[(AccountId, U256)],
    ) -> Result<Option<KeyDirectory>, SecureAggError> {
        assert!(
            group_directory.iter().any(|(id, _)| *id == self.id),
            "owner {} missing from its own group directory",
            self.id
        );
        if group_directory.len() == 1 {
            return Ok(None);
        }
        let mut directory = KeyDirectory::new();
        for (id, key) in group_directory {
            directory.advertise(*id, *key)?;
        }
        Ok(Some(directory))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fl_ml::dataset::SyntheticDigits;
    use numeric::FixedCodec;

    fn owner(id: AccountId) -> DataOwner {
        let shard = SyntheticDigits::small().generate(10 + u64::from(id));
        DataOwner::new(
            id,
            shard,
            TrainConfig {
                learning_rate: 0.5,
                epochs: 5,
                l2: 1e-4,
            },
            24,
            777,
        )
    }

    #[test]
    fn keypairs_deterministic_and_distinct() {
        let a1 = owner(0);
        let a2 = owner(0);
        assert_eq!(a1.public_key_bytes(), a2.public_key_bytes());
        let b = owner(1);
        assert_ne!(a1.public_key_bytes(), b.public_key_bytes());
    }

    #[test]
    fn local_update_changes_weights_and_is_deterministic() {
        let mut o = owner(0);
        let zeros = vec![0.0; 65 * 10];
        let u1 = o.local_update(&zeros, 64, 10);
        assert_ne!(u1, zeros, "training must move the weights");
        let mut o2 = owner(0);
        let u2 = o2.local_update(&zeros, 64, 10);
        assert_eq!(u1, u2, "same shard + seed => same update");
    }

    #[test]
    fn pairwise_masks_cancel_between_two_owners() {
        let mut a = owner(0);
        let mut b = owner(1);
        let zeros = vec![0.0; 65 * 10];
        let ua = a.local_update(&zeros, 64, 10);
        let ub = b.local_update(&zeros, 64, 10);
        let dir = vec![(0u32, a.keypair.public), (1u32, b.keypair.public)];
        let ma = a.mask_update(&ua, 3, &dir).unwrap();
        let mb = b.mask_update(&ub, 3, &dir).unwrap();
        let codec = FixedCodec::new(24);
        // Individually masked…
        assert_ne!(ma, codec.encode_vec(&ua));
        // …but the sum is the plaintext sum.
        let sum = FixedCodec::ring_sum(&[ma, mb]);
        for (i, &r) in sum.iter().enumerate() {
            let expect = ua[i] + ub[i];
            assert!((codec.decode(r) - expect).abs() < 1e-6);
        }
    }

    #[test]
    fn cached_masking_matches_cold_across_rounds() {
        // The pair-secret cache must never change what goes on the wire:
        // warm rounds are bit-identical to cold derivations.
        let mut a = owner(0);
        let b = owner(1);
        let c = owner(2);
        let zeros = vec![0.0; 65 * 10];
        let ua = a.local_update(&zeros, 64, 10);
        let dir = vec![
            (0u32, a.keypair.public),
            (1u32, b.keypair.public),
            (2u32, c.keypair.public),
        ];
        let epoch = fl_crypto::key_epoch(&dir);
        assert_eq!(a.cached_pair_secrets(), 0);
        for round in 0..3u64 {
            let cold = a.mask_update(&ua, round, &dir).unwrap();
            let warm = a.mask_update_cached(&ua, round, &dir, epoch).unwrap();
            assert_eq!(cold, warm, "round {round}");
            assert_eq!(a.cached_pair_secrets(), 2);
        }
    }

    #[test]
    fn singleton_group_submits_plain_encoding() {
        let mut a = owner(0);
        let zeros = vec![0.0; 65 * 10];
        let u = a.local_update(&zeros, 64, 10);
        let dir = vec![(0u32, a.keypair.public)];
        let masked = a.mask_update(&u, 0, &dir).unwrap();
        assert_eq!(masked, FixedCodec::new(24).encode_vec(&u));
    }

    #[test]
    #[should_panic(expected = "missing from its own group")]
    fn masking_requires_self_in_directory() {
        let a = owner(0);
        let b = owner(1);
        let dir = vec![(1u32, b.keypair.public)];
        let _ = a.mask_update(&[0.0; 650], 0, &dir);
    }

    #[test]
    fn free_rider_update_is_zero() {
        let mut o = owner(2);
        o.set_adversary(AdversaryKind::FreeRider);
        let update = o.local_update(&vec![0.0; 650], 64, 10);
        assert!(update.iter().all(|&w| w == 0.0));
    }

    #[test]
    fn label_flip_applies_once_at_install() {
        let mut o = owner(3);
        let before = o.shard.labels.clone();
        o.set_adversary(AdversaryKind::LabelFlip { fraction: 1.0 });
        assert_ne!(o.shard.labels, before);
    }
}
