//! Offline benchmark-harness shim.
//!
//! The build container cannot reach crates.io, so this crate provides the
//! subset of the `criterion` API the workspace's benches use: `Criterion`,
//! `BenchmarkGroup`, `BenchmarkId`, `Throughput`, `Bencher::iter`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement model: each benchmark is warmed up, then sampled
//! `sample_size` times; a sample runs enough iterations to cover
//! [`Criterion::MIN_SAMPLE_NANOS`] and reports mean ns/iter, and the
//! harness prints (and optionally archives) the **median over samples**.
//!
//! Environment knobs:
//!
//! * `CRITERION_JSON=<path>` — append one JSON line per benchmark
//!   (`{"name": ..., "median_ns": ..., "samples": ...}`) to `<path>`.
//! * `CRITERION_SAMPLE_SIZE=<n>` — override every group's sample size.
//!
//! A single positional CLI argument acts as a substring filter over
//! benchmark names (mirrors `cargo bench -- <filter>`); `--bench`-style
//! flags from cargo are ignored.

use std::fmt::Write as _;
use std::fs::OpenOptions;
use std::io::Write as _;
use std::time::Instant;

/// Benchmark driver handed to `criterion_group!` functions.
pub struct Criterion {
    filter: Option<String>,
    results: Vec<BenchResult>,
    default_sample_size: usize,
}

/// One finished measurement.
#[derive(Debug, Clone)]
struct BenchResult {
    name: String,
    median_ns: f64,
    samples: usize,
}

/// Throughput annotation (recorded for display parity; the shim reports
/// time, not derived throughput).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier: function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Identifier from a name and parameter.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        Self {
            id: format!("{name}/{parameter}"),
        }
    }

    /// Identifier from a parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

/// Timing loop handed to the closure under measurement.
pub struct Bencher {
    iters: u64,
    elapsed_ns: f64,
}

impl Bencher {
    /// Runs `f` for the sample's iteration count, timing the whole batch.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed_ns = start.elapsed().as_nanos() as f64;
    }
}

impl Default for Criterion {
    fn default() -> Self {
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            if !arg.starts_with('-') {
                filter = Some(arg);
            }
        }
        let default_sample_size = std::env::var("CRITERION_SAMPLE_SIZE")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(20);
        Self {
            filter,
            results: Vec::new(),
            default_sample_size,
        }
    }
}

impl Criterion {
    /// Minimum wall-clock per sample; iteration counts are calibrated up
    /// to cover it so cheap bodies aren't lost in timer noise.
    pub const MIN_SAMPLE_NANOS: f64 = 5_000_000.0;

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size,
        }
    }

    /// Benchmarks a single function.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let sample_size = self.default_sample_size;
        self.run_one(name.to_string(), sample_size, f);
        self
    }

    fn matches(&self, name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| name.contains(f))
    }

    fn run_one(&mut self, name: String, sample_size: usize, mut f: impl FnMut(&mut Bencher)) {
        if !self.matches(&name) {
            return;
        }
        // Calibrate: run single iterations until the per-iter cost is
        // known, then size samples to MIN_SAMPLE_NANOS.
        let mut bencher = Bencher {
            iters: 1,
            elapsed_ns: 0.0,
        };
        f(&mut bencher); // warm-up
        f(&mut bencher);
        let per_iter = bencher.elapsed_ns.max(1.0);
        let iters = (Self::MIN_SAMPLE_NANOS / per_iter).clamp(1.0, 1e9) as u64;

        let mut samples: Vec<f64> = Vec::with_capacity(sample_size);
        for _ in 0..sample_size.max(1) {
            let mut b = Bencher {
                iters,
                elapsed_ns: 0.0,
            };
            f(&mut b);
            samples.push(b.elapsed_ns / iters as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        let median = if samples.len() % 2 == 1 {
            samples[samples.len() / 2]
        } else {
            0.5 * (samples[samples.len() / 2 - 1] + samples[samples.len() / 2])
        };

        let mut line = String::new();
        let _ = write!(line, "{name:<48} median {:>14.1} ns/iter", median);
        let _ = write!(line, "   ({} samples x {} iters)", samples.len(), iters);
        println!("{line}");
        self.results.push(BenchResult {
            name,
            median_ns: median,
            samples: samples.len(),
        });
    }

    /// Writes accumulated results to `CRITERION_JSON` (JSON lines), if set.
    pub fn finalize(&self) {
        let Ok(path) = std::env::var("CRITERION_JSON") else {
            return;
        };
        let Ok(mut file) = OpenOptions::new().create(true).append(true).open(&path) else {
            eprintln!("criterion-shim: cannot open {path}");
            return;
        };
        for r in &self.results {
            let _ = writeln!(
                file,
                "{{\"name\": \"{}\", \"median_ns\": {:.1}, \"samples\": {}}}",
                r.name, r.median_ns, r.samples
            );
        }
    }
}

/// A group of related benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        if std::env::var("CRITERION_SAMPLE_SIZE").is_err() {
            self.sample_size = n;
        }
        self
    }

    /// Records the per-iteration throughput (display-only in the shim).
    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    /// Benchmarks a function inside the group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let name = format!("{}/{}", self.name, id.id);
        let sample_size = self.sample_size;
        self.criterion.run_one(name, sample_size, f);
        self
    }

    /// Benchmarks a function with an explicit input value.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id.id);
        let sample_size = self.sample_size;
        self.criterion.run_one(name, sample_size, |b| f(b, input));
        self
    }

    /// Ends the group (no-op; parity with criterion).
    pub fn finish(&mut self) {}
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

/// Bundles benchmark functions into a single group runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default();
            $($group(&mut criterion);)+
            criterion.finalize();
        }
    };
}
