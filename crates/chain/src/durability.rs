//! Durable chain store: the segmented log plus periodic state snapshots,
//! with crash recovery as a first-class, fault-injected code path.
//!
//! # Durability contract
//!
//! A [`DurableStore`] wraps the in-memory [`ChainStore`] with a
//! write-ahead discipline over [`crate::log::SegmentedLog`]:
//!
//! 1. [`DurableStore::append`] validates the block against the in-memory
//!    chain, writes its canonical encoding as one log record, and
//!    flushes (fsync-equivalent) before returning. **A block whose
//!    append returned `Ok` survives any later crash.**
//! 2. [`DurableStore::write_snapshot`] persists a caller-provided
//!    contract-state blob bound to the current tip (height + tip header
//!    digest), CRC-framed in its own file. Snapshots are an
//!    *acceleration*, never a source of truth: the log remains complete
//!    from genesis, and recovery validates a snapshot against the block
//!    it claims to summarize before trusting it.
//! 3. [`DurableStore::open`] recovers from arbitrary crash states: it
//!    truncates a torn tail record (delegated to the log), replays every
//!    surviving block through the same structural validation as a live
//!    append, and selects the newest snapshot whose CRC, decoding, and
//!    tip-digest binding all check out — silently falling back to older
//!    snapshots or genesis when the newest is torn or stale.
//!
//! The guarantee pinned by the crash-matrix tests
//! (`crates/chain/tests/crash_matrix.rs`): after a crash at **any**
//! injection point, the reopened chain is bit-identical to a clean
//! prefix of the pre-crash chain — never divergent, never reordered,
//! never a mix of old and new state.
//!
//! What this layer does *not* do is re-execute transactions: state-root
//! verification by re-execution needs the contract, which lives a layer
//! up (`fedchain::audit::fast_sync` drives it using the snapshot blob
//! and the replayed blocks returned here).
//!
//! # Crash injection
//!
//! [`CrashPoint`] names the places a real process dies relative to the
//! two durability boundaries (record flush, snapshot write); a
//! [`CrashPlan`] arms one of them to fire on the n-th operation. After
//! an injected crash every method returns
//! [`DurabilityError::Crashed`] — the only way forward is to reopen the
//! directory, exactly like a restarted process.

use std::fs::{self, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

use crate::block::Block;
use crate::codec::{Decode, DecodeError, Encode};
use crate::hash::Hash32;
use crate::log::{crc32, LogConfig, LogError, SegmentedLog, TornTail, RECORD_HEADER_BYTES};
use crate::store::{ChainStore, StoreError};

const SNAPSHOT_PREFIX: &str = "snap-";
const SNAPSHOT_SUFFIX: &str = ".bin";

/// Configuration for a [`DurableStore`].
#[derive(Debug, Clone, Copy)]
pub struct DurabilityConfig {
    /// Segmented-log configuration.
    pub log: LogConfig,
    /// Suggested snapshot cadence in blocks, consulted by
    /// [`DurableStore::snapshot_due`]. Snapshots are caller-driven (the
    /// caller owns the state blob), so this is advisory.
    pub snapshot_every: u64,
}

impl Default for DurabilityConfig {
    fn default() -> Self {
        Self {
            log: LogConfig::default(),
            snapshot_every: 8,
        }
    }
}

/// Where an injected crash fires, relative to the durability boundaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashPoint {
    /// Mid-write of a block record: a strict prefix of the framed record
    /// reaches the segment (a torn write), then the process dies.
    TornRecord,
    /// After the record is buffered but before the flush: the block is
    /// lost entirely; on-disk state is exactly the previous flush.
    BeforeFlush,
    /// After the record is flushed (the block *is* durable) but before
    /// any snapshot could be written: recovery must work from an older
    /// or absent snapshot.
    AfterFlushBeforeSnapshot,
    /// Mid-write of a snapshot file: a strict prefix of the framed
    /// snapshot reaches disk; recovery must reject it and fall back.
    TornSnapshot,
}

/// Arms a [`CrashPoint`] to fire on the n-th operation (0-based):
/// appends for the three append-path points, snapshot writes for
/// [`CrashPoint::TornSnapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashPlan {
    /// Where to crash.
    pub point: CrashPoint,
    /// Which operation (0-based count since this handle opened) to
    /// crash on.
    pub at: u64,
}

/// Errors from the durable store.
#[derive(Debug, Clone, PartialEq)]
pub enum DurabilityError {
    /// The underlying segmented log failed.
    Log(LogError),
    /// A flushed, CRC-valid record did not decode as a block. A crash
    /// cannot produce this (torn bytes fail the CRC first), so it means
    /// tampering or a foreign file — recovery refuses the directory.
    UndecodableRecord {
        /// Index of the record in append order.
        record: usize,
        /// The decode failure.
        error: DecodeError,
    },
    /// A flushed record decoded as a block that does not extend the
    /// chain (bad parent link, height, or transaction root). Same
    /// verdict as [`Self::UndecodableRecord`]: not a crash artifact.
    InvalidBlock {
        /// Index of the record in append order.
        record: usize,
        /// The structural failure.
        error: StoreError,
    },
    /// A live append was rejected by the chain's validation (the block
    /// does not extend the current tip). Nothing was written.
    Rejected(StoreError),
    /// Snapshot file I/O failed; the context names the operation.
    SnapshotIo {
        /// Rendered operation, path, and OS error.
        context: String,
    },
    /// The handle was killed by an injected crash; reopen to recover.
    Crashed,
}

impl std::fmt::Display for DurabilityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Log(e) => write!(f, "{e}"),
            Self::UndecodableRecord { record, error } => {
                write!(f, "record {record} is CRC-valid but undecodable: {error}")
            }
            Self::InvalidBlock { record, error } => {
                write!(f, "record {record} does not extend the chain: {error}")
            }
            Self::Rejected(e) => write!(f, "append rejected: {e}"),
            Self::SnapshotIo { context } => write!(f, "snapshot I/O: {context}"),
            Self::Crashed => write!(f, "durable store crashed (injected fault)"),
        }
    }
}

impl std::error::Error for DurabilityError {}

impl From<LogError> for DurabilityError {
    fn from(e: LogError) -> Self {
        match e {
            LogError::Crashed => Self::Crashed,
            other => Self::Log(other),
        }
    }
}

/// A state snapshot recovered from (or written to) disk: the contract
/// state blob bound to the block that produced it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    /// Chain height the snapshot summarizes (number of executed blocks;
    /// the state is the one *after* block `height - 1`).
    pub height: u64,
    /// Digest of block `height - 1`'s header — binds the blob to one
    /// specific chain so a snapshot cannot be replayed across forks.
    pub tip_digest: Hash32,
    /// Opaque caller-provided state encoding.
    pub state: Vec<u8>,
}

/// What [`DurableStore::open`] found and repaired.
#[derive(Debug, Clone)]
pub struct RecoveryReport {
    /// Blocks replayed from the log.
    pub blocks: u64,
    /// The torn tail record the log truncated, if any.
    pub truncated: Option<TornTail>,
    /// The newest snapshot that passed CRC, decode, and tip-digest
    /// validation, if any.
    pub snapshot: Option<Snapshot>,
    /// Snapshot files that were present but failed validation (torn,
    /// corrupt, or stale relative to the recovered chain).
    pub snapshots_rejected: usize,
}

/// A [`ChainStore`] whose appends are write-ahead logged and whose state
/// can be snapshotted — see the [module docs](self) for the contract.
#[derive(Debug)]
pub struct DurableStore<C> {
    store: ChainStore<C>,
    log: SegmentedLog,
    dir: PathBuf,
    config: DurabilityConfig,
    last_snapshot_height: u64,
    appends: u64,
    snapshots: u64,
    plan: Option<CrashPlan>,
    crashed: bool,
}

impl<C: Encode + Decode + Clone> DurableStore<C> {
    /// Opens (or creates) a durable chain in `dir`, recovering whatever
    /// a previous process — cleanly exited or crashed — left behind.
    pub fn open(
        dir: impl Into<PathBuf>,
        config: DurabilityConfig,
    ) -> Result<(Self, RecoveryReport), DurabilityError> {
        let dir = dir.into();
        let (log, recovered) = SegmentedLog::open(&dir, config.log)?;

        let store: ChainStore<C> = ChainStore::new();
        for (record, payload) in recovered.records.iter().enumerate() {
            let block = Block::<C>::decode(payload)
                .map_err(|error| DurabilityError::UndecodableRecord { record, error })?;
            store
                .append(block)
                .map_err(|error| DurabilityError::InvalidBlock { record, error })?;
        }

        let (snapshot, snapshots_rejected) = load_best_snapshot(&dir, &store)?;
        let last_snapshot_height = snapshot.as_ref().map_or(0, |s| s.height);
        let report = RecoveryReport {
            blocks: store.height(),
            truncated: recovered.truncated,
            snapshot,
            snapshots_rejected,
        };
        Ok((
            Self {
                store,
                log,
                dir,
                config,
                last_snapshot_height,
                appends: 0,
                snapshots: 0,
                plan: None,
                crashed: false,
            },
            report,
        ))
    }

    /// The recovered/live chain. All [`ChainStore`] reads (`height`,
    /// `block_at`, `verify_chain`, `state_roots`, …) go through here.
    pub fn store(&self) -> &ChainStore<C> {
        &self.store
    }

    /// The directory holding log segments and snapshots.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Arms a crash plan; the next matching operation dies at the chosen
    /// [`CrashPoint`].
    pub fn set_crash_plan(&mut self, plan: CrashPlan) {
        self.plan = Some(plan);
    }

    /// True once an injected crash has killed this handle.
    pub fn crashed(&self) -> bool {
        self.crashed
    }

    /// Validates `block` against the chain, write-ahead logs it, and
    /// flushes. On `Ok`, the block is durable.
    pub fn append(&mut self, block: Block<C>) -> Result<(), DurabilityError> {
        self.check_alive()?;
        let encoded = block.encode();
        // Validate (and stage in memory) first: an invalid block must
        // not reach the log at all.
        self.store
            .append(block)
            .map_err(DurabilityError::Rejected)?;

        let fire = self
            .plan
            .filter(|p| p.point != CrashPoint::TornSnapshot && p.at == self.appends);
        self.appends += 1;
        match fire.map(|p| p.point) {
            Some(CrashPoint::BeforeFlush) => {
                // The record never reaches the buffer's flush: simulate
                // by buffering then dropping it with the crash.
                self.log.append(&encoded)?;
                self.log.crash();
                self.die()
            }
            Some(CrashPoint::TornRecord) => {
                self.log.append(&encoded)?;
                // Persist the frame header plus half the payload.
                let keep = RECORD_HEADER_BYTES + encoded.len() / 2;
                self.log.crash_torn(keep)?;
                self.die()
            }
            Some(CrashPoint::AfterFlushBeforeSnapshot) => {
                self.log.append(&encoded)?;
                self.log.flush()?;
                self.log.crash();
                self.die()
            }
            _ => {
                self.log.append(&encoded)?;
                self.log.flush()?;
                Ok(())
            }
        }
    }

    /// True when the advisory snapshot cadence says the caller should
    /// [`Self::write_snapshot`] now.
    pub fn snapshot_due(&self) -> bool {
        let height = self.store.height();
        height > 0 && height >= self.last_snapshot_height + self.config.snapshot_every
    }

    /// Persists `state` as a snapshot bound to the current tip. The blob
    /// is opaque to this layer; the caller must be able to rebuild its
    /// state machine from it (and should verify the rebuild against the
    /// committed state root, as `fedchain::audit::fast_sync` does).
    pub fn write_snapshot(&mut self, state: &[u8]) -> Result<(), DurabilityError> {
        self.check_alive()?;
        let height = self.store.height();
        assert!(height > 0, "cannot snapshot an empty chain");
        let tip_digest = self.store.tip_digest();
        let payload = (height, tip_digest, state.to_vec()).encode();
        let mut framed = Vec::with_capacity(RECORD_HEADER_BYTES + payload.len());
        framed.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        framed.extend_from_slice(&crc32(&payload).to_le_bytes());
        framed.extend_from_slice(&payload);

        let fire = self
            .plan
            .filter(|p| p.point == CrashPoint::TornSnapshot && p.at == self.snapshots);
        self.snapshots += 1;
        // Deliberately written in place (no temp-file + rename): a torn
        // snapshot must be *possible* so recovery's CRC validation is
        // load-bearing, and the log — not the snapshot — is the source
        // of truth.
        let keep = if fire.is_some() {
            RECORD_HEADER_BYTES + payload.len() / 2
        } else {
            framed.len()
        };
        let path = snapshot_path(&self.dir, height);
        let io = |op: &str, e: &std::io::Error| DurabilityError::SnapshotIo {
            context: format!("{op} {}: {e}", path.display()),
        };
        let mut file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&path)
            .map_err(|e| io("open", &e))?;
        file.write_all(&framed[..keep])
            .map_err(|e| io("write", &e))?;
        file.sync_all().map_err(|e| io("sync", &e))?;
        if fire.is_some() {
            return self.die();
        }
        self.last_snapshot_height = height;
        Ok(())
    }

    fn die(&mut self) -> Result<(), DurabilityError> {
        self.crashed = true;
        Err(DurabilityError::Crashed)
    }

    fn check_alive(&self) -> Result<(), DurabilityError> {
        if self.crashed {
            return Err(DurabilityError::Crashed);
        }
        Ok(())
    }
}

fn snapshot_path(dir: &Path, height: u64) -> PathBuf {
    dir.join(format!("{SNAPSHOT_PREFIX}{height:08}{SNAPSHOT_SUFFIX}"))
}

/// Scans `dir` for snapshot files and returns the newest one that is
/// CRC-valid, decodable, and consistent with the recovered chain —
/// plus how many candidates were rejected.
fn load_best_snapshot<C: Encode + Clone>(
    dir: &Path,
    store: &ChainStore<C>,
) -> Result<(Option<Snapshot>, usize), DurabilityError> {
    let io = |op: &str, path: &Path, e: &std::io::Error| DurabilityError::SnapshotIo {
        context: format!("{op} {}: {e}", path.display()),
    };
    let mut candidates: Vec<PathBuf> = Vec::new();
    let entries = fs::read_dir(dir).map_err(|e| io("read dir", dir, &e))?;
    for entry in entries {
        let entry = entry.map_err(|e| io("read dir entry", dir, &e))?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if name.starts_with(SNAPSHOT_PREFIX) && name.ends_with(SNAPSHOT_SUFFIX) {
            candidates.push(entry.path());
        }
    }
    // Name embeds the zero-padded height, so lexicographic order is
    // height order; walk newest-first.
    candidates.sort();
    candidates.reverse();

    let mut rejected = 0usize;
    for path in candidates {
        let bytes = fs::read(&path).map_err(|e| io("read snapshot", &path, &e))?;
        match validate_snapshot(&bytes, store) {
            Some(snapshot) => return Ok((Some(snapshot), rejected)),
            None => rejected += 1,
        }
    }
    Ok((None, rejected))
}

/// Validates one snapshot file's bytes: frame intact, CRC matches,
/// payload decodes, height within the chain, digest binds to the block
/// it names. Any failure makes the snapshot unusable (torn or stale),
/// never fatal — the log can always rebuild from genesis.
fn validate_snapshot<C: Encode + Clone>(bytes: &[u8], store: &ChainStore<C>) -> Option<Snapshot> {
    if bytes.len() < RECORD_HEADER_BYTES {
        return None;
    }
    let len = u32::from_le_bytes(bytes[..4].try_into().expect("4 bytes")) as usize;
    let crc = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
    if bytes.len() != RECORD_HEADER_BYTES + len {
        return None;
    }
    let payload = &bytes[RECORD_HEADER_BYTES..];
    if crc32(payload) != crc {
        return None;
    }
    let (height, tip_digest, state) = <(u64, Hash32, Vec<u8>)>::decode(payload).ok()?;
    if height == 0 || height > store.height() {
        return None;
    }
    let bound = store.block_at(height - 1)?.header.digest();
    if bound != tip_digest {
        return None;
    }
    Some(Snapshot {
        height,
        tip_digest,
        state,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::testdir::TestDir;
    use crate::tx::Transaction;

    fn next_block(store: &ChainStore<u64>, calls: &[u64]) -> Block<u64> {
        let txs: Vec<Transaction<u64>> = calls
            .iter()
            .enumerate()
            .map(|(i, &c)| Transaction::new(0, store.height() * 10 + i as u64, c))
            .collect();
        Block::assemble(
            store.height(),
            store.tip_digest(),
            Hash32::of_bytes(b"state"),
            0,
            store.height(),
            txs,
        )
    }

    fn open(dir: &TestDir) -> (DurableStore<u64>, RecoveryReport) {
        DurableStore::open(dir.path(), DurabilityConfig::default()).unwrap()
    }

    #[test]
    fn append_reopen_roundtrip_is_bit_identical() {
        let dir = TestDir::new("dur-roundtrip");
        let (mut durable, _) = open(&dir);
        let mut blocks = Vec::new();
        for i in 0..5u64 {
            let block = next_block(durable.store(), &[i, i + 100]);
            durable.append(block.clone()).unwrap();
            blocks.push(block);
        }
        let roots = durable.store().state_roots();
        drop(durable);

        let (reopened, report) = open(&dir);
        assert_eq!(report.blocks, 5);
        assert!(report.truncated.is_none());
        assert_eq!(reopened.store().state_roots(), roots);
        for (h, expect) in blocks.iter().enumerate() {
            assert_eq!(&reopened.store().block_at(h as u64).unwrap(), expect);
        }
        assert_eq!(reopened.store().verify_chain(), Ok(()));
    }

    #[test]
    fn invalid_block_rejected_before_logging() {
        let dir = TestDir::new("dur-reject");
        let (mut durable, _) = open(&dir);
        let mut bad = next_block(durable.store(), &[1]);
        bad.header.height = 9;
        assert!(matches!(
            durable.append(bad),
            Err(DurabilityError::Rejected(StoreError::HeightMismatch { .. }))
        ));
        // Nothing reached disk; the handle is still alive.
        assert!(!durable.crashed());
        let good = next_block(durable.store(), &[1]);
        durable.append(good).unwrap();
        drop(durable);
        let (_, report) = open(&dir);
        assert_eq!(report.blocks, 1);
    }

    #[test]
    fn snapshot_roundtrips_and_binds_to_tip() {
        let dir = TestDir::new("dur-snap");
        let (mut durable, _) = open(&dir);
        for i in 0..3u64 {
            let block = next_block(durable.store(), &[i]);
            durable.append(block).unwrap();
        }
        durable.write_snapshot(b"contract-state-at-3").unwrap();
        let tip = durable.store().tip_digest();
        drop(durable);

        let (_, report) = open(&dir);
        let snap = report.snapshot.expect("snapshot must be recovered");
        assert_eq!(snap.height, 3);
        assert_eq!(snap.tip_digest, tip);
        assert_eq!(snap.state, b"contract-state-at-3");
        assert_eq!(report.snapshots_rejected, 0);
    }

    #[test]
    fn newest_valid_snapshot_wins() {
        let dir = TestDir::new("dur-snap-newest");
        let (mut durable, _) = open(&dir);
        for i in 0..4u64 {
            let block = next_block(durable.store(), &[i]);
            durable.append(block).unwrap();
            durable
                .write_snapshot(format!("state-{}", i + 1).as_bytes())
                .unwrap();
        }
        drop(durable);
        let (_, report) = open(&dir);
        assert_eq!(report.snapshot.unwrap().state, b"state-4");
    }

    #[test]
    fn corrupt_snapshot_falls_back_to_older() {
        let dir = TestDir::new("dur-snap-corrupt");
        let (mut durable, _) = open(&dir);
        for i in 0..2u64 {
            let block = next_block(durable.store(), &[i]);
            durable.append(block).unwrap();
            durable
                .write_snapshot(format!("state-{}", i + 1).as_bytes())
                .unwrap();
        }
        drop(durable);
        // Flip a byte in the newest snapshot: CRC rejects it.
        let path = snapshot_path(dir.path(), 2);
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        fs::write(&path, &bytes).unwrap();

        let (_, report) = open(&dir);
        let snap = report.snapshot.expect("older snapshot survives");
        assert_eq!(snap.state, b"state-1");
        assert_eq!(report.snapshots_rejected, 1);
    }

    #[test]
    fn stale_snapshot_from_a_different_chain_rejected() {
        // Build chain A with a snapshot, wipe the log but keep the
        // snapshot, rebuild a different chain B: the snapshot's tip
        // digest no longer binds and must be rejected.
        let dir = TestDir::new("dur-snap-stale");
        let (mut durable, _) = open(&dir);
        let block = next_block(durable.store(), &[1]);
        durable.append(block).unwrap();
        durable.write_snapshot(b"chain-a-state").unwrap();
        drop(durable);
        for entry in fs::read_dir(dir.path()).unwrap() {
            let path = entry.unwrap().path();
            if path.extension().is_some_and(|e| e == "seg") {
                fs::remove_file(path).unwrap();
            }
        }
        let (mut durable, report) = open(&dir);
        assert_eq!(report.blocks, 0);
        assert!(
            report.snapshot.is_none(),
            "unbound snapshot must be rejected"
        );
        assert_eq!(report.snapshots_rejected, 1);
        // Different chain: different first block contents.
        let block = next_block(durable.store(), &[999]);
        durable.append(block).unwrap();
        drop(durable);
        let (_, report) = open(&dir);
        assert!(report.snapshot.is_none());
        assert_eq!(report.snapshots_rejected, 1);
    }

    #[test]
    fn snapshot_cadence_is_advisory() {
        let dir = TestDir::new("dur-cadence");
        let config = DurabilityConfig {
            snapshot_every: 2,
            ..DurabilityConfig::default()
        };
        let (mut durable, _) = DurableStore::<u64>::open(dir.path(), config).unwrap();
        assert!(!durable.snapshot_due(), "empty chain never due");
        let block = next_block(durable.store(), &[1]);
        durable.append(block).unwrap();
        assert!(!durable.snapshot_due());
        let block = next_block(durable.store(), &[2]);
        durable.append(block).unwrap();
        assert!(durable.snapshot_due());
        durable.write_snapshot(b"s").unwrap();
        assert!(!durable.snapshot_due(), "cadence resets after a snapshot");
    }

    #[test]
    fn crashed_handle_refuses_everything() {
        let dir = TestDir::new("dur-dead");
        let (mut durable, _) = open(&dir);
        durable.set_crash_plan(CrashPlan {
            point: CrashPoint::BeforeFlush,
            at: 0,
        });
        let block = next_block(durable.store(), &[1]);
        assert_eq!(durable.append(block.clone()), Err(DurabilityError::Crashed));
        assert!(durable.crashed());
        assert_eq!(durable.append(block), Err(DurabilityError::Crashed));
        assert_eq!(durable.write_snapshot(b"s"), Err(DurabilityError::Crashed));
    }

    #[test]
    fn tampered_log_record_refused_with_decode_context() {
        // A CRC-valid record that is not a block encoding is tampering,
        // not a crash: open must refuse, not truncate.
        let dir = TestDir::new("dur-tamper");
        let (mut log, _) = SegmentedLog::open(dir.path(), LogConfig::default()).unwrap();
        log.append(b"not a block").unwrap();
        log.flush().unwrap();
        drop(log);
        match DurableStore::<u64>::open(dir.path(), DurabilityConfig::default()) {
            Err(DurabilityError::UndecodableRecord { record: 0, .. }) => {}
            other => panic!("expected UndecodableRecord, got {other:?}"),
        }
    }

    #[test]
    fn non_extending_logged_block_refused() {
        // Two structurally valid blocks logged out of order: recovery
        // must refuse rather than guess at a reordering.
        let dir = TestDir::new("dur-order");
        let scratch: ChainStore<u64> = ChainStore::new();
        let b0 = next_block(&scratch, &[1]);
        scratch.append(b0).unwrap();
        let b1 = next_block(&scratch, &[2]);
        let (mut log, _) = SegmentedLog::open(dir.path(), LogConfig::default()).unwrap();
        log.append(&b1.encode()).unwrap(); // starts at height 1: cannot extend empty chain
        log.flush().unwrap();
        drop(log);
        match DurableStore::<u64>::open(dir.path(), DurabilityConfig::default()) {
            Err(DurabilityError::InvalidBlock { record: 0, .. }) => {}
            other => panic!("expected InvalidBlock, got {other:?}"),
        }
    }

    #[test]
    fn errors_render() {
        let e = DurabilityError::Rejected(StoreError::TxRootMismatch);
        assert!(e.to_string().contains("append rejected"));
        assert!(DurabilityError::Crashed.to_string().contains("crashed"));
        let e = DurabilityError::SnapshotIo {
            context: "open /x: denied".into(),
        };
        assert!(e.to_string().contains("snapshot I/O"));
    }
}
