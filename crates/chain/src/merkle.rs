//! Binary Merkle tree over transaction digests.
//!
//! Blocks commit to their transaction set with a Merkle root; the
//! [`MerkleProof`] type lets a light observer verify that a specific
//! transaction (say, their own masked update) was included in a block
//! without downloading the whole block — part of the paper's transparency
//! story.

use crate::hash::Hash32;

/// A Merkle tree built over a list of leaf digests.
#[derive(Debug, Clone)]
pub struct MerkleTree {
    /// Levels bottom-up: `levels[0]` are the leaves, last level is the root.
    levels: Vec<Vec<Hash32>>,
}

/// An inclusion proof for one leaf.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MerkleProof {
    /// Index of the proven leaf.
    pub leaf_index: usize,
    /// Sibling hashes bottom-up, each tagged with whether the sibling is
    /// on the right (`true`) of the running hash.
    pub siblings: Vec<(Hash32, bool)>,
}

impl MerkleTree {
    /// Builds a tree. An empty leaf set gets the conventional all-zero
    /// root (a block with no transactions).
    pub fn build(leaves: &[Hash32]) -> Self {
        if leaves.is_empty() {
            return Self {
                levels: vec![vec![Hash32::ZERO]],
            };
        }
        let mut levels = vec![leaves.to_vec()];
        while levels.last().expect("non-empty").len() > 1 {
            let prev = levels.last().expect("non-empty");
            let mut next = Vec::with_capacity(prev.len().div_ceil(2));
            for pair in prev.chunks(2) {
                let combined = match pair {
                    [l, r] => Hash32::combine(l, r),
                    // Odd node: promote by hashing with itself, the
                    // Bitcoin convention.
                    [l] => Hash32::combine(l, l),
                    _ => unreachable!("chunks(2) yields 1- or 2-element slices"),
                };
                next.push(combined);
            }
            levels.push(next);
        }
        Self { levels }
    }

    /// The root digest.
    pub fn root(&self) -> Hash32 {
        self.levels.last().expect("tree always has a root")[0]
    }

    /// Number of leaves.
    pub fn leaf_count(&self) -> usize {
        if self.levels.len() == 1 && self.levels[0] == vec![Hash32::ZERO] {
            // Ambiguous with a single zero leaf; acceptable for a
            // convenience accessor.
            return self.levels[0].len();
        }
        self.levels[0].len()
    }

    /// Produces an inclusion proof for leaf `index`.
    ///
    /// Returns `None` if the index is out of range.
    pub fn prove(&self, index: usize) -> Option<MerkleProof> {
        if index >= self.levels[0].len() {
            return None;
        }
        let mut siblings = Vec::new();
        let mut i = index;
        for level in &self.levels[..self.levels.len() - 1] {
            let sibling_index = i ^ 1;
            let sibling = if sibling_index < level.len() {
                level[sibling_index]
            } else {
                level[i] // odd promotion hashes with itself
            };
            let sibling_is_right = i.is_multiple_of(2);
            siblings.push((sibling, sibling_is_right));
            i /= 2;
        }
        Some(MerkleProof {
            leaf_index: index,
            siblings,
        })
    }
}

impl MerkleProof {
    /// Verifies that `leaf` is included under `root`.
    pub fn verify(&self, leaf: &Hash32, root: &Hash32) -> bool {
        let mut acc = *leaf;
        for (sibling, sibling_is_right) in &self.siblings {
            acc = if *sibling_is_right {
                Hash32::combine(&acc, sibling)
            } else {
                Hash32::combine(sibling, &acc)
            };
        }
        acc == *root
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn leaves(n: usize) -> Vec<Hash32> {
        (0..n)
            .map(|i| Hash32::of_bytes(&(i as u64).to_le_bytes()))
            .collect()
    }

    #[test]
    fn empty_tree_zero_root() {
        assert_eq!(MerkleTree::build(&[]).root(), Hash32::ZERO);
    }

    #[test]
    fn single_leaf_root_is_leaf() {
        let l = leaves(1);
        assert_eq!(MerkleTree::build(&l).root(), l[0]);
    }

    #[test]
    fn two_leaves_root_is_combination() {
        let l = leaves(2);
        assert_eq!(MerkleTree::build(&l).root(), Hash32::combine(&l[0], &l[1]));
    }

    #[test]
    fn root_depends_on_every_leaf() {
        let l = leaves(5);
        let base = MerkleTree::build(&l).root();
        for i in 0..5 {
            let mut tampered = l.clone();
            tampered[i] = Hash32::of_bytes(b"tampered");
            assert_ne!(MerkleTree::build(&tampered).root(), base, "leaf {i}");
        }
    }

    #[test]
    fn root_depends_on_order() {
        let l = leaves(4);
        let mut rev = l.clone();
        rev.reverse();
        assert_ne!(MerkleTree::build(&l).root(), MerkleTree::build(&rev).root());
    }

    #[test]
    fn proofs_verify_for_all_sizes() {
        for n in 1..=9 {
            let l = leaves(n);
            let tree = MerkleTree::build(&l);
            for (i, leaf) in l.iter().enumerate() {
                let proof = tree.prove(i).expect("index in range");
                assert!(proof.verify(leaf, &tree.root()), "size {n}, leaf {i}");
            }
        }
    }

    #[test]
    fn proof_rejects_wrong_leaf() {
        let l = leaves(4);
        let tree = MerkleTree::build(&l);
        let proof = tree.prove(2).unwrap();
        assert!(!proof.verify(&l[1], &tree.root()));
        assert!(!proof.verify(&Hash32::of_bytes(b"bogus"), &tree.root()));
    }

    #[test]
    fn proof_rejects_wrong_root() {
        let l = leaves(4);
        let tree = MerkleTree::build(&l);
        let proof = tree.prove(0).unwrap();
        assert!(!proof.verify(&l[0], &Hash32::of_bytes(b"other root")));
    }

    #[test]
    fn out_of_range_proof_is_none() {
        assert!(MerkleTree::build(&leaves(3)).prove(3).is_none());
    }

    proptest! {
        #[test]
        fn prop_all_proofs_verify(n in 1usize..40, pick in 0usize..40) {
            let pick = pick % n;
            let l = leaves(n);
            let tree = MerkleTree::build(&l);
            let proof = tree.prove(pick).unwrap();
            prop_assert!(proof.verify(&l[pick], &tree.root()));
        }

        #[test]
        fn prop_cross_leaf_proofs_fail(n in 2usize..20, a in 0usize..20, b in 0usize..20) {
            let (a, b) = (a % n, b % n);
            prop_assume!(a != b);
            let l = leaves(n);
            let tree = MerkleTree::build(&l);
            let proof = tree.prove(a).unwrap();
            prop_assert!(!proof.verify(&l[b], &tree.root()));
        }
    }
}
