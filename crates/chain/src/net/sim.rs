//! The discrete-event message network.
//!
//! Messages are enqueued with a delivery time = `now + serialization +
//! sampled latency`; [`SimNetwork::step`] pops the earliest message and
//! advances the virtual clock. Everything is integer microseconds and the
//! latency PRG is seeded, so simulations are exactly reproducible.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use fl_crypto::ChaChaPrg;

use super::latency::LatencyModel;

/// Identifies a node in the simulated network.
pub type NodeId = u32;

/// A delivered message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delivered {
    /// Sender node.
    pub from: NodeId,
    /// Receiver node.
    pub to: NodeId,
    /// Payload size in bytes.
    pub bytes: usize,
    /// Application tag (e.g. `"masked-update"`, `"block-proposal"`).
    pub tag: String,
    /// Virtual time of delivery (µs since simulation start).
    pub at_micros: u64,
}

/// Aggregate traffic statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Messages sent.
    pub messages: u64,
    /// Total payload bytes.
    pub bytes: u64,
    /// Virtual time of the last delivery.
    pub makespan_micros: u64,
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct InFlight {
    deliver_at: u64,
    seq: u64,
    from: NodeId,
    to: NodeId,
    bytes: usize,
    tag: String,
}

impl Ord for InFlight {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Ties broken by sequence number for determinism.
        (self.deliver_at, self.seq).cmp(&(other.deliver_at, other.seq))
    }
}

impl PartialOrd for InFlight {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The simulated network.
pub struct SimNetwork {
    latency: LatencyModel,
    /// Bytes per second a link can push; `None` = infinite bandwidth.
    bandwidth: Option<u64>,
    prg: ChaChaPrg,
    clock: u64,
    seq: u64,
    queue: BinaryHeap<Reverse<InFlight>>,
    stats: NetStats,
}

impl SimNetwork {
    /// Creates a network with the given latency model and seed.
    pub fn new(latency: LatencyModel, seed: u64) -> Self {
        let mut seed_bytes = [0u8; 32];
        seed_bytes[..8].copy_from_slice(&seed.to_le_bytes());
        Self {
            latency,
            bandwidth: None,
            prg: ChaChaPrg::from_seed(&seed_bytes),
            clock: 0,
            seq: 0,
            queue: BinaryHeap::new(),
            stats: NetStats::default(),
        }
    }

    /// Sets link bandwidth in bytes/second (serialization delay).
    pub fn with_bandwidth(mut self, bytes_per_sec: u64) -> Self {
        assert!(bytes_per_sec > 0, "bandwidth must be positive");
        self.bandwidth = Some(bytes_per_sec);
        self
    }

    /// Current virtual time (µs).
    pub fn now(&self) -> u64 {
        self.clock
    }

    /// Traffic statistics so far.
    pub fn stats(&self) -> NetStats {
        self.stats
    }

    /// Sends a message; returns its scheduled delivery time.
    pub fn send(&mut self, from: NodeId, to: NodeId, bytes: usize, tag: impl Into<String>) -> u64 {
        let serialization = match self.bandwidth {
            Some(bw) => (bytes as u64).saturating_mul(1_000_000) / bw,
            None => 0,
        };
        let latency = self.latency.sample(&mut self.prg);
        let deliver_at = self.clock + serialization + latency;
        self.seq += 1;
        self.queue.push(Reverse(InFlight {
            deliver_at,
            seq: self.seq,
            from,
            to,
            bytes,
            tag: tag.into(),
        }));
        self.stats.messages += 1;
        self.stats.bytes += bytes as u64;
        deliver_at
    }

    /// Sends several payloads from one sender to one receiver coalesced
    /// into a single framed message: one latency sample and one
    /// serialization charge over the summed bytes, instead of one per
    /// payload. This is the wire-level counterpart of batched mempool
    /// admission — a node gossips its pending transactions as one bundle.
    ///
    /// Returns the scheduled delivery time; a no-op returning `now` for
    /// an empty batch.
    pub fn send_batch(
        &mut self,
        from: NodeId,
        to: NodeId,
        payload_bytes: &[usize],
        tag: impl Into<String>,
    ) -> u64 {
        if payload_bytes.is_empty() {
            return self.clock;
        }
        let total: usize = payload_bytes.iter().sum();
        self.send(from, to, total, tag)
    }

    /// Broadcasts to every node in `recipients` except the sender.
    pub fn broadcast(&mut self, from: NodeId, recipients: &[NodeId], bytes: usize, tag: &str) {
        for &to in recipients {
            if to != from {
                self.send(from, to, bytes, tag);
            }
        }
    }

    /// Delivers the earliest in-flight message, advancing the clock.
    pub fn step(&mut self) -> Option<Delivered> {
        let Reverse(msg) = self.queue.pop()?;
        self.clock = self.clock.max(msg.deliver_at);
        self.stats.makespan_micros = self.clock;
        Some(Delivered {
            from: msg.from,
            to: msg.to,
            bytes: msg.bytes,
            tag: msg.tag,
            at_micros: msg.deliver_at,
        })
    }

    /// Delivers everything currently in flight, in time order.
    pub fn drain(&mut self) -> Vec<Delivered> {
        let mut out = Vec::with_capacity(self.queue.len());
        while let Some(d) = self.step() {
            out.push(d);
        }
        out
    }

    /// Number of undelivered messages.
    pub fn in_flight(&self) -> usize {
        self.queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net() -> SimNetwork {
        SimNetwork::new(LatencyModel::Constant { micros: 100 }, 1)
    }

    #[test]
    fn send_and_deliver() {
        let mut n = net();
        let at = n.send(0, 1, 64, "hello");
        assert_eq!(at, 100);
        let d = n.step().unwrap();
        assert_eq!(d.from, 0);
        assert_eq!(d.to, 1);
        assert_eq!(d.at_micros, 100);
        assert_eq!(n.now(), 100);
        assert!(n.step().is_none());
    }

    #[test]
    fn deliveries_in_time_order() {
        let mut n = SimNetwork::new(LatencyModel::Uniform { lo: 10, hi: 5000 }, 7);
        for i in 0..50 {
            n.send(0, i % 5, 10, "m");
        }
        let deliveries = n.drain();
        assert_eq!(deliveries.len(), 50);
        for w in deliveries.windows(2) {
            assert!(w[0].at_micros <= w[1].at_micros);
        }
    }

    #[test]
    fn bandwidth_adds_serialization_delay() {
        // 1 MB at 1 MB/s = 1 second = 1_000_000 µs, plus 100 µs latency.
        let mut n = net().with_bandwidth(1_000_000);
        let at = n.send(0, 1, 1_000_000, "big");
        assert_eq!(at, 1_000_000 + 100);
    }

    #[test]
    fn send_batch_coalesces_into_one_message() {
        // 3 payloads batched: one message, one latency sample, and one
        // serialization charge over the summed bytes at 1 MB/s.
        let mut batched = net().with_bandwidth(1_000_000);
        let at = batched.send_batch(0, 1, &[250_000, 250_000, 500_000], "tx-bundle");
        assert_eq!(at, 1_000_000 + 100);
        assert_eq!(batched.stats().messages, 1);
        assert_eq!(batched.stats().bytes, 1_000_000);
        let d = batched.step().unwrap();
        assert_eq!(d.bytes, 1_000_000);
        assert_eq!(d.tag, "tx-bundle");
    }

    #[test]
    fn empty_batch_is_noop() {
        let mut n = net();
        assert_eq!(n.send_batch(0, 1, &[], "empty"), 0);
        assert_eq!(n.in_flight(), 0);
        assert_eq!(n.stats().messages, 0);
    }

    #[test]
    fn broadcast_skips_sender() {
        let mut n = net();
        n.broadcast(2, &[0, 1, 2, 3], 8, "blk");
        assert_eq!(n.in_flight(), 3);
        let deliveries = n.drain();
        assert!(deliveries.iter().all(|d| d.to != 2));
    }

    #[test]
    fn stats_accumulate() {
        let mut n = net();
        n.send(0, 1, 10, "a");
        n.send(1, 0, 20, "b");
        n.drain();
        let s = n.stats();
        assert_eq!(s.messages, 2);
        assert_eq!(s.bytes, 30);
        assert_eq!(s.makespan_micros, 100);
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed| {
            let mut n = SimNetwork::new(LatencyModel::Uniform { lo: 0, hi: 1000 }, seed);
            for i in 0..20 {
                n.send(0, 1, i, "x");
            }
            n.drain()
                .into_iter()
                .map(|d| d.at_micros)
                .collect::<Vec<_>>()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }

    #[test]
    fn clock_monotone_even_with_reordered_sends() {
        let mut n = SimNetwork::new(LatencyModel::Uniform { lo: 1, hi: 10_000 }, 3);
        n.send(0, 1, 1, "slow-maybe");
        n.send(0, 2, 1, "fast-maybe");
        let t1 = n.step().unwrap().at_micros;
        let t2 = n.step().unwrap().at_micros;
        assert!(t1 <= t2);
        assert_eq!(n.now(), t2.max(t1));
    }
}
