//! Link-latency models.

use fl_crypto::ChaChaPrg;

/// Samples one-way message latency in microseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LatencyModel {
    /// Fixed latency.
    Constant {
        /// One-way latency in microseconds.
        micros: u64,
    },
    /// Uniform in `[lo, hi]`.
    Uniform {
        /// Lower bound (µs).
        lo: u64,
        /// Upper bound (µs), inclusive.
        hi: u64,
    },
    /// Approximately normal via the Irwin–Hall sum of 12 uniforms
    /// (mean-centred), truncated at zero. Avoids floating point in the
    /// hot path, keeping the simulation integer-deterministic.
    Normal {
        /// Mean latency (µs).
        mean: u64,
        /// Standard deviation (µs).
        std_dev: u64,
    },
}

impl LatencyModel {
    /// A LAN-ish default: 200µs ± 50µs.
    pub fn lan() -> Self {
        Self::Normal {
            mean: 200,
            std_dev: 50,
        }
    }

    /// A WAN-ish default: 40ms ± 10ms — the cross-silo setting where
    /// banks run geographically distributed nodes.
    pub fn wan() -> Self {
        Self::Normal {
            mean: 40_000,
            std_dev: 10_000,
        }
    }

    /// Draws one latency sample.
    pub fn sample(&self, prg: &mut ChaChaPrg) -> u64 {
        match *self {
            Self::Constant { micros } => micros,
            Self::Uniform { lo, hi } => {
                assert!(lo <= hi, "uniform latency bounds inverted");
                lo + prg.next_u64_below(hi - lo + 1)
            }
            Self::Normal { mean, std_dev } => {
                // Irwin–Hall: sum of 12 U(0,1) has mean 6, variance 1.
                // Work in integer space: sum 12 draws from [0, 2s], giving
                // mean 12s and std ≈ 2s·sqrt(12)/sqrt(12) = 2s... we use
                // the standard trick: sum12 - 6 ~ N(0,1).
                let s = std_dev;
                if s == 0 {
                    return mean;
                }
                let mut acc: i64 = 0;
                for _ in 0..12 {
                    acc += prg.next_u64_below(2 * s + 1) as i64;
                }
                // acc has mean 12s and std ≈ s·sqrt(12·(1/3)) = 2s; rescale
                // to std s by halving the centred value.
                let centred = (acc - 12 * s as i64) / 2;
                (mean as i64 + centred).max(0) as u64
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prg() -> ChaChaPrg {
        ChaChaPrg::from_seed(&[11u8; 32])
    }

    #[test]
    fn constant_is_constant() {
        let mut p = prg();
        let m = LatencyModel::Constant { micros: 123 };
        for _ in 0..10 {
            assert_eq!(m.sample(&mut p), 123);
        }
    }

    #[test]
    fn uniform_in_bounds() {
        let mut p = prg();
        let m = LatencyModel::Uniform { lo: 10, hi: 20 };
        for _ in 0..200 {
            let v = m.sample(&mut p);
            assert!((10..=20).contains(&v));
        }
    }

    #[test]
    fn uniform_degenerate_single_point() {
        let mut p = prg();
        let m = LatencyModel::Uniform { lo: 5, hi: 5 };
        assert_eq!(m.sample(&mut p), 5);
    }

    #[test]
    fn normal_statistics_roughly_right() {
        let mut p = prg();
        let m = LatencyModel::Normal {
            mean: 1000,
            std_dev: 100,
        };
        let n = 5000;
        let samples: Vec<u64> = (0..n).map(|_| m.sample(&mut p)).collect();
        let mean = samples.iter().sum::<u64>() as f64 / n as f64;
        assert!(
            (mean - 1000.0).abs() < 25.0,
            "mean {mean} too far from 1000"
        );
        let var = samples
            .iter()
            .map(|&x| (x as f64 - mean).powi(2))
            .sum::<f64>()
            / n as f64;
        let std = var.sqrt();
        assert!((std - 100.0).abs() < 25.0, "std {std} too far from 100");
    }

    #[test]
    fn normal_zero_std_is_constant() {
        let mut p = prg();
        let m = LatencyModel::Normal {
            mean: 777,
            std_dev: 0,
        };
        assert_eq!(m.sample(&mut p), 777);
    }

    #[test]
    fn normal_never_negative() {
        let mut p = prg();
        let m = LatencyModel::Normal {
            mean: 10,
            std_dev: 1000,
        };
        for _ in 0..500 {
            let _ = m.sample(&mut p); // must not underflow/panic
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let m = LatencyModel::Uniform { lo: 0, hi: 1000 };
        let mut a = prg();
        let mut b = prg();
        for _ in 0..50 {
            assert_eq!(m.sample(&mut a), m.sample(&mut b));
        }
    }
}
