//! Discrete-event network simulation.
//!
//! The paper's evaluation runs on "a simulated blockchain" and its future
//! work asks for transaction-throughput analysis. This module provides
//! the measurement substrate: a deterministic discrete-event message
//! network with pluggable latency models and byte accounting, driven by
//! the throughput experiment (Ext A in DESIGN.md) to estimate round
//! makespans and chain tx/s under different cohort sizes and model
//! dimensions.

pub mod latency;
pub mod sim;

pub use latency::LatencyModel;
pub use sim::{Delivered, NetStats, NodeId, SimNetwork};
