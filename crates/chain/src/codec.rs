//! Canonical byte encoding for hashing and the durable block log.
//!
//! Transaction and block digests must be identical on every miner, so the
//! encoding must be fully specified: little-endian fixed-width integers,
//! `u64` length prefixes for sequences, and a tag byte for options. This
//! is *not* a general-purpose serialization format (no versioning, no
//! schema evolution) — it exists to give [`crate::hash`] a deterministic
//! pre-image and [`crate::log`] a replayable record format.
//!
//! [`Decode`] is the strict inverse of [`Encode`]: `decode(encode(x)) ==
//! x` for every implementing type, and *every* malformed input —
//! truncated bytes, an unknown enum tag, trailing garbage — returns a
//! [`DecodeError`] instead of panicking. A replica recovering its chain
//! from disk (or syncing one from a peer) must never be killable by a
//! corrupt byte stream.

/// Types with a canonical byte encoding.
pub trait Encode {
    /// Appends the canonical encoding of `self` to `out`.
    fn encode_to(&self, out: &mut Vec<u8>);

    /// Convenience: encodes into a fresh buffer.
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode_to(&mut out);
        out
    }
}
macro_rules! impl_encode_int {
    ($($t:ty),*) => {
        $(impl Encode for $t {
            fn encode_to(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
        })*
    };
}

impl_encode_int!(u8, u16, u32, u64, i8, i16, i32, i64);

impl Encode for usize {
    fn encode_to(&self, out: &mut Vec<u8>) {
        (*self as u64).encode_to(out);
    }
}

impl Encode for bool {
    fn encode_to(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }
}

impl Encode for f64 {
    fn encode_to(&self, out: &mut Vec<u8>) {
        // Bit pattern, not value: -0.0 and 0.0 encode differently, NaN
        // payloads are preserved. Determinism beats numeric equivalence.
        out.extend_from_slice(&self.to_bits().to_le_bytes());
    }
}

impl Encode for String {
    fn encode_to(&self, out: &mut Vec<u8>) {
        self.as_str().encode_to(out);
    }
}

impl Encode for &str {
    fn encode_to(&self, out: &mut Vec<u8>) {
        (self.len() as u64).encode_to(out);
        out.extend_from_slice(self.as_bytes());
    }
}

impl<T: Encode> Encode for Vec<T> {
    fn encode_to(&self, out: &mut Vec<u8>) {
        self.as_slice().encode_to(out);
    }
}

impl<T: Encode> Encode for [T] {
    fn encode_to(&self, out: &mut Vec<u8>) {
        (self.len() as u64).encode_to(out);
        for item in self {
            item.encode_to(out);
        }
    }
}

impl<T: Encode, const N: usize> Encode for [T; N] {
    fn encode_to(&self, out: &mut Vec<u8>) {
        // Fixed length: no prefix needed; the type pins the size.
        for item in self {
            item.encode_to(out);
        }
    }
}

impl<T: Encode> Encode for Option<T> {
    fn encode_to(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode_to(out);
            }
        }
    }
}

impl<A: Encode, B: Encode> Encode for (A, B) {
    fn encode_to(&self, out: &mut Vec<u8>) {
        self.0.encode_to(out);
        self.1.encode_to(out);
    }
}

impl<A: Encode, B: Encode, C: Encode> Encode for (A, B, C) {
    fn encode_to(&self, out: &mut Vec<u8>) {
        self.0.encode_to(out);
        self.1.encode_to(out);
        self.2.encode_to(out);
    }
}

impl<T: Encode + ?Sized> Encode for &T {
    fn encode_to(&self, out: &mut Vec<u8>) {
        (*self).encode_to(out);
    }
}

/// Why a byte stream failed to decode.
///
/// Every variant is a *rejection*, never a panic: the decoders are fed
/// bytes recovered from disk after crashes and bytes received from
/// untrusted peers, and a replica must survive both.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The input ended before the value was complete.
    Truncated {
        /// Bytes the decoder needed next.
        needed: usize,
        /// Bytes actually remaining.
        remaining: usize,
    },
    /// An enum tag byte named no known variant.
    BadTag {
        /// The type being decoded.
        type_name: &'static str,
        /// The offending tag byte.
        tag: u8,
    },
    /// The value decoded, but input bytes were left over. Only
    /// [`Decode::decode`] raises this; mid-stream decoding via
    /// [`Decode::decode_from`] leaves the remainder to the caller.
    TrailingBytes {
        /// Unconsumed byte count.
        remaining: usize,
    },
    /// A sequence length prefix promised more elements than the
    /// remaining input could possibly hold (each element is at least one
    /// byte) — rejected *before* allocating, so a corrupt or hostile
    /// length can never balloon memory.
    LengthOverflow {
        /// The claimed element count.
        claimed: u64,
        /// Bytes actually remaining.
        remaining: usize,
    },
    /// A string's bytes were not valid UTF-8.
    BadUtf8,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Truncated { needed, remaining } => {
                write!(
                    f,
                    "truncated input: needed {needed} bytes, {remaining} left"
                )
            }
            Self::BadTag { type_name, tag } => {
                write!(f, "unknown tag {tag:#04x} for {type_name}")
            }
            Self::TrailingBytes { remaining } => {
                write!(f, "{remaining} trailing bytes after a complete value")
            }
            Self::LengthOverflow { claimed, remaining } => {
                write!(
                    f,
                    "length prefix claims {claimed} elements, only {remaining} bytes remain"
                )
            }
            Self::BadUtf8 => write!(f, "string bytes are not valid UTF-8"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// A cursor over input bytes, tracking the decode position.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Wraps a byte slice for decoding.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True once every byte is consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Consumes exactly `n` bytes, or reports truncation.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError::Truncated {
                needed: n,
                remaining: self.remaining(),
            });
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Consumes one byte.
    pub fn take_u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `u64` length prefix and checks it against the remaining
    /// input, assuming each element occupies at least `min_elem_bytes`
    /// bytes. Callers get a pre-validated `usize` they can safely use as
    /// an allocation bound.
    pub fn take_len(&mut self, min_elem_bytes: usize) -> Result<usize, DecodeError> {
        let claimed = u64::decode_from(self)?;
        let bound = self.remaining() / min_elem_bytes.max(1);
        if claimed > bound as u64 {
            return Err(DecodeError::LengthOverflow {
                claimed,
                remaining: self.remaining(),
            });
        }
        Ok(claimed as usize)
    }
}

/// Types decodable from their canonical [`Encode`] byte form.
///
/// The contract, pinned by proptests over every chain type:
/// `decode(x.encode()) == Ok(x)`, and any *other* input returns `Err` —
/// truncation, bad tags, and trailing bytes are rejections, not panics.
pub trait Decode: Sized {
    /// Decodes a value from the reader, consuming exactly its bytes.
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, DecodeError>;

    /// Decodes a value that must span the *entire* input: trailing bytes
    /// are an error. This is the entry point for framed records (the
    /// block log frames every payload with an exact length).
    fn decode(bytes: &[u8]) -> Result<Self, DecodeError> {
        let mut r = Reader::new(bytes);
        let value = Self::decode_from(&mut r)?;
        if !r.is_empty() {
            return Err(DecodeError::TrailingBytes {
                remaining: r.remaining(),
            });
        }
        Ok(value)
    }
}

macro_rules! impl_decode_int {
    ($($t:ty),*) => {
        $(impl Decode for $t {
            fn decode_from(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
                let bytes = r.take(std::mem::size_of::<$t>())?;
                Ok(<$t>::from_le_bytes(bytes.try_into().expect("exact take")))
            }
        })*
    };
}

impl_decode_int!(u8, u16, u32, u64, i8, i16, i32, i64);

impl Decode for usize {
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        // Encoded as u64; on 64-bit targets the cast is lossless. (A
        // 32-bit replica would additionally need a range check; the
        // workspace targets 64-bit.)
        Ok(u64::decode_from(r)? as usize)
    }
}

impl Decode for bool {
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.take_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(DecodeError::BadTag {
                type_name: "bool",
                tag,
            }),
        }
    }
}

impl Decode for f64 {
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        // Inverse of the bit-pattern encoding: NaN payloads and signed
        // zeros round-trip exactly.
        Ok(f64::from_bits(u64::decode_from(r)?))
    }
}

impl Decode for String {
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let len = r.take_len(1)?;
        let bytes = r.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| DecodeError::BadUtf8)
    }
}

impl<T: Decode> Decode for Vec<T> {
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        // Every element encodes to >= 1 byte, so the length check in
        // `take_len` bounds the allocation by the actual input size.
        let len = r.take_len(1)?;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(T::decode_from(r)?);
        }
        Ok(out)
    }
}

impl<T: Decode, const N: usize> Decode for [T; N] {
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        // Fixed length, no prefix — mirror of the Encode impl.
        let mut out = Vec::with_capacity(N);
        for _ in 0..N {
            out.push(T::decode_from(r)?);
        }
        Ok(out.try_into().unwrap_or_else(|_| unreachable!("length N")))
    }
}

impl<T: Decode> Decode for Option<T> {
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.take_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode_from(r)?)),
            tag => Err(DecodeError::BadTag {
                type_name: "Option",
                tag,
            }),
        }
    }
}

impl<A: Decode, B: Decode> Decode for (A, B) {
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok((A::decode_from(r)?, B::decode_from(r)?))
    }
}

impl<A: Decode, B: Decode, C: Decode> Decode for (A, B, C) {
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok((A::decode_from(r)?, B::decode_from(r)?, C::decode_from(r)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integers_little_endian() {
        assert_eq!(0x0102u16.encode(), vec![0x02, 0x01]);
        assert_eq!(1u64.encode(), vec![1, 0, 0, 0, 0, 0, 0, 0]);
        assert_eq!((-1i8).encode(), vec![0xff]);
    }

    #[test]
    fn usize_encodes_as_u64() {
        assert_eq!(5usize.encode(), 5u64.encode());
    }

    #[test]
    fn strings_length_prefixed() {
        let enc = "ab".encode();
        assert_eq!(&enc[..8], &2u64.to_le_bytes());
        assert_eq!(&enc[8..], b"ab");
        assert_eq!(String::from("ab").encode(), enc);
    }

    #[test]
    fn vec_length_prefixed() {
        let enc = vec![1u8, 2, 3].encode();
        assert_eq!(enc.len(), 8 + 3);
        assert_eq!(&enc[8..], &[1, 2, 3]);
    }

    #[test]
    fn empty_vec_still_prefixed() {
        assert_eq!(Vec::<u64>::new().encode(), 0u64.to_le_bytes().to_vec());
    }

    #[test]
    fn arrays_not_prefixed() {
        assert_eq!([1u8, 2, 3].encode(), vec![1, 2, 3]);
    }

    #[test]
    fn option_tagged() {
        assert_eq!(Option::<u8>::None.encode(), vec![0]);
        assert_eq!(Some(7u8).encode(), vec![1, 7]);
    }

    #[test]
    fn f64_uses_bit_pattern() {
        assert_ne!(0.0f64.encode(), (-0.0f64).encode());
        assert_eq!(1.5f64.encode(), 1.5f64.to_bits().to_le_bytes().to_vec());
    }

    #[test]
    fn tuples_concatenate() {
        assert_eq!((1u8, 2u8).encode(), vec![1, 2]);
        assert_eq!((1u8, 2u8, 3u8).encode(), vec![1, 2, 3]);
    }

    #[test]
    fn nested_structures() {
        let v: Vec<Vec<u8>> = vec![vec![1], vec![2, 3]];
        let enc = v.encode();
        // outer prefix 2, inner prefix 1 + [1], inner prefix 2 + [2,3]
        assert_eq!(enc.len(), 8 + (8 + 1) + (8 + 2));
    }

    #[test]
    fn injective_for_adjacent_values() {
        // Length prefixes prevent ambiguity between ["ab"] and ["a","b"].
        let one: Vec<&str> = vec!["ab"];
        let two: Vec<&str> = vec!["a", "b"];
        assert_ne!(one.encode(), two.encode());
    }

    fn roundtrip<T: Encode + Decode + PartialEq + std::fmt::Debug>(value: T) {
        assert_eq!(T::decode(&value.encode()), Ok(value));
    }

    #[test]
    fn decode_inverts_encode_for_primitives() {
        roundtrip(0u8);
        roundtrip(0x0102u16);
        roundtrip(u32::MAX);
        roundtrip(u64::MAX);
        roundtrip(-1i8);
        roundtrip(i16::MIN);
        roundtrip(i32::MIN);
        roundtrip(i64::MIN);
        roundtrip(usize::MAX);
        roundtrip(true);
        roundtrip(false);
        roundtrip(1.5f64);
        roundtrip(-0.0f64);
        roundtrip(String::from("héllo"));
        roundtrip(String::new());
        roundtrip(vec![1u64, 2, 3]);
        roundtrip(Vec::<u64>::new());
        roundtrip([7u8, 8, 9]);
        roundtrip(Option::<u8>::None);
        roundtrip(Some(42u64));
        roundtrip((1u8, 2u64));
        roundtrip((1u8, 2u64, String::from("x")));
        roundtrip(vec![vec![1u8], vec![2, 3]]);
    }

    #[test]
    fn nan_payload_roundtrips_bit_exactly() {
        let nan = f64::from_bits(0x7ff8_dead_beef_0001);
        let decoded = f64::decode(&nan.encode()).unwrap();
        assert_eq!(decoded.to_bits(), nan.to_bits());
    }

    #[test]
    fn truncated_input_rejected() {
        assert_eq!(
            u64::decode(&[1, 2, 3]),
            Err(DecodeError::Truncated {
                needed: 8,
                remaining: 3
            })
        );
        // A vector whose prefix promises more elements than exist.
        let mut enc = vec![5u64, 6, 7].encode();
        enc.truncate(enc.len() - 4);
        assert!(Vec::<u64>::decode(&enc).is_err());
        // Empty input.
        assert!(u8::decode(&[]).is_err());
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut enc = 7u64.encode();
        enc.push(0xff);
        assert_eq!(
            u64::decode(&enc),
            Err(DecodeError::TrailingBytes { remaining: 1 })
        );
    }

    #[test]
    fn bad_tags_rejected() {
        assert_eq!(
            bool::decode(&[2]),
            Err(DecodeError::BadTag {
                type_name: "bool",
                tag: 2
            })
        );
        assert_eq!(
            Option::<u8>::decode(&[9, 1]),
            Err(DecodeError::BadTag {
                type_name: "Option",
                tag: 9
            })
        );
    }

    #[test]
    fn hostile_length_prefix_rejected_before_allocation() {
        // A length prefix claiming u64::MAX elements must be rejected by
        // the remaining-bytes bound, not by the allocator.
        let mut enc = Vec::new();
        u64::MAX.encode_to(&mut enc);
        assert_eq!(
            Vec::<u64>::decode(&enc),
            Err(DecodeError::LengthOverflow {
                claimed: u64::MAX,
                remaining: 0
            })
        );
    }

    #[test]
    fn invalid_utf8_rejected() {
        let mut enc = Vec::new();
        2u64.encode_to(&mut enc);
        enc.extend_from_slice(&[0xff, 0xfe]);
        assert_eq!(String::decode(&enc), Err(DecodeError::BadUtf8));
    }

    #[test]
    fn errors_render() {
        assert!(DecodeError::BadUtf8.to_string().contains("UTF-8"));
        assert!(DecodeError::Truncated {
            needed: 8,
            remaining: 1
        }
        .to_string()
        .contains("truncated"));
    }
}
