//! Canonical byte encoding for hashing.
//!
//! Transaction and block digests must be identical on every miner, so the
//! encoding must be fully specified: little-endian fixed-width integers,
//! `u64` length prefixes for sequences, and a tag byte for options. This
//! is *not* a general-purpose serialization format (no versioning, no
//! schema evolution) — it exists solely to give [`crate::hash`] a
//! deterministic pre-image.

/// Types with a canonical byte encoding.
pub trait Encode {
    /// Appends the canonical encoding of `self` to `out`.
    fn encode_to(&self, out: &mut Vec<u8>);

    /// Convenience: encodes into a fresh buffer.
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode_to(&mut out);
        out
    }
}

macro_rules! impl_encode_int {
    ($($t:ty),*) => {
        $(impl Encode for $t {
            fn encode_to(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
        })*
    };
}

impl_encode_int!(u8, u16, u32, u64, i8, i16, i32, i64);

impl Encode for usize {
    fn encode_to(&self, out: &mut Vec<u8>) {
        (*self as u64).encode_to(out);
    }
}

impl Encode for bool {
    fn encode_to(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }
}

impl Encode for f64 {
    fn encode_to(&self, out: &mut Vec<u8>) {
        // Bit pattern, not value: -0.0 and 0.0 encode differently, NaN
        // payloads are preserved. Determinism beats numeric equivalence.
        out.extend_from_slice(&self.to_bits().to_le_bytes());
    }
}

impl Encode for String {
    fn encode_to(&self, out: &mut Vec<u8>) {
        self.as_str().encode_to(out);
    }
}

impl Encode for &str {
    fn encode_to(&self, out: &mut Vec<u8>) {
        (self.len() as u64).encode_to(out);
        out.extend_from_slice(self.as_bytes());
    }
}

impl<T: Encode> Encode for Vec<T> {
    fn encode_to(&self, out: &mut Vec<u8>) {
        self.as_slice().encode_to(out);
    }
}

impl<T: Encode> Encode for [T] {
    fn encode_to(&self, out: &mut Vec<u8>) {
        (self.len() as u64).encode_to(out);
        for item in self {
            item.encode_to(out);
        }
    }
}

impl<T: Encode, const N: usize> Encode for [T; N] {
    fn encode_to(&self, out: &mut Vec<u8>) {
        // Fixed length: no prefix needed; the type pins the size.
        for item in self {
            item.encode_to(out);
        }
    }
}

impl<T: Encode> Encode for Option<T> {
    fn encode_to(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode_to(out);
            }
        }
    }
}

impl<A: Encode, B: Encode> Encode for (A, B) {
    fn encode_to(&self, out: &mut Vec<u8>) {
        self.0.encode_to(out);
        self.1.encode_to(out);
    }
}

impl<A: Encode, B: Encode, C: Encode> Encode for (A, B, C) {
    fn encode_to(&self, out: &mut Vec<u8>) {
        self.0.encode_to(out);
        self.1.encode_to(out);
        self.2.encode_to(out);
    }
}

impl<T: Encode + ?Sized> Encode for &T {
    fn encode_to(&self, out: &mut Vec<u8>) {
        (*self).encode_to(out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integers_little_endian() {
        assert_eq!(0x0102u16.encode(), vec![0x02, 0x01]);
        assert_eq!(1u64.encode(), vec![1, 0, 0, 0, 0, 0, 0, 0]);
        assert_eq!((-1i8).encode(), vec![0xff]);
    }

    #[test]
    fn usize_encodes_as_u64() {
        assert_eq!(5usize.encode(), 5u64.encode());
    }

    #[test]
    fn strings_length_prefixed() {
        let enc = "ab".encode();
        assert_eq!(&enc[..8], &2u64.to_le_bytes());
        assert_eq!(&enc[8..], b"ab");
        assert_eq!(String::from("ab").encode(), enc);
    }

    #[test]
    fn vec_length_prefixed() {
        let enc = vec![1u8, 2, 3].encode();
        assert_eq!(enc.len(), 8 + 3);
        assert_eq!(&enc[8..], &[1, 2, 3]);
    }

    #[test]
    fn empty_vec_still_prefixed() {
        assert_eq!(Vec::<u64>::new().encode(), 0u64.to_le_bytes().to_vec());
    }

    #[test]
    fn arrays_not_prefixed() {
        assert_eq!([1u8, 2, 3].encode(), vec![1, 2, 3]);
    }

    #[test]
    fn option_tagged() {
        assert_eq!(Option::<u8>::None.encode(), vec![0]);
        assert_eq!(Some(7u8).encode(), vec![1, 7]);
    }

    #[test]
    fn f64_uses_bit_pattern() {
        assert_ne!(0.0f64.encode(), (-0.0f64).encode());
        assert_eq!(1.5f64.encode(), 1.5f64.to_bits().to_le_bytes().to_vec());
    }

    #[test]
    fn tuples_concatenate() {
        assert_eq!((1u8, 2u8).encode(), vec![1, 2]);
        assert_eq!((1u8, 2u8, 3u8).encode(), vec![1, 2, 3]);
    }

    #[test]
    fn nested_structures() {
        let v: Vec<Vec<u8>> = vec![vec![1], vec![2, 3]];
        let enc = v.encode();
        // outer prefix 2, inner prefix 1 + [1], inner prefix 2 + [2,3]
        assert_eq!(enc.len(), 8 + (8 + 1) + (8 + 2));
    }

    #[test]
    fn injective_for_adjacent_values() {
        // Length prefixes prevent ambiguity between ["ab"] and ["a","b"].
        let one: Vec<&str> = vec!["ab"];
        let two: Vec<&str> = vec!["a", "b"];
        assert_ne!(one.encode(), two.encode());
    }
}
