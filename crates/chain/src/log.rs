//! Append-only segmented record log — the byte-level half of the
//! durable chain (see [`crate::durability`] for the block-level half).
//!
//! # Format
//!
//! A log is a directory of fixed-capacity segment files named
//! `wal-<id>.seg` with contiguous ids from 0. Each segment holds framed
//! records:
//!
//! ```text
//! ┌─────────────┬──────────────┬────────────┐
//! │ len: u32 LE │ crc32: u32 LE│  payload   │   … repeated
//! └─────────────┴──────────────┴────────────┘
//! ```
//!
//! `crc32` is the IEEE CRC-32 of the payload. A record never spans
//! segments: when a record would overflow the segment capacity, the
//! current segment is flushed and a new one is started (a record larger
//! than the capacity gets a segment to itself).
//!
//! # Durability contract
//!
//! [`SegmentedLog::append`] only *buffers* the framed record;
//! [`SegmentedLog::flush`] persists every buffered byte and issues an
//! fsync-equivalent (`File::sync_all`). The guarantee, pinned by the
//! crash-matrix tests:
//!
//! * records appended **and flushed** survive any later crash;
//! * records appended but **not flushed** may vanish entirely — a clean
//!   prefix of the log remains;
//! * a crash **during** the physical write (a torn write) leaves a
//!   partial final record, which [`SegmentedLog::open`] detects by
//!   framing/CRC and truncates — again leaving the clean prefix.
//!
//! Reopening therefore never yields a divergent log: the recovered
//! record sequence is always exactly the appended sequence up to some
//! flush boundary, never reordered or altered (a CRC-valid forgery of a
//! different payload is outside the crash model and surfaces at the
//! chain layer's structural and state-root checks instead).
//!
//! # Crash injection
//!
//! [`SegmentedLog::crash`] and [`SegmentedLog::crash_torn`] simulate a
//! process death at the two byte-level crash points (before the flush,
//! and mid-write). They exist for the crash-matrix tests — in the spirit
//! of the injected apply-time fault the commit-atomicity tests use — and
//! flip the log into a dead state where every later call returns
//! [`LogError::Crashed`].

use std::fs::{self, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

/// Bytes of framing per record: `len: u32` + `crc32: u32`.
pub const RECORD_HEADER_BYTES: usize = 8;

const SEGMENT_PREFIX: &str = "wal-";
const SEGMENT_SUFFIX: &str = ".seg";

/// IEEE CRC-32 (reflected polynomial `0xEDB88320`), the classic WAL
/// record checksum. Table-driven, built at compile time.
pub fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = {
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut crc = i as u32;
            let mut bit = 0;
            while bit < 8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ 0xEDB8_8320
                } else {
                    crc >> 1
                };
                bit += 1;
            }
            table[i] = crc;
            i += 1;
        }
        table
    };
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xff) as usize];
    }
    !crc
}

/// Log configuration.
#[derive(Debug, Clone, Copy)]
pub struct LogConfig {
    /// Capacity of one segment file in bytes. Records never span
    /// segments; an oversized record gets its own segment.
    pub segment_bytes: usize,
}

impl Default for LogConfig {
    fn default() -> Self {
        Self {
            segment_bytes: 64 * 1024,
        }
    }
}

/// Errors from the segmented log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogError {
    /// An I/O operation failed; the context names the operation and path.
    Io {
        /// Rendered operation, path, and OS error.
        context: String,
    },
    /// The log bytes are corrupt beyond what crash recovery repairs
    /// (e.g. a bad record in the *middle* of the log, or a gap in the
    /// segment id sequence) — this is tampering or media failure, not a
    /// torn tail, and recovery refuses to guess.
    Corrupt {
        /// Segment id holding the corruption.
        segment: u64,
        /// Byte offset of the corrupt record inside the segment.
        offset: u64,
        /// What was wrong.
        reason: String,
    },
    /// The log was killed by an injected crash; every later operation on
    /// this handle fails. Reopen the directory to recover.
    Crashed,
}

impl std::fmt::Display for LogError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io { context } => write!(f, "log I/O: {context}"),
            Self::Corrupt {
                segment,
                offset,
                reason,
            } => write!(
                f,
                "log corrupt at segment {segment} offset {offset}: {reason}"
            ),
            Self::Crashed => write!(f, "log handle crashed (injected fault)"),
        }
    }
}

impl std::error::Error for LogError {}

fn io_err(op: &str, path: &Path, e: &std::io::Error) -> LogError {
    LogError::Io {
        context: format!("{op} {}: {e}", path.display()),
    }
}

/// Where (and why) recovery cut a torn tail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TornTail {
    /// Segment the tail was cut from.
    pub segment: u64,
    /// Byte offset the segment was truncated to.
    pub offset: u64,
    /// What made the tail record invalid.
    pub reason: TornReason,
}

/// How a tail record was detected as torn.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TornReason {
    /// Fewer than [`RECORD_HEADER_BYTES`] bytes of framing remained.
    PartialHeader,
    /// The frame promised more payload bytes than the segment holds.
    PartialPayload,
    /// The payload's CRC-32 did not match the frame.
    CrcMismatch,
}

/// What [`SegmentedLog::open`] recovered from disk.
#[derive(Debug, Clone)]
pub struct LogRecovery {
    /// Every valid record payload, in append order.
    pub records: Vec<Vec<u8>>,
    /// The torn tail that was detected and truncated, if any.
    pub truncated: Option<TornTail>,
}

/// An append-only segmented record log over a directory.
#[derive(Debug)]
pub struct SegmentedLog {
    dir: PathBuf,
    config: LogConfig,
    /// Id of the segment currently being appended to.
    segment_id: u64,
    /// Durable (flushed) bytes in the current segment.
    durable_len: u64,
    /// Framed bytes appended but not yet flushed. Never spans a segment
    /// boundary: `append` rolls segments *before* buffering.
    pending: Vec<u8>,
    /// Set by an injected crash; poisons every later operation.
    crashed: bool,
}

impl SegmentedLog {
    /// Opens (or creates) the log in `dir`, recovering its contents.
    ///
    /// Recovery walks the segments in id order, validates every record
    /// frame and CRC, and handles a torn tail — a partial or
    /// CRC-inconsistent final record in the final segment — by
    /// physically truncating it. Corruption anywhere else is refused
    /// with [`LogError::Corrupt`].
    pub fn open(
        dir: impl Into<PathBuf>,
        config: LogConfig,
    ) -> Result<(Self, LogRecovery), LogError> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|e| io_err("create dir", &dir, &e))?;

        let mut segment_ids: Vec<u64> = Vec::new();
        let entries = fs::read_dir(&dir).map_err(|e| io_err("read dir", &dir, &e))?;
        for entry in entries {
            let entry = entry.map_err(|e| io_err("read dir entry", &dir, &e))?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(id) = name
                .strip_prefix(SEGMENT_PREFIX)
                .and_then(|s| s.strip_suffix(SEGMENT_SUFFIX))
                .and_then(|s| s.parse::<u64>().ok())
            {
                segment_ids.push(id);
            }
        }
        segment_ids.sort_unstable();
        for (expect, &id) in segment_ids.iter().enumerate() {
            if id != expect as u64 {
                return Err(LogError::Corrupt {
                    segment: expect as u64,
                    offset: 0,
                    reason: format!("segment {expect} missing (found {id})"),
                });
            }
        }

        let mut records = Vec::new();
        let mut truncated = None;
        let mut tail = (0u64, 0u64); // (segment id, durable len)
        for (i, &id) in segment_ids.iter().enumerate() {
            let is_last = i + 1 == segment_ids.len();
            let path = segment_path(&dir, id);
            let bytes = fs::read(&path).map_err(|e| io_err("read segment", &path, &e))?;
            let parsed = parse_segment(&bytes);
            for (_, payload) in &parsed.records {
                records.push(payload.to_vec());
            }
            match parsed.torn {
                None => {
                    tail = (id, bytes.len() as u64);
                }
                Some((offset, reason)) if is_last => {
                    // Torn tail: cut the partial record so the segment
                    // ends on a clean frame boundary.
                    let file = OpenOptions::new()
                        .write(true)
                        .open(&path)
                        .map_err(|e| io_err("open segment for truncation", &path, &e))?;
                    file.set_len(offset)
                        .map_err(|e| io_err("truncate segment", &path, &e))?;
                    file.sync_all()
                        .map_err(|e| io_err("sync truncated segment", &path, &e))?;
                    truncated = Some(TornTail {
                        segment: id,
                        offset,
                        reason,
                    });
                    tail = (id, offset);
                }
                Some((offset, reason)) => {
                    // A bad record with later segments after it cannot be
                    // a crash artifact (segments are flushed before
                    // rolling): refuse to silently drop committed data.
                    return Err(LogError::Corrupt {
                        segment: id,
                        offset,
                        reason: format!("{reason:?} in a non-final segment"),
                    });
                }
            }
        }

        Ok((
            Self {
                dir,
                config,
                segment_id: tail.0,
                durable_len: tail.1,
                pending: Vec::new(),
                crashed: false,
            },
            LogRecovery { records, truncated },
        ))
    }

    /// The log directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Frames `payload` and buffers it for the next [`Self::flush`].
    /// Rolls to a new segment first when the record would overflow the
    /// current segment's capacity.
    pub fn append(&mut self, payload: &[u8]) -> Result<(), LogError> {
        self.check_alive()?;
        let record_len = RECORD_HEADER_BYTES + payload.len();
        let used = self.durable_len as usize + self.pending.len();
        if used > 0 && used + record_len > self.config.segment_bytes {
            self.flush()?;
            self.segment_id += 1;
            self.durable_len = 0;
        }
        self.pending
            .extend_from_slice(&(payload.len() as u32).to_le_bytes());
        self.pending
            .extend_from_slice(&crc32(payload).to_le_bytes());
        self.pending.extend_from_slice(payload);
        Ok(())
    }

    /// Persists every buffered byte to the current segment and issues an
    /// fsync-equivalent. After `flush` returns, the appended records are
    /// durable under the crash model.
    pub fn flush(&mut self) -> Result<(), LogError> {
        self.check_alive()?;
        if self.pending.is_empty() {
            return Ok(());
        }
        let path = segment_path(&self.dir, self.segment_id);
        let mut file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| io_err("open segment", &path, &e))?;
        file.write_all(&self.pending)
            .map_err(|e| io_err("write segment", &path, &e))?;
        file.sync_all()
            .map_err(|e| io_err("sync segment", &path, &e))?;
        self.durable_len += self.pending.len() as u64;
        self.pending.clear();
        Ok(())
    }

    /// Buffered bytes not yet flushed.
    pub fn pending_bytes(&self) -> usize {
        self.pending.len()
    }

    /// Id of the segment currently being appended to.
    pub fn segment_id(&self) -> u64 {
        self.segment_id
    }

    /// Injected crash *before* the flush: every buffered byte is lost,
    /// the handle is dead. On-disk state is exactly the last flush.
    pub fn crash(&mut self) {
        self.pending.clear();
        self.crashed = true;
    }

    /// Injected crash *during* the physical write (a torn write): only
    /// the first `persist` bytes of the buffer reach the segment, then
    /// the handle dies. Recovery must detect and truncate the partial
    /// record.
    pub fn crash_torn(&mut self, persist: usize) -> Result<(), LogError> {
        self.check_alive()?;
        let persist = persist.min(self.pending.len());
        let path = segment_path(&self.dir, self.segment_id);
        let mut file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| io_err("open segment", &path, &e))?;
        file.write_all(&self.pending[..persist])
            .map_err(|e| io_err("torn write", &path, &e))?;
        file.sync_all()
            .map_err(|e| io_err("sync torn write", &path, &e))?;
        self.crash();
        Ok(())
    }

    fn check_alive(&self) -> Result<(), LogError> {
        if self.crashed {
            return Err(LogError::Crashed);
        }
        Ok(())
    }
}

fn segment_path(dir: &Path, id: u64) -> PathBuf {
    dir.join(format!("{SEGMENT_PREFIX}{id:08}{SEGMENT_SUFFIX}"))
}

/// One parsed segment: valid records plus an optional torn tail.
struct ParsedSegment<'a> {
    /// `(offset, payload)` of every valid record.
    records: Vec<(u64, &'a [u8])>,
    /// `(offset, reason)` where parsing stopped on an invalid record.
    torn: Option<(u64, TornReason)>,
}

fn parse_segment(bytes: &[u8]) -> ParsedSegment<'_> {
    let mut records = Vec::new();
    let mut pos = 0usize;
    while pos < bytes.len() {
        let remaining = bytes.len() - pos;
        if remaining < RECORD_HEADER_BYTES {
            return ParsedSegment {
                records,
                torn: Some((pos as u64, TornReason::PartialHeader)),
            };
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().expect("4 bytes"));
        if remaining - RECORD_HEADER_BYTES < len {
            return ParsedSegment {
                records,
                torn: Some((pos as u64, TornReason::PartialPayload)),
            };
        }
        let payload = &bytes[pos + RECORD_HEADER_BYTES..pos + RECORD_HEADER_BYTES + len];
        if crc32(payload) != crc {
            return ParsedSegment {
                records,
                torn: Some((pos as u64, TornReason::CrcMismatch)),
            };
        }
        records.push((pos as u64, payload));
        pos += RECORD_HEADER_BYTES + len;
    }
    ParsedSegment {
        records,
        torn: None,
    }
}

#[cfg(test)]
pub(crate) mod testdir {
    //! Unique scratch directories for filesystem tests, removed on drop.

    use std::path::{Path, PathBuf};
    use std::sync::atomic::{AtomicU64, Ordering};

    static NEXT: AtomicU64 = AtomicU64::new(0);

    /// A scratch directory under the OS temp dir, unique per test.
    pub struct TestDir(PathBuf);

    impl TestDir {
        /// Creates a fresh directory tagged with the process id and a
        /// per-process counter.
        pub fn new(tag: &str) -> Self {
            let n = NEXT.fetch_add(1, Ordering::Relaxed);
            let path =
                std::env::temp_dir().join(format!("fl-chain-{tag}-{}-{n}", std::process::id()));
            std::fs::create_dir_all(&path).expect("create test dir");
            Self(path)
        }

        /// The directory path.
        pub fn path(&self) -> &Path {
            &self.0
        }
    }

    impl Drop for TestDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::testdir::TestDir;
    use super::*;

    fn payloads(log: &TestDir) -> Vec<Vec<u8>> {
        let (_, rec) = SegmentedLog::open(log.path(), LogConfig::default()).unwrap();
        rec.records
    }

    #[test]
    fn crc32_known_vectors() {
        // Standard IEEE CRC-32 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn append_flush_reopen_roundtrip() {
        let dir = TestDir::new("roundtrip");
        let (mut log, rec) = SegmentedLog::open(dir.path(), LogConfig::default()).unwrap();
        assert!(rec.records.is_empty());
        assert!(rec.truncated.is_none());
        log.append(b"alpha").unwrap();
        log.append(b"").unwrap(); // empty payloads are legal records
        log.append(b"gamma").unwrap();
        log.flush().unwrap();
        assert_eq!(
            payloads(&dir),
            vec![b"alpha".to_vec(), Vec::new(), b"gamma".to_vec()]
        );
    }

    #[test]
    fn unflushed_records_are_lost_cleanly() {
        let dir = TestDir::new("unflushed");
        let (mut log, _) = SegmentedLog::open(dir.path(), LogConfig::default()).unwrap();
        log.append(b"durable").unwrap();
        log.flush().unwrap();
        log.append(b"volatile").unwrap();
        log.crash();
        assert_eq!(log.append(b"x"), Err(LogError::Crashed));
        let (_, rec) = SegmentedLog::open(dir.path(), LogConfig::default()).unwrap();
        assert_eq!(rec.records, vec![b"durable".to_vec()]);
        assert!(rec.truncated.is_none(), "no torn bytes: nothing to repair");
    }

    #[test]
    fn torn_write_detected_and_truncated() {
        let dir = TestDir::new("torn");
        let (mut log, _) = SegmentedLog::open(dir.path(), LogConfig::default()).unwrap();
        log.append(b"durable").unwrap();
        log.flush().unwrap();
        log.append(b"torn-record-payload").unwrap();
        // Persist the header plus half the payload, then die.
        log.crash_torn(RECORD_HEADER_BYTES + 9).unwrap();

        let (reopened, rec) = SegmentedLog::open(dir.path(), LogConfig::default()).unwrap();
        assert_eq!(rec.records, vec![b"durable".to_vec()]);
        let torn = rec.truncated.expect("tail must be detected");
        assert_eq!(torn.reason, TornReason::PartialPayload);
        assert_eq!(
            torn.offset,
            (RECORD_HEADER_BYTES + b"durable".len()) as u64,
            "truncated back to the last clean frame boundary"
        );
        drop(reopened);
        // After truncation a further reopen is clean.
        let (_, rec) = SegmentedLog::open(dir.path(), LogConfig::default()).unwrap();
        assert!(rec.truncated.is_none());
        assert_eq!(rec.records, vec![b"durable".to_vec()]);
    }

    #[test]
    fn torn_header_detected() {
        let dir = TestDir::new("torn-header");
        let (mut log, _) = SegmentedLog::open(dir.path(), LogConfig::default()).unwrap();
        log.append(b"keep").unwrap();
        log.flush().unwrap();
        log.append(b"lost").unwrap();
        log.crash_torn(3).unwrap(); // 3 bytes: not even a full length field

        let (_, rec) = SegmentedLog::open(dir.path(), LogConfig::default()).unwrap();
        assert_eq!(rec.records, vec![b"keep".to_vec()]);
        assert_eq!(rec.truncated.unwrap().reason, TornReason::PartialHeader);
    }

    #[test]
    fn corrupted_crc_tail_truncated() {
        let dir = TestDir::new("bad-crc");
        let (mut log, _) = SegmentedLog::open(dir.path(), LogConfig::default()).unwrap();
        log.append(b"first").unwrap();
        log.append(b"second").unwrap();
        log.flush().unwrap();
        drop(log);
        // Flip a payload byte of the final record on disk.
        let path = segment_path(dir.path(), 0);
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        fs::write(&path, &bytes).unwrap();

        let (_, rec) = SegmentedLog::open(dir.path(), LogConfig::default()).unwrap();
        assert_eq!(rec.records, vec![b"first".to_vec()]);
        assert_eq!(rec.truncated.unwrap().reason, TornReason::CrcMismatch);
    }

    #[test]
    fn corruption_mid_log_is_refused_not_dropped() {
        let dir = TestDir::new("mid-corrupt");
        // Two records in segment 0, then roll to segment 1.
        let config = LogConfig { segment_bytes: 32 };
        let (mut log, _) = SegmentedLog::open(dir.path(), config).unwrap();
        log.append(&[1u8; 10]).unwrap(); // 18 bytes framed
        log.append(&[2u8; 10]).unwrap(); // would overflow: rolls to segment 1
        log.append(&[3u8; 10]).unwrap(); // rolls again
        log.flush().unwrap();
        assert_eq!(log.segment_id(), 2);
        drop(log);
        // Corrupt a payload byte in segment 0 — not the final segment.
        let path = segment_path(dir.path(), 0);
        let mut bytes = fs::read(&path).unwrap();
        bytes[RECORD_HEADER_BYTES] ^= 0xff;
        fs::write(&path, &bytes).unwrap();

        match SegmentedLog::open(dir.path(), config) {
            Err(LogError::Corrupt { segment: 0, .. }) => {}
            other => panic!("mid-log corruption must refuse to open, got {other:?}"),
        }
    }

    #[test]
    fn missing_segment_is_refused() {
        let dir = TestDir::new("gap");
        let config = LogConfig { segment_bytes: 16 };
        let (mut log, _) = SegmentedLog::open(dir.path(), config).unwrap();
        for i in 0..3u8 {
            log.append(&[i; 10]).unwrap();
        }
        log.flush().unwrap();
        drop(log);
        fs::remove_file(segment_path(dir.path(), 1)).unwrap();
        match SegmentedLog::open(dir.path(), config) {
            Err(LogError::Corrupt { reason, .. }) => {
                assert!(reason.contains("missing"), "{reason}");
            }
            other => panic!("gap must refuse to open, got {other:?}"),
        }
    }

    #[test]
    fn segments_roll_at_capacity_and_reopen_appends_to_tail() {
        let dir = TestDir::new("roll");
        let config = LogConfig { segment_bytes: 64 };
        let (mut log, _) = SegmentedLog::open(dir.path(), config).unwrap();
        let mut expect = Vec::new();
        for i in 0..10u8 {
            let payload = vec![i; 20]; // 28 bytes framed: 2 per segment
            log.append(&payload).unwrap();
            log.flush().unwrap();
            expect.push(payload);
        }
        assert!(log.segment_id() >= 4, "must have rolled");
        drop(log);

        let (mut log, rec) = SegmentedLog::open(dir.path(), config).unwrap();
        assert_eq!(rec.records, expect);
        // Appending after reopen lands after the recovered tail.
        log.append(&[0xAB; 20]).unwrap();
        log.flush().unwrap();
        let (_, rec) = SegmentedLog::open(dir.path(), config).unwrap();
        assert_eq!(rec.records.len(), 11);
        assert_eq!(rec.records[10], vec![0xAB; 20]);
    }

    #[test]
    fn oversized_record_gets_its_own_segment() {
        let dir = TestDir::new("oversize");
        let config = LogConfig { segment_bytes: 16 };
        let (mut log, _) = SegmentedLog::open(dir.path(), config).unwrap();
        log.append(&[7u8; 100]).unwrap(); // larger than a whole segment
        log.flush().unwrap();
        log.append(&[8u8; 100]).unwrap();
        log.flush().unwrap();
        let (_, rec) = SegmentedLog::open(dir.path(), config).unwrap();
        assert_eq!(rec.records, vec![vec![7u8; 100], vec![8u8; 100]]);
    }

    #[test]
    fn errors_render() {
        assert!(LogError::Crashed.to_string().contains("crashed"));
        let e = LogError::Corrupt {
            segment: 2,
            offset: 40,
            reason: "CrcMismatch".into(),
        };
        assert!(e.to_string().contains("segment 2"));
    }
}
