//! Transactions: a sender, an anti-replay nonce, and a contract call —
//! plus [`TxBundle`], the pre-validated batch the consensus engine
//! commits.

use std::collections::BTreeMap;

use crate::codec::{Decode, DecodeError, Encode, Reader};
use crate::hash::Hash32;
use crate::merkle::MerkleTree;

/// Account identifier (data owners and miners share the id space; the
/// paper lets any data owner act as a miner).
pub type AccountId = u32;

/// A transaction carrying a contract call of type `C`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Transaction<C> {
    /// Originating account.
    pub sender: AccountId,
    /// Per-sender sequence number; the mempool enforces ordering and the
    /// contract layer can use it for replay protection.
    pub nonce: u64,
    /// The contract call payload.
    pub call: C,
}

impl<C: Encode> Transaction<C> {
    /// Creates a transaction.
    pub fn new(sender: AccountId, nonce: u64, call: C) -> Self {
        Self {
            sender,
            nonce,
            call,
        }
    }

    /// Canonical digest of the transaction.
    pub fn digest(&self) -> Hash32 {
        Hash32::of("transparent-fl/tx", self)
    }
}

impl<C: Encode> Encode for Transaction<C> {
    fn encode_to(&self, out: &mut Vec<u8>) {
        self.sender.encode_to(out);
        self.nonce.encode_to(out);
        self.call.encode_to(out);
    }
}

impl<C: Decode> Decode for Transaction<C> {
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(Self {
            sender: AccountId::decode_from(r)?,
            nonce: u64::decode_from(r)?,
            call: C::decode_from(r)?,
        })
    }
}

/// Why a batch of transactions failed to seal into a [`TxBundle`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BundleError {
    /// A sender's nonces are not consecutive in block order.
    NonContiguousNonces {
        /// The offending sender.
        sender: AccountId,
        /// Nonce expected from the sender's previous transaction in the
        /// batch.
        expected: u64,
        /// Nonce found.
        got: u64,
        /// Index of the offending transaction within the batch.
        tx_index: usize,
    },
}

impl std::fmt::Display for BundleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::NonContiguousNonces {
                sender,
                expected,
                got,
                tx_index,
            } => write!(
                f,
                "tx {tx_index}: sender {sender} jumps from expected nonce {expected} to {got}"
            ),
        }
    }
}

impl std::error::Error for BundleError {}

/// An ordered, admission-checked batch of transactions plus its Merkle
/// transaction root, computed exactly once.
///
/// A bundle is the unit the batched pipeline hands around: the mempool
/// seals drained transactions into one ([`crate::mempool::Mempool::drain_bundle`]),
/// and [`crate::consensus::engine::ConsensusEngine::commit_bundle`]
/// commits it without re-running per-transaction admission checks or
/// rebuilding the Merkle tree per miner replica. Intra-batch invariant:
/// each sender's nonces are consecutive in block order (the mempool
/// additionally anchors the first nonce against its per-sender counter).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TxBundle<C> {
    txs: Vec<Transaction<C>>,
    tx_root: Hash32,
}

impl<C: Encode> TxBundle<C> {
    /// Seals a batch, checking per-sender nonce contiguity in one pass
    /// and committing to the transaction Merkle root.
    pub fn seal(txs: Vec<Transaction<C>>) -> Result<Self, BundleError> {
        Self::check_contiguous(&txs)?;
        Ok(Self::seal_unchecked(txs))
    }

    /// Seals a batch without the nonce-contiguity check (still computes
    /// the root). For transactions that bypass a mempool — e.g. tests and
    /// the legacy `commit_transactions` path — where nonce semantics are
    /// the caller's business.
    pub fn seal_unchecked(txs: Vec<Transaction<C>>) -> Self {
        let leaves: Vec<Hash32> = txs.iter().map(Transaction::digest).collect();
        let tx_root = MerkleTree::build(&leaves).root();
        Self { txs, tx_root }
    }
}

impl<C> TxBundle<C> {
    /// Checks the bundle invariant — each sender's nonces are consecutive
    /// in block order — without sealing (no clone, no Merkle build).
    pub fn check_contiguous(txs: &[Transaction<C>]) -> Result<(), BundleError> {
        let mut last: BTreeMap<AccountId, u64> = BTreeMap::new();
        for (tx_index, tx) in txs.iter().enumerate() {
            if let Some(&prev) = last.get(&tx.sender) {
                let expected = prev + 1;
                if tx.nonce != expected {
                    return Err(BundleError::NonContiguousNonces {
                        sender: tx.sender,
                        expected,
                        got: tx.nonce,
                        tx_index,
                    });
                }
            }
            last.insert(tx.sender, tx.nonce);
        }
        Ok(())
    }

    /// The transactions, in block order.
    pub fn txs(&self) -> &[Transaction<C>] {
        &self.txs
    }

    /// Merkle root over the transaction digests, computed at seal time.
    pub fn tx_root(&self) -> Hash32 {
        self.tx_root
    }

    /// Number of transactions.
    pub fn len(&self) -> usize {
        self.txs.len()
    }

    /// True when the bundle holds no transactions.
    pub fn is_empty(&self) -> bool {
        self.txs.is_empty()
    }

    /// Consumes the bundle, returning the transactions.
    pub fn into_txs(self) -> Vec<Transaction<C>> {
        self.txs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_changes_with_every_field() {
        let base = Transaction::new(1, 0, 7u64);
        assert_ne!(base.digest(), Transaction::new(2, 0, 7u64).digest());
        assert_ne!(base.digest(), Transaction::new(1, 1, 7u64).digest());
        assert_ne!(base.digest(), Transaction::new(1, 0, 8u64).digest());
    }

    #[test]
    fn digest_deterministic() {
        let a = Transaction::new(3, 9, vec![1u64, 2, 3]);
        let b = Transaction::new(3, 9, vec![1u64, 2, 3]);
        assert_eq!(a.digest(), b.digest());
    }

    #[test]
    fn encode_concatenates_fields() {
        let tx = Transaction::new(1u32, 2u64, 3u8);
        let enc = tx.encode();
        assert_eq!(enc.len(), 4 + 8 + 1);
        assert_eq!(enc[0], 1);
        assert_eq!(enc[4], 2);
        assert_eq!(enc[12], 3);
    }

    #[test]
    fn bundle_root_matches_block_root() {
        let txs = vec![Transaction::new(0, 0, 1u64), Transaction::new(1, 0, 2u64)];
        let bundle = TxBundle::seal(txs.clone()).unwrap();
        assert_eq!(bundle.tx_root(), crate::block::Block::tx_root_of(&txs));
        assert_eq!(bundle.len(), 2);
        assert!(!bundle.is_empty());
        assert_eq!(bundle.into_txs(), txs);
    }

    #[test]
    fn bundle_accepts_interleaved_contiguous_nonces() {
        let txs = vec![
            Transaction::new(0, 5, 1u64),
            Transaction::new(1, 0, 2u64),
            Transaction::new(0, 6, 3u64),
            Transaction::new(1, 1, 4u64),
        ];
        assert!(TxBundle::seal(txs).is_ok());
    }

    #[test]
    fn bundle_rejects_nonce_jump() {
        let txs = vec![
            Transaction::new(0, 0, 1u64),
            Transaction::new(0, 2, 2u64), // gap: expected 1
        ];
        assert_eq!(
            TxBundle::seal(txs).unwrap_err(),
            BundleError::NonContiguousNonces {
                sender: 0,
                expected: 1,
                got: 2,
                tx_index: 1,
            }
        );
    }

    #[test]
    fn transaction_decode_roundtrips() {
        let tx = Transaction::new(3, 9, vec![1u64, 2, 3]);
        assert_eq!(Transaction::<Vec<u64>>::decode(&tx.encode()), Ok(tx));
        // Truncated mid-call: rejected, not panicked.
        let enc = Transaction::new(3, 9, vec![1u64, 2, 3]).encode();
        assert!(Transaction::<Vec<u64>>::decode(&enc[..enc.len() - 1]).is_err());
    }

    #[test]
    fn empty_bundle_zero_root() {
        let bundle: TxBundle<u64> = TxBundle::seal(vec![]).unwrap();
        assert!(bundle.is_empty());
        assert_eq!(bundle.tx_root(), Hash32::ZERO);
    }
}
