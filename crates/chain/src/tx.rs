//! Transactions: a sender, an anti-replay nonce, and a contract call.

use crate::codec::Encode;
use crate::hash::Hash32;

/// Account identifier (data owners and miners share the id space; the
/// paper lets any data owner act as a miner).
pub type AccountId = u32;

/// A transaction carrying a contract call of type `C`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Transaction<C> {
    /// Originating account.
    pub sender: AccountId,
    /// Per-sender sequence number; the mempool enforces ordering and the
    /// contract layer can use it for replay protection.
    pub nonce: u64,
    /// The contract call payload.
    pub call: C,
}

impl<C: Encode> Transaction<C> {
    /// Creates a transaction.
    pub fn new(sender: AccountId, nonce: u64, call: C) -> Self {
        Self {
            sender,
            nonce,
            call,
        }
    }

    /// Canonical digest of the transaction.
    pub fn digest(&self) -> Hash32 {
        Hash32::of("transparent-fl/tx", self)
    }
}

impl<C: Encode> Encode for Transaction<C> {
    fn encode_to(&self, out: &mut Vec<u8>) {
        self.sender.encode_to(out);
        self.nonce.encode_to(out);
        self.call.encode_to(out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_changes_with_every_field() {
        let base = Transaction::new(1, 0, 7u64);
        assert_ne!(base.digest(), Transaction::new(2, 0, 7u64).digest());
        assert_ne!(base.digest(), Transaction::new(1, 1, 7u64).digest());
        assert_ne!(base.digest(), Transaction::new(1, 0, 8u64).digest());
    }

    #[test]
    fn digest_deterministic() {
        let a = Transaction::new(3, 9, vec![1u64, 2, 3]);
        let b = Transaction::new(3, 9, vec![1u64, 2, 3]);
        assert_eq!(a.digest(), b.digest());
    }

    #[test]
    fn encode_concatenates_fields() {
        let tx = Transaction::new(1u32, 2u64, 3u8);
        let enc = tx.encode();
        assert_eq!(enc.len(), 4 + 8 + 1);
        assert_eq!(enc[0], 1);
        assert_eq!(enc[4], 2);
        assert_eq!(enc[12], 3);
    }
}
