//! The propose → re-execute → vote → commit engine.
//!
//! Models the paper's blockchain as a deterministic simulation over `n`
//! miner replicas, each holding its own copy of the smart-contract state
//! and the chain:
//!
//! 1. The [`LeaderSchedule`] names a proposer for the current view.
//! 2. The proposer executes the transactions on a scratch copy of its
//!    replica and publishes a block whose `state_root` commits to the
//!    result. Byzantine proposers can publish a *corrupted* root — this is
//!    the paper's fraudulent leader "proposing incorrect evaluation
//!    results" (Sect. III-A).
//! 3. Every other miner re-executes the same transactions on a scratch
//!    copy of *its* replica and votes to accept iff its root matches the
//!    proposal.
//! 4. On a strict majority, every miner applies the *proven* outcome to
//!    its replica and appends the block; otherwise the view advances and
//!    the next leader proposes the same transactions.
//!
//! The engine guarantees: **with an honest majority, only blocks whose
//! state root equals honest re-execution are ever committed** — the
//! machine-checked form of the paper's trust claim.
//!
//! # Batched, parallel pipeline
//!
//! [`ConsensusEngine::commit_bundle`] takes a pre-validated
//! [`TxBundle`] (see `mempool::Mempool::drain_bundle`), so admission
//! checks and the transaction Merkle root are computed once per block,
//! not once per miner. Within a view, the leader's proposal execution
//! and every verifier's independent re-execution *overlap*: they fan out
//! on `numeric::par` with one slot per miner. Each slot is a pure
//! function of the miner's index (replicas are in lockstep, execution is
//! deterministic), and the slots are combined in index order afterwards,
//! so quorum results are **bit-identical for any thread count** — the
//! same contract `numeric::par` pins for the Shapley engines.
//!
//! # Commit atomicity
//!
//! The commit phase is all-or-nothing by construction. Execution — the
//! only fallible step — happens exclusively on scratch replicas *before*
//! the vote; once quorum is reached, the outcome already proven on
//! scratch is transplanted onto every replica with no fallible call in
//! the apply loop. A post-quorum failure therefore cannot leave some
//! replicas advanced and others not (a divergence that would be
//! permanent, since every later block builds on it).

use std::collections::BTreeMap;

use numeric::par;

use crate::block::Block;
use crate::contract::{ExecutionOutcome, SmartContract, TxContext};
use crate::gas::{Gas, GasMeter};
use crate::hash::Hash32;
use crate::store::ChainStore;
use crate::tx::{AccountId, Transaction, TxBundle};

use super::leader::LeaderSchedule;

/// How a miner behaves in the protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MinerBehavior {
    /// Follows the protocol.
    #[default]
    Honest,
    /// As leader, publishes a corrupted state root (models a fraudulent
    /// leader inflating its own contribution — the re-execution of honest
    /// miners won't match). Behaves honestly as a verifier.
    CorruptProposals,
    /// As verifier, accepts every proposal without re-executing (lazy
    /// validator).
    AcceptAll,
    /// As verifier, rejects every proposal (griefing).
    RejectAll,
}

/// Engine configuration.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Abort after this many consecutive failed views for one commit.
    pub max_view_changes: u64,
    /// Optional per-block gas limit.
    pub block_gas_limit: Option<Gas>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            max_view_changes: 64,
            block_gas_limit: None,
        }
    }
}

/// Errors from the engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// No proposal reached a majority within `max_view_changes` views.
    NoQuorum {
        /// Views attempted.
        attempts: u64,
    },
    /// Transaction execution failed on the leader's replica.
    ExecutionFailed {
        /// Index of the failing transaction.
        tx_index: usize,
        /// Debug rendering of the contract error.
        reason: String,
    },
    /// The block exceeded its gas limit.
    OutOfGas {
        /// Gas used when the limit tripped.
        used: Gas,
        /// Limit in force.
        limit: Gas,
    },
    /// Engine constructed with no miners.
    NoMiners,
    /// Engine constructed with a duplicate miner id (the slot-per-miner
    /// pipeline requires ids to be unique).
    DuplicateMiner {
        /// The id that appears more than once.
        id: AccountId,
    },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::NoQuorum { attempts } => {
                write!(f, "no proposal reached quorum after {attempts} views")
            }
            Self::ExecutionFailed { tx_index, reason } => {
                write!(f, "transaction {tx_index} failed: {reason}")
            }
            Self::OutOfGas { used, limit } => {
                write!(f, "block out of gas: used {used}, limit {limit}")
            }
            Self::NoMiners => write!(f, "engine has no miners"),
            Self::DuplicateMiner { id } => write!(f, "duplicate miner id {id}"),
        }
    }
}

impl std::error::Error for EngineError {}

/// Outcome of a successful commit.
#[derive(Debug, Clone)]
pub struct CommitReport {
    /// Digest of the committed block header.
    pub block_digest: Hash32,
    /// Height of the committed block.
    pub height: u64,
    /// The leader whose proposal was accepted.
    pub leader: AccountId,
    /// View in which the accepted proposal was made.
    pub view: u64,
    /// Total views consumed (1 = first leader succeeded).
    pub attempts: u64,
    /// Accept votes for the winning proposal (including the leader).
    pub votes_for: usize,
    /// Total miners.
    pub votes_total: usize,
    /// Gas consumed by the block.
    pub gas_used: Gas,
    /// Events emitted by the contract, in transaction order.
    pub events: Vec<String>,
    /// State root committed.
    pub state_root: Hash32,
    /// Leaders that were skipped because their proposal failed
    /// verification.
    pub rejected_leaders: Vec<AccountId>,
}

/// One miner replica.
#[derive(Debug, Clone)]
struct Miner<S: SmartContract> {
    id: AccountId,
    behavior: MinerBehavior,
    contract: S,
    store: ChainStore<S::Call>,
}

/// Result of executing a block's transactions on a scratch replica: the
/// advanced contract, its state root, and the per-tx outcomes. Holding
/// one is proof the block executes cleanly from the pre-state — the
/// commit phase applies it instead of re-executing.
struct ScratchOutcome<S> {
    contract: S,
    root: Hash32,
    outcomes: Vec<ExecutionOutcome>,
}

/// What one miner's parallel slot contributes to a view. Slot `i` is a
/// pure function of miner `i`'s replica (and the shared transaction
/// list), so the fan-out is schedule-invariant.
enum Slot<S> {
    /// The leader's slot: full proposal execution.
    Proposal(Result<ScratchOutcome<S>, EngineError>),
    /// An honest verifier's slot: independent re-execution root.
    Reexecution(Result<Hash32, EngineError>),
    /// A Byzantine verifier's slot: a vote without re-execution.
    Vote(bool),
}

/// Aggregate engine statistics across all commits.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Blocks committed.
    pub blocks: u64,
    /// Transactions committed.
    pub txs: u64,
    /// Views that ended in rejection.
    pub failed_views: u64,
    /// Total gas across committed blocks.
    pub gas: Gas,
}

/// The consensus engine over a contract type `S`.
pub struct ConsensusEngine<S: SmartContract + Clone> {
    miners: Vec<Miner<S>>,
    schedule: LeaderSchedule,
    view: u64,
    config: EngineConfig,
    stats: EngineStats,
}

impl<S: SmartContract + Clone> ConsensusEngine<S> {
    /// Builds an engine: every miner starts from an identical copy of
    /// `genesis_contract` and an empty chain.
    ///
    /// `behaviors` maps miner ids to non-default behaviours; unlisted
    /// miners are honest.
    pub fn new(
        genesis_contract: S,
        schedule: LeaderSchedule,
        behaviors: &BTreeMap<AccountId, MinerBehavior>,
        config: EngineConfig,
    ) -> Result<Self, EngineError> {
        let ids = schedule.miners().to_vec();
        if ids.is_empty() {
            return Err(EngineError::NoMiners);
        }
        let mut seen = std::collections::BTreeSet::new();
        for &id in &ids {
            if !seen.insert(id) {
                return Err(EngineError::DuplicateMiner { id });
            }
        }
        let miners = ids
            .into_iter()
            .map(|id| Miner {
                id,
                behavior: behaviors.get(&id).copied().unwrap_or_default(),
                contract: genesis_contract.clone(),
                store: ChainStore::new(),
            })
            .collect();
        Ok(Self {
            miners,
            schedule,
            view: 0,
            config,
            stats: EngineStats::default(),
        })
    }

    /// Number of miners.
    pub fn miner_count(&self) -> usize {
        self.miners.len()
    }

    /// Current view number.
    pub fn view(&self) -> u64 {
        self.view
    }

    /// Statistics so far.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Read access to a miner's contract replica.
    pub fn contract_of(&self, id: AccountId) -> Option<&S> {
        self.miners.iter().find(|m| m.id == id).map(|m| &m.contract)
    }

    /// Read access to the first honest miner's replica — the canonical
    /// "truth" in tests and experiments.
    pub fn honest_contract(&self) -> &S {
        self.miners
            .iter()
            .find(|m| m.behavior == MinerBehavior::Honest)
            .map(|m| &m.contract)
            .expect("engine requires at least one honest miner to be useful")
    }

    /// Read access to a miner's chain store.
    pub fn store_of(&self, id: AccountId) -> Option<&ChainStore<S::Call>> {
        self.miners.iter().find(|m| m.id == id).map(|m| &m.store)
    }

    /// Chain height (of the first miner — all replicas commit together).
    pub fn height(&self) -> u64 {
        self.miners[0].store.height()
    }
}

impl<S> ConsensusEngine<S>
where
    S: SmartContract + Clone + Send + Sync,
    S::Call: Send + Sync,
{
    /// Runs the full protocol to commit `txs` as one block.
    ///
    /// Convenience wrapper over [`Self::commit_bundle`] for callers that
    /// bypass a mempool (tests, examples); the engine itself imposes no
    /// nonce semantics, so the bundle is sealed without admission checks.
    pub fn commit_transactions(
        &mut self,
        txs: Vec<Transaction<S::Call>>,
    ) -> Result<CommitReport, EngineError> {
        self.commit_bundle(&TxBundle::seal_unchecked(txs))
    }

    /// Commits a streamed sequence of bundles as consecutive blocks,
    /// one [`Self::commit_bundle`] round each.
    ///
    /// The per-bundle atomic-commit invariant is preserved verbatim:
    /// on failure at bundle `i` the first `i` blocks stay committed on
    /// every replica (they reached quorum), bundle `i` has advanced no
    /// replica, and bundles `i..` are untouched — the caller gets the
    /// reports for the committed prefix, the failing index, and the
    /// error, so it can `release` the unfinished suffix back to a
    /// mempool.
    pub fn commit_bundles(
        &mut self,
        bundles: &[TxBundle<S::Call>],
    ) -> Result<Vec<CommitReport>, (Vec<CommitReport>, usize, EngineError)> {
        let mut reports = Vec::with_capacity(bundles.len());
        for (i, bundle) in bundles.iter().enumerate() {
            match self.commit_bundle(bundle) {
                Ok(report) => reports.push(report),
                Err(e) => return Err((reports, i, e)),
            }
        }
        Ok(reports)
    }

    /// Runs the full protocol to commit a sealed bundle as one block.
    ///
    /// The bundle is borrowed so that on error the caller still holds
    /// the transactions (e.g. to `release` them back to a mempool). On
    /// error **no replica has advanced**; see the module docs on commit
    /// atomicity.
    pub fn commit_bundle(
        &mut self,
        bundle: &TxBundle<S::Call>,
    ) -> Result<CommitReport, EngineError> {
        let txs = bundle.txs();
        let total = self.miners.len();
        let mut attempts = 0u64;
        let mut rejected_leaders = Vec::new();

        loop {
            if attempts >= self.config.max_view_changes {
                return Err(EngineError::NoQuorum { attempts });
            }
            let view = self.view;
            self.view += 1;
            attempts += 1;

            let leader_id = self.schedule.leader(view);
            let leader_pos = self
                .miners
                .iter()
                .position(|m| m.id == leader_id)
                .expect("schedule only names known miners");
            let leader_behavior = self.miners[leader_pos].behavior;
            // Replicas advance in lockstep: every miner is at one height.
            let height = self.miners[0].store.height();

            // Proposal execution and verification overlap: one parallel
            // slot per miner. Slot `i` depends only on miner `i`'s replica
            // and the shared transaction list, and slots are combined in
            // index order below, so the result is bit-identical for any
            // thread count.
            let mut slots: Vec<Slot<S>> = par::par_map(&self.miners, 1, |_, miner| {
                if miner.id == leader_id {
                    Slot::Proposal(self.scratch_execute(&miner.contract, height, view, txs))
                } else {
                    match miner.behavior {
                        MinerBehavior::AcceptAll => Slot::Vote(true),
                        MinerBehavior::RejectAll => Slot::Vote(false),
                        MinerBehavior::Honest | MinerBehavior::CorruptProposals => {
                            Slot::Reexecution(
                                self.scratch_execute(&miner.contract, height, view, txs)
                                    .map(|s| s.root),
                            )
                        }
                    }
                }
            });

            // The leader endorses its own proposal; its slot becomes a
            // yes-vote once the scratch outcome is extracted.
            let Slot::Proposal(proposal) =
                std::mem::replace(&mut slots[leader_pos], Slot::Vote(true))
            else {
                unreachable!("leader slot is always a proposal")
            };
            // A failing transaction invalidates the whole batch, before
            // any replica is touched.
            let scratch = proposal?;

            // A fraudulent leader publishes a different root.
            let proposed_root = match leader_behavior {
                MinerBehavior::CorruptProposals => {
                    Hash32::of("corrupted-proposal", &(scratch.root, view))
                }
                _ => scratch.root,
            };

            let mut votes_for = 0usize;
            for slot in &slots {
                let accept = match slot {
                    Slot::Vote(v) => *v,
                    Slot::Reexecution(Ok(root)) => *root == proposed_root,
                    // A verifier whose re-execution failed abstains
                    // (counted as reject). Deliberate BFT semantics: a
                    // faulted verifier must not be able to abort a
                    // proposal that reaches quorum without it — it
                    // adopts the proven outcome at commit like every
                    // replica, so replicas stay identical either way.
                    // (Unreachable with a deterministic contract: the
                    // leader fails identically and aborts above.)
                    Slot::Reexecution(Err(_)) => false,
                    Slot::Proposal(_) => unreachable!("proposal slot replaced above"),
                };
                if accept {
                    votes_for += 1;
                }
            }

            if votes_for * 2 <= total {
                // Proposal failed; next leader retries the same txs.
                self.stats.failed_views += 1;
                rejected_leaders.push(leader_id);
                continue;
            }

            // Commit — atomic by construction: the outcome already proven
            // on scratch is transplanted onto every replica; no fallible
            // call from here on, so either every replica advances or
            // (on the error paths above) none did.
            let ScratchOutcome {
                contract: proven,
                outcomes,
                ..
            } = scratch;
            let gas_used: Gas = outcomes.iter().map(|o| o.gas_used).sum();
            let events: Vec<String> = outcomes.into_iter().flat_map(|o| o.events).collect();
            // Lockstep replicas share one tip, so the block — including
            // the bundle's precomputed tx root — is assembled exactly
            // once. The proposed root is what goes on-chain: a corrupt
            // proposal that somehow won quorum would still commit its
            // lying root — tests pin that this cannot happen with an
            // honest majority.
            let parent = self.miners[0].store.tip_digest();
            let block = Block::from_bundle(height, parent, proposed_root, leader_id, view, bundle);
            let block_digest = block.header.digest();
            // The last replica takes ownership instead of cloning —
            // saves one deep copy of contract state and transactions per
            // committed block.
            let (last, rest) = self
                .miners
                .split_last_mut()
                .expect("constructor rejects empty miner sets");
            for miner in rest {
                miner.contract = proven.clone();
                miner
                    .store
                    .append_sealed(block.clone())
                    .expect("replicas advance in lockstep");
            }
            last.contract = proven;
            last.store
                .append_sealed(block)
                .expect("replicas advance in lockstep");

            self.stats.blocks += 1;
            self.stats.txs += txs.len() as u64;
            self.stats.gas += gas_used;

            return Ok(CommitReport {
                block_digest,
                height: self.height() - 1,
                leader: leader_id,
                view,
                attempts,
                votes_for,
                votes_total: total,
                gas_used,
                events,
                state_root: proposed_root,
                rejected_leaders,
            });
        }
    }

    /// The shared scratch-execution helper: executes `txs` on a clone of
    /// `contract`, metering gas. Both the leader's proposal and every
    /// honest verifier's re-execution run through it (concurrently — it
    /// takes `&self` and touches only its own scratch state).
    fn scratch_execute(
        &self,
        contract: &S,
        block_height: u64,
        view: u64,
        txs: &[Transaction<S::Call>],
    ) -> Result<ScratchOutcome<S>, EngineError> {
        let mut scratch = contract.clone();
        let mut meter = match self.config.block_gas_limit {
            Some(limit) => GasMeter::with_limit(limit),
            None => GasMeter::unlimited(),
        };
        let mut outcomes = Vec::with_capacity(txs.len());
        for (tx_index, tx) in txs.iter().enumerate() {
            let ctx = TxContext {
                block_height,
                view,
                sender: tx.sender,
                tx_index,
            };
            let outcome =
                scratch
                    .execute(&ctx, &tx.call)
                    .map_err(|e| EngineError::ExecutionFailed {
                        tx_index,
                        reason: format!("{e:?}"),
                    })?;
            meter
                .charge(outcome.gas_used)
                .map_err(|e| EngineError::OutOfGas {
                    used: e.used,
                    limit: e.limit,
                })?;
            outcomes.push(outcome);
        }
        let root = scratch.state_digest();
        Ok(ScratchOutcome {
            contract: scratch,
            root,
            outcomes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contract::testing::{CounterCall, CounterContract};

    fn engine_with(
        n: u32,
        behaviors: &[(AccountId, MinerBehavior)],
    ) -> ConsensusEngine<CounterContract> {
        let schedule = LeaderSchedule::round_robin((0..n).collect());
        let map: BTreeMap<AccountId, MinerBehavior> = behaviors.iter().copied().collect();
        ConsensusEngine::new(
            CounterContract::default(),
            schedule,
            &map,
            EngineConfig::default(),
        )
        .unwrap()
    }

    fn add_txs(values: &[u64]) -> Vec<Transaction<CounterCall>> {
        values
            .iter()
            .enumerate()
            .map(|(i, &v)| Transaction::new(0, i as u64, CounterCall::Add(v)))
            .collect()
    }

    #[test]
    fn honest_commit_first_view() {
        let mut engine = engine_with(4, &[]);
        let report = engine.commit_transactions(add_txs(&[1, 2, 3])).unwrap();
        assert_eq!(report.attempts, 1);
        assert_eq!(report.votes_for, 4);
        assert_eq!(report.leader, 0);
        assert_eq!(engine.honest_contract().value, 6);
        assert_eq!(engine.height(), 1);
        assert!(report.rejected_leaders.is_empty());
    }

    #[test]
    fn all_replicas_converge() {
        let mut engine = engine_with(5, &[]);
        engine.commit_transactions(add_txs(&[10])).unwrap();
        engine.commit_transactions(add_txs(&[5])).unwrap();
        let roots: Vec<Hash32> = (0..5)
            .map(|id| engine.contract_of(id).unwrap().state_digest())
            .collect();
        assert!(roots.windows(2).all(|w| w[0] == w[1]));
        for id in 0..5 {
            assert_eq!(engine.store_of(id).unwrap().verify_chain(), Ok(()));
            assert_eq!(engine.store_of(id).unwrap().height(), 2);
        }
    }

    #[test]
    fn commit_bundles_streams_consecutive_blocks() {
        let mut engine = engine_with(4, &[]);
        let bundles = vec![
            TxBundle::seal_unchecked(add_txs(&[1, 2])),
            TxBundle::seal_unchecked(vec![Transaction::new(0, 2, CounterCall::Add(3))]),
            TxBundle::seal_unchecked(vec![Transaction::new(0, 3, CounterCall::Add(4))]),
        ];
        let reports = engine.commit_bundles(&bundles).unwrap();
        assert_eq!(reports.len(), 3);
        let heights: Vec<u64> = reports.iter().map(|r| r.height).collect();
        assert_eq!(heights, vec![0, 1, 2], "one block per bundle, in order");
        assert_eq!(engine.honest_contract().value, 10);
        for id in 0..4 {
            assert_eq!(engine.store_of(id).unwrap().verify_chain(), Ok(()));
            assert_eq!(engine.store_of(id).unwrap().height(), 3);
        }
    }

    #[test]
    fn commit_bundles_failure_keeps_committed_prefix() {
        // A Byzantine majority stalls every bundle: the stream fails at
        // index 0 with nothing committed, and the bundle stream from an
        // honest engine that later stalls keeps its committed prefix.
        let mut engine = engine_with(
            4,
            &[
                (1, MinerBehavior::RejectAll),
                (2, MinerBehavior::RejectAll),
                (3, MinerBehavior::RejectAll),
            ],
        );
        let bundles = vec![
            TxBundle::seal_unchecked(add_txs(&[1])),
            TxBundle::seal_unchecked(vec![Transaction::new(0, 1, CounterCall::Add(2))]),
        ];
        let (reports, failed_at, err) = engine.commit_bundles(&bundles).unwrap_err();
        assert!(reports.is_empty());
        assert_eq!(failed_at, 0);
        assert!(matches!(err, EngineError::NoQuorum { .. }));
        assert_eq!(engine.height(), 0, "nothing committed without quorum");
    }

    #[test]
    fn fraudulent_leader_is_skipped() {
        // Miner 0 (first leader) corrupts proposals; honest majority
        // rejects and miner 1 commits instead.
        let mut engine = engine_with(4, &[(0, MinerBehavior::CorruptProposals)]);
        let report = engine.commit_transactions(add_txs(&[7])).unwrap();
        assert_eq!(report.attempts, 2, "view change after corrupt proposal");
        assert_eq!(report.leader, 1);
        assert_eq!(report.rejected_leaders, vec![0]);
        // State is the honest result, not the corrupted root.
        assert_eq!(engine.honest_contract().value, 7);
        assert_eq!(report.state_root, engine.honest_contract().state_digest());
        assert_eq!(engine.stats().failed_views, 1);
    }

    #[test]
    fn corrupt_leader_still_commits_as_follower() {
        // After being skipped as leader, the Byzantine miner's replica
        // still applies the honest block (it follows the chain).
        let mut engine = engine_with(4, &[(0, MinerBehavior::CorruptProposals)]);
        engine.commit_transactions(add_txs(&[7])).unwrap();
        assert_eq!(engine.contract_of(0).unwrap().value, 7);
    }

    #[test]
    fn reject_all_minority_cannot_block() {
        let mut engine = engine_with(5, &[(3, MinerBehavior::RejectAll)]);
        let report = engine.commit_transactions(add_txs(&[1])).unwrap();
        assert_eq!(report.attempts, 1);
        assert_eq!(report.votes_for, 4);
    }

    #[test]
    fn reject_all_majority_stalls() {
        let mut engine = engine_with(
            4,
            &[
                (1, MinerBehavior::RejectAll),
                (2, MinerBehavior::RejectAll),
                (3, MinerBehavior::RejectAll),
            ],
        );
        let err = engine.commit_transactions(add_txs(&[1])).unwrap_err();
        assert!(matches!(err, EngineError::NoQuorum { .. }));
        assert_eq!(engine.height(), 0, "nothing committed without quorum");
    }

    #[test]
    fn accept_all_does_not_break_honest_outcome() {
        // Lazy validators vote yes on a corrupted proposal, but the
        // honest majority still rejects it.
        let mut engine = engine_with(
            5,
            &[
                (0, MinerBehavior::CorruptProposals),
                (1, MinerBehavior::AcceptAll),
            ],
        );
        let report = engine.commit_transactions(add_txs(&[9])).unwrap();
        // Corrupt leader (1 self-vote) + AcceptAll (1) = 2 of 5: rejected.
        assert_eq!(
            report.leader, 1,
            "next leader after fraud is AcceptAll miner 1"
        );
        assert_eq!(engine.honest_contract().value, 9);
    }

    #[test]
    fn corrupt_majority_commits_lies_documenting_the_trust_assumption() {
        // The paper's guarantee needs an honest majority; with a lazy
        // (AcceptAll) majority a fraudulent proposal *does* commit. Pin
        // that boundary so the threat model is explicit in code.
        let mut engine = engine_with(
            4,
            &[
                (0, MinerBehavior::CorruptProposals),
                (1, MinerBehavior::AcceptAll),
                (2, MinerBehavior::AcceptAll),
            ],
        );
        let report = engine.commit_transactions(add_txs(&[3])).unwrap();
        assert_eq!(report.attempts, 1, "fraud wins with a lazy majority");
        assert_ne!(
            report.state_root,
            engine.honest_contract().state_digest(),
            "committed root is the corrupted one — trust assumption violated"
        );
    }

    #[test]
    fn failing_tx_aborts() {
        let mut engine = engine_with(3, &[]);
        let txs = vec![Transaction::new(0, 0, CounterCall::Fail)];
        let err = engine.commit_transactions(txs).unwrap_err();
        assert!(matches!(
            err,
            EngineError::ExecutionFailed { tx_index: 0, .. }
        ));
        assert_eq!(engine.height(), 0);
    }

    #[test]
    fn gas_limit_enforced() {
        let schedule = LeaderSchedule::round_robin(vec![0, 1, 2]);
        let mut engine = ConsensusEngine::new(
            CounterContract::default(),
            schedule,
            &BTreeMap::new(),
            EngineConfig {
                block_gas_limit: Some(Gas(1)),
                ..Default::default()
            },
        )
        .unwrap();
        // Two txs at 1 gas each exceed the 1-gas block limit.
        let err = engine.commit_transactions(add_txs(&[1, 2])).unwrap_err();
        assert!(matches!(err, EngineError::OutOfGas { .. }));
    }

    #[test]
    fn stats_accumulate() {
        let mut engine = engine_with(3, &[]);
        engine.commit_transactions(add_txs(&[1, 2])).unwrap();
        engine.commit_transactions(add_txs(&[3])).unwrap();
        let stats = engine.stats();
        assert_eq!(stats.blocks, 2);
        assert_eq!(stats.txs, 3);
        assert_eq!(stats.gas, Gas(3));
        assert_eq!(stats.failed_views, 0);
    }

    #[test]
    fn duplicate_miner_ids_rejected_at_construction() {
        // The slot-per-miner pipeline identifies the leader by id; a
        // duplicate id would leave a second proposal slot unresolved, so
        // construction refuses it outright.
        let schedule = LeaderSchedule::round_robin(vec![0, 0, 1]);
        match ConsensusEngine::new(
            CounterContract::default(),
            schedule,
            &BTreeMap::new(),
            EngineConfig::default(),
        ) {
            Err(err) => assert_eq!(err, EngineError::DuplicateMiner { id: 0 }),
            Ok(_) => panic!("duplicate ids must be rejected"),
        }
    }

    #[test]
    fn empty_block_commits() {
        let mut engine = engine_with(3, &[]);
        let report = engine.commit_transactions(vec![]).unwrap();
        assert_eq!(report.gas_used, Gas(0));
        assert_eq!(engine.height(), 1);
    }

    #[test]
    fn commit_bundle_equals_commit_transactions() {
        let txs = add_txs(&[4, 5, 6]);
        let mut via_txs = engine_with(4, &[]);
        let a = via_txs.commit_transactions(txs.clone()).unwrap();
        let mut via_bundle = engine_with(4, &[]);
        let bundle = crate::tx::TxBundle::seal(txs).unwrap();
        let b = via_bundle.commit_bundle(&bundle).unwrap();
        assert_eq!(a.block_digest, b.block_digest);
        assert_eq!(a.state_root, b.state_root);
        assert_eq!(a.events, b.events);
        assert_eq!(
            via_txs.honest_contract().state_digest(),
            via_bundle.honest_contract().state_digest()
        );
    }

    mod commit_atomicity {
        //! Regression tests for the commit-phase divergence bug: a
        //! failure that strikes *after* quorum (at what used to be the
        //! per-miner apply loop) must never leave some replicas advanced
        //! and others not.

        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;

        use super::*;

        /// A contract with a global execution budget shared across every
        /// replica and scratch clone. Executions past the budget fail —
        /// modelling an environment fault (allocation failure, resource
        /// exhaustion) that strikes only after the scratch phase. The
        /// digest covers the counter value *not at all*: state is the
        /// accumulated sum, so replicas are comparable.
        #[derive(Debug, Clone)]
        struct BudgetedContract {
            value: u64,
            calls: Arc<AtomicU64>,
            budget: u64,
        }

        impl BudgetedContract {
            fn new(budget: u64) -> Self {
                Self {
                    value: 0,
                    calls: Arc::new(AtomicU64::new(0)),
                    budget,
                }
            }
        }

        impl SmartContract for BudgetedContract {
            type Call = u64;
            type Error = String;

            fn execute(
                &mut self,
                _ctx: &TxContext,
                call: &u64,
            ) -> Result<ExecutionOutcome, String> {
                let n = self.calls.fetch_add(1, Ordering::SeqCst) + 1;
                if n > self.budget {
                    return Err(format!("execution budget exhausted at call {n}"));
                }
                self.value = self.value.wrapping_add(*call);
                Ok(ExecutionOutcome::event(format!("+{call}"), Gas(1)))
            }

            fn state_digest(&self) -> Hash32 {
                Hash32::of("budgeted", &self.value)
            }
        }

        fn budgeted_engine(n: u32, budget: u64) -> ConsensusEngine<BudgetedContract> {
            let schedule = LeaderSchedule::round_robin((0..n).collect());
            ConsensusEngine::new(
                BudgetedContract::new(budget),
                schedule,
                &BTreeMap::new(),
                EngineConfig::default(),
            )
            .unwrap()
        }

        fn assert_replicas_identical(engine: &ConsensusEngine<BudgetedContract>, n: u32) {
            let roots: Vec<Hash32> = (0..n)
                .map(|id| engine.contract_of(id).unwrap().state_digest())
                .collect();
            assert!(
                roots.windows(2).all(|w| w[0] == w[1]),
                "replicas diverged: {roots:?}"
            );
            let heights: Vec<u64> = (0..n)
                .map(|id| engine.store_of(id).unwrap().height())
                .collect();
            assert!(
                heights.windows(2).all(|w| w[0] == w[1]),
                "chains diverged: {heights:?}"
            );
        }

        #[test]
        fn apply_time_fault_cannot_diverge_replicas() {
            // 4 miners × 2 txs: the scratch phase (leader + 3 honest
            // verifiers) consumes exactly 8 executions. A budget of 8
            // means *any* post-quorum re-execution — what the old apply
            // loop did per miner, with a fallible `?` in the middle —
            // would fail partway through the miner list and leave
            // replicas permanently diverged. The atomic commit applies
            // the proven scratch outcome instead and must succeed on
            // every replica.
            let n = 4;
            let mut engine = budgeted_engine(n, 8);
            let txs: Vec<Transaction<u64>> =
                vec![Transaction::new(0, 0, 10u64), Transaction::new(0, 1, 20u64)];
            let report = engine.commit_transactions(txs).expect(
                "commit must not re-execute after quorum: the proven outcome is applied as-is",
            );
            assert_eq!(report.votes_for, 4);
            assert_replicas_identical(&engine, n);
            assert_eq!(engine.height(), 1, "committed on every replica");
            assert_eq!(engine.honest_contract().value, 30);
        }

        #[test]
        fn pre_quorum_fault_commits_on_no_replica() {
            // Budget 1 of the 8 needed: execution dies during the
            // scratch phase. The error must surface *before* any replica
            // is touched — all-or-nothing means "none" here.
            let n = 4;
            let mut engine = budgeted_engine(n, 1);
            let txs: Vec<Transaction<u64>> =
                vec![Transaction::new(0, 0, 10u64), Transaction::new(0, 1, 20u64)];
            let err = engine.commit_transactions(txs).unwrap_err();
            assert!(matches!(err, EngineError::ExecutionFailed { .. }));
            assert_replicas_identical(&engine, n);
            assert_eq!(engine.height(), 0, "committed on no replica");
            for id in 0..n {
                assert_eq!(engine.contract_of(id).unwrap().value, 0);
            }
        }
    }
}
