//! The propose → re-execute → vote → commit engine.
//!
//! Models the paper's blockchain as a deterministic simulation over `n`
//! miner replicas, each holding its own copy of the smart-contract state
//! and the chain:
//!
//! 1. The [`LeaderSchedule`] names a proposer for the current view.
//! 2. The proposer executes the transactions on a scratch copy of its
//!    replica and publishes a block whose `state_root` commits to the
//!    result. Byzantine proposers can publish a *corrupted* root — this is
//!    the paper's fraudulent leader "proposing incorrect evaluation
//!    results" (Sect. III-A).
//! 3. Every other miner re-executes the same transactions on a scratch
//!    copy of *its* replica and votes to accept iff its root matches the
//!    proposal.
//! 4. On a strict majority, every miner applies the transactions to its
//!    replica and appends the block; otherwise the view advances and the
//!    next leader proposes the same transactions.
//!
//! The engine guarantees: **with an honest majority, only blocks whose
//! state root equals honest re-execution are ever committed** — the
//! machine-checked form of the paper's trust claim.

use std::collections::BTreeMap;

use crate::block::Block;
use crate::contract::{ExecutionOutcome, SmartContract, TxContext};
use crate::gas::{Gas, GasMeter};
use crate::hash::Hash32;
use crate::store::ChainStore;
use crate::tx::{AccountId, Transaction};

use super::leader::LeaderSchedule;

/// How a miner behaves in the protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MinerBehavior {
    /// Follows the protocol.
    #[default]
    Honest,
    /// As leader, publishes a corrupted state root (models a fraudulent
    /// leader inflating its own contribution — the re-execution of honest
    /// miners won't match). Behaves honestly as a verifier.
    CorruptProposals,
    /// As verifier, accepts every proposal without re-executing (lazy
    /// validator).
    AcceptAll,
    /// As verifier, rejects every proposal (griefing).
    RejectAll,
}

/// Engine configuration.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Abort after this many consecutive failed views for one commit.
    pub max_view_changes: u64,
    /// Optional per-block gas limit.
    pub block_gas_limit: Option<Gas>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            max_view_changes: 64,
            block_gas_limit: None,
        }
    }
}

/// Errors from the engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// No proposal reached a majority within `max_view_changes` views.
    NoQuorum {
        /// Views attempted.
        attempts: u64,
    },
    /// Transaction execution failed on the leader's replica.
    ExecutionFailed {
        /// Index of the failing transaction.
        tx_index: usize,
        /// Debug rendering of the contract error.
        reason: String,
    },
    /// The block exceeded its gas limit.
    OutOfGas {
        /// Gas used when the limit tripped.
        used: Gas,
        /// Limit in force.
        limit: Gas,
    },
    /// Engine constructed with no miners.
    NoMiners,
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::NoQuorum { attempts } => {
                write!(f, "no proposal reached quorum after {attempts} views")
            }
            Self::ExecutionFailed { tx_index, reason } => {
                write!(f, "transaction {tx_index} failed: {reason}")
            }
            Self::OutOfGas { used, limit } => {
                write!(f, "block out of gas: used {used}, limit {limit}")
            }
            Self::NoMiners => write!(f, "engine has no miners"),
        }
    }
}

impl std::error::Error for EngineError {}

/// Outcome of a successful commit.
#[derive(Debug, Clone)]
pub struct CommitReport {
    /// Digest of the committed block header.
    pub block_digest: Hash32,
    /// Height of the committed block.
    pub height: u64,
    /// The leader whose proposal was accepted.
    pub leader: AccountId,
    /// View in which the accepted proposal was made.
    pub view: u64,
    /// Total views consumed (1 = first leader succeeded).
    pub attempts: u64,
    /// Accept votes for the winning proposal (including the leader).
    pub votes_for: usize,
    /// Total miners.
    pub votes_total: usize,
    /// Gas consumed by the block.
    pub gas_used: Gas,
    /// Events emitted by the contract, in transaction order.
    pub events: Vec<String>,
    /// State root committed.
    pub state_root: Hash32,
    /// Leaders that were skipped because their proposal failed
    /// verification.
    pub rejected_leaders: Vec<AccountId>,
}

/// One miner replica.
#[derive(Debug, Clone)]
struct Miner<S: SmartContract> {
    id: AccountId,
    behavior: MinerBehavior,
    contract: S,
    store: ChainStore<S::Call>,
}

/// Aggregate engine statistics across all commits.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Blocks committed.
    pub blocks: u64,
    /// Transactions committed.
    pub txs: u64,
    /// Views that ended in rejection.
    pub failed_views: u64,
    /// Total gas across committed blocks.
    pub gas: Gas,
}

/// The consensus engine over a contract type `S`.
pub struct ConsensusEngine<S: SmartContract + Clone> {
    miners: Vec<Miner<S>>,
    schedule: LeaderSchedule,
    view: u64,
    config: EngineConfig,
    stats: EngineStats,
}

impl<S: SmartContract + Clone> ConsensusEngine<S> {
    /// Builds an engine: every miner starts from an identical copy of
    /// `genesis_contract` and an empty chain.
    ///
    /// `behaviors` maps miner ids to non-default behaviours; unlisted
    /// miners are honest.
    pub fn new(
        genesis_contract: S,
        schedule: LeaderSchedule,
        behaviors: &BTreeMap<AccountId, MinerBehavior>,
        config: EngineConfig,
    ) -> Result<Self, EngineError> {
        let ids = schedule.miners().to_vec();
        if ids.is_empty() {
            return Err(EngineError::NoMiners);
        }
        let miners = ids
            .into_iter()
            .map(|id| Miner {
                id,
                behavior: behaviors.get(&id).copied().unwrap_or_default(),
                contract: genesis_contract.clone(),
                store: ChainStore::new(),
            })
            .collect();
        Ok(Self {
            miners,
            schedule,
            view: 0,
            config,
            stats: EngineStats::default(),
        })
    }

    /// Number of miners.
    pub fn miner_count(&self) -> usize {
        self.miners.len()
    }

    /// Current view number.
    pub fn view(&self) -> u64 {
        self.view
    }

    /// Statistics so far.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Read access to a miner's contract replica.
    pub fn contract_of(&self, id: AccountId) -> Option<&S> {
        self.miners.iter().find(|m| m.id == id).map(|m| &m.contract)
    }

    /// Read access to the first honest miner's replica — the canonical
    /// "truth" in tests and experiments.
    pub fn honest_contract(&self) -> &S {
        self.miners
            .iter()
            .find(|m| m.behavior == MinerBehavior::Honest)
            .map(|m| &m.contract)
            .expect("engine requires at least one honest miner to be useful")
    }

    /// Read access to a miner's chain store.
    pub fn store_of(&self, id: AccountId) -> Option<&ChainStore<S::Call>> {
        self.miners.iter().find(|m| m.id == id).map(|m| &m.store)
    }

    /// Chain height (of the first miner — all replicas commit together).
    pub fn height(&self) -> u64 {
        self.miners[0].store.height()
    }

    /// Runs the full protocol to commit `txs` as one block.
    pub fn commit_transactions(
        &mut self,
        txs: Vec<Transaction<S::Call>>,
    ) -> Result<CommitReport, EngineError> {
        let total = self.miners.len();
        let mut attempts = 0u64;
        let mut rejected_leaders = Vec::new();

        loop {
            if attempts >= self.config.max_view_changes {
                return Err(EngineError::NoQuorum { attempts });
            }
            let view = self.view;
            self.view += 1;
            attempts += 1;

            let leader_id = self.schedule.leader(view);
            let leader = self
                .miners
                .iter()
                .find(|m| m.id == leader_id)
                .expect("schedule only names known miners");

            // Leader executes on a scratch replica.
            let height = leader.store.height();
            let (honest_root, outcomes) =
                self.execute_on_clone(&leader.contract, height, view, &txs)?;

            // A fraudulent leader publishes a different root.
            let proposed_root = match leader.behavior {
                MinerBehavior::CorruptProposals => {
                    Hash32::of("corrupted-proposal", &(honest_root, view))
                }
                _ => honest_root,
            };

            // Verification: every other miner re-executes and votes.
            let mut votes_for = 1usize; // the leader endorses its proposal
            for verifier in &self.miners {
                if verifier.id == leader_id {
                    continue;
                }
                let accept = match verifier.behavior {
                    MinerBehavior::AcceptAll => true,
                    MinerBehavior::RejectAll => false,
                    MinerBehavior::Honest | MinerBehavior::CorruptProposals => {
                        let (their_root, _) = self.execute_on_clone(
                            &verifier.contract,
                            verifier.store.height(),
                            view,
                            &txs,
                        )?;
                        their_root == proposed_root
                    }
                };
                if accept {
                    votes_for += 1;
                }
            }

            if votes_for * 2 <= total {
                // Proposal failed; next leader retries the same txs.
                self.stats.failed_views += 1;
                rejected_leaders.push(leader_id);
                continue;
            }

            // Commit: every miner applies the txs to its replica and
            // appends the block. Execution is deterministic, so replicas
            // remain identical.
            let gas_used: Gas = outcomes.iter().map(|o| o.gas_used).sum();
            let events: Vec<String> = outcomes.into_iter().flat_map(|o| o.events).collect();
            let mut block_digest = Hash32::ZERO;
            for miner in &mut self.miners {
                let height = miner.store.height();
                for (tx_index, tx) in txs.iter().enumerate() {
                    let ctx = TxContext {
                        block_height: height,
                        view,
                        sender: tx.sender,
                        tx_index,
                    };
                    miner.contract.execute(&ctx, &tx.call).map_err(|e| {
                        EngineError::ExecutionFailed {
                            tx_index,
                            reason: format!("{e:?}"),
                        }
                    })?;
                }
                let block = Block::assemble(
                    height,
                    miner.store.tip_digest(),
                    // The *honest* root is what goes on-chain: a corrupt
                    // proposal that somehow won quorum would still commit
                    // its lying root — tests pin that this cannot happen
                    // with an honest majority.
                    proposed_root,
                    leader_id,
                    view,
                    txs.clone(),
                );
                block_digest = block.header.digest();
                miner
                    .store
                    .append(block)
                    .expect("replicas advance in lockstep");
            }

            self.stats.blocks += 1;
            self.stats.txs += txs.len() as u64;
            self.stats.gas += gas_used;

            return Ok(CommitReport {
                block_digest,
                height: self.height() - 1,
                leader: leader_id,
                view,
                attempts,
                votes_for,
                votes_total: total,
                gas_used,
                events,
                state_root: proposed_root,
                rejected_leaders,
            });
        }
    }

    /// Executes `txs` on a scratch clone, returning the resulting state
    /// root and per-tx outcomes.
    fn execute_on_clone(
        &self,
        contract: &S,
        block_height: u64,
        view: u64,
        txs: &[Transaction<S::Call>],
    ) -> Result<(Hash32, Vec<ExecutionOutcome>), EngineError> {
        let mut scratch = contract.clone();
        let mut meter = match self.config.block_gas_limit {
            Some(limit) => GasMeter::with_limit(limit),
            None => GasMeter::unlimited(),
        };
        let mut outcomes = Vec::with_capacity(txs.len());
        for (tx_index, tx) in txs.iter().enumerate() {
            let ctx = TxContext {
                block_height,
                view,
                sender: tx.sender,
                tx_index,
            };
            let outcome =
                scratch
                    .execute(&ctx, &tx.call)
                    .map_err(|e| EngineError::ExecutionFailed {
                        tx_index,
                        reason: format!("{e:?}"),
                    })?;
            meter
                .charge(outcome.gas_used)
                .map_err(|e| EngineError::OutOfGas {
                    used: e.used,
                    limit: e.limit,
                })?;
            outcomes.push(outcome);
        }
        Ok((scratch.state_digest(), outcomes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contract::testing::{CounterCall, CounterContract};

    fn engine_with(
        n: u32,
        behaviors: &[(AccountId, MinerBehavior)],
    ) -> ConsensusEngine<CounterContract> {
        let schedule = LeaderSchedule::round_robin((0..n).collect());
        let map: BTreeMap<AccountId, MinerBehavior> = behaviors.iter().copied().collect();
        ConsensusEngine::new(
            CounterContract::default(),
            schedule,
            &map,
            EngineConfig::default(),
        )
        .unwrap()
    }

    fn add_txs(values: &[u64]) -> Vec<Transaction<CounterCall>> {
        values
            .iter()
            .enumerate()
            .map(|(i, &v)| Transaction::new(0, i as u64, CounterCall::Add(v)))
            .collect()
    }

    #[test]
    fn honest_commit_first_view() {
        let mut engine = engine_with(4, &[]);
        let report = engine.commit_transactions(add_txs(&[1, 2, 3])).unwrap();
        assert_eq!(report.attempts, 1);
        assert_eq!(report.votes_for, 4);
        assert_eq!(report.leader, 0);
        assert_eq!(engine.honest_contract().value, 6);
        assert_eq!(engine.height(), 1);
        assert!(report.rejected_leaders.is_empty());
    }

    #[test]
    fn all_replicas_converge() {
        let mut engine = engine_with(5, &[]);
        engine.commit_transactions(add_txs(&[10])).unwrap();
        engine.commit_transactions(add_txs(&[5])).unwrap();
        let roots: Vec<Hash32> = (0..5)
            .map(|id| engine.contract_of(id).unwrap().state_digest())
            .collect();
        assert!(roots.windows(2).all(|w| w[0] == w[1]));
        for id in 0..5 {
            assert!(engine.store_of(id).unwrap().verify_chain());
            assert_eq!(engine.store_of(id).unwrap().height(), 2);
        }
    }

    #[test]
    fn fraudulent_leader_is_skipped() {
        // Miner 0 (first leader) corrupts proposals; honest majority
        // rejects and miner 1 commits instead.
        let mut engine = engine_with(4, &[(0, MinerBehavior::CorruptProposals)]);
        let report = engine.commit_transactions(add_txs(&[7])).unwrap();
        assert_eq!(report.attempts, 2, "view change after corrupt proposal");
        assert_eq!(report.leader, 1);
        assert_eq!(report.rejected_leaders, vec![0]);
        // State is the honest result, not the corrupted root.
        assert_eq!(engine.honest_contract().value, 7);
        assert_eq!(report.state_root, engine.honest_contract().state_digest());
        assert_eq!(engine.stats().failed_views, 1);
    }

    #[test]
    fn corrupt_leader_still_commits_as_follower() {
        // After being skipped as leader, the Byzantine miner's replica
        // still applies the honest block (it follows the chain).
        let mut engine = engine_with(4, &[(0, MinerBehavior::CorruptProposals)]);
        engine.commit_transactions(add_txs(&[7])).unwrap();
        assert_eq!(engine.contract_of(0).unwrap().value, 7);
    }

    #[test]
    fn reject_all_minority_cannot_block() {
        let mut engine = engine_with(5, &[(3, MinerBehavior::RejectAll)]);
        let report = engine.commit_transactions(add_txs(&[1])).unwrap();
        assert_eq!(report.attempts, 1);
        assert_eq!(report.votes_for, 4);
    }

    #[test]
    fn reject_all_majority_stalls() {
        let mut engine = engine_with(
            4,
            &[
                (1, MinerBehavior::RejectAll),
                (2, MinerBehavior::RejectAll),
                (3, MinerBehavior::RejectAll),
            ],
        );
        let err = engine.commit_transactions(add_txs(&[1])).unwrap_err();
        assert!(matches!(err, EngineError::NoQuorum { .. }));
        assert_eq!(engine.height(), 0, "nothing committed without quorum");
    }

    #[test]
    fn accept_all_does_not_break_honest_outcome() {
        // Lazy validators vote yes on a corrupted proposal, but the
        // honest majority still rejects it.
        let mut engine = engine_with(
            5,
            &[
                (0, MinerBehavior::CorruptProposals),
                (1, MinerBehavior::AcceptAll),
            ],
        );
        let report = engine.commit_transactions(add_txs(&[9])).unwrap();
        // Corrupt leader (1 self-vote) + AcceptAll (1) = 2 of 5: rejected.
        assert_eq!(
            report.leader, 1,
            "next leader after fraud is AcceptAll miner 1"
        );
        assert_eq!(engine.honest_contract().value, 9);
    }

    #[test]
    fn corrupt_majority_commits_lies_documenting_the_trust_assumption() {
        // The paper's guarantee needs an honest majority; with a lazy
        // (AcceptAll) majority a fraudulent proposal *does* commit. Pin
        // that boundary so the threat model is explicit in code.
        let mut engine = engine_with(
            4,
            &[
                (0, MinerBehavior::CorruptProposals),
                (1, MinerBehavior::AcceptAll),
                (2, MinerBehavior::AcceptAll),
            ],
        );
        let report = engine.commit_transactions(add_txs(&[3])).unwrap();
        assert_eq!(report.attempts, 1, "fraud wins with a lazy majority");
        assert_ne!(
            report.state_root,
            engine.honest_contract().state_digest(),
            "committed root is the corrupted one — trust assumption violated"
        );
    }

    #[test]
    fn failing_tx_aborts() {
        let mut engine = engine_with(3, &[]);
        let txs = vec![Transaction::new(0, 0, CounterCall::Fail)];
        let err = engine.commit_transactions(txs).unwrap_err();
        assert!(matches!(
            err,
            EngineError::ExecutionFailed { tx_index: 0, .. }
        ));
        assert_eq!(engine.height(), 0);
    }

    #[test]
    fn gas_limit_enforced() {
        let schedule = LeaderSchedule::round_robin(vec![0, 1, 2]);
        let mut engine = ConsensusEngine::new(
            CounterContract::default(),
            schedule,
            &BTreeMap::new(),
            EngineConfig {
                block_gas_limit: Some(Gas(1)),
                ..Default::default()
            },
        )
        .unwrap();
        // Two txs at 1 gas each exceed the 1-gas block limit.
        let err = engine.commit_transactions(add_txs(&[1, 2])).unwrap_err();
        assert!(matches!(err, EngineError::OutOfGas { .. }));
    }

    #[test]
    fn stats_accumulate() {
        let mut engine = engine_with(3, &[]);
        engine.commit_transactions(add_txs(&[1, 2])).unwrap();
        engine.commit_transactions(add_txs(&[3])).unwrap();
        let stats = engine.stats();
        assert_eq!(stats.blocks, 2);
        assert_eq!(stats.txs, 3);
        assert_eq!(stats.gas, Gas(3));
        assert_eq!(stats.failed_views, 0);
    }

    #[test]
    fn empty_block_commits() {
        let mut engine = engine_with(3, &[]);
        let report = engine.commit_transactions(vec![]).unwrap();
        assert_eq!(report.gas_used, Gas(0));
        assert_eq!(engine.height(), 1);
    }
}
